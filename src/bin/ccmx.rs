//! `ccmx` — command-line front end for the reproduction.
//!
//! ```text
//! ccmx singular <rows>            decide singularity of a matrix, e.g. "1,2;3,4"
//! ccmx protocol <2n> <k> [--rand] run a metered protocol on a random instance
//! ccmx bounds <n> <k>             print the Theorem 1.1 / VLSI bound breakdown
//! ccmx construct <n> <k> [--complete]  generate a restricted instance (Fig. 1/3)
//! ccmx truth <2n> <k>             enumerate the π₀ truth matrix + certificates
//! ccmx cc <matrix: 0110;1001> [--threads T] [--no-memo] [--depth D] [--cert FILE]
//!                                 exact CC(f) by branch-and-bound, with an optional
//!                                 serialized optimal-protocol certificate
//! ccmx cc --verify FILE           re-verify a saved certificate, trust-free
//! ccmx serve <addr> [workers] [--store DIR]
//!                                 run the protocol-lab server (e.g. 127.0.0.1:7878);
//!                                 --store (or CCMX_STORE_DIR) persists certified
//!                                 results and warm-starts the caches on boot
//! ccmx shard <addr> [--name N] [--cache-cap C] [--workers W] [--idle-secs S]
//!                   [--store-root DIR]
//!                                 run one cluster shard (a named lab server); each
//!                                 shard logs under <root>/<name>
//! ccmx store stat|compact|verify <dir>
//!                                 inspect, compact, or (read-only) check a store
//!                                 directory — see docs/STORAGE.md for the format
//! ccmx coordinator <addr> --shard name=addr [--shard ...] [--replicas R] [--vnodes V]
//!                         [--idle-secs S]   run the shard router fronting a fleet
//! ccmx client <addr> <cmd> ...    talk to a server: ping | bounds <n> <k> | run <2n> <k> [--rand]
//!                                 | singular <rows> | batch <2n> <k> <count> | stats
//! ccmx chaos [--trials N] [--seed S] [--level quiet|moderate|aggressive] [--server]
//!                                 seeded fault-injection soak; exits non-zero on any
//!                                 metered-bit divergence
//! ```

use ccmx::core::{counting, lemma32, lemma35, Params, RestrictedInstance};
use ccmx::linalg::{bareiss, smith, Matrix};
use ccmx::net::chaos::render_report;
use ccmx::net::{
    chaos_soak, server_soak, BreakerConfig, BreakerState, ChaosLevel, Client, ProtoSpec,
    RetryClient, RetryPolicy, ServerConfig, TransportConfig,
};
use ccmx::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn net_fail(what: &str, err: ccmx::net::NetError) -> ! {
    eprintln!("ccmx: {what}: {err}");
    std::process::exit(1)
}

fn store_fail(dir: &std::path::Path, err: ccmx::store::StoreError) -> ! {
    eprintln!("ccmx: store at {}: {err}", dir.display());
    std::process::exit(1)
}

/// Default store directory: the `CCMX_STORE_DIR` environment variable,
/// overridable per command with `--store` / `--store-root`.
fn store_dir_from_env() -> Option<std::path::PathBuf> {
    std::env::var_os("CCMX_STORE_DIR").map(std::path::PathBuf::from)
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  ccmx singular <rows: a,b;c,d>\n  ccmx protocol <2n> <k> [--rand]\n  ccmx bounds <n> <k>\n  ccmx construct <n> <k> [--complete]\n  ccmx truth <2n> <k>\n  ccmx cc <matrix: 0110;1001> [--threads T] [--no-memo] [--depth D] [--cert FILE]\n  ccmx cc --verify FILE\n  ccmx serve <addr> [workers] [--store DIR]\n  ccmx shard <addr> [--name N] [--cache-cap C] [--workers W] [--store-root DIR]\n  ccmx store stat <dir>\n  ccmx store compact <dir>\n  ccmx store verify <dir>\n  ccmx coordinator <addr> --shard name=addr [--shard ...] [--replicas R] [--vnodes V]\n  ccmx client <addr> ping\n  ccmx client <addr> bounds <n> <k>\n  ccmx client <addr> run <2n> <k> [--rand]\n  ccmx client <addr> singular <rows: a,b;c,d>\n  ccmx client <addr> cc <matrix: 0110;1001> [--depth D]\n  ccmx client <addr> batch <2n> <k> <count>\n  ccmx client <addr> stats\n  ccmx chaos [--trials N] [--seed S] [--level quiet|moderate|aggressive] [--server]"
    );
    std::process::exit(2)
}

/// Parse a truth matrix written as rows of 0/1 digits, e.g. "0110;1001".
fn parse_truth(s: &str) -> ccmx::comm::truth::TruthMatrix {
    let rows: Vec<Vec<bool>> = s
        .split(';')
        .map(|row| {
            row.trim()
                .chars()
                .map(|ch| match ch {
                    '0' => false,
                    '1' => true,
                    other => panic!("bad truth entry {other:?} (want 0/1)"),
                })
                .collect()
        })
        .collect();
    let r = rows.len();
    let c = rows.first().map_or(0, |x| x.len());
    assert!(r > 0 && c > 0, "empty truth matrix");
    assert!(rows.iter().all(|x| x.len() == c), "ragged truth matrix");
    ccmx::comm::truth::TruthMatrix::from_fn(r, c, |x, y| rows[x][y])
}

fn parse_matrix(s: &str) -> Matrix<Integer> {
    let rows: Vec<Vec<Integer>> = s
        .split(';')
        .map(|row| {
            row.split(',')
                .map(|e| {
                    Integer::from_decimal_str(e.trim()).unwrap_or_else(|| panic!("bad entry {e:?}"))
                })
                .collect()
        })
        .collect();
    let r = rows.len();
    let c = rows.first().map_or(0, |x| x.len());
    assert!(rows.iter().all(|x| x.len() == c), "ragged matrix");
    Matrix::from_fn(r, c, |i, j| rows[i][j].clone())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("singular") => {
            let m = parse_matrix(args.get(1).unwrap_or_else(|| usage()));
            println!("matrix:\n{m}");
            let det = bareiss::det(&m);
            let s = smith::smith_normal_form(&m);
            println!("det        = {det}");
            println!("rank       = {}", bareiss::rank(&m));
            println!(
                "invariants = {:?}",
                s.invariant_factors()
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
            );
            println!("singular   = {}", det.is_zero());
        }
        Some("protocol") => {
            let dim: usize = args.get(1).unwrap_or_else(|| usage()).parse().expect("2n");
            let k: u32 = args.get(2).unwrap_or_else(|| usage()).parse().expect("k");
            let randomized = args.iter().any(|a| a == "--rand");
            let f = Singularity::new(dim, k);
            let enc = f.enc;
            let pi0 = Partition::pi_zero(&enc);
            let mut rng = StdRng::seed_from_u64(42);
            let m = Matrix::from_fn(dim, dim, |_, _| {
                Integer::from(rand::Rng::gen_range(&mut rng, 0..(1i64 << k)))
            });
            let input = enc.encode(&m);
            println!(
                "random {dim}x{dim} matrix of {k}-bit entries; input = {} bits",
                input.len()
            );
            let run = if randomized {
                let p = ModPrimeSingularity::new(dim, k, 20);
                println!(
                    "protocol: mod-random-prime (error ≤ {:.2e})",
                    p.error_bound()
                );
                run_threaded(&p, &pi0, &input, 1)
            } else {
                println!("protocol: deterministic send-all");
                run_threaded(&SendAll::new(f), &pi0, &input, 1)
            };
            println!(
                "output    = {} (exact: {})",
                run.output,
                bareiss::is_singular(&m)
            );
            println!(
                "cost      = {} bits over {} message(s)",
                run.cost_bits(),
                run.transcript.rounds()
            );
        }
        Some("bounds") => {
            let n: usize = args.get(1).unwrap_or_else(|| usage()).parse().expect("n");
            let k: u32 = args.get(2).unwrap_or_else(|| usage()).parse().expect("k");
            let p = Params::new(n, k);
            let b = counting::theorem_bound(p);
            println!("Theorem 1.1 at n = {n}, k = {k} (q = {}):", p.q_u64());
            println!(
                "  truth matrix     : q^{:.0} rows × q^{:.0} cols",
                b.rows_log_q, b.cols_log_q
            );
            println!("  ones (≥)         : q^{:.0}", b.ones_log_q);
            println!(
                "  max 1-rect area  : q^{:.0}",
                b.small_rect_area_log_q.max(b.large_rect_area_log_q)
            );
            println!("  d(f) (≥)         : q^{:.0}", b.d_log_q);
            println!("  lower bound      : {:.0} bits", b.lower_bound_bits);
            println!(
                "  upper bound      : {:.0} bits (send-all)",
                counting::deterministic_upper_bound_bits(p)
            );
            println!(
                "  randomized       : {:.0} bits (mod-prime, sec 20)",
                counting::probabilistic_upper_bound_bits(p, 20)
            );
            let v = VlsiBounds::for_singularity_asymptotic(n, k);
            println!(
                "  VLSI (I = k n²)  : AT² ≥ {:.3e}, AT ≥ {:.3e}, T ≥ {:.0}",
                v.at2, v.at, v.time_if_area_optimal
            );
        }
        Some("construct") => {
            let n: usize = args.get(1).unwrap_or_else(|| usage()).parse().expect("n");
            let k: u32 = args.get(2).unwrap_or_else(|| usage()).parse().expect("k");
            let p = Params::new(n, k);
            let mut rng = StdRng::seed_from_u64(7);
            let inst = if args.iter().any(|a| a == "--complete") {
                let free = RestrictedInstance::random(p, &mut rng);
                lemma35::complete(p, &free.c, &free.e).expect("Lemma 3.5")
            } else {
                RestrictedInstance::random(p, &mut rng)
            };
            println!("M ({0}x{0}):\n{1}", p.dim(), inst.assemble());
            println!("\nsingular        = {}", lemma32::m_is_singular(&inst));
            println!("B·u ∈ Span(A)   = {}", lemma32::bu_in_span_a(&inst));
        }
        Some("truth") => {
            let dim: usize = args.get(1).unwrap_or_else(|| usage()).parse().expect("2n");
            let k: u32 = args.get(2).unwrap_or_else(|| usage()).parse().expect("k");
            let f = Singularity::new(dim, k);
            let enc = f.enc;
            let pi0 = Partition::pi_zero(&enc);
            let t = ccmx::comm::truth::TruthMatrix::enumerate(&f, &pi0, 4);
            println!("truth matrix under π₀: {} × {}", t.rows(), t.cols());
            println!("ones            = {}", t.count_ones());
            println!("distinct rows   = {}", t.distinct_rows());
            let r = ccmx::comm::bounds::lower_bounds(&t);
            println!("rank GF(2)      = {}", r.rank_gf2);
            println!("rank GF(p)      = {}", r.rank_big_prime);
            println!("fooling set     = {}", r.fooling_set);
            println!(
                "lower bound     = {:.2} bits (Yao)",
                r.comm_lower_bound_bits
            );
            println!(
                "one-way bound   = {:.2} bits",
                ccmx::comm::bounds::one_way_lower_bound_bits(&t)
            );
        }
        Some("cc") => {
            // Trust-free certificate replay: decode, verify, report.
            if args.get(1).map(String::as_str) == Some("--verify") {
                let path = args.get(2).unwrap_or_else(|| usage());
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
                let cert = ccmx::search::CcCertificate::from_hex(&text)
                    .unwrap_or_else(|e| panic!("bad certificate in {path}: {e}"));
                match cert.verify() {
                    Ok(()) => {
                        println!(
                            "certificate OK: {}x{} matrix, CC = {} ({} tree node(s))",
                            cert.rows,
                            cert.cols,
                            cert.cc,
                            cert.tree.node_count()
                        );
                    }
                    Err(e) => {
                        eprintln!("certificate REJECTED: {e}");
                        std::process::exit(1);
                    }
                }
                return;
            }
            let t = parse_truth(args.get(1).unwrap_or_else(|| usage()));
            let mut cfg = ccmx::search::SearchConfig::default();
            let mut cert_path: Option<String> = None;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--threads" => {
                        i += 1;
                        cfg.threads = args.get(i).unwrap_or_else(|| usage()).parse().expect("T");
                    }
                    "--no-memo" => cfg.use_memo = false,
                    "--depth" => {
                        i += 1;
                        cfg.depth_limit =
                            args.get(i).unwrap_or_else(|| usage()).parse().expect("D");
                    }
                    "--cert" => {
                        i += 1;
                        cert_path = Some(args.get(i).unwrap_or_else(|| usage()).clone());
                    }
                    _ => usage(),
                }
                i += 1;
            }
            let start = std::time::Instant::now();
            let r = ccmx::search::solve(&t, &cfg).unwrap_or_else(|e| panic!("cc search: {e}"));
            let elapsed = start.elapsed();
            println!("matrix          = {} × {}", t.rows(), t.cols());
            if r.exact {
                println!("CC(f)           = {} (exact)", r.cc);
            } else {
                println!(
                    "CC(f)           >= {} (depth budget {} hit)",
                    r.cc, cfg.depth_limit
                );
            }
            println!("nodes           = {}", r.stats.nodes);
            println!(
                "memo            = {} hit(s), {} miss(es), {} entr(ies)",
                r.stats.memo_hits, r.stats.memo_misses, r.stats.memo_entries
            );
            for (kind, count) in r.stats.prunes_by_certificate() {
                println!("prunes[{kind:<9}] = {count}");
            }
            println!("wall time       = {elapsed:.2?}");
            match (&cert_path, r.certificate) {
                (Some(path), Some(cert)) => {
                    cert.verify()
                        .expect("solver emitted an invalid certificate");
                    std::fs::write(path, cert.to_hex())
                        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
                    println!("certificate     -> {path} (verified)");
                }
                (Some(_), None) => {
                    println!("certificate     = none (inexact result or witness too wide)");
                }
                (None, Some(cert)) => {
                    cert.verify()
                        .expect("solver emitted an invalid certificate");
                    println!(
                        "certificate     = {} tree node(s), verified (use --cert FILE to save)",
                        cert.tree.node_count()
                    );
                }
                (None, None) => {}
            }
            println!("-- search metrics --");
            for line in ccmx::obs::registry()
                .render()
                .lines()
                .filter(|l| l.starts_with("ccmx_search_"))
            {
                println!("{line}");
            }
        }
        Some("serve") => {
            let addr = args.get(1).unwrap_or_else(|| usage());
            let mut workers: usize = 4;
            let mut store_dir = store_dir_from_env();
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--store" => {
                        i += 1;
                        store_dir = Some(std::path::PathBuf::from(
                            args.get(i).unwrap_or_else(|| usage()),
                        ));
                    }
                    w => workers = w.parse().expect("workers"),
                }
                i += 1;
            }
            let config = ServerConfig {
                workers,
                store_dir: store_dir.clone(),
                ..ServerConfig::default()
            };
            let handle = ccmx::net::serve(addr, config)
                .unwrap_or_else(|e| net_fail(&format!("cannot bind {addr}"), e.into()));
            println!(
                "ccmx protocol-lab server on {} ({} workers)",
                handle.addr(),
                workers
            );
            match handle.store_stat() {
                Some(stat) => println!(
                    "persistent store at {} (warm: {} records over {} segments)",
                    stat.dir.display(),
                    stat.live_records,
                    stat.segments
                ),
                None if store_dir.is_some() => {
                    println!("persistent store unavailable; serving cold")
                }
                None => {}
            }
            println!("press Ctrl-C to stop");
            loop {
                std::thread::sleep(std::time::Duration::from_secs(60));
                let s = handle.stats();
                println!(
                    "served {} requests over {} connections ({} interactive runs, {} dropped)",
                    s.requests_served,
                    s.connections_accepted,
                    s.interactive_runs,
                    s.connections_dropped
                );
            }
        }
        Some("shard") => {
            let addr = args.get(1).unwrap_or_else(|| usage());
            let mut config = ccmx::cluster::ShardConfig::named("shard-0");
            config.store_root = store_dir_from_env();
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--name" => {
                        i += 1;
                        config.name = args.get(i).unwrap_or_else(|| usage()).clone();
                    }
                    "--cache-cap" => {
                        i += 1;
                        config.cache_capacity =
                            args.get(i).unwrap_or_else(|| usage()).parse().expect("C");
                    }
                    "--workers" => {
                        i += 1;
                        config.workers = args.get(i).unwrap_or_else(|| usage()).parse().expect("W");
                    }
                    "--idle-secs" => {
                        i += 1;
                        let secs: u64 = args.get(i).unwrap_or_else(|| usage()).parse().expect("S");
                        config.server.read_timeout = std::time::Duration::from_secs(secs.max(1));
                    }
                    "--store-root" => {
                        i += 1;
                        config.store_root = Some(std::path::PathBuf::from(
                            args.get(i).unwrap_or_else(|| usage()),
                        ));
                    }
                    _ => usage(),
                }
                i += 1;
            }
            let name = config.name.clone();
            let (cache, workers) = (config.cache_capacity, config.workers);
            let handle = ccmx::cluster::serve_shard(addr, config)
                .unwrap_or_else(|e| net_fail(&format!("cannot bind {addr}"), e.into()));
            println!(
                "ccmx shard {name} on {} (cache {cache}, {workers} workers)",
                handle.addr()
            );
            println!("press Ctrl-C to stop");
            loop {
                std::thread::sleep(std::time::Duration::from_secs(60));
                let s = handle.stats();
                println!(
                    "shard {name}: served {} requests over {} connections ({} shed)",
                    s.requests_served, s.connections_accepted, s.requests_shed
                );
            }
        }
        Some("coordinator") => {
            let addr = args.get(1).unwrap_or_else(|| usage());
            let mut cluster = ccmx::cluster::ClusterConfig::default();
            let mut server = ServerConfig::default();
            let mut shards = Vec::new();
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--shard" => {
                        i += 1;
                        let spec = args.get(i).unwrap_or_else(|| usage());
                        shards.push(ccmx::cluster::ShardSpec::parse(spec).unwrap_or_else(|| {
                            eprintln!("ccmx: bad --shard {spec:?} (want name=addr)");
                            std::process::exit(2)
                        }));
                    }
                    "--replicas" => {
                        i += 1;
                        cluster.replicas =
                            args.get(i).unwrap_or_else(|| usage()).parse().expect("R");
                    }
                    "--vnodes" => {
                        i += 1;
                        cluster.vnodes_per_shard =
                            args.get(i).unwrap_or_else(|| usage()).parse().expect("V");
                    }
                    "--idle-secs" => {
                        i += 1;
                        let secs: u64 = args.get(i).unwrap_or_else(|| usage()).parse().expect("S");
                        server.read_timeout = std::time::Duration::from_secs(secs.max(1));
                    }
                    _ => usage(),
                }
                i += 1;
            }
            if shards.is_empty() {
                eprintln!("ccmx: a coordinator needs at least one --shard name=addr");
                std::process::exit(2)
            }
            let names: Vec<String> = shards.iter().map(|s| s.name.clone()).collect();
            let coordinator =
                std::sync::Arc::new(ccmx::cluster::Coordinator::over_tcp(cluster, shards));
            let handle =
                ccmx::cluster::serve_coordinator(addr, server, std::sync::Arc::clone(&coordinator))
                    .unwrap_or_else(|e| net_fail(&format!("cannot bind {addr}"), e.into()));
            println!(
                "ccmx coordinator on {} fronting {} shard(s): {}",
                handle.addr(),
                names.len(),
                names.join(", ")
            );
            println!("press Ctrl-C to stop");
            loop {
                std::thread::sleep(std::time::Duration::from_secs(60));
                let s = handle.stats();
                println!(
                    "coordinator: routed {} requests over {} connections ({} shed at ingress)",
                    s.requests_served, s.connections_accepted, s.requests_shed
                );
            }
        }
        Some("client") => {
            let addr = args.get(1).unwrap_or_else(|| usage());
            let mut client = Client::connect(addr, TransportConfig::default())
                .unwrap_or_else(|e| net_fail(&format!("cannot connect to {addr}"), e));
            match args.get(2).map(String::as_str) {
                Some("ping") => {
                    client.ping().unwrap_or_else(|e| net_fail("ping failed", e));
                    println!("pong from {addr}");
                }
                Some("bounds") => {
                    let n: usize = args.get(3).unwrap_or_else(|| usage()).parse().expect("n");
                    let k: u32 = args.get(4).unwrap_or_else(|| usage()).parse().expect("k");
                    let b = client
                        .bounds(n, k, 20)
                        .unwrap_or_else(|e| net_fail("bounds request failed", e));
                    println!("Theorem 1.1 at n = {n}, k = {k} (served remotely):");
                    println!("  lower bound      : {:.0} bits", b.lower_bound_bits);
                    println!(
                        "  upper bound      : {:.0} bits (send-all)",
                        b.deterministic_upper_bits
                    );
                    println!(
                        "  randomized       : {:.0} bits (mod-prime, sec {})",
                        b.randomized_upper_bits, b.security
                    );
                }
                Some("stats") | Some("--stats") => {
                    let text = client
                        .metrics()
                        .unwrap_or_else(|e| net_fail("metrics request failed", e));
                    print!("{text}");
                }
                Some("singular") => {
                    let m = parse_matrix(args.get(3).unwrap_or_else(|| usage()));
                    let dim = m.rows();
                    assert_eq!(dim, m.cols(), "singularity needs a square matrix");
                    // Smallest encoding width that fits every entry
                    // (entries must be nonnegative k-bit integers).
                    let k = (0..dim)
                        .flat_map(|i| (0..dim).map(move |j| (i, j)))
                        .map(|(i, j)| {
                            let e = &m[(i, j)];
                            assert!(!e.is_negative(), "encoded entries must be nonnegative");
                            e.bit_len() as u32
                        })
                        .max()
                        .unwrap_or(1)
                        .max(1);
                    let enc = MatrixEncoding::new(dim, k);
                    let singular = client
                        .singularity(dim, k, &enc.encode(&m))
                        .unwrap_or_else(|e| net_fail("singularity request failed", e));
                    println!("matrix:\n{m}");
                    println!("singular  = {singular} (decided remotely, k = {k})");
                }
                Some("cc") => {
                    let t = parse_truth(args.get(3).unwrap_or_else(|| usage()));
                    let mut depth = 32u32;
                    let mut i = 4;
                    while i < args.len() {
                        match args[i].as_str() {
                            "--depth" => {
                                i += 1;
                                depth = args.get(i).unwrap_or_else(|| usage()).parse().expect("D");
                            }
                            _ => usage(),
                        }
                        i += 1;
                    }
                    let tr = &t;
                    let bits = ccmx::comm::BitString::from_bits(
                        (0..tr.rows())
                            .flat_map(|x| (0..tr.cols()).map(move |y| tr.get(x, y)))
                            .collect(),
                    );
                    let (cc, exact, nodes, certificate) = client
                        .cc_search(t.rows(), t.cols(), &bits, depth)
                        .unwrap_or_else(|e| net_fail("cc-search request failed", e));
                    if exact {
                        println!("CC(f)     = {cc} (exact, decided remotely)");
                    } else {
                        println!("CC(f)     >= {cc} (remote depth budget {depth} hit)");
                    }
                    println!("nodes     = {nodes} (0 = server cache hit)");
                    if certificate.is_empty() {
                        println!("witness   = none");
                    } else {
                        // Verify locally: the whole point of the
                        // certificate is not having to trust the server.
                        let cert = ccmx::search::CcCertificate::from_bytes(&certificate)
                            .expect("server sent an undecodable certificate");
                        cert.verify()
                            .expect("server certificate failed verification");
                        assert_eq!(cert.cc, cc, "certificate claims a different CC");
                        println!(
                            "witness   = {} tree node(s), verified locally",
                            cert.tree.node_count()
                        );
                    }
                }
                Some("batch") => {
                    let dim: usize = args.get(3).unwrap_or_else(|| usage()).parse().expect("2n");
                    let k: u32 = args.get(4).unwrap_or_else(|| usage()).parse().expect("k");
                    let count: usize = args
                        .get(5)
                        .unwrap_or_else(|| usage())
                        .parse()
                        .expect("count");
                    let enc = MatrixEncoding::new(dim, k);
                    let mut rng = StdRng::seed_from_u64(42);
                    // Alternate the two singularity protocols so the
                    // server's batch planner sees several distinct spec
                    // groups and fans them out over its worker pool.
                    let reqs: Vec<ccmx::net::Request> = (0..count)
                        .map(|i| {
                            let m = Matrix::from_fn(dim, dim, |_, _| {
                                Integer::from(rand::Rng::gen_range(&mut rng, 0..(1i64 << k)))
                            });
                            let spec = if i % 2 == 0 {
                                ProtoSpec::SendAllSingularity { dim, k }
                            } else {
                                ProtoSpec::ModPrimeSingularity {
                                    dim,
                                    k,
                                    security: 20,
                                }
                            };
                            ccmx::net::Request::Run {
                                spec,
                                input: enc.encode(&m),
                                seed: i as u64,
                            }
                        })
                        .collect();
                    let resps = client
                        .batch(reqs)
                        .unwrap_or_else(|e| net_fail("batch request failed", e));
                    let mut singular = 0usize;
                    let mut bits = 0usize;
                    for (i, r) in resps.iter().enumerate() {
                        match r {
                            ccmx::net::Response::Run(run) => {
                                if run.output {
                                    singular += 1;
                                }
                                bits += run.cost_bits();
                            }
                            other => panic!("batch slot {i}: unexpected response {other:?}"),
                        }
                    }
                    println!(
                        "batch of {count} runs ({dim}x{dim}, {k}-bit entries): \
                         {singular} singular, {bits} protocol bits total"
                    );
                }
                Some("run") => {
                    let dim: usize = args.get(3).unwrap_or_else(|| usage()).parse().expect("2n");
                    let k: u32 = args.get(4).unwrap_or_else(|| usage()).parse().expect("k");
                    let spec = if args.iter().any(|a| a == "--rand") {
                        ProtoSpec::ModPrimeSingularity {
                            dim,
                            k,
                            security: 20,
                        }
                    } else {
                        ProtoSpec::SendAllSingularity { dim, k }
                    };
                    let enc = MatrixEncoding::new(dim, k);
                    let mut rng = StdRng::seed_from_u64(42);
                    let m = Matrix::from_fn(dim, dim, |_, _| {
                        Integer::from(rand::Rng::gen_range(&mut rng, 0..(1i64 << k)))
                    });
                    let input = enc.encode(&m);
                    println!(
                        "running {} interactively: client = agent A, server = agent B",
                        spec.name()
                    );
                    let (mine, theirs, stats) = client
                        .run_interactive(spec, &input, 1)
                        .unwrap_or_else(|e| net_fail("interactive run failed", e));
                    assert_eq!(mine, theirs, "client and server transcripts diverged");
                    println!(
                        "output    = {} (exact: {})",
                        mine.output,
                        bareiss::is_singular(&m)
                    );
                    println!(
                        "cost      = {} bits over {} message(s); wire metered {} bits",
                        mine.cost_bits(),
                        mine.transcript.rounds(),
                        stats.bits_total()
                    );
                    assert_eq!(stats.bits_total(), mine.cost_bits(), "wire meter diverged");
                }
                _ => usage(),
            }
        }
        Some("chaos") => {
            let mut trials = 8usize;
            let mut seed = 0xC4A05u64;
            let mut level = ChaosLevel::Aggressive;
            let mut with_server = false;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--trials" => {
                        i += 1;
                        trials = args.get(i).unwrap_or_else(|| usage()).parse().expect("N");
                    }
                    "--seed" => {
                        i += 1;
                        seed = args.get(i).unwrap_or_else(|| usage()).parse().expect("S");
                    }
                    "--level" => {
                        i += 1;
                        level = ChaosLevel::parse(args.get(i).unwrap_or_else(|| usage()))
                            .unwrap_or_else(|| usage());
                    }
                    "--server" => with_server = true,
                    _ => usage(),
                }
                i += 1;
            }
            let specs = [
                ProtoSpec::FingerprintEquality {
                    half_bits: 24,
                    security: 20,
                },
                ProtoSpec::SendAllSingularity { dim: 2, k: 3 },
                ProtoSpec::ModPrimeSingularity {
                    dim: 2,
                    k: 4,
                    security: 16,
                },
            ];
            println!("chaos soak: {trials} trial(s)/spec, seed {seed}, level {level:?}");
            let mut all_passed = true;
            for spec in specs {
                let report = chaos_soak(spec, trials, seed, level);
                println!("  {}", render_report(&report));
                all_passed &= report.passed();
            }
            if with_server {
                // The live stack: a real server, concurrent clients, and
                // the zero-divergence verdict measured end to end.
                let server = ccmx::net::serve("127.0.0.1:0", ServerConfig::default())
                    .unwrap_or_else(|e| net_fail("cannot bind chaos server", e.into()));
                let report = server_soak(
                    &server.addr().to_string(),
                    ProtoSpec::ModPrimeSingularity {
                        dim: 2,
                        k: 4,
                        security: 16,
                    },
                    4,
                    trials.max(1),
                    seed,
                );
                println!("  server: {}", render_report(&report));
                all_passed &= report.passed();
                server.shutdown();

                // Breaker drill: hammer a dead port until the per-peer
                // circuit breaker trips, so its transitions land in the
                // metrics registry alongside the soak counters.
                let dead = {
                    let l = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
                    l.local_addr().expect("port addr").to_string()
                };
                let mut rc = RetryClient::new(
                    &dead,
                    TransportConfig::default(),
                    RetryPolicy {
                        max_attempts: 3,
                        base_backoff: std::time::Duration::from_millis(1),
                        max_backoff: std::time::Duration::from_millis(5),
                        jitter_seed: seed,
                    },
                    BreakerConfig::default(),
                );
                let _ = rc.ping();
                println!(
                    "  breaker drill: peer {} is {:?} after {} transition(s)",
                    dead,
                    rc.breaker().state(),
                    rc.breaker().transitions()
                );
                all_passed &= rc.breaker().state() == BreakerState::Open;
            }
            let metrics = ccmx::obs::registry().render();
            println!("-- chaos metrics --");
            for line in metrics.lines().filter(|l| {
                l.starts_with("ccmx_fault_")
                    || l.starts_with("ccmx_retry_")
                    || l.starts_with("ccmx_breaker_")
            }) {
                println!("{line}");
            }
            if all_passed {
                println!("chaos verdict: PASS (zero metered-bit divergence)");
            } else {
                eprintln!("chaos verdict: FAIL");
                std::process::exit(1);
            }
        }
        Some("store") => {
            let verb = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let dir = std::path::PathBuf::from(args.get(2).unwrap_or_else(|| usage()));
            match verb {
                "stat" => {
                    let store = ccmx::store::Store::open(ccmx::store::StoreConfig::new(&dir))
                        .unwrap_or_else(|e| store_fail(&dir, e));
                    let rec = store.recovery();
                    if !rec.clean() {
                        println!(
                            "recovery: {} issue(s), {} byte(s) truncated, {} segment(s) quarantined",
                            rec.issues.len(),
                            rec.truncated_bytes,
                            rec.quarantined_segments
                        );
                        for issue in &rec.issues {
                            println!("  seg {} @{}: {}", issue.segment, issue.offset, issue.kind);
                        }
                    }
                    let stat = store.stat();
                    println!(
                        "{}: {} live record(s) in {} segment(s), {} live / {} dead byte(s), next seqno {}",
                        stat.dir.display(),
                        stat.live_records,
                        stat.segments,
                        stat.live_bytes,
                        stat.dead_bytes,
                        stat.next_seqno
                    );
                    for (keyspace, count) in &stat.per_keyspace {
                        println!("  {keyspace}: {count} record(s)");
                    }
                }
                "compact" => {
                    let mut store = ccmx::store::Store::open(ccmx::store::StoreConfig::new(&dir))
                        .unwrap_or_else(|e| store_fail(&dir, e));
                    let report = store.compact().unwrap_or_else(|e| store_fail(&dir, e));
                    println!(
                        "compacted {} -> {} segment(s): {} live record(s) kept, {} byte(s) reclaimed, {} v1 record(s) migrated",
                        report.segments_before,
                        report.segments_after,
                        report.live_records,
                        report.reclaimed_bytes,
                        report.migrated_v1
                    );
                }
                "verify" => {
                    // Read-only: inspects the files without opening (and
                    // therefore without repairing) the store.
                    let report = ccmx::store::Store::verify_dir(&dir)
                        .unwrap_or_else(|e| store_fail(&dir, e));
                    for (id, records, bytes, status) in &report.segments {
                        println!("seg {id:012}: {records} record(s), {bytes} byte(s), {status}");
                    }
                    if report.quarantined > 0 {
                        println!("{} quarantined segment file(s)", report.quarantined);
                    }
                    if report.ok {
                        println!("verify: OK ({} record(s))", report.records);
                    } else {
                        eprintln!("verify: FAIL — a reopen would repair (truncate/quarantine)");
                        std::process::exit(1);
                    }
                }
                _ => usage(),
            }
        }
        _ => usage(),
    }
}
