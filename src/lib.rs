//! # ccmx — the Chu–Schnitger communication-complexity laboratory
//!
//! A full reproduction of **Chu & Schnitger, "The Communication
//! Complexity of Several Problems in Matrix Computation"** (SPAA 1989;
//! *Journal of Complexity* 7:395–407, 1991), built as an executable
//! system: Yao's two-party model, the paper's hard-instance construction
//! and every numbered lemma, the reductions of Corollaries 1.2/1.3, the
//! randomized counterpoint, and the VLSI area–time consequences.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`bigint`] — from-scratch arbitrary-precision arithmetic,
//! * [`linalg`] — exact linear algebra over ℤ / ℚ / GF(p),
//! * [`comm`] — the communication model: partitions, metered protocols,
//!   truth matrices, rectangle lower bounds,
//! * [`core`] — the paper's construction, lemmas and reductions,
//! * [`net`] — wire-level transports and the multi-client protocol-lab
//!   server (`ccmx serve` / `ccmx client`), now on a readiness-based
//!   evented engine,
//! * [`cluster`] — the sharded lab: consistent-hash coordinator,
//!   breaker-guarded shard links, cluster chaos soaks
//!   (`ccmx shard` / `ccmx coordinator`),
//! * [`obs`] — the shared observability registry: lock-free counters,
//!   gauges and histograms, scoped span tracing, and Prometheus-style
//!   exposition (`ccmx client <addr> stats`),
//! * [`search`] — the exact `CC(f)` decision engine: branch-and-bound
//!   over protocol trees with a canonicalized rectangle memo,
//!   certificate-seeded pruning and verifiable optimal-protocol
//!   certificates (`ccmx cc`),
//! * [`store`] — the persistent certified-result tier: an append-only,
//!   checksummed, crash-recovering log under the server caches, so a
//!   restarted lab warm-starts from every verdict it ever certified
//!   (`ccmx serve --store`, `ccmx store stat|compact|verify`; format
//!   spec in `docs/STORAGE.md`),
//! * [`vlsi`] — Thompson-model AT² bounds and the systolic simulator.
//!
//! ## Quickstart
//!
//! ```
//! use ccmx::prelude::*;
//!
//! // The paper's singularity-testing function for 4x4 matrices of
//! // 2-bit entries, under the column partition π₀.
//! let f = Singularity::new(4, 2);
//! let enc = f.enc;
//! let pi0 = Partition::pi_zero(&enc);
//!
//! // Deterministic upper bound: ship half the input (Θ(k n²) bits).
//! let send_all = SendAll::new(f);
//! let m = ccmx::linalg::matrix::int_matrix(&[
//!     &[1, 2, 0, 3],
//!     &[0, 1, 1, 1],
//!     &[2, 0, 1, 0],
//!     &[1, 2, 0, 3], // duplicate row: singular
//! ]);
//! let input = enc.encode(&m);
//! let run = run_sequential(&send_all, &pi0, &input, 0);
//! assert!(run.output); // singular
//! assert_eq!(run.cost_bits(), pi0.count_a());
//! ```

pub use ccmx_bigint as bigint;
pub use ccmx_cluster as cluster;
pub use ccmx_comm as comm;
pub use ccmx_core as core;
pub use ccmx_linalg as linalg;
pub use ccmx_net as net;
pub use ccmx_obs as obs;
pub use ccmx_search as search;
pub use ccmx_store as store;
pub use ccmx_vlsi as vlsi;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use ccmx_bigint::{Integer, Natural, Rational};
    pub use ccmx_comm::functions::{
        BooleanFunction, Equality, ProductCheck, Singularity, Solvability,
    };
    pub use ccmx_comm::protocols::{FingerprintEquality, ModPrimeSingularity, SendAll};
    pub use ccmx_comm::{run_sequential, run_threaded, BitString, MatrixEncoding, Partition};
    pub use ccmx_core::{Params, RestrictedInstance};
    pub use ccmx_linalg::{Matrix, Ring};
    pub use ccmx_vlsi::{Chip, SystolicMatMul, VlsiBounds};
}
