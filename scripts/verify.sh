#!/usr/bin/env bash
# Full verification gate: tier-1 (release build + tests), formatting,
# and a warning-free clippy pass over every target in the workspace.
#
# Usage: scripts/verify.sh [--quick] [--bench-smoke]
#   --quick        skip the release build (debug tests + lints only)
#   --bench-smoke  additionally run every criterion bench for exactly one
#                  iteration (CCMX_BENCH_SMOKE=1): compile + run sanity
#                  with no timing, so benches can't silently rot

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
BENCH_SMOKE=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        --bench-smoke) BENCH_SMOKE=1 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$QUICK" -eq 0 ]]; then
    echo "==> cargo build --release (tier-1)"
    cargo build --release
fi

echo "==> cargo test -q (tier-1)"
cargo test -q

if [[ "$BENCH_SMOKE" -eq 1 ]]; then
    echo "==> bench smoke (one iteration per bench, no timing)"
    CCMX_BENCH_SMOKE=1 cargo bench -p ccmx-bench
    echo "==> bench_snapshot --quick"
    cargo run --release -p ccmx-bench --bin bench_snapshot -- --quick > /dev/null
    echo "==> bench_snapshot --e15 --quick (incremental-path gate)"
    E15_OUT=$(cargo run --release -p ccmx-bench --bin bench_snapshot -- --e15 --quick)
    if ! grep -q '"incremental_ok": true' <<< "$E15_OUT"; then
        echo "FAIL: enumeration fell back to fresh evaluation" >&2
        grep -E "incremental_ok|cursor_points|update_steps|fresh_refreshes" <<< "$E15_OUT" >&2
        exit 1
    fi
    grep '"incremental_ok"' <<< "$E15_OUT"
fi

echo "==> verify: all gates passed"
