#!/usr/bin/env bash
# Full verification gate: tier-1 (release build + tests), formatting,
# and a warning-free clippy pass over every target in the workspace.
#
# Usage: scripts/verify.sh [--quick] [--bench-smoke]
#   --quick        skip the release build (debug tests + lints only)
#   --bench-smoke  additionally run every criterion bench for exactly one
#                  iteration (CCMX_BENCH_SMOKE=1): compile + run sanity
#                  with no timing, so benches can't silently rot; check
#                  the E19 blocked-kernel verdict (the communication-
#                  avoiding dispatch must actually take the blocked path
#                  and its Hong-Kung I/O meter must report words); check
#                  the E20 search verdict (every benched CC(f) answer
#                  exact and config-independent, the canonical-rectangle
#                  memo actually hitting) and replay the committed
#                  protocol-tree certificate through the independent
#                  `ccmx cc --verify` checker; check the E21 store
#                  verdict (populate a data directory cold, restart the
#                  server on it, fail if recovery accepted zero records,
#                  if any warm answer recomputed or diverged, or if the
#                  warm storm ran below the 1.5x speedup floor); then
#                  boot a real `ccmx serve`, warm it up over the wire,
#                  and fail unless its metrics scrape shows live request,
#                  pool and CRT counters; then run a seeded chaos soak
#                  (`ccmx chaos --server`), which exits non-zero on any
#                  metered-bit divergence under fault injection; finally
#                  boot a 2-shard cluster (`ccmx shard` x2 + a fronting
#                  `ccmx coordinator`), drive keyed traffic through it,
#                  and fail unless every shard shows a nonzero
#                  ccmx_cluster_routed_total and the busiest shard saw
#                  no more than 2x the quietest one's share

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
BENCH_SMOKE=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        --bench-smoke) BENCH_SMOKE=1 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

if [[ "$QUICK" -eq 0 ]]; then
    echo "==> cargo build --release (tier-1)"
    cargo build --release
fi

echo "==> cargo test -q (tier-1)"
cargo test -q

if [[ "$BENCH_SMOKE" -eq 1 ]]; then
    echo "==> bench smoke (one iteration per bench, no timing)"
    CCMX_BENCH_SMOKE=1 cargo bench -p ccmx-bench
    echo "==> bench_snapshot --quick"
    cargo run --release -p ccmx-bench --bin bench_snapshot -- --quick > /dev/null
    echo "==> bench_snapshot --e15 --quick (incremental-path gate)"
    E15_OUT=$(cargo run --release -p ccmx-bench --bin bench_snapshot -- --e15 --quick)
    if ! grep -q '"incremental_ok": true' <<< "$E15_OUT"; then
        echo "FAIL: enumeration fell back to fresh evaluation" >&2
        grep -E "incremental_ok|cursor_points|update_steps|fresh_refreshes" <<< "$E15_OUT" >&2
        exit 1
    fi
    grep '"incremental_ok"' <<< "$E15_OUT"

    echo "==> bench_snapshot --e19 --quick (blocked-kernel dispatch gate)"
    E19_OUT=$(cargo run --release -p ccmx-bench --bin bench_snapshot -- --e19 --quick)
    if ! grep -q '"blocked_ok": true' <<< "$E19_OUT"; then
        echo "FAIL: blocked kernel dispatch silently fell back to scalar," >&2
        echo "      or the Hong-Kung I/O meter reported zero words under the E19 workload" >&2
        grep -E "blocked_ok|words_per_call|iomodel" <<< "$E19_OUT" >&2
        exit 1
    fi
    grep '"blocked_ok"' <<< "$E19_OUT"

    echo "==> bench_snapshot --e20 --quick (CC search exactness + memo gate)"
    E20_OUT=$(cargo run --release -p ccmx-bench --bin bench_snapshot -- --e20 --quick)
    if ! grep -q '"search_ok": true' <<< "$E20_OUT"; then
        echo "FAIL: CC(f) search answered inexactly, disagreed across configs," >&2
        echo "      or the canonical-rectangle memo never hit under the E20 workload" >&2
        grep -E "search_ok|workload|memo" <<< "$E20_OUT" >&2
        exit 1
    fi
    grep '"search_ok"' <<< "$E20_OUT"
    if ! grep -Eq '"ccmx_search_memo_hits_total [0-9]*[1-9][0-9]*"' <<< "$E20_OUT"; then
        echo "FAIL: E20 metrics show zero ccmx_search_memo_hits_total" >&2
        grep -E "ccmx_search_memo" <<< "$E20_OUT" >&2 || true
        exit 1
    fi
    grep -E "ccmx_search_memo_hits_total" <<< "$E20_OUT"

    echo "==> bench_snapshot --e21 --quick (warm-restart store gate)"
    E21_OUT=$(cargo run --release -p ccmx-bench --bin bench_snapshot -- --e21 --quick)
    if ! grep -q '"store_ok": true' <<< "$E21_OUT"; then
        echo "FAIL: warm restart recomputed a certified result, diverged from the" >&2
        echo "      cold answers, or dropped idempotent runs under the E21 workload" >&2
        grep -E "store_ok|warm_|recovered" <<< "$E21_OUT" >&2
        exit 1
    fi
    grep '"store_ok"' <<< "$E21_OUT"
    if ! grep -Eq 'ccmx_store_recovered_records_total\{store=..server..\} [0-9]*[1-9][0-9]*' <<< "$E21_OUT"; then
        echo "FAIL: E21 metrics show zero ccmx_store_recovered_records_total for the server store" >&2
        grep -E "ccmx_store_recovered" <<< "$E21_OUT" >&2 || true
        exit 1
    fi
    grep -E "ccmx_store_recovered_records_total" <<< "$E21_OUT"
    SPEEDUP21=$(grep -o '"warm_speedup": [0-9.]*' <<< "$E21_OUT" | awk '{print $2}')
    if ! awk -v s="$SPEEDUP21" 'BEGIN { exit !(s >= 1.5) }'; then
        echo "FAIL: warm-restart storm speedup $SPEEDUP21 below the 1.5x floor" >&2
        exit 1
    fi
    echo "warm_speedup: $SPEEDUP21"

    echo "==> certificate replay gate (committed protocol tree, independent checker)"
    cargo build --release --bin ccmx
    ./target/release/ccmx cc --verify tests/data/equality8.cert

    echo "==> live server metrics gate"
    SRV_LOG=$(mktemp)
    ./target/release/ccmx serve 127.0.0.1:0 > "$SRV_LOG" &
    SRV_PID=$!
    trap 'kill "$SRV_PID" 2>/dev/null || true' EXIT
    ADDR=""
    for _ in $(seq 1 50); do
        ADDR=$(sed -n 's/^ccmx protocol-lab server on \([0-9.:]*\).*/\1/p' "$SRV_LOG")
        [[ -n "$ADDR" ]] && break
        sleep 0.1
    done
    if [[ -z "$ADDR" ]]; then
        echo "FAIL: ccmx serve did not come up" >&2
        cat "$SRV_LOG" >&2
        exit 1
    fi
    ./target/release/ccmx client "$ADDR" ping
    # Warm-up: a multi-spec batch exercises the shared worker pool, a
    # remote singularity decision exercises the certified CRT path.
    ./target/release/ccmx client "$ADDR" batch 4 2 6 > /dev/null
    ./target/release/ccmx client "$ADDR" singular "1,2;2,4" > /dev/null
    STATS=$(./target/release/ccmx client "$ADDR" stats)
    for series in ccmx_server_requests_total ccmx_pool_tasks_total ccmx_crt_certified_total; do
        if ! grep -Eq "^${series} [0-9]*[1-9][0-9]*$" <<< "$STATS"; then
            echo "FAIL: metrics scrape lacks a live (nonzero) ${series}" >&2
            grep -E "^${series}" <<< "$STATS" >&2 || true
            exit 1
        fi
        grep -E "^${series} " <<< "$STATS"
    done
    kill "$SRV_PID" 2>/dev/null || true
    trap - EXIT

    echo "==> chaos soak (seeded fault injection, zero-divergence gate)"
    ./target/release/ccmx chaos --trials 4 --seed 7 --level aggressive --server

    echo "==> cluster routing gate (2 shards + coordinator)"
    CLUSTER_PIDS=()
    cleanup_cluster() {
        for pid in "${CLUSTER_PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    }
    trap cleanup_cluster EXIT
    SHARD_ADDRS=()
    for name in verify-a verify-b; do
        SLOG=$(mktemp)
        ./target/release/ccmx shard 127.0.0.1:0 --name "$name" > "$SLOG" &
        CLUSTER_PIDS+=($!)
        SADDR=""
        for _ in $(seq 1 50); do
            SADDR=$(sed -n 's/^ccmx shard .* on \([0-9.:]*\) .*/\1/p' "$SLOG")
            [[ -n "$SADDR" ]] && break
            sleep 0.1
        done
        if [[ -z "$SADDR" ]]; then
            echo "FAIL: ccmx shard $name did not come up" >&2
            cat "$SLOG" >&2
            exit 1
        fi
        SHARD_ADDRS+=("$name=$SADDR")
    done
    CLOG=$(mktemp)
    ./target/release/ccmx coordinator 127.0.0.1:0 \
        --shard "${SHARD_ADDRS[0]}" --shard "${SHARD_ADDRS[1]}" > "$CLOG" &
    CLUSTER_PIDS+=($!)
    CADDR=""
    for _ in $(seq 1 50); do
        CADDR=$(sed -n 's/^ccmx coordinator on \([0-9.:]*\).*/\1/p' "$CLOG")
        [[ -n "$CADDR" ]] && break
        sleep 0.1
    done
    if [[ -z "$CADDR" ]]; then
        echo "FAIL: ccmx coordinator did not come up" >&2
        cat "$CLOG" >&2
        exit 1
    fi
    ./target/release/ccmx client "$CADDR" ping
    # Keyed traffic: a batch group fans out across replicas, the bounds
    # sweep walks distinct route keys so both shards take real load, and
    # the singularity run exercises the metered protocol path end-to-end.
    ./target/release/ccmx client "$CADDR" batch 4 2 8 > /dev/null
    for n in $(seq 5 2 67); do
        ./target/release/ccmx client "$CADDR" bounds "$n" 3 > /dev/null
    done
    ./target/release/ccmx client "$CADDR" singular "1,2;2,4" > /dev/null
    CSTATS=$(./target/release/ccmx client "$CADDR" stats)
    ROUTED=$(grep -E '^ccmx_cluster_routed_total\{shard="verify-[ab]"\} [0-9]+$' <<< "$CSTATS" || true)
    if [[ $(wc -l <<< "$ROUTED") -ne 2 ]]; then
        echo "FAIL: expected routed counters for both shards, got:" >&2
        echo "$ROUTED" >&2
        exit 1
    fi
    echo "$ROUTED"
    MIN=$(awk '{print $2}' <<< "$ROUTED" | sort -n | head -1)
    MAX=$(awk '{print $2}' <<< "$ROUTED" | sort -n | tail -1)
    if [[ "$MIN" -eq 0 ]]; then
        echo "FAIL: a shard received zero routed requests" >&2
        exit 1
    fi
    if (( MAX > 2 * MIN )); then
        echo "FAIL: shard imbalance ${MAX}/${MIN} exceeds the 2x gate" >&2
        exit 1
    fi
    cleanup_cluster
    trap - EXIT
fi

echo "==> verify: all gates passed"
