#!/usr/bin/env bash
# Full verification gate: tier-1 (release build + tests), formatting,
# and a warning-free clippy pass over every target in the workspace.
#
# Usage: scripts/verify.sh [--quick]
#   --quick   skip the release build (debug tests + lints only)

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$QUICK" -eq 0 ]]; then
    echo "==> cargo build --release (tier-1)"
    cargo build --release
fi

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> verify: all gates passed"
