#!/usr/bin/env bash
# Full verification gate: tier-1 (release build + tests), formatting,
# and a warning-free clippy pass over every target in the workspace.
#
# Usage: scripts/verify.sh [--quick] [--bench-smoke]
#   --quick        skip the release build (debug tests + lints only)
#   --bench-smoke  additionally run every criterion bench for exactly one
#                  iteration (CCMX_BENCH_SMOKE=1): compile + run sanity
#                  with no timing, so benches can't silently rot; then
#                  boot a real `ccmx serve`, warm it up over the wire,
#                  and fail unless its metrics scrape shows live request,
#                  pool and CRT counters; finally run a seeded chaos soak
#                  (`ccmx chaos --server`), which exits non-zero on any
#                  metered-bit divergence under fault injection

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
BENCH_SMOKE=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        --bench-smoke) BENCH_SMOKE=1 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

if [[ "$QUICK" -eq 0 ]]; then
    echo "==> cargo build --release (tier-1)"
    cargo build --release
fi

echo "==> cargo test -q (tier-1)"
cargo test -q

if [[ "$BENCH_SMOKE" -eq 1 ]]; then
    echo "==> bench smoke (one iteration per bench, no timing)"
    CCMX_BENCH_SMOKE=1 cargo bench -p ccmx-bench
    echo "==> bench_snapshot --quick"
    cargo run --release -p ccmx-bench --bin bench_snapshot -- --quick > /dev/null
    echo "==> bench_snapshot --e15 --quick (incremental-path gate)"
    E15_OUT=$(cargo run --release -p ccmx-bench --bin bench_snapshot -- --e15 --quick)
    if ! grep -q '"incremental_ok": true' <<< "$E15_OUT"; then
        echo "FAIL: enumeration fell back to fresh evaluation" >&2
        grep -E "incremental_ok|cursor_points|update_steps|fresh_refreshes" <<< "$E15_OUT" >&2
        exit 1
    fi
    grep '"incremental_ok"' <<< "$E15_OUT"

    echo "==> live server metrics gate"
    cargo build --release --bin ccmx
    SRV_LOG=$(mktemp)
    ./target/release/ccmx serve 127.0.0.1:0 > "$SRV_LOG" &
    SRV_PID=$!
    trap 'kill "$SRV_PID" 2>/dev/null || true' EXIT
    ADDR=""
    for _ in $(seq 1 50); do
        ADDR=$(sed -n 's/^ccmx protocol-lab server on \([0-9.:]*\).*/\1/p' "$SRV_LOG")
        [[ -n "$ADDR" ]] && break
        sleep 0.1
    done
    if [[ -z "$ADDR" ]]; then
        echo "FAIL: ccmx serve did not come up" >&2
        cat "$SRV_LOG" >&2
        exit 1
    fi
    ./target/release/ccmx client "$ADDR" ping
    # Warm-up: a multi-spec batch exercises the shared worker pool, a
    # remote singularity decision exercises the certified CRT path.
    ./target/release/ccmx client "$ADDR" batch 4 2 6 > /dev/null
    ./target/release/ccmx client "$ADDR" singular "1,2;2,4" > /dev/null
    STATS=$(./target/release/ccmx client "$ADDR" stats)
    for series in ccmx_server_requests_total ccmx_pool_tasks_total ccmx_crt_certified_total; do
        if ! grep -Eq "^${series} [0-9]*[1-9][0-9]*$" <<< "$STATS"; then
            echo "FAIL: metrics scrape lacks a live (nonzero) ${series}" >&2
            grep -E "^${series}" <<< "$STATS" >&2 || true
            exit 1
        fi
        grep -E "^${series} " <<< "$STATS"
    done
    kill "$SRV_PID" 2>/dev/null || true
    trap - EXIT

    echo "==> chaos soak (seeded fault injection, zero-divergence gate)"
    ./target/release/ccmx chaos --trials 4 --seed 7 --level aggressive --server
fi

echo "==> verify: all gates passed"
