#!/usr/bin/env bash
# Regenerate the committed machine-readable benchmark snapshot.
#
# Runs the E14 exact-kernel comparison (rational Gauss vs Bareiss vs
# Montgomery-CRT) with wall-clock timing and writes BENCH_e14.json at the
# repo root. Commit the result so the perf trajectory is tracked in-tree.
#
# Usage: scripts/bench_snapshot.sh [--quick]
#   --quick   single rep per measurement (CI sanity; noisier numbers)

set -euo pipefail
cd "$(dirname "$0")/.."

ARGS=()
[[ "${1:-}" == "--quick" ]] && ARGS+=(--quick)

OUT=BENCH_e14.json
echo "==> cargo run --release --bin bench_snapshot ${ARGS[*]:-}"
cargo run --release -p ccmx-bench --bin bench_snapshot -- ${ARGS[@]+"${ARGS[@]}"} > "$OUT.tmp"
mv "$OUT.tmp" "$OUT"
echo "==> wrote $OUT"
grep speedup "$OUT"
