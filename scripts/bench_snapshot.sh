#!/usr/bin/env bash
# Regenerate the committed machine-readable benchmark snapshots.
#
# Runs the E14 exact-kernel comparison (rational Gauss vs Bareiss vs
# Montgomery-CRT) and the E15 kernel-engine comparison (fresh vs
# incremental Gray-walk enumeration, per-prime vs batched residue
# reduction) with wall-clock timing, plus the E16 observability-overhead
# rows (lock-free counter vs raw atomic vs mutexed baseline, histogram,
# span, render) and the E17 resilience-stack rows (retry-storm
# throughput, breaker-open degradation latency, chaos-soak divergence)
# and the E18 cluster rows (10k-connection concurrency wave, the
# cache-partition scaling sweep over 2/4/8 shard processes, and the
# chaos-soaked resharding run) and the E19 communication-avoiding rows
# (blocked vs scalar Montgomery elimination over full CRT prime plans,
# with the Hong–Kung words-moved meter read back and gated: the blocked
# path must be taken, and the blocked CRT det at n=32 must beat the
# scalar path by >= 1.3x) and the E20 CC(f) search rows (branch-and-
# bound with the canonical-rectangle memo on/off, serial vs the root
# worker pool, gated: memoized parallel search must beat the serial
# un-memoized baseline by >= 1.5x at the largest benched dimension)
# and the E21 persistent-store rows (one deterministic request storm
# driven cold then warm against the same data directory across a server
# lifetime boundary, gated: store_ok, recovered_records > 0, and warm
# speedup >= 1.5x), writing BENCH_e14.json ... BENCH_e21.json at the
# repo root. Commit all eight so the perf trajectory is tracked in-tree.
#
# Usage: scripts/bench_snapshot.sh [--quick] [--e21]
#   --quick   single rep per measurement (CI sanity; noisier numbers)
#   --e21     regenerate only BENCH_e21.json (the store tier)

set -euo pipefail
cd "$(dirname "$0")/.."

ARGS=()
ONLY=""
for a in "$@"; do
    case "$a" in
        --quick) ARGS+=(--quick) ;;
        --e21) ONLY=e21 ;;
        *) echo "unknown flag: $a" >&2; exit 2 ;;
    esac
done

run_e21() {
    local OUT21=BENCH_e21.json
    echo "==> cargo run --release --bin bench_snapshot -- --e21 ${ARGS[*]:-}"
    cargo run --release -p ccmx-bench --bin bench_snapshot -- --e21 ${ARGS[@]+"${ARGS[@]}"} > "$OUT21.tmp"
    mv "$OUT21.tmp" "$OUT21"
    echo "==> wrote $OUT21"
    grep -E "warm_speedup|recovered_records|store_ok" "$OUT21"
    if ! grep -q '"store_ok": true' "$OUT21"; then
        echo "FAIL: warm restart recomputed, diverged, or dropped certified results" >&2
        exit 1
    fi
    RECOVERED=$(grep -o '"recovered_records": [0-9]*' "$OUT21" | awk '{print $2}')
    if [[ -z "$RECOVERED" || "$RECOVERED" -eq 0 ]]; then
        echo "FAIL: recovery accepted zero records from the cold lifetime's log" >&2
        exit 1
    fi
    SPEEDUP21=$(grep -o '"warm_speedup": [0-9.]*' "$OUT21" | awk '{print $2}')
    if ! awk -v s="$SPEEDUP21" 'BEGIN { exit !(s >= 1.5) }'; then
        echo "FAIL: warm-restart storm speedup $SPEEDUP21 below the 1.5x gate" >&2
        exit 1
    fi
}

if [[ "$ONLY" == "e21" ]]; then
    run_e21
    exit 0
fi

OUT=BENCH_e14.json
echo "==> cargo run --release --bin bench_snapshot ${ARGS[*]:-}"
cargo run --release -p ccmx-bench --bin bench_snapshot -- ${ARGS[@]+"${ARGS[@]}"} > "$OUT.tmp"
mv "$OUT.tmp" "$OUT"
echo "==> wrote $OUT"
grep speedup "$OUT"

OUT15=BENCH_e15.json
echo "==> cargo run --release --bin bench_snapshot -- --e15 ${ARGS[*]:-}"
cargo run --release -p ccmx-bench --bin bench_snapshot -- --e15 ${ARGS[@]+"${ARGS[@]}"} > "$OUT15.tmp"
mv "$OUT15.tmp" "$OUT15"
echo "==> wrote $OUT15"
grep -E "speedup|incremental_ok" "$OUT15"

OUT16=BENCH_e16.json
echo "==> cargo run --release --bin bench_snapshot -- --e16 ${ARGS[*]:-}"
cargo run --release -p ccmx-bench --bin bench_snapshot -- --e16 ${ARGS[@]+"${ARGS[@]}"} > "$OUT16.tmp"
mv "$OUT16.tmp" "$OUT16"
echo "==> wrote $OUT16"
grep -E "over" "$OUT16"

OUT17=BENCH_e17.json
echo "==> cargo run --release --bin bench_snapshot -- --e17 ${ARGS[*]:-}"
cargo run --release -p ccmx-bench --bin bench_snapshot -- --e17 ${ARGS[@]+"${ARGS[@]}"} > "$OUT17.tmp"
mv "$OUT17.tmp" "$OUT17"
echo "==> wrote $OUT17"
grep -E "runs_per_sec|divergence" "$OUT17"
if ! grep -q '"zero_bit_divergence": true' "$OUT17"; then
    echo "FAIL: chaos soak reported nonzero metered-bit divergence" >&2
    exit 1
fi

OUT18=BENCH_e18.json
echo "==> cargo build --release (the e18 phases spawn the ccmx binary)"
cargo build --release
echo "==> cargo run --release --bin bench_snapshot -- --e18 ${ARGS[*]:-}"
cargo run --release -p ccmx-bench --bin bench_snapshot -- --e18 ${ARGS[@]+"${ARGS[@]}"} > "$OUT18.tmp"
mv "$OUT18.tmp" "$OUT18"
echo "==> wrote $OUT18"
grep -E "concurrent_clients|runs_per_sec|scaling|divergence" "$OUT18"
if ! grep -q '"zero_bit_divergence": true' "$OUT18"; then
    echo "FAIL: cluster reshard soak reported nonzero metered-bit divergence" >&2
    exit 1
fi
SCALING=$(grep -o '"scaling_2_to_4": [0-9.]*' "$OUT18" | awk '{print $2}')
if ! awk -v s="$SCALING" 'BEGIN { exit !(s >= 1.6) }'; then
    echo "FAIL: 2->4 shard scaling $SCALING below the 1.6x gate" >&2
    exit 1
fi

OUT19=BENCH_e19.json
echo "==> cargo run --release --bin bench_snapshot -- --e19 ${ARGS[*]:-}"
cargo run --release -p ccmx-bench --bin bench_snapshot -- --e19 ${ARGS[@]+"${ARGS[@]}"} > "$OUT19.tmp"
mv "$OUT19.tmp" "$OUT19"
echo "==> wrote $OUT19"
grep -E "speedup|blocked_ok" "$OUT19"
if ! grep -q '"blocked_ok": true' "$OUT19"; then
    echo "FAIL: blocked kernel dispatch fell back to scalar or the I/O meter stayed silent" >&2
    exit 1
fi
SPEEDUP19=$(grep -o '"det_crt_blocked_speedup_n32": [0-9.]*' "$OUT19" | awk '{print $2}')
if ! awk -v s="$SPEEDUP19" 'BEGIN { exit !(s >= 1.3) }'; then
    echo "FAIL: blocked CRT det speedup $SPEEDUP19 at n=32 below the 1.3x gate" >&2
    exit 1
fi

OUT20=BENCH_e20.json
echo "==> cargo run --release --bin bench_snapshot -- --e20 ${ARGS[*]:-}"
cargo run --release -p ccmx-bench --bin bench_snapshot -- --e20 ${ARGS[@]+"${ARGS[@]}"} > "$OUT20.tmp"
mv "$OUT20.tmp" "$OUT20"
echo "==> wrote $OUT20"
grep -E "speedup|search_ok" "$OUT20"
if ! grep -q '"search_ok": true' "$OUT20"; then
    echo "FAIL: CC(f) search produced inexact or disagreeing answers, or the memo never hit" >&2
    exit 1
fi
SPEEDUP20=$(grep -o '"parallel_memo_speedup_largest": [0-9.]*' "$OUT20" | awk '{print $2}')
if ! awk -v s="$SPEEDUP20" 'BEGIN { exit !(s >= 1.5) }'; then
    echo "FAIL: memoized parallel CC search speedup $SPEEDUP20 at the largest dim below the 1.5x gate" >&2
    exit 1
fi

run_e21
