//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the small slice of `rand` 0.8 it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom`] (`shuffle`, `choose`). The generator behind
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — not bit-equal to
//! upstream's ChaCha12, but every consumer in this workspace treats the
//! RNG as an opaque deterministic stream, never as a fixed vector.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Derive a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from the generator's raw stream.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::draw(rng) as i128
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integers with uniform range sampling (unbiased via rejection).
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi]`, both ends inclusive.
    fn uniform_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Value immediately below, for half-open upper bounds.
    fn pred(self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn uniform_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as $u).wrapping_sub(lo as $u);
                if span == <$u>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = span as u64 + 1;
                // Rejection sampling on the top zone to avoid modulo bias.
                let zone = u64::MAX - (u64::MAX % span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return ((lo as $u).wrapping_add((v % span) as $u)) as $t;
                    }
                }
            }
            fn pred(self) -> Self {
                self - 1
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::uniform_inclusive(self.start, self.end.pred(), rng)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::uniform_inclusive(lo, hi, rng)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The user-facing extension trait.
pub trait Rng: RngCore {
    /// Uniform value of the inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in the given range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ (Blackman–Vigna), seeded
    /// through SplitMix64 so every 64-bit seed yields a full-quality
    /// state.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
