//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of proptest its tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `boxed`, range and tuple strategies,
//! [`any`], [`Just`], `prop::collection::vec`, the [`proptest!`] macro
//! with `#![proptest_config]`, and the `prop_assert*` / `prop_assume!` /
//! `prop_oneof!` macros.
//!
//! Semantics: each test body runs `ProptestConfig::cases` times with
//! freshly generated inputs from a deterministic per-test RNG.
//! Assertions panic immediately (no shrinking pass — failures report the
//! offending values via the assertion message instead of a minimized
//! counterexample).

use std::marker::PhantomData;

/// Marker returned (via `Err`) by `prop_assume!` to discard a case.
#[derive(Clone, Copy, Debug)]
pub struct Rejected;

/// Deterministic generator driving all strategies (xoshiro256++).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from a test name (FNV-1a), so every test gets a stable,
    /// distinct stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Seed from a 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Feed generated values into a strategy-producing `f`.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Keep only values passing `f` (panics if acceptance is too rare).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { base: self, f, whence }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive values: {}", self.whence);
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Build from a non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Integer types samplable from ranges.
pub trait RangeValue: Copy + PartialOrd {
    /// Uniform in `[lo, hi]`.
    fn uniform<R: FnMut() -> u64>(lo: Self, hi: Self, raw: R) -> Self;
    /// Predecessor (for half-open upper bounds).
    fn range_pred(self) -> Self;
}

macro_rules! impl_range_value {
    ($($t:ty => $u:ty),*) => {$(
        impl RangeValue for $t {
            fn uniform<R: FnMut() -> u64>(lo: Self, hi: Self, mut raw: R) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return raw() as $t;
                }
                let span = span + 1;
                let zone = u64::MAX - (u64::MAX % span + 1) % span;
                loop {
                    let v = raw();
                    if v <= zone {
                        return ((lo as $u).wrapping_add((v % span) as $u)) as $t;
                    }
                }
            }
            fn range_pred(self) -> Self {
                self - 1
            }
        }
    )*};
}
impl_range_value!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl<T: RangeValue> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "empty range strategy");
        T::uniform(self.start, self.end.range_pred(), || rng.next_u64())
    }
}

impl<T: RangeValue> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        T::uniform(lo, hi, || rng.next_u64())
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(A, B, C, D, E, G));

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact `usize` or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vector of values from `elem` with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prop {
    //! Namespace mirror: `prop::collection::vec`.
    pub use crate::collection;
}

pub mod prelude {
    //! Everything tests normally import.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a proptest body (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert!({}) failed", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Discard the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::Rejected);
        }
    };
}

/// Uniform choice among alternatives with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The proptest entry macro: wraps each `fn name(arg in strategy, …)`
/// into a `#[test]`-style function running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            while __accepted < __cfg.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __cfg.cases.saturating_mul(16).saturating_add(256),
                    "proptest {}: too many rejected cases",
                    stringify!($name)
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::Rejected> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::Rejected) => continue,
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3usize..10, b in -5i64..=5, f in 1.0f64..2.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((1.0..2.0).contains(&f));
        }

        #[test]
        fn derived_strategies_compose(
            v in prop::collection::vec(any::<bool>(), 0..8),
            e in arb_even(),
            (x, y) in (0u32..4, Just(7u8)),
            pick in prop_oneof![Just(1u8), Just(2), Just(3)],
        ) {
            prop_assert!(v.len() < 8);
            prop_assert_eq!(e % 2, 0);
            prop_assert!(x < 4);
            prop_assert_eq!(y, 7);
            prop_assert!((1..=3).contains(&pick));
        }

        #[test]
        fn dependent_ranges(len in 1usize..20, idx in 0usize..1 << 10) {
            // Later strategies may reference earlier arguments.
            let idx = idx % len;
            prop_assert!(idx < len);
        }

        #[test]
        fn assume_rejects(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn flat_map_chains() {
        let strat = (1usize..5).prop_flat_map(|n| prop::collection::vec(0u64..10, n));
        let mut rng = crate::TestRng::from_seed(9);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert!(!v.is_empty() && v.len() < 5);
        }
    }
}
