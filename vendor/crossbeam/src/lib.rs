//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two facilities this workspace uses:
//!
//! * [`scope`] — structured scoped threads, implemented over
//!   `std::thread::scope` with crossbeam's `Result`-returning signature
//!   and `spawn(|scope| …)` closure shape;
//! * [`channel`] — a multi-producer multi-consumer FIFO channel
//!   (unbounded or bounded) with disconnect detection, `try_recv` and
//!   `recv_timeout`, built on `Mutex` + `Condvar`.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread; `Err` carries its panic payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.0.join()
    }
}

/// The scope passed to [`scope`]'s closure and to spawned threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. As in crossbeam, the closure
    /// receives the scope so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let nested = Scope { inner: self.inner };
        ScopedJoinHandle(self.inner.spawn(move || f(&nested)))
    }
}

/// Run `f` with a thread scope; every spawned thread is joined before
/// this returns. `Err` carries the panic payload if `f` (or an unjoined
/// child) panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
}

pub mod channel {
    //! MPMC FIFO channels with disconnect detection.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        /// Signalled on push and on endpoint disconnect.
        readable: Condvar,
        /// Signalled on pop (bounded senders wait on this).
        writable: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned when all receivers are gone; carries the message.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned when the channel is empty and all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Non-blocking receive outcome.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Timed receive outcome.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the deadline.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.inner.readable.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.inner.writable.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is full. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match self.inner.capacity {
                    Some(cap) if q.len() >= cap => {
                        q = self.inner.writable.wait(q).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            q.push_back(value);
            drop(q);
            self.inner.readable.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.inner.writable.notify_one();
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.readable.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                drop(q);
                self.inner.writable.notify_one();
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.inner.writable.notify_one();
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .readable
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Iterate until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { inner: inner.clone() }, Receiver { inner })
    }

    /// Channel with no capacity limit.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Channel holding at most `cap` queued messages (`cap` ≥ 1; a
    /// zero-capacity rendezvous channel is approximated by capacity 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn scoped_threads_return_values() {
        let data = [1u64, 2, 3];
        let sum = super::scope(|s| {
            let h1 = s.spawn(|_| data[0] + data[1]);
            let h2 = s.spawn(|inner| inner.spawn(|_| data[2]).join().unwrap());
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn scope_reports_panics() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("child panic")).join().unwrap_or(0u32)
        });
        assert_eq!(r.unwrap(), 0);
    }

    #[test]
    fn channel_fifo_and_disconnect() {
        let (tx, rx) = channel::unbounded::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.recv(), Err(channel::RecvError));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = channel::unbounded::<u32>();
        let r = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(r, Err(channel::RecvTimeoutError::Timeout));
        drop(tx);
        let r = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(r, Err(channel::RecvTimeoutError::Disconnected));
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn cross_thread_traffic() {
        let (tx, rx) = channel::bounded::<u64>(4);
        super::scope(|s| {
            let tx2 = tx.clone();
            s.spawn(move |_| {
                for i in 0..100 {
                    tx2.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            assert_eq!(sum, 4950);
        })
        .unwrap();
    }
}
