//! Thin, dependency-free shim over `poll(2)` for readiness-based I/O.
//!
//! The build runs fully offline, so neither tokio/mio nor even the
//! `libc` crate can be pulled in. On linux-gnu the standard library
//! already links the platform C library, so declaring the one symbol we
//! need (`poll`) ourselves is enough: this crate fixes the `pollfd` ABI
//! layout, exposes the event flags, and wraps the raw call in a safe
//! slice-based API that maps `EINTR` to a zero-event tick.
//!
//! The API is deliberately tiny — one struct, five flags, one function —
//! because everything above it (nonblocking sockets, frame buffers,
//! wakeup pipes) lives in the caller.

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::io;
use std::os::unix::io::RawFd;

/// Data is readable (or a peer has connected/closed: readable-with-EOF).
pub const POLLIN: i16 = 0x001;
/// Writing now will not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition on the descriptor (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Descriptor is not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the `poll(2)` descriptor set. `#[repr(C)]` with the
/// exact field order the kernel ABI expects: fd, requested events,
/// returned events.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Watch `fd` for the readiness bits in `events`.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The watched descriptor.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Replace the requested-event mask.
    pub fn set_events(&mut self, events: i16) {
        self.events = events;
    }

    /// The readiness bits the last [`poll`] call reported.
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// Readable (or readable-with-EOF / error — callers must `read` to
    /// find out, which is exactly what a readiness loop does anyway).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP) != 0
    }

    /// Writable without blocking.
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }

    /// The kernel flagged the descriptor as broken (error, hangup, or
    /// not open).
    pub fn broken(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }
}

// `std` already links the platform C library on unix targets; only the
// declaration is needed. nfds_t is unsigned long on linux.
extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// Wait until at least one descriptor in `fds` is ready or `timeout_ms`
/// elapses (`-1` waits forever, `0` polls). Returns the number of
/// entries with nonzero `revents`; `EINTR` is reported as `Ok(0)` so a
/// signal behaves like a timeout tick.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `fds` is a valid, exclusively borrowed slice of
    // `#[repr(C)]` pollfd-layout structs, and nfds is its exact length.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    #[test]
    fn timeout_elapses_with_no_ready_fds() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        let start = Instant::now();
        let n = poll_fds(&mut fds, 30).unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed().as_millis() >= 25, "poll returned too early");
        assert!(!fds[0].readable());
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 2000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn stream_readability_tracks_arriving_bytes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN | POLLOUT)];
        poll_fds(&mut fds, 1000).unwrap();
        assert!(fds[0].writable(), "fresh socket should be writable");
        assert!(
            fds[0].revents() & POLLIN == 0,
            "nothing sent yet, POLLIN must be clear"
        );

        client.write_all(b"x").unwrap();
        client.flush().unwrap();
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 2000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn hangup_is_reported_as_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        drop(client);
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 2000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable(), "EOF must wake the reader");
    }
}
