//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API slice the `ccmx-bench` suite uses — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, `criterion_group!`, `criterion_main!` —
//! as a lean wall-clock harness: a short warm-up, then `sample_size`
//! timed samples, reporting min/mean per iteration on stdout. No plots,
//! no statistics beyond the summary line, but the bench *workloads* are
//! identical to what upstream criterion would drive.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to bench closures; `iter` runs and times the workload.
pub struct Bencher {
    samples: usize,
    /// (per-iteration nanoseconds) for each sample.
    results: Vec<f64>,
}

/// Smoke mode: when the `CCMX_BENCH_SMOKE` environment variable is set,
/// every benchmark runs its workload exactly once with no calibration or
/// timing loop — a compile-and-run sanity pass (`verify.sh
/// --bench-smoke`) that keeps bench code from rotting without paying
/// measurement cost.
fn smoke_mode() -> bool {
    std::env::var_os("CCMX_BENCH_SMOKE").is_some()
}

impl Bencher {
    /// Time `f`, amortizing over enough iterations per sample to exceed
    /// a minimal measurement window.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if smoke_mode() {
            black_box(f());
            self.results.clear();
            return;
        }
        // Warm-up and iteration-count calibration: grow until one batch
        // takes ≥ 1 ms (capped so huge workloads still finish fast).
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.results.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

fn report(label: &str, results: &[f64]) {
    if results.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let mean = results.iter().sum::<f64>() / results.len() as f64;
    let min = results.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("{label:<50} min {:>12} mean {:>12}", fmt_ns(min), fmt_ns(mean));
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Ignored (upstream-API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, results: Vec::new() };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.results);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, results: Vec::new() };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.results);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// The bench harness entry object.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name} ==");
        BenchmarkGroup { name, sample_size: 10, _criterion: self }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { samples: 10, results: Vec::new() };
        f(&mut b);
        report(&id.to_string(), &b.results);
        self
    }
}

/// Declare a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes flags like --bench; a plain harness can
            // ignore them (including --test, under which we run nothing).
            let test_mode = std::env::args().any(|a| a == "--test");
            if !test_mode {
                $($group();)+
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter("sum"), &1000u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        workload(&mut c);
        c.bench_function("top-level", |b| b.iter(|| black_box(2) * 2));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
