//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()`/`read()`/`write()` return guards directly, and a poisoned
//! std lock (a panic while held) is transparently recovered, matching
//! parking_lot's semantics of not propagating poison.

use std::sync::{self, TryLockError};
use std::time::Duration;

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (recovering from std poison).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access through a unique reference, no locking needed.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable usable with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Block until notified; the guard is re-acquired on return.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_mut_guard(guard, |g| self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or the timeout elapses; returns `true` if it
    /// timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let mut timed_out = false;
        take_mut_guard(guard, |g| {
            let (g, r) = self.inner.wait_timeout(g, timeout).unwrap_or_else(|e| e.into_inner());
            timed_out = r.timed_out();
            g
        });
        timed_out
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Temporarily move a guard out of `&mut` to thread it through an API
/// that consumes and returns it. Aborts the process if `f` panics (the
/// guard slot would otherwise be left vacant).
fn take_mut_guard<'a, T: ?Sized>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    unsafe {
        let old = std::ptr::read(slot);
        let guard = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old)))
            .unwrap_or_else(|_| std::process::abort());
        std::ptr::write(slot, guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            while !*done {
                c.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let (m, c) = &*pair;
        *m.lock() = true;
        c.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        assert!(c.wait_for(&mut g, Duration::from_millis(5)));
    }
}
