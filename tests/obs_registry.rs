//! One registry owns every stat island.
//!
//! The workspace historically grew six isolated statistics surfaces:
//! `crt::fast_path_stats`, `pool::pool_stats`,
//! `engine::incremental_stats`, `truth::enumeration_stats`, the net
//! server counters, and the bounds-cache counters. This test drives all
//! six and asserts each legacy view is a thin projection of the single
//! shared [`ccmx::obs`] registry — and that a live server scrape over
//! the wire exposes them all in one exposition document.

use ccmx::net::{Client, ServerConfig, TransportConfig};
use ccmx::obs;
use ccmx::prelude::*;

#[test]
fn all_stat_islands_share_one_registry() {
    let reg = obs::registry();

    // --- 1. CRT certified fast path (ccmx-linalg::crt) ---------------
    let m = ccmx::linalg::matrix::int_matrix(&[&[1, 2], &[3, 5]]);
    assert_eq!(ccmx::linalg::crt::rank_int(&m), 2);
    let (certified, fallback) = ccmx::linalg::crt::fast_path_stats();
    assert_eq!(
        certified,
        reg.counter("ccmx_crt_certified_total", &[]).get(),
        "fast_path_stats certified != registry"
    );
    assert_eq!(
        fallback,
        reg.counter("ccmx_crt_fallback_total", &[]).get(),
        "fast_path_stats fallback != registry"
    );
    assert!(certified + fallback >= 1, "rank_int counted nowhere");

    // --- 2. Worker pool (ccmx-linalg::pool) --------------------------
    ccmx::linalg::pool::run(16, 3, &|_| {});
    let (workers, batches) = ccmx::linalg::pool::pool_stats();
    assert_eq!(
        batches,
        reg.counter("ccmx_pool_batches_total", &[]).get(),
        "pool_stats batches != registry"
    );
    assert_eq!(
        workers as i64,
        reg.gauge("ccmx_pool_workers", &[]).get(),
        "pool_stats workers != registry gauge"
    );
    assert!(
        reg.counter("ccmx_pool_tasks_total", &[]).get() >= 16,
        "pool task counter missed the batch"
    );

    // --- 3 + 4. Incremental engine and truth enumeration -------------
    // Singularity opts into incremental evaluation, so enumerating its
    // truth matrix drives both the engine step counters and the
    // enumeration point counters.
    let f = Singularity::new(2, 2);
    let pi0 = Partition::pi_zero(&f.enc);
    let t = ccmx::comm::truth::TruthMatrix::enumerate(&f, &pi0, 2);
    assert_eq!((t.rows(), t.cols()), (16, 16));
    let (steps, refreshes) = ccmx::linalg::engine::incremental_stats();
    assert_eq!(
        steps,
        reg.counter("ccmx_engine_incremental_steps_total", &[])
            .get(),
        "incremental_stats steps != registry"
    );
    assert_eq!(
        refreshes,
        reg.counter("ccmx_engine_fresh_refreshes_total", &[]).get(),
        "incremental_stats refreshes != registry"
    );
    assert!(steps > 0, "enumeration never stepped the engine");

    let (inc_points, fresh_points) = ccmx::comm::truth::enumeration_stats();
    assert_eq!(
        inc_points,
        reg.counter("ccmx_enum_incremental_points_total", &[]).get(),
        "enumeration_stats incremental != registry"
    );
    assert_eq!(
        fresh_points,
        reg.counter("ccmx_enum_fresh_points_total", &[]).get(),
        "enumeration_stats fresh != registry"
    );
    assert!(inc_points >= 16 * 16, "truth matrix points uncounted");

    // RankAtMost has no incremental oracle: its enumeration lands on
    // the fresh-points series.
    let g = ccmx::comm::functions::RankAtMost { enc: f.enc, r: 1 };
    let _ = ccmx::comm::truth::TruthMatrix::enumerate(&g, &pi0, 1);
    let (_, fresh_after) = ccmx::comm::truth::enumeration_stats();
    assert!(
        fresh_after >= fresh_points + 16 * 16,
        "fresh path uncounted"
    );

    // --- 5 + 6. Server counters and bounds cache, over the wire ------
    let req_base = reg.counter("ccmx_server_requests_total", &[]).get();
    let cache_labels = [("cache", "bounds")];
    let hit_base = reg.counter("ccmx_cache_hits_total", &cache_labels).get();
    let miss_base = reg.counter("ccmx_cache_misses_total", &cache_labels).get();

    let server = ccmx::net::serve("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr(), TransportConfig::default()).expect("connect");
    client.ping().expect("ping");
    let first = client.bounds(5, 3, 20).expect("bounds (miss)");
    let second = client.bounds(5, 3, 20).expect("bounds (hit)");
    assert_eq!(first, second);

    let stats = server.stats();
    assert_eq!(
        reg.counter("ccmx_server_requests_total", &[]).get() - req_base,
        stats.requests_served,
        "server stats != registry delta"
    );
    let cache = server.cache_stats();
    assert_eq!(
        reg.counter("ccmx_cache_hits_total", &cache_labels).get() - hit_base,
        cache.hits,
        "cache hits != registry delta"
    );
    assert_eq!(
        reg.counter("ccmx_cache_misses_total", &cache_labels).get() - miss_base,
        cache.misses,
        "cache misses != registry delta"
    );
    assert_eq!((cache.hits, cache.misses), (1, 1));

    // One scrape over the wire shows every island at once.
    let text = client.metrics().expect("metrics scrape");
    for series in [
        "ccmx_crt_certified_total",
        "ccmx_pool_batches_total",
        "ccmx_pool_tasks_total",
        "ccmx_pool_workers",
        "ccmx_engine_incremental_steps_total",
        "ccmx_enum_incremental_points_total",
        "ccmx_cache_hits_total{cache=\"bounds\"}",
        "ccmx_server_requests_total",
        "ccmx_server_request_latency_ns_bucket",
        "ccmx_spans_recorded_total",
    ] {
        assert!(text.contains(series), "scrape lacks {series}:\n{text}");
    }
    server.shutdown();
}

/// The Hong–Kung I/O-model families (`ccmx_iomodel_*`) behave like the
/// bounds-cache counters: they show up in a live wire scrape, and the
/// totals live in the process-wide registry, so dropping the server
/// that produced them loses nothing — a successor server scrapes the
/// accumulated values and keeps adding to them.
#[test]
fn iomodel_series_survive_a_server_drop() {
    use ccmx::linalg::iomodel::{self, Kernel};

    // Total (words, calls) for a kernel across both dispatch paths:
    // which path a given shape takes is a tuning decision, the meter
    // contract is only that *some* path counts it.
    let rank_totals = || {
        let (wb, cb) = iomodel::kernel_stats(Kernel::Rank, true);
        let (ws, cs) = iomodel::kernel_stats(Kernel::Rank, false);
        (wb + ws, cb + cs)
    };

    // A singularity query at the meter threshold (16 x 16) drives the
    // certified CRT rank path through a metered Montgomery kernel.
    let dim = 16usize;
    let enc = MatrixEncoding::new(dim, 1);
    let identity = Matrix::from_fn(dim, dim, |i, j| Integer::from(u64::from(i == j)));
    let input = enc.encode(&identity);

    let (w0, c0) = rank_totals();
    let server = ccmx::net::serve("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr(), TransportConfig::default()).expect("connect");
    assert!(!client
        .singularity(dim, 1, &input)
        .expect("singularity query"));
    let (w1, c1) = rank_totals();
    assert!(c1 > c0, "wire singularity query hit no metered kernel");
    assert!(w1 > w0, "metered kernel reported zero words moved");

    // The live scrape exposes the whole family: the fast-memory gauge
    // and the per-kernel/per-path word and call counters.
    let text = client.metrics().expect("metrics scrape");
    for series in [
        "ccmx_iomodel_fast_mem_words",
        "ccmx_iomodel_words_moved_total{kernel=\"rank\"",
        "ccmx_iomodel_kernel_calls_total{kernel=\"rank\"",
    ] {
        assert!(text.contains(series), "scrape lacks {series}:\n{text}");
    }
    server.shutdown();
    drop(client);

    // Server gone; the registry totals are untouched.
    assert_eq!(rank_totals(), (w1, c1), "server drop disturbed the meter");

    // A successor server sees the accumulated series and adds to them.
    let server2 = ccmx::net::serve("127.0.0.1:0", ServerConfig::default()).expect("rebind");
    let mut client2 =
        Client::connect(server2.addr(), TransportConfig::default()).expect("reconnect");
    assert!(!client2
        .singularity(dim, 1, &input)
        .expect("singularity query after restart"));
    let (w2, c2) = rank_totals();
    assert!(
        w2 > w1 && c2 > c1,
        "successor server did not aggregate onto the surviving series"
    );
    let text2 = client2.metrics().expect("second scrape");
    assert!(
        text2.contains("ccmx_iomodel_words_moved_total{kernel=\"rank\""),
        "series vanished across the server drop:\n{text2}"
    );
    server2.shutdown();
}
