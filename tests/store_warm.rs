//! Warm-restart integration: a server given a data directory persists
//! every certified verdict and, after a full process-lifetime boundary
//! (shutdown + fresh `serve`), answers the same requests from the
//! disk-seeded caches with **zero recomputation** — counter-verified
//! through the per-instance cache statistics — while the `ccmx_store_*`
//! metric families show up on a live scrape. Also exercises the durable
//! enumeration cursor against a real truth-matrix sweep.

use ccmx::comm::functions::Singularity;
use ccmx::comm::truth::TruthMatrix;
use ccmx::comm::{BitString, Partition};
use ccmx::net::wire::{KIND_REQUEST, KIND_RESPONSE};
use ccmx::net::{Request, Response, ServerConfig, TcpTransport, TransportConfig, WireCodec};
use ccmx::store::{DurableCursor, Store, StoreConfig};

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ccmx-warm-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn roundtrip(t: &mut TcpTransport, req: &Request) -> Response {
    t.send_frame(KIND_REQUEST, &req.to_wire_bytes()).unwrap();
    let (kind, payload) = t.recv_frame().unwrap();
    assert_eq!(kind, KIND_RESPONSE);
    Response::from_wire_bytes(&payload).unwrap()
}

#[test]
fn warm_restart_serves_certified_results_without_recompute() {
    let dir = tmp("server");
    let config = ServerConfig {
        workers: 2,
        store_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    let f = Singularity::new(2, 3);
    let m = ccmx::linalg::matrix::int_matrix(&[&[2, 7], &[3, 5]]);
    let requests = [
        Request::Bounds {
            n: 9,
            k: 4,
            security: 32,
        },
        Request::Singularity {
            dim: 2,
            k: 3,
            input: f.enc.encode(&m),
        },
        Request::CcSearch {
            rows: 4,
            cols: 4,
            bits: BitString::from_bits((0..16).map(|i| i / 4 == i % 4).collect()),
            depth_limit: 32,
        },
    ];

    // Cold lifetime: compute, persist, die.
    let cold: Vec<Response> = {
        let server = ccmx::net::serve("127.0.0.1:0", config.clone()).unwrap();
        let mut t = TcpTransport::connect(server.addr(), TransportConfig::default()).unwrap();
        let out = requests.iter().map(|r| roundtrip(&mut t, r)).collect();
        assert_eq!(server.store_stat().unwrap().live_records, 3);
        server.shutdown();
        out
    };
    for resp in &cold {
        assert!(
            !matches!(resp, Response::Error(_)),
            "cold answer failed: {resp:?}"
        );
    }

    // Warm lifetime: everything answers from the disk-seeded caches.
    let server = ccmx::net::serve("127.0.0.1:0", config).unwrap();
    let mut t = TcpTransport::connect(server.addr(), TransportConfig::default()).unwrap();
    for (req, cold_resp) in requests.iter().zip(&cold) {
        assert_eq!(
            &roundtrip(&mut t, req),
            cold_resp,
            "warm answer diverged for {req:?}"
        );
    }
    let bounds = server.cache_stats();
    assert_eq!((bounds.hits, bounds.misses), (1, 0), "bounds recomputed");
    let sing = server.sing_cache_stats();
    assert_eq!((sing.hits, sing.misses), (1, 0), "singularity recomputed");

    // The store tier is visible on a live scrape, families and all.
    let Response::Metrics(text) = roundtrip(&mut t, &Request::Metrics) else {
        panic!("expected metrics")
    };
    for series in [
        "ccmx_store_segments",
        "ccmx_store_live_records",
        "ccmx_store_appends_total",
        "ccmx_store_warm_seeded_total",
    ] {
        assert!(text.contains(series), "scrape lacks {series}");
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn durable_cursor_resumes_a_truth_matrix_sweep() {
    // Ground truth: the full 16x16 singularity truth matrix under π₀.
    let f = Singularity::new(2, 2);
    let pi = Partition::pi_zero(&f.enc);
    let t = TruthMatrix::enumerate(&f, &pi, 1);
    let expected: u64 = t.count_ones();
    let rows = t.rows() as u64;

    let dir = tmp("cursor");
    let acc_of = |c: &DurableCursor| -> u64 {
        if c.state().is_empty() {
            0
        } else {
            u64::from_le_bytes(c.state().try_into().unwrap())
        }
    };

    // First lifetime: sweep rows 0..10, committing every 4 rows, then
    // "crash" (drop without a final commit).
    {
        let mut store = Store::open(StoreConfig::new(&dir).label("sweep")).unwrap();
        let mut cursor = DurableCursor::load(&store, "singularity-2x2-rows", 4);
        let mut acc = acc_of(&cursor);
        for row in cursor.position()..10 {
            acc += t.row_ones(row as usize);
            cursor.set_state(acc.to_le_bytes().to_vec());
            cursor.advance(&mut store, row + 1).unwrap();
        }
    }

    // Second lifetime: resume at the last auto-commit (row 8 — the
    // crash cost at most `commit_every - 1` rows of re-enumeration),
    // finish the sweep, and land on the exact full-matrix count.
    let mut store = Store::open(StoreConfig::new(&dir).label("sweep")).unwrap();
    let mut cursor = DurableCursor::load(&store, "singularity-2x2-rows", 4);
    assert_eq!(cursor.position(), 8, "resume point is the last commit");
    let mut acc = acc_of(&cursor);
    for row in cursor.position()..rows {
        acc += t.row_ones(row as usize);
        cursor.set_state(acc.to_le_bytes().to_vec());
        cursor.advance(&mut store, row + 1).unwrap();
    }
    cursor.commit(&mut store).unwrap();
    assert_eq!(acc, expected, "resumed sweep must equal a clean sweep");

    // Third lifetime: the finished position itself is durable.
    let reopened = Store::open(StoreConfig::new(&dir).label("sweep")).unwrap();
    let done = DurableCursor::load(&reopened, "singularity-2x2-rows", 4);
    assert_eq!(done.position(), rows);
    assert_eq!(acc_of(&done), expected);
    std::fs::remove_dir_all(&dir).unwrap();
}
