//! End-to-end pipeline for the randomized side: hard instances from the
//! paper's construction, run under amplified randomized protocols, with
//! Lemma 3.9-normalized partitions — the full loop from Section 3's
//! objects to executed bits.

use ccmx::comm::randomized::{estimate_error, AmplifiedModPrime};
use ccmx::core::{lemma35, proper};
use ccmx::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn amplified_protocol_on_hard_instances() {
    // Completed (singular) members of the restricted family must be
    // classified singular by every amplified run — the one-sided
    // guarantee survives amplification and arbitrary even partitions.
    let mut rng = StdRng::seed_from_u64(1);
    let params = Params::new(5, 2);
    let enc = params.encoding();
    let inner = ModPrimeSingularity::new(params.dim(), params.k, 10);
    let proto = AmplifiedModPrime::new(inner, 3);
    for t in 0..8u64 {
        let free = RestrictedInstance::random(params, &mut rng);
        let inst = lemma35::complete(params, &free.c, &free.e).unwrap();
        let input = inst.encode();
        let p = if t % 2 == 0 {
            Partition::pi_zero(&enc)
        } else {
            Partition::random_even(enc.total_bits(), &mut rng)
        };
        let run = run_sequential(&proto, &p, &input, t);
        assert!(
            run.output,
            "amplified protocol missed a hard singular instance, t={t}"
        );
    }
}

#[test]
fn normalized_partitions_leave_protocols_correct() {
    // Lemma 3.9's permutation is a relabeling of the *matrix*; protocols
    // run on the permuted instance under the normalized partition must
    // reach the same answer as on the original instance under the
    // original partition.
    let mut rng = StdRng::seed_from_u64(2);
    let params = Params::new(5, 2);
    let enc = params.encoding();
    let f = Singularity::new(params.dim(), params.k);
    let det = SendAll::new(Singularity::new(params.dim(), params.k));
    for t in 0..5u64 {
        let part = Partition::random_even(enc.total_bits(), &mut rng);
        let w = proper::normalize(&part, params).expect("Lemma 3.9");
        let inst = RestrictedInstance::random(params, &mut rng);
        let m = inst.assemble();
        let permuted = m.permute_rows(&w.row_perm).permute_cols(&w.col_perm);

        let run_orig = run_sequential(&det, &part, &enc.encode(&m), t);
        let run_perm = run_sequential(&det, &w.partition, &enc.encode(&permuted), t);
        assert_eq!(run_orig.output, run_perm.output, "t={t}");
        assert_eq!(run_orig.output, f.eval(&enc.encode(&m)));
    }
}

#[test]
fn error_estimation_on_the_hard_family() {
    // The Monte-Carlo referee over the hard family: one-sidedness holds
    // and the rate is inside the analysis.
    let mut rng = StdRng::seed_from_u64(3);
    let params = Params::new(5, 2);
    let enc = params.encoding();
    let inner = ModPrimeSingularity::new(params.dim(), params.k, 12);
    let f = Singularity::new(params.dim(), params.k);
    let inputs: Vec<BitString> = (0..8)
        .map(|i| {
            if i % 2 == 0 {
                let free = RestrictedInstance::random(params, &mut rng);
                lemma35::complete(params, &free.c, &free.e)
                    .unwrap()
                    .encode()
            } else {
                RestrictedInstance::random(params, &mut rng).encode()
            }
        })
        .collect();
    let p = Partition::pi_zero(&enc);
    let est = estimate_error(&inner, &p, &f, &inputs, 12);
    assert!(est.observed_one_sided(), "singular instance missed");
    assert!(
        est.rate() < 0.05,
        "error rate {} above analysis",
        est.rate()
    );
    assert_eq!(
        est.yes_runs, 48,
        "half the inputs are singular by construction"
    );
}

#[test]
fn solvability_protocol_on_corollary13_systems() {
    // Corollary 1.3's reduction feeds the randomized solvability
    // protocol: M singular ⟺ M'x = b solvable, decided mod p.
    use ccmx::comm::protocols::ModPrimeSolvability;
    use ccmx::core::reductions;
    let mut rng = StdRng::seed_from_u64(4);
    let params = Params::new(5, 2);
    let sf = Solvability::new(params.dim(), params.k);
    let proto = ModPrimeSolvability::new(params.dim(), params.k, 20);
    let p = Partition::random_even(sf.num_bits(), &mut rng);
    for t in 0..8u64 {
        let inst = if t % 2 == 0 {
            let free = RestrictedInstance::random(params, &mut rng);
            lemma35::complete(params, &free.c, &free.e).unwrap()
        } else {
            RestrictedInstance::random(params, &mut rng)
        };
        let (mp, b) = reductions::solvability_system(&inst);
        let input = sf.encode(&mp, &b);
        let expect = ccmx::core::lemma32::m_is_singular(&inst);
        let run = run_sequential(&proto, &p, &input, t);
        assert_eq!(run.output, expect, "t={t}");
    }
}

#[test]
fn bisect_equality_on_matrix_encodings() {
    // The multi-round protocol finds single-bit differences between two
    // encoded hard instances.
    use ccmx::comm::protocols::fingerprint::fixed_partition;
    use ccmx::comm::protocols::BisectEquality;
    let mut rng = StdRng::seed_from_u64(5);
    let params = Params::new(5, 2);
    let inst = RestrictedInstance::random(params, &mut rng);
    let bits = inst.encode();
    let half = bits.len();
    let proto = BisectEquality::new(half, 30);
    let p = fixed_partition(half);
    // Equal copies.
    let mut input = bits.clone();
    input.extend(&bits);
    assert!(run_sequential(&proto, &p, &input, 0).output);
    // Flip one bit in the copy.
    let flip = rng.gen_range(0..half);
    let mut other = bits.clone();
    other.set(flip, !other.get(flip));
    let mut input2 = bits.clone();
    input2.extend(&other);
    assert!(!run_sequential(&proto, &p, &input2, 1).output);
}
