//! Cross-crate integration: a real TCP protocol-lab server under
//! concurrent load, checked for *bit-exact* agreement with the
//! in-process sequential runner.
//!
//! The load pattern: N >= 8 clients connect at once; each runs its own
//! interactive protocol session (client = agent A over the socket,
//! server = agent B), plus request/response traffic (bounds, batches).
//! One extra client connects and goes silent, proving the read timeout
//! reaps stalled connections without wedging the worker pool. Finally
//! the server shuts down gracefully and every thread joins.

use ccmx::comm::protocol::run_sequential;
use ccmx::net::{serve, Client, ProtoSpec, Request, Response, ServerConfig, TransportConfig};
use ccmx::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::TcpStream;
use std::time::Duration;

const N_CLIENTS: usize = 8;

fn test_server() -> ccmx::net::ServerHandle {
    serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .expect("bind integration-test server")
}

fn random_input(bits: usize, seed: u64) -> BitString {
    let mut rng = StdRng::seed_from_u64(seed);
    BitString::from_bits((0..bits).map(|_| rng.gen()).collect())
}

#[test]
fn concurrent_clients_get_bit_identical_transcripts() {
    let server = test_server();
    let addr = server.addr();

    let specs = [
        ProtoSpec::SendAllSingularity { dim: 2, k: 2 },
        ProtoSpec::ModPrimeSingularity {
            dim: 2,
            k: 2,
            security: 20,
        },
        ProtoSpec::FingerprintEquality {
            half_bits: 16,
            security: 20,
        },
    ];

    let handles: Vec<_> = (0..N_CLIENTS)
        .map(|c| {
            let spec = specs[c % specs.len()];
            std::thread::spawn(move || {
                let mut client =
                    Client::connect(addr, TransportConfig::default()).expect("client connects");
                let setup = spec.build();
                for round in 0..3u64 {
                    let seed = (c as u64) << 8 | round;
                    let input = random_input(setup.input_bits, seed ^ 0xA5A5);

                    // Live two-agent run over the socket.
                    let (mine, theirs, stats) = client
                        .run_interactive(spec, &input, seed)
                        .expect("interactive run");
                    assert_eq!(mine, theirs, "client/server transcripts diverged");

                    // Byte-for-byte agreement with the sequential runner.
                    let expected =
                        run_sequential(setup.proto.as_ref(), &setup.partition, &input, seed);
                    assert_eq!(mine, expected, "wire run diverged from sequential");

                    // The wire metered exactly the transcript's bits.
                    assert_eq!(
                        stats.bits_total(),
                        expected.transcript.total_bits(),
                        "wire bit count != sequential transcript bit count"
                    );

                    // Server-side in-process run agrees too.
                    let served = client.run(spec, &input, seed).expect("run request");
                    assert_eq!(served, expected);
                }
                client.stats().bits_total()
            })
        })
        .collect();

    let mut total_wire_bits = 0usize;
    for h in handles {
        total_wire_bits += h.join().expect("client thread panicked");
    }
    assert!(total_wire_bits > 0, "clients exchanged no protocol bits");

    let stats = server.stats();
    assert!(stats.connections_accepted >= N_CLIENTS as u64);
    assert_eq!(stats.interactive_runs, (N_CLIENTS * 3) as u64);
    server.shutdown();
}

#[test]
fn stalling_client_is_reaped_while_others_are_served() {
    let server = test_server();
    let addr = server.addr();

    // A client that connects and never speaks: it holds a worker until
    // the read timeout fires, then must be dropped.
    let stalled = TcpStream::connect(addr).expect("stalling client connects");

    // Meanwhile real clients keep getting answers.
    let workers: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client =
                    Client::connect(addr, TransportConfig::default()).expect("client connects");
                let b = client.bounds(5, 3, 20).expect("bounds served during stall");
                assert!(b.deterministic_upper_bits > 0.0);
                client.ping().expect("ping served during stall");
                i
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread panicked");
    }

    // Give the timeout a chance to reap the silent connection.
    std::thread::sleep(Duration::from_millis(800));
    assert!(
        server.stats().connections_dropped >= 1,
        "stalled connection was never dropped"
    );

    // The pool is not wedged: a fresh client still gets served.
    let mut client = Client::connect(addr, TransportConfig::default()).expect("fresh client");
    client
        .ping()
        .expect("pool wedged after reaping a stalled client");

    drop(stalled);
    server.shutdown();
}

#[test]
fn batches_amortize_and_match_sequential() {
    let server = test_server();
    let mut client = Client::connect(server.addr(), TransportConfig::default()).expect("connect");

    let spec = ProtoSpec::SendAllSingularity { dim: 2, k: 2 };
    let setup = spec.build();
    let inputs: Vec<BitString> = (0..6)
        .map(|i| random_input(setup.input_bits, 1000 + i))
        .collect();

    let mut reqs: Vec<Request> = inputs
        .iter()
        .enumerate()
        .map(|(i, input)| Request::Run {
            spec,
            input: input.clone(),
            seed: i as u64,
        })
        .collect();
    reqs.push(Request::Bounds {
        n: 5,
        k: 3,
        security: 20,
    });

    let resps = client.batch(reqs).expect("batch served");
    assert_eq!(resps.len(), 7);
    for (i, input) in inputs.iter().enumerate() {
        let expected = run_sequential(setup.proto.as_ref(), &setup.partition, input, i as u64);
        assert_eq!(resps[i], Response::Run(expected), "batch slot {i}");
    }
    assert!(matches!(resps[6], Response::Bounds(_)));

    // Repeated bounds requests hit the LRU cache.
    for _ in 0..5 {
        client.bounds(5, 3, 20).expect("cached bounds");
    }
    let cache = server.cache_stats();
    assert!(cache.hits >= 5, "bounds cache saw no hits: {cache:?}");
    assert_eq!(cache.misses, 1);

    server.shutdown();
}

#[test]
fn exact_singularity_is_served_remotely() {
    let server = test_server();
    let mut client = Client::connect(server.addr(), TransportConfig::default()).expect("connect");

    let enc = MatrixEncoding::new(3, 3);
    let singular = ccmx::linalg::matrix::int_matrix(&[&[1, 2, 3], &[2, 4, 6], &[0, 1, 5]]);
    let regular = ccmx::linalg::matrix::int_matrix(&[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]]);
    assert!(client
        .singularity(3, 3, &enc.encode(&singular))
        .expect("singular query"));
    assert!(!client
        .singularity(3, 3, &enc.encode(&regular))
        .expect("regular query"));

    server.shutdown();
}
