//! Workspace-level property tests: invariants that span crates.

use ccmx::core::{lemma32, lemma35, Params, RestrictedInstance};
use ccmx::prelude::*;
use ccmx_bigint::Integer;
use ccmx_linalg::{bareiss, Matrix};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = Params> {
    prop_oneof![
        Just(Params::new(5, 2)),
        Just(Params::new(7, 2)),
        Just(Params::new(7, 3)),
        Just(Params::new(9, 2)),
        Just(Params::new(9, 4)),
    ]
}

fn arb_instance(params: Params) -> impl Strategy<Value = RestrictedInstance> {
    let h = params.h();
    let q = params.q_u64();
    let total = h * h + h * params.d_width() + h * params.e_width() + (params.n - 1);
    prop::collection::vec(0..q, total).prop_map(move |vals| {
        let mut it = vals.into_iter().map(|v| Integer::from(v as i64));
        let c = Matrix::from_fn(h, h, |_, _| it.next().unwrap());
        let d = Matrix::from_fn(h, params.d_width(), |_, _| it.next().unwrap());
        let e = Matrix::from_fn(h, params.e_width(), |_, _| it.next().unwrap());
        let y = (0..params.n - 1).map(|_| it.next().unwrap()).collect();
        RestrictedInstance::new(params, c, d, e, y)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lemma32_always_holds(params in arb_params(), seed in any::<u64>()) {
        let inst = {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            RestrictedInstance::random(params, &mut rng)
        };
        prop_assert!(lemma32::lemma32_holds(&inst));
    }

    #[test]
    fn arbitrary_instances_roundtrip_and_stay_in_range(
        inst in arb_params().prop_flat_map(arb_instance)
    ) {
        let m = inst.assemble();
        let enc = inst.params.encoding();
        let bits = enc.encode(&m);
        prop_assert_eq!(enc.decode(&bits), m.clone());
        // Every entry fits k bits.
        let max = Integer::from((1i64 << inst.params.k) - 1);
        for e in m.data() {
            prop_assert!(!e.is_negative());
            prop_assert!(e <= &max);
        }
        // rank(A) is always n-1 (Fig. 3 diagonal).
        prop_assert_eq!(bareiss::rank(&inst.matrix_a()), inst.params.n - 1);
    }

    #[test]
    fn completion_is_idempotent_on_its_blocks(
        params in arb_params(),
        seed in any::<u64>()
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let free = RestrictedInstance::random(params, &mut rng);
        let done = lemma35::complete(params, &free.c, &free.e);
        prop_assert!(done.is_some(), "completion failed");
        let done = done.unwrap();
        prop_assert_eq!(&done.c, &free.c);
        prop_assert_eq!(&done.e, &free.e);
        prop_assert!(lemma32::m_is_singular(&done));
        // Completing again from the completed blocks gives the same D, y
        // (the algorithm is deterministic).
        let again = lemma35::complete(params, &done.c, &done.e).unwrap();
        prop_assert_eq!(again, done);
    }

    #[test]
    fn protocol_outputs_match_oracle_on_random_inputs(
        dimk in prop_oneof![Just((2usize, 2u32)), Just((4, 1)), Just((4, 2))],
        bits_seed in any::<u64>(),
        run_seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let (dim, k) = dimk;
        let f = Singularity::new(dim, k);
        let enc = f.enc;
        let mut rng = rand::rngs::StdRng::seed_from_u64(bits_seed);
        let input = BitString::from_bits((0..enc.total_bits()).map(|_| rng.gen()).collect());
        let p = Partition::random_even(enc.total_bits(), &mut rng);
        let proto = SendAll::new(Singularity::new(dim, k));
        let run = run_sequential(&proto, &p, &input, run_seed);
        prop_assert_eq!(run.output, f.eval(&input));
        prop_assert_eq!(run.cost_bits(), p.count_a());
    }

    #[test]
    fn partition_split_is_a_partition(
        len in 1usize..200,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = Partition::random_even(len, &mut rng);
        prop_assert!(p.is_even());
        let input = BitString::from_bits((0..len).map(|_| rng.gen()).collect());
        let (a, b) = p.split(&input);
        prop_assert_eq!(a.len() + b.len(), len);
        for pos in 0..len {
            let v = input.get(pos);
            match (a.get(pos), b.get(pos)) {
                (Some(av), None) => prop_assert_eq!(av, v),
                (None, Some(bv)) => prop_assert_eq!(bv, v),
                _ => prop_assert!(false, "bit {pos} not in exactly one share"),
            }
        }
    }

    #[test]
    fn padding_preserves_determinant(
        m_dim in 10usize..16,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        use ccmx::core::padding;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (n, _) = padding::split(m_dim);
        let core = Matrix::from_fn(2 * n, 2 * n, |_, _| Integer::from(rng.gen_range(-2i64..=2)));
        let padded = padding::pad(&core, m_dim);
        prop_assert_eq!(bareiss::det(&padded), bareiss::det(&core));
    }
}
