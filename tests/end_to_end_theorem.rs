//! End-to-end checks of the Theorem 1.1 pipeline at executable scale:
//! the lower-bound machinery (truth matrices → certified rectangle
//! bounds) and the upper-bound machinery (metered protocols) must
//! sandwich each other correctly on every instance we can enumerate.

use ccmx::comm::bounds::lower_bounds;
use ccmx::comm::meter::meter_exhaustive;
use ccmx::comm::truth::TruthMatrix;
use ccmx::core::counting;
use ccmx::core::proper::{is_proper, normalize};
use ccmx::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn certified_lower_bound_never_exceeds_protocol_cost() {
    // Yao's bound is a true lower bound: for every exhaustively
    // enumerable (dim, k) and partition, the certificate must sit at or
    // below the measured cost of the (correct, deterministic) send-all
    // protocol.
    let mut rng = StdRng::seed_from_u64(1);
    for (dim, k) in [(2usize, 1u32), (2, 2), (2, 3), (4, 1)] {
        let f = Singularity::new(dim, k);
        let enc = f.enc;
        let mut partitions = vec![Partition::pi_zero(&enc), Partition::row_split(&enc)];
        partitions.push(Partition::random_even(enc.total_bits(), &mut rng));
        for p in &partitions {
            let t = TruthMatrix::enumerate(&f, p, 2);
            let bound = lower_bounds(&t);
            let proto = SendAll::new(Singularity::new(dim, k));
            let rep = meter_exhaustive(&proto, p, &f, 0);
            assert_eq!(rep.errors, 0);
            assert!(
                bound.comm_lower_bound_bits <= rep.max_bits as f64,
                "certified bound {} above protocol cost {} at dim={dim}, k={k}",
                bound.comm_lower_bound_bits,
                rep.max_bits
            );
        }
    }
}

#[test]
fn lower_bound_grows_with_k_and_dim() {
    // The certified bound must be monotone in both parameters on the
    // enumerable range — the finite-scale shadow of Θ(k n²).
    let bound_for = |dim: usize, k: u32| {
        let f = Singularity::new(dim, k);
        let enc = f.enc;
        let p = Partition::pi_zero(&enc);
        let t = TruthMatrix::enumerate(&f, &p, 4);
        lower_bounds(&t).comm_lower_bound_bits
    };
    let b_21 = bound_for(2, 1);
    let b_22 = bound_for(2, 2);
    let b_23 = bound_for(2, 3);
    let b_41 = bound_for(4, 1);
    assert!(b_22 > b_21, "k growth: {b_21} -> {b_22}");
    assert!(b_23 > b_22, "k growth: {b_22} -> {b_23}");
    assert!(b_41 > b_21, "dim growth: {b_21} -> {b_41}");
}

#[test]
fn theorem_counting_consistent_with_exhaustive_truth() {
    // The counting engine's per-row one-counts (Lemma 3.5b) must bracket
    // the actual density of singular instances in the *unrestricted*
    // truth matrix... the restricted family is sparse in it, but both
    // sides of the sandwich must at least be consistent as bounds:
    // ones ≥ rows (every row of the restricted matrix has a 1).
    for p in [Params::new(5, 2), Params::new(7, 2), Params::new(9, 3)] {
        let b = counting::theorem_bound(p);
        assert!(b.ones_log_q >= b.rows_log_q);
        assert!(b.small_rect_area_log_q >= b.row_threshold_log_q);
        assert!(b.large_rect_area_log_q >= b.rows_log_q);
    }
}

#[test]
fn lemma39_normalization_preserves_protocol_correctness() {
    // Permuting rows/columns of the input (Lemma 3.9's transformation)
    // must not change singularity — run the full loop: normalize the
    // partition, permute a matrix accordingly, and check the decision is
    // unchanged.
    let mut rng = StdRng::seed_from_u64(5);
    let params = Params::new(5, 2);
    let enc = params.encoding();
    for t in 0..5 {
        let part = Partition::random_even(enc.total_bits(), &mut rng);
        let w = normalize(&part, params).unwrap_or_else(|| panic!("normalize failed, trial {t}"));
        assert!(is_proper(&w.partition, params));
        // Row/col permutations preserve singularity.
        let inst = RestrictedInstance::random(params, &mut rng);
        let m = inst.assemble();
        let permuted = m.permute_rows(&w.row_perm).permute_cols(&w.col_perm);
        assert_eq!(
            ccmx::linalg::bareiss::is_singular(&m),
            ccmx::linalg::bareiss::is_singular(&permuted),
            "permutation changed singularity"
        );
    }
}

#[test]
fn upper_bounds_sandwich_certified_lower_bounds_at_scale() {
    // At parameters beyond enumeration, the counting-engine lower bound
    // must stay below both protocols' costs (deterministic always; the
    // randomized protocol is allowed to dip below only because it is
    // randomized — check it does for large k, the paper's separation).
    let p = Params::new(61, 8);
    let lower = counting::theorem_bound(p).lower_bound_bits;
    let det = counting::deterministic_upper_bound_bits(p);
    assert!(lower > 0.0);
    assert!(lower <= det);

    let p_bigk = Params::new(31, 63);
    let lower_bigk = counting::theorem_bound(p_bigk).lower_bound_bits;
    let prob = counting::probabilistic_upper_bound_bits(p_bigk, 6);
    // The probabilistic protocol beats the *deterministic lower bound*
    // asymptotically; at these finite parameters it must at least beat
    // the deterministic upper bound.
    assert!(prob < counting::deterministic_upper_bound_bits(p_bigk));
    let _ = lower_bigk;
}

#[test]
fn truth_matrix_of_restricted_instances_is_all_ones_on_completions() {
    // A "restricted truth matrix" row: fix C; every completed column must
    // be a 1 (singular). This is the executable core of claim (2a).
    use ccmx::core::lemma35::complete;
    use ccmx_bigint::Integer;
    use ccmx_linalg::Matrix;
    let mut rng = StdRng::seed_from_u64(9);
    let params = Params::new(7, 2);
    let f = Singularity::new(params.dim(), params.k);
    let h = params.h();
    let q = params.q_u64();
    for _ in 0..5 {
        let c = Matrix::from_fn(h, h, |_, _| {
            Integer::from(rand::Rng::gen_range(&mut rng, 0..q) as i64)
        });
        for _ in 0..5 {
            let e = Matrix::from_fn(h, params.e_width(), |_, _| {
                Integer::from(rand::Rng::gen_range(&mut rng, 0..q) as i64)
            });
            let inst = complete(params, &c, &e).unwrap();
            assert!(f.eval(&inst.encode()), "completed instance not a 1-entry");
        }
    }
}
