//! Cross-validation of the protocol layer: the threaded (crossbeam
//! channel) runner and the sequential runner must be observationally
//! identical; randomized protocols must respect their error analyses;
//! and broken protocols must be rejected by the runner's backstops.

use ccmx::comm::meter::{meter_exhaustive, meter_random};
use ccmx::comm::protocol::{AgentCtx, Step, Transcript, Turn, TwoPartyProtocol};
use ccmx::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn runners_agree_on_every_protocol_function_pair() {
    let mut rng = StdRng::seed_from_u64(2);
    // Singularity / send-all.
    {
        let f = Singularity::new(4, 2);
        let enc = f.enc;
        let proto = SendAll::new(f);
        for trial in 0..10u64 {
            let p = Partition::random_even(enc.total_bits(), &mut rng);
            let bits: Vec<bool> = (0..enc.total_bits()).map(|_| rng.gen()).collect();
            let input = BitString::from_bits(bits);
            assert_eq!(
                run_sequential(&proto, &p, &input, trial),
                run_threaded(&proto, &p, &input, trial)
            );
        }
    }
    // Singularity / mod-prime (randomized: same seed → same transcript).
    {
        let proto = ModPrimeSingularity::new(4, 3, 20);
        let enc = proto.enc;
        let p = Partition::pi_zero(&enc);
        for trial in 0..10u64 {
            let bits: Vec<bool> = (0..enc.total_bits()).map(|_| rng.gen()).collect();
            let input = BitString::from_bits(bits);
            assert_eq!(
                run_sequential(&proto, &p, &input, trial),
                run_threaded(&proto, &p, &input, trial)
            );
        }
    }
    // Equality / fingerprint.
    {
        let proto = FingerprintEquality::new(32, 20);
        let p = ccmx::comm::protocols::fingerprint::fixed_partition(32);
        for trial in 0..10u64 {
            let bits: Vec<bool> = (0..64).map(|_| rng.gen()).collect();
            let input = BitString::from_bits(bits);
            assert_eq!(
                run_sequential(&proto, &p, &input, trial),
                run_threaded(&proto, &p, &input, trial)
            );
        }
    }
}

#[test]
fn deterministic_protocols_are_exhaustively_correct() {
    for (dim, k) in [(2usize, 1u32), (2, 2), (4, 1)] {
        let f = Singularity::new(dim, k);
        let enc = f.enc;
        let proto = SendAll::new(Singularity::new(dim, k));
        for p in [Partition::pi_zero(&enc), Partition::row_split(&enc)] {
            let rep = meter_exhaustive(&proto, &p, &f, 7);
            assert_eq!(rep.errors, 0, "send-all erred at dim={dim}, k={k}");
            assert_eq!(rep.max_bits, p.count_a());
            assert_eq!(rep.min_bits, p.count_a());
        }
    }
}

#[test]
fn randomized_protocol_error_rate_within_analysis() {
    // At security 10 the error bound is ≈ 2^-10; over 256 exhaustive
    // inputs we allow a small number of errors (each input is one
    // Bernoulli draw; 0–2 errors is the plausible band, >8 would mean
    // the analysis is wrong by an order of magnitude).
    let proto = ModPrimeSingularity::new(2, 4, 10);
    let enc = proto.enc;
    let p = Partition::pi_zero(&enc);
    let f = Singularity::new(2, 4);
    let rep = meter_exhaustive(&proto, &p, &f, 13);
    assert!(
        rep.errors <= 8,
        "error count {} far above the 2^-10 analysis over {} trials",
        rep.errors,
        rep.trials
    );
    // And the cost is input-independent.
    assert_eq!(rep.max_bits, rep.min_bits);
    assert_eq!(rep.max_bits, proto.predicted_cost());
}

#[test]
fn one_sidedness_of_randomized_protocol() {
    // Every singular input must be classified singular, for many seeds.
    let proto = ModPrimeSingularity::new(4, 4, 10);
    let enc = proto.enc;
    let p = Partition::pi_zero(&enc);
    let mut rng = StdRng::seed_from_u64(3);
    for t in 0..40u64 {
        let mut m = ccmx::linalg::Matrix::from_fn(4, 4, |_, _| {
            ccmx_bigint::Integer::from(rng.gen_range(0i64..16))
        });
        for r in 0..4 {
            m[(r, 3)] = m[(r, 1)].clone();
        }
        let input = enc.encode(&m);
        let run = run_sequential(&proto, &p, &input, t);
        assert!(run.output, "one-sided error violated at seed {t}");
    }
}

/// A protocol that "lies": it sends fewer bits than needed and guesses.
/// The metering harness must report its errors rather than its cost
/// savings — failure injection for the referee.
struct GuessingProtocol;

impl TwoPartyProtocol for GuessingProtocol {
    fn step(&self, ctx: &AgentCtx<'_>, _rng: &mut StdRng) -> Step {
        match ctx.turn {
            Turn::A => Step::Send(BitString::from_u64(0, 1)),
            Turn::B => Step::Output(false), // always guess "nonsingular"
        }
    }
    fn name(&self) -> &'static str {
        "guessing"
    }
}

#[test]
fn referee_catches_cheating_protocols() {
    let f = Singularity::new(2, 1);
    let enc = f.enc;
    let p = Partition::pi_zero(&enc);
    let rep = meter_exhaustive(&GuessingProtocol, &p, &f, 0);
    // The all-zero matrix (among others) is singular; guessing "false"
    // must be flagged.
    assert!(
        rep.errors > 0,
        "referee failed to catch the cheating protocol"
    );
    assert_eq!(rep.max_bits, 1);
}

/// A protocol whose agents disagree would deadlock/diverge; the round
/// limit must fire rather than hang.
struct PingPongForever;

impl TwoPartyProtocol for PingPongForever {
    fn step(&self, _ctx: &AgentCtx<'_>, _rng: &mut StdRng) -> Step {
        Step::Send(BitString::from_u64(1, 1))
    }
    fn name(&self) -> &'static str {
        "ping-pong-forever"
    }
}

#[test]
#[should_panic(expected = "round limit")]
fn round_limit_stops_divergent_protocols() {
    let enc = MatrixEncoding::new(2, 1);
    let p = Partition::pi_zero(&enc);
    let input = BitString::zeros(4);
    let _ = run_sequential(&PingPongForever, &p, &input, 0);
}

#[test]
fn transcripts_are_reconstructible_by_both_agents() {
    // The Transcript both agents assemble independently in the threaded
    // runner is asserted equal inside run_threaded; here we additionally
    // check the public accounting API.
    let f = Singularity::new(2, 2);
    let enc = f.enc;
    let p = Partition::pi_zero(&enc);
    let proto = SendAll::new(f);
    let input = BitString::from_u64(0xAB, enc.total_bits());
    let run = run_threaded(&proto, &p, &input, 0);
    let t: &Transcript = &run.transcript;
    assert_eq!(t.rounds(), 1);
    assert_eq!(t.bits_from(Turn::A).len(), p.count_a());
    assert_eq!(t.bits_from(Turn::B).len(), 0);
    assert_eq!(run.announced_by, Turn::B);
}

#[test]
fn meter_random_respects_trial_counts() {
    let f = Equality { half_bits: 8 };
    let proto = SendAll::new(Equality { half_bits: 8 });
    let p = ccmx::comm::protocols::fingerprint::fixed_partition(8);
    let rep = meter_random(&proto, &p, &f, 33, 5);
    assert_eq!(rep.trials, 33);
    assert_eq!(rep.errors, 0);
}
