//! The construction pipeline end-to-end: restricted instances flow
//! through the shared encoding into live protocols; the corollary
//! reductions stay consistent on hard instances; padding extends the
//! family to arbitrary dimensions.

use ccmx::core::{lemma32, lemma35, padding, reductions};
use ccmx::prelude::*;
use ccmx_bigint::Integer;
use ccmx_linalg::{bareiss, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_blocks(params: Params, rng: &mut StdRng) -> (Matrix<Integer>, Matrix<Integer>) {
    let h = params.h();
    let q = params.q_u64();
    let c = Matrix::from_fn(h, h, |_, _| Integer::from(rng.gen_range(0..q) as i64));
    let e = Matrix::from_fn(h, params.e_width(), |_, _| {
        Integer::from(rng.gen_range(0..q) as i64)
    });
    (c, e)
}

#[test]
fn protocols_decide_hard_instances_correctly() {
    // Run both protocols on completed (singular) and random (almost
    // surely nonsingular) members of the hard family, under π₀ and under
    // random even partitions.
    let mut rng = StdRng::seed_from_u64(11);
    let params = Params::new(5, 2);
    let f = Singularity::new(params.dim(), params.k);
    let enc = params.encoding();
    let det = SendAll::new(Singularity::new(params.dim(), params.k));
    let prob = ModPrimeSingularity::new(params.dim(), params.k, 25);

    for t in 0..10u64 {
        let inst = if t % 2 == 0 {
            let (c, e) = random_blocks(params, &mut rng);
            lemma35::complete(params, &c, &e).unwrap()
        } else {
            RestrictedInstance::random(params, &mut rng)
        };
        let input = inst.encode();
        let expect = f.eval(&input);
        assert_eq!(
            expect,
            lemma32::m_is_singular(&inst),
            "oracle disagrees with Lemma 3.2 side"
        );

        let p = if t < 5 {
            Partition::pi_zero(&enc)
        } else {
            Partition::random_even(enc.total_bits(), &mut rng)
        };
        assert_eq!(
            run_sequential(&det, &p, &input, t).output,
            expect,
            "send-all, t={t}"
        );
        assert_eq!(
            run_sequential(&prob, &p, &input, t).output,
            expect,
            "mod-prime, t={t}"
        );
    }
}

#[test]
fn solvability_function_agrees_with_corollary13_on_family() {
    // Encode the Corollary 1.3 system into the Solvability function's
    // input format and check the protocol-level function agrees with the
    // matrix-level equivalence.
    let mut rng = StdRng::seed_from_u64(12);
    let params = Params::new(5, 2);
    let sf = Solvability::new(params.dim(), params.k);
    for t in 0..6 {
        let inst = if t % 2 == 0 {
            let (c, e) = random_blocks(params, &mut rng);
            lemma35::complete(params, &c, &e).unwrap()
        } else {
            RestrictedInstance::random(params, &mut rng)
        };
        let (mp, b) = reductions::solvability_system(&inst);
        let input = sf.encode(&mp, &b);
        assert_eq!(
            sf.eval(&input),
            lemma32::m_is_singular(&inst),
            "Corollary 1.3 mismatch, t={t}"
        );
    }
}

#[test]
fn product_check_function_matches_block_trick() {
    let mut rng = StdRng::seed_from_u64(13);
    let n = 2;
    let k = 3;
    let pf = ProductCheck::new(n, k);
    let zz = ccmx::linalg::ring::IntegerRing;
    for t in 0..10 {
        let bound = 1i64 << (k - 1); // keep products within k bits? No —
                                     // the function's operands are k-bit; products live only in the
                                     // evaluation, not the encoding.
        let a = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(0..bound)));
        let b = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(0..bound)));
        let real = a.mul(&zz, &b);
        // Only encode C if it fits k bits; otherwise perturb within range.
        let c_ok = real.data().iter().all(|e| e.bit_len() <= k as u64);
        if c_ok {
            let input = pf.encode(&a, &b, &real);
            assert!(pf.eval(&input), "true product rejected, t={t}");
            assert!(reductions::product_check_via_rank(&a, &b, &real));
        }
        let wrong = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(0..(1i64 << k))));
        let input = pf.encode(&a, &b, &wrong);
        assert_eq!(
            pf.eval(&input),
            reductions::product_check_via_rank(&a, &b, &wrong),
            "function and block trick disagree, t={t}"
        );
    }
}

#[test]
fn padding_extends_hard_instances_to_general_dimensions() {
    let mut rng = StdRng::seed_from_u64(14);
    let params = Params::new(5, 2);
    for m_dim in [11usize, 12, 13] {
        // Build a hard instance, pad it, check singularity transfers.
        let (c, e) = random_blocks(params, &mut rng);
        let inst = lemma35::complete(params, &c, &e).unwrap();
        let core = inst.assemble();
        let (n_split, _) = padding::split(m_dim);
        if 2 * n_split != core.rows() {
            continue; // padding target doesn't match this family size
        }
        let padded = padding::pad(&core, m_dim);
        assert!(
            bareiss::is_singular(&padded),
            "padding broke singularity at m={m_dim}"
        );
        assert_eq!(padding::core_of(&padded), core);
    }
}

#[test]
fn corollary12_consistency_on_the_hard_family() {
    let mut rng = StdRng::seed_from_u64(15);
    let params = Params::new(5, 2);
    for t in 0..6 {
        let inst = if t % 2 == 0 {
            let (c, e) = random_blocks(params, &mut rng);
            lemma35::complete(params, &c, &e).unwrap()
        } else {
            RestrictedInstance::random(params, &mut rng)
        };
        assert!(
            reductions::corollary12_consistent(&inst.assemble()),
            "a decomposition disagreed with the singularity oracle, t={t}"
        );
    }
}

#[test]
fn span_problem_view_of_hard_instances() {
    use ccmx::core::span_problem;
    let mut rng = StdRng::seed_from_u64(16);
    let params = Params::new(5, 2);
    for t in 0..6 {
        let inst = if t % 2 == 0 {
            let (c, e) = random_blocks(params, &mut rng);
            lemma35::complete(params, &c, &e).unwrap()
        } else {
            RestrictedInstance::random(params, &mut rng)
        };
        let m = inst.assemble();
        let (v1, v2) = span_problem::singularity_as_span_instance(&m);
        assert_eq!(
            span_problem::union_spans_all(&v1, &v2),
            !lemma32::m_is_singular(&inst),
            "span view disagrees, t={t}"
        );
    }
}
