//! SIGKILL chaos soak for the persistent certified-result tier.
//!
//! The parent test re-executes this test binary as a *writer child*
//! (`chaos_child_writer`, gated on `CCMX_CHAOS_DIR`): a real server
//! with a store, plus a retry client with its own run store, both
//! appending verdicts in a deterministic schedule. The parent kills
//! the child with SIGKILL mid-batch — no destructors, no flushes —
//! then recovers both stores and asserts the survival contract:
//!
//! * recovery yields a clean store (whatever survived is served),
//! * every warm-started answer is bit-identical to direct computation
//!   (`run_sequential` for protocol runs, exact linalg for verdicts) —
//!   zero corrupted answers, zero metered-bit divergence.

use std::process::{Child, Command};
use std::time::Duration;

use ccmx::comm::functions::Singularity;
use ccmx::comm::protocol::run_sequential;
use ccmx::comm::BitString;
use ccmx::core::{counting, Params};
use ccmx::net::wire::{KIND_REQUEST, KIND_RESPONSE};
use ccmx::net::{
    BoundsReport, BreakerConfig, ProtoSpec, Request, Response, RetryClient, RetryPolicy,
    ServerConfig, TcpTransport, TransportConfig, WireCodec,
};
use ccmx::store::{Store, StoreConfig};

/// How many schedule items the parent re-verifies after recovery.
const VERIFY_ITEMS: usize = 12;

/// Deterministic bounds parameters for schedule slot `i`.
fn bounds_params(i: usize) -> (usize, u32, u32) {
    let n = [5usize, 7, 9, 11][i % 4];
    let k = [3u32, 4, 5][i % 3];
    (n, k, 16 + (i as u32 % 4) * 8)
}

/// Deterministic 2x2 integer matrix (3-bit entries) for slot `i`.
fn sing_matrix(i: usize) -> ccmx::linalg::Matrix<ccmx::bigint::Integer> {
    let mut x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    ccmx::linalg::Matrix::from_fn(2, 2, |_, _| {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ccmx::bigint::Integer::from((x >> 33) as i64 % 8)
    })
}

fn run_spec() -> ProtoSpec {
    ProtoSpec::FingerprintEquality {
        half_bits: 16,
        security: 16,
    }
}

/// Deterministic protocol input for slot `i`.
fn run_input(i: usize) -> BitString {
    BitString::from_u64(0x5eed_0000 + i as u64, 32)
}

fn roundtrip(t: &mut TcpTransport, req: &Request) -> Response {
    t.send_frame(KIND_REQUEST, &req.to_wire_bytes()).unwrap();
    let (kind, payload) = t.recv_frame().unwrap();
    assert_eq!(kind, KIND_RESPONSE);
    Response::from_wire_bytes(&payload).unwrap()
}

fn retry_client(addr: &str) -> RetryClient {
    RetryClient::new(
        addr,
        TransportConfig::default(),
        RetryPolicy::default(),
        BreakerConfig::default(),
    )
}

/// The writer child: loops over the schedule until SIGKILLed. Runs (and
/// trivially passes) as an ordinary test when the env gate is absent.
#[test]
fn chaos_child_writer() {
    let Some(dir) = std::env::var_os("CCMX_CHAOS_DIR").map(std::path::PathBuf::from) else {
        return;
    };
    let server = ccmx::net::serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            store_dir: Some(dir.join("server")),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();
    let mut t = TcpTransport::connect(server.addr(), TransportConfig::default()).unwrap();
    let mut rc = retry_client(&addr);
    rc.attach_store(&dir.join("client")).unwrap();
    let f = Singularity::new(2, 3);
    for i in 0.. {
        let (n, k, security) = bounds_params(i);
        roundtrip(&mut t, &Request::Bounds { n, k, security });
        roundtrip(
            &mut t,
            &Request::Singularity {
                dim: 2,
                k: 3,
                input: f.enc.encode(&sing_matrix(i)),
            },
        );
        rc.run_idempotent(run_spec(), &run_input(i), i as u64)
            .unwrap();
    }
}

/// Kills the child on drop so a failing assertion never leaks a
/// busy-looping writer process.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn sigkill_mid_batch_recovers_with_zero_corrupted_answers() {
    let exe = std::env::current_exe().unwrap();
    for trial in 0..2u64 {
        let dir =
            std::env::temp_dir().join(format!("ccmx-chaos-soak-{}-{trial}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let child = Command::new(&exe)
            .args([
                "chaos_child_writer",
                "--exact",
                "--nocapture",
                "--test-threads=1",
            ])
            .env("CCMX_CHAOS_DIR", &dir)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap();
        let mut child = ChildGuard(child);

        // Let the writer make real progress (both stores non-trivial),
        // then a trial-dependent extra beat so the kill lands at
        // different points in the append stream.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let grown = |sub: &str| {
                std::fs::read_dir(dir.join(sub)).ok().is_some_and(|rd| {
                    rd.flatten()
                        .any(|e| e.metadata().map(|m| m.len() > 200).unwrap_or(false))
                })
            };
            if grown("server") && grown("client") {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "writer child made no progress"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        std::thread::sleep(Duration::from_millis(40 + 130 * trial));
        child.0.kill().unwrap(); // SIGKILL: no flush, no Drop, no mercy
        child.0.wait().unwrap();

        // Recover the server store once to inspect, then boot warm.
        {
            let s = Store::open(StoreConfig::new(dir.join("server"))).unwrap();
            assert!(
                s.recovery().quarantined_segments == 0,
                "a tail-only crash must never quarantine whole segments: {:?}",
                s.recovery().issues
            );
        }
        let server = ccmx::net::serve(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                store_dir: Some(dir.join("server")),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut t = TcpTransport::connect(server.addr(), TransportConfig::default()).unwrap();

        // Every schedule item — whether it survived to disk (warm hit)
        // or not (fresh compute) — must match direct computation.
        let f = Singularity::new(2, 3);
        for i in 0..VERIFY_ITEMS {
            let (n, k, security) = bounds_params(i);
            let p = Params::new(n, k);
            let expected = BoundsReport {
                n,
                k,
                security,
                lower_bound_bits: counting::theorem_bound(p).lower_bound_bits,
                deterministic_upper_bits: counting::deterministic_upper_bound_bits(p),
                randomized_upper_bits: counting::probabilistic_upper_bound_bits(p, security),
            };
            assert_eq!(
                roundtrip(&mut t, &Request::Bounds { n, k, security }),
                Response::Bounds(expected),
                "bounds answer corrupted after recovery (trial {trial}, item {i})"
            );

            let m = sing_matrix(i);
            let singular = ccmx::linalg::crt::rank_int(&m) < 2;
            assert_eq!(
                roundtrip(
                    &mut t,
                    &Request::Singularity {
                        dim: 2,
                        k: 3,
                        input: f.enc.encode(&m),
                    }
                ),
                Response::Singularity { singular },
                "singularity verdict corrupted after recovery (trial {trial}, item {i})"
            );
        }

        // Client-side: recovered idempotent runs replay bit-identical
        // to `run_sequential`, with the committed wire stats intact.
        let mut rc = retry_client(&server.addr().to_string());
        let loaded = rc.attach_store(&dir.join("client")).unwrap();
        // The progress poll guaranteed at least one fully-committed run
        // frame before the kill, so the soak is never vacuous.
        assert!(loaded >= 1, "no runs survived — the kill landed too early");
        let lab = run_spec().build();
        let mut replays = 0usize;
        for i in 0..VERIFY_ITEMS {
            let run = rc
                .run_idempotent(run_spec(), &run_input(i), i as u64)
                .unwrap();
            let expected =
                run_sequential(lab.proto.as_ref(), &lab.partition, &run_input(i), i as u64);
            assert_eq!(run.result_a, expected, "replayed run diverged (item {i})");
            assert_eq!(
                run.stats.bits_total(),
                expected.transcript.total_bits(),
                "metered-bit divergence on a recovered run (item {i})"
            );
            replays += usize::from(run.replayed);
        }
        assert!(
            replays >= loaded.min(VERIFY_ITEMS).saturating_sub(1),
            "persisted runs should replay from disk ({replays} replays, {loaded} loaded)"
        );
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
