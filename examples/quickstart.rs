//! Quickstart: the paper's objects in five minutes.
//!
//! Run with: `cargo run --release --example quickstart`

use ccmx::linalg::matrix::int_matrix;
use ccmx::prelude::*;

fn main() {
    println!("=== ccmx quickstart: Chu–Schnitger, SPAA 1989 ===\n");

    // ------------------------------------------------------------------
    // 1. Singularity testing is a two-party problem.
    // ------------------------------------------------------------------
    let dim = 4;
    let k = 3;
    let f = Singularity::new(dim, k);
    let enc = f.enc;
    let pi0 = Partition::pi_zero(&enc);
    println!(
        "Input: {dim}x{dim} matrix of {k}-bit entries = {} bits, split by π₀ ({} / {}).",
        enc.total_bits(),
        pi0.count_a(),
        pi0.count_b()
    );

    let m = int_matrix(&[
        &[1, 2, 0, 3],
        &[0, 1, 1, 1],
        &[2, 0, 1, 0],
        &[1, 2, 0, 3], // duplicate of row 0 → singular
    ]);
    let input = enc.encode(&m);
    println!("\nMatrix under test (row 3 duplicates row 0):\n{m}");

    // ------------------------------------------------------------------
    // 2. The deterministic upper bound: send everything.
    // ------------------------------------------------------------------
    let send_all = SendAll::new(f);
    let run = run_sequential(&send_all, &pi0, &input, 0);
    println!(
        "\n[send-all]     output = {:?} (singular), cost = {} bits — the Θ(k n²) upper bound",
        run.output,
        run.cost_bits()
    );
    assert!(run.output);

    // The threaded runner (two OS threads over channels) produces the
    // identical transcript.
    let threaded = run_threaded(&send_all, &pi0, &input, 0);
    assert_eq!(run, threaded);
    println!("[send-all]     threaded runner reproduces the transcript bit-for-bit");

    // ------------------------------------------------------------------
    // 3. The randomized counterpoint (Leighton's bound).
    // ------------------------------------------------------------------
    let rand_proto = ModPrimeSingularity::new(dim, k, 30);
    let rrun = run_sequential(&rand_proto, &pi0, &input, 7);
    println!(
        "[mod-prime]    output = {:?}, cost = {} bits, error ≤ {:.2e} (one-sided)",
        rrun.output,
        rrun.cost_bits(),
        rand_proto.error_bound()
    );
    assert!(rrun.output, "one-sided: singular inputs are never missed");

    // ------------------------------------------------------------------
    // 4. Theorem 1.1's machinery: the restricted hard family.
    // ------------------------------------------------------------------
    let params = Params::new(5, 2);
    let inst = RestrictedInstance::zero(params);
    println!(
        "\nRestricted family at n = {}, k = {}: M is {}x{}, free blocks C {}x{}, D {}x{}, E {}x{}, y len {}.",
        params.n,
        params.k,
        params.dim(),
        params.dim(),
        params.h(),
        params.h(),
        params.h(),
        params.d_width(),
        params.h(),
        params.e_width(),
        params.n - 1
    );
    println!(
        "\nThe Fig. 1 skeleton (zero instance):\n{}",
        inst.assemble()
    );

    // Lemma 3.2 on this instance.
    let singular = ccmx::core::lemma32::m_is_singular(&inst);
    let member = ccmx::core::lemma32::bu_in_span_a(&inst);
    println!("\nLemma 3.2: singular(M) = {singular}, B·u ∈ Span(A) = {member} — equivalent.");

    // ------------------------------------------------------------------
    // 5. The headline numbers.
    // ------------------------------------------------------------------
    let big = Params::new(61, 8);
    let bound = ccmx::core::counting::theorem_bound(big);
    println!(
        "\nTheorem 1.1 at n = {}, k = {}: certified lower bound {:.0} bits; trivial upper bound {:.0} bits.",
        big.n,
        big.k,
        bound.lower_bound_bits,
        ccmx::core::counting::deterministic_upper_bound_bits(big)
    );
    let v = VlsiBounds::for_singularity_asymptotic(big.n, big.k);
    println!(
        "VLSI corollaries (I = k n²): AT² ≥ {:.2e}, AT ≥ {:.2e}, T ≥ {:.0} (area-optimal chips).",
        v.at2, v.at, v.time_if_area_optimal
    );
}
