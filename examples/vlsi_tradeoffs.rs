//! The VLSI corollaries: AT² / AT / T tables and a live systolic chip.
//!
//! Prints the paper's area–time lower bounds for singularity testing
//! across (n, k), the comparison against Chazelle–Monier's determinant
//! bounds, and then actually runs a bisection-metered systolic matrix
//! multiplier to show the Ω(k n²) information flow crossing a real cut.
//!
//! Run with: `cargo run --release --example vlsi_tradeoffs`

use ccmx::prelude::*;
use ccmx::vlsi::bounds::{improvement_over_chazelle_monier, ChazelleMonier};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("=== VLSI lower bounds for singularity/determinant (I = k n²) ===\n");
    println!(
        "{:>5} {:>3} | {:>12} {:>12} {:>10} | {:>10} {:>8} | {:>8} {:>10}",
        "n", "k", "AT² ≥", "AT ≥", "T ≥", "CM: AT ≥", "CM: T ≥", "T gain", "AT gain"
    );
    for n in [32usize, 128, 512] {
        for k in [8u32, 32] {
            let v = VlsiBounds::for_singularity_asymptotic(n, k);
            let cm = ChazelleMonier::at_n(n);
            let (tg, atg) = improvement_over_chazelle_monier(n, k);
            println!(
                "{:>5} {:>3} | {:>12.3e} {:>12.3e} {:>10.1} | {:>10.1e} {:>8} | {:>8.1} {:>10.1}",
                n, k, v.at2, v.at, v.time_if_area_optimal, cm.at, cm.time, tg, atg
            );
        }
    }
    println!("\n(CM = Chazelle–Monier 1985; the paper's bounds are sharper by k^1/2 in T");
    println!(" and k^3/2·n in AT, per Section 1.)\n");

    // ------------------------------------------------------------------
    // Thompson's argument on an explicit chip.
    // ------------------------------------------------------------------
    println!("=== Thompson's cut on explicit chips ===");
    let info = 8.0 * 64.0 * 64.0; // I = k n² with k=8, n=64
    println!("function needs I = {info} bits across any balanced cut\n");
    println!(
        "{:>12} | {:>6} {:>6} {:>10} {:>14}",
        "chip", "area", "wires", "T ≥ I/w", "A·T²"
    );
    for (label, w, h) in [
        ("64x64", 64usize, 64usize),
        ("256x16", 256, 16),
        ("1024x4", 1024, 4),
    ] {
        let chip = Chip::uniform(w, h, info as u64);
        let cut = chip.thompson_cut();
        let t = chip.time_lower_bound(info);
        println!(
            "{:>12} | {:>6} {:>6} {:>10.0} {:>14.3e}",
            label,
            chip.area(),
            cut.wires,
            t,
            chip.area() as f64 * t * t
        );
    }
    println!("\nA·T² is invariant at I² for square chips and grows for skewed ones —");
    println!("the Thompson trade-off in action.\n");

    // ------------------------------------------------------------------
    // A real (simulated) systolic chip with metered bisection traffic.
    // ------------------------------------------------------------------
    println!("=== Cycle-accurate systolic matrix multiplier (GF(p)) ===\n");
    println!(
        "{:>4} {:>3} | {:>7} {:>10} {:>12} {:>12} {:>12}",
        "n", "k", "cycles", "crossings", "traffic", "k·n²", "measured AT²"
    );
    let mut rng = StdRng::seed_from_u64(5);
    for n in [4usize, 8, 16, 32] {
        let k = 13u32;
        let p = 8191; // 13-bit prime
        let mesh = SystolicMatMul::new(p, k);
        let a = Matrix::from_fn(n, n, |_, _| rng.gen_range(0..p));
        let b = Matrix::from_fn(n, n, |_, _| rng.gen_range(0..p));
        let (c, report) = mesh.run(&a, &b);
        // Sanity: the chip computes the right thing.
        let field = ccmx::linalg::ring::PrimeField::new(p);
        assert_eq!(c, a.mul(&field, &b));
        println!(
            "{:>4} {:>3} | {:>7} {:>10} {:>12} {:>12} {:>12.3e}",
            n,
            k,
            report.cycles,
            report.crossings,
            report.bits,
            k as u64 * (n * n) as u64,
            report.at2()
        );
    }
    println!("\nMeasured bisection traffic is exactly k·n² bits — the information flow");
    println!("whose necessity (Theorem 1.1) is what makes the AT² bounds unconditional.");
}
