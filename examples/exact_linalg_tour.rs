//! The exact linear algebra substrate, standalone.
//!
//! Everything the reproduction decides — singularity, rank, spans,
//! solvability — rests on exact arithmetic. This example tours the
//! substrate as a general-purpose library: fraction-free determinants,
//! CRT reconstruction, Smith normal form, integer vs rational
//! solvability, Dixon's p-adic solver, and Sturm-counted singular values.
//!
//! Run with: `cargo run --release --example exact_linalg_tour`

use ccmx::bigint::{bounds, Natural};
use ccmx::linalg::ring::IntegerRing;
use ccmx::linalg::{bareiss, dixon, inverse, modular, smith, solve, svd, Matrix};
use ccmx::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let zz = IntegerRing;

    // ------------------------------------------------------------------
    // 1. Determinants that overflow machine words.
    // ------------------------------------------------------------------
    println!("=== Exact determinants ===\n");
    let n = 8;
    let bits = 48;
    let m = Matrix::from_fn(n, n, |_, _| {
        Integer::from(rng.gen_range(-(1i64 << bits)..(1i64 << bits)))
    });
    let d1 = bareiss::det(&m);
    let d2 = modular::det_via_crt(&m, &Natural::power_of_two(bits as u64), 4);
    println!("{n}x{n} matrix of ±{bits}-bit entries:");
    println!("  Bareiss det   = {d1}");
    println!("  CRT det (4t)  = {d2}");
    assert_eq!(d1, d2);
    println!(
        "  det has {} bits (Hadamard bound allows {})\n",
        d1.bit_len(),
        bounds::hadamard_bound(n, &Natural::power_of_two(bits as u64)).bit_len()
    );

    // ------------------------------------------------------------------
    // 2. Smith normal form: the integer structure of a matrix.
    // ------------------------------------------------------------------
    println!("=== Smith normal form ===\n");
    let a = ccmx::linalg::matrix::int_matrix(&[&[2, 4, 4], &[-6, 6, 12], &[10, 4, 16]]);
    let s = smith::smith_normal_form(&a);
    assert!(smith::verify_smith(&a, &s));
    println!("A =\n{a}");
    println!(
        "invariant factors: {:?} (product = |det| = {})",
        s.invariant_factors()
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>(),
        bareiss::det(&a).magnitude()
    );

    // Integer vs rational solvability.
    let b = vec![
        Integer::from(2i64),
        Integer::from(0i64),
        Integer::from(2i64),
    ];
    println!(
        "\nA·x = (2,0,2): rational solvable = {}, integer solvable = {}",
        solve::is_solvable(&a, &b),
        smith::is_solvable_over_z(&a, &b)
    );
    let b2 = a.mul_vec(
        &zz,
        &[Integer::one(), Integer::from(2i64), Integer::from(-1i64)],
    );
    println!(
        "A·x = A·(1,2,-1): rational solvable = {}, integer solvable = {} (witness: {:?})",
        solve::is_solvable(&a, &b2),
        smith::is_solvable_over_z(&a, &b2),
        smith::solve_over_z(&a, &b2).map(|x| x.iter().map(|v| v.to_string()).collect::<Vec<_>>())
    );

    // ------------------------------------------------------------------
    // 3. Dixon's p-adic solver vs elimination.
    // ------------------------------------------------------------------
    println!("\n=== Dixon p-adic solve ===\n");
    let n = 6;
    let a6 = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(-999i64..=999)));
    let b6: Vec<Integer> = (0..n)
        .map(|_| Integer::from(rng.gen_range(-999i64..=999)))
        .collect();
    if !bareiss::det(&a6).is_zero() {
        let x = dixon::solve_dixon(&a6, &b6, &mut rng).unwrap();
        let e = solve::solve(&a6, &b6).unwrap();
        assert_eq!(x, e);
        println!(
            "6x6 random system: Dixon and elimination agree; x₀ = {}",
            x[0]
        );
    }

    // ------------------------------------------------------------------
    // 4. SVD structure with exact distinct-σ counts.
    // ------------------------------------------------------------------
    println!("\n=== Exact SVD structure (Sturm) ===\n");
    for m in [
        ccmx::linalg::matrix::int_matrix(&[&[1, 0, 0], &[0, 2, 0], &[0, 0, 2]]),
        ccmx::linalg::matrix::int_matrix(&[&[1, 2, 3], &[2, 4, 6], &[0, 0, 1]]),
    ] {
        let st = svd::svd_structure(&m);
        println!(
            "matrix with rank {}: {} nonzero singular values, {} distinct (σ²-poly degree {})",
            st.rank,
            st.rank,
            svd::distinct_sigma_count(&st),
            st.sigma_squared_poly.len() - 1
        );
    }

    // ------------------------------------------------------------------
    // 5. Adjugate identity and field inverses.
    // ------------------------------------------------------------------
    println!("\n=== Adjugate & inverses ===\n");
    let m3 = ccmx::linalg::matrix::int_matrix(&[&[1, 2], &[3, 5]]);
    assert!(inverse::verify_adjugate(&m3));
    println!(
        "M·adj(M) = det(M)·I verified for det = {}",
        bareiss::det(&m3)
    );
    let f7 = ccmx::linalg::ring::PrimeField::new(10007);
    let mf = Matrix::from_fn(4, 4, |_, _| rng.gen_range(0..10007u64));
    match inverse::inverse(&f7, &mf) {
        Some(inv) => {
            assert_eq!(mf.mul(&f7, &inv), Matrix::identity(&f7, 4));
            println!("random 4x4 over GF(10007): inverse verified");
        }
        None => println!("random 4x4 over GF(10007): singular (rare)"),
    }
}
