//! Certified lower bounds from exhaustively enumerated truth matrices.
//!
//! For instances small enough to enumerate (`k(2n)² ≤ ~16` bits), build
//! the full truth matrix of singularity testing under π₀ and under random
//! even partitions, compute the certified rectangle bounds (GF(2)/GF(p)
//! rank, fooling sets, Yao's `log₂ d(f) − 2`), and place them next to the
//! executed protocol costs — the two sides of Theorem 1.1 on one screen.
//!
//! Run with: `cargo run --release --example lower_bounds`

use ccmx::comm::bounds::{fooling_set_greedy, largest_one_rectangle_greedy, lower_bounds};
use ccmx::comm::truth::TruthMatrix;
use ccmx::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(17);
    println!("=== Certified lower bounds vs protocol costs (exhaustive truth matrices) ===\n");
    println!(
        "{:>4} {:>3} | {:>10} {:>8} {:>8} {:>8} {:>10} | {:>10} {:>10}",
        "dim", "k", "truth", "rank2", "rankP", "fooling", "LB (bits)", "send-all", "mod-prime"
    );

    for (dim, k) in [(2usize, 1u32), (2, 2), (2, 3), (4, 1)] {
        let f = Singularity::new(dim, k);
        let enc = f.enc;
        let pi0 = Partition::pi_zero(&enc);
        let t = TruthMatrix::enumerate(&f, &pi0, 4);
        let report = lower_bounds(&t);

        let send_all_cost = pi0.count_a();
        let prob_cost = ModPrimeSingularity::new(dim, k, 20).predicted_cost();
        println!(
            "{:>4} {:>3} | {:>4}x{:<5} {:>8} {:>8} {:>8} {:>10.1} | {:>10} {:>10}",
            dim,
            k,
            t.rows(),
            t.cols(),
            report.rank_gf2,
            report.rank_big_prime,
            report.fooling_set,
            report.comm_lower_bound_bits,
            send_all_cost,
            prob_cost
        );
    }

    println!("\n(LB = Yao's log₂d(f) − 2 from the best certificate. The deterministic");
    println!(" cost must sit above LB; the randomized cost may dip below it — and the");
    println!(" constant-factor gap between LB and send-all is what Theorem 1.1 closes");
    println!(" asymptotically.)\n");

    // ------------------------------------------------------------------
    // Worst-case over partitions: the model minimizes over π.
    // ------------------------------------------------------------------
    println!("=== The partition quantifier: certified bounds across partitions ===\n");
    let dim = 2;
    let k = 3;
    let f = Singularity::new(dim, k);
    let enc = f.enc;
    println!(
        "{:>14} | {:>8} {:>8} {:>10}",
        "partition", "rankP", "fooling", "LB (bits)"
    );
    let pi0 = Partition::pi_zero(&enc);
    let rows = Partition::row_split(&enc);
    let mut parts = vec![
        ("π₀ (columns)".to_string(), pi0),
        ("rows".to_string(), rows),
    ];
    for i in 0..3 {
        parts.push((
            format!("random #{i}"),
            Partition::random_even(enc.total_bits(), &mut rng),
        ));
    }
    for (name, p) in &parts {
        let t = TruthMatrix::enumerate(&f, p, 4);
        let r = lower_bounds(&t);
        println!(
            "{:>14} | {:>8} {:>8} {:>10.1}",
            name, r.rank_big_prime, r.fooling_set, r.comm_lower_bound_bits
        );
    }
    println!("\nEvery even partition certifies a bound of the same order — the content");
    println!("of Lemma 3.9 (any even partition can be made proper, so the π₀ analysis");
    println!("is universal).\n");

    // ------------------------------------------------------------------
    // Rectangles: the objects Lemma 3.7 is about.
    // ------------------------------------------------------------------
    println!("=== Largest 1-chromatic rectangles (greedy witnesses) ===\n");
    for (dim, k) in [(2usize, 2u32), (4, 1)] {
        let f = Singularity::new(dim, k);
        let enc = f.enc;
        let pi0 = Partition::pi_zero(&enc);
        let t = TruthMatrix::enumerate(&f, &pi0, 4);
        let ones = t.count_ones();
        let (rs, cs) = largest_one_rectangle_greedy(&t);
        let fs = fooling_set_greedy(&t);
        println!(
            "dim={dim}, k={k}: {} ones of {} cells; best 1-rectangle found: {}x{} = {} cells; fooling set {}",
            ones,
            t.rows() as u64 * t.cols() as u64,
            rs.len(),
            cs.len(),
            rs.len() * cs.len(),
            fs.len()
        );
    }
    println!("\nSmall rectangles + many ones ⇒ many rectangles needed ⇒ high communication.");
}
