//! The hard-instance factory: Figs. 1 & 3 and Lemmas 3.2–3.7 in action.
//!
//! Walks through the paper's Section 3 on live instances: builds the
//! restricted family, completes instances into singular ones (Lemma 3.5),
//! verifies the singularity ⟺ span-membership bridge (Lemma 3.2),
//! demonstrates span distinctness (Lemma 3.4) and watches span
//! intersections shrink as rectangles grow rows (Lemmas 3.3/3.6).
//!
//! Run with: `cargo run --release --example hard_instances`

use ccmx::core::{
    construction::RestrictedInstance, counting, lemma32, lemma34, lemma35, rectangles, Params,
};
use ccmx_bigint::Integer;
use ccmx_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let params = Params::new(9, 2);
    let q = params.q_u64();
    println!(
        "=== The restricted family at n = {}, k = {} (q = {q}) ===",
        params.n, params.k
    );
    println!(
        "M is {0}x{0}; free entries: C {1}x{1}, D {1}x{2}, E {1}x{3}, y 1x{4}",
        params.dim(),
        params.h(),
        params.d_width(),
        params.e_width(),
        params.n - 1
    );

    // ------------------------------------------------------------------
    // Lemma 3.5: every (C, E) completes to a singular instance.
    // ------------------------------------------------------------------
    println!("\n--- Lemma 3.5: completion ---");
    let h = params.h();
    let rand_block = |rng: &mut StdRng, r: usize, c: usize| {
        Matrix::from_fn(r, c, |_, _| Integer::from(rng.gen_range(0..q) as i64))
    };
    let mut completed = 0;
    for t in 0..20 {
        let c = rand_block(&mut rng, h, h);
        let e = rand_block(&mut rng, h, params.e_width());
        let inst = lemma35::complete(params, &c, &e).expect("Lemma 3.5 guarantees a completion");
        assert!(lemma32::m_is_singular(&inst), "trial {t}");
        completed += 1;
    }
    println!("completed {completed}/20 random (C, E) pairs into verified singular matrices");

    // Show one completed instance's witness.
    let c = rand_block(&mut rng, h, h);
    let e = rand_block(&mut rng, h, params.e_width());
    let inst = lemma35::complete(params, &c, &e).unwrap();
    let x = lemma35::completion_witness(&inst).expect("integral witness");
    println!(
        "witness x with A·x = B·u: {:?}",
        x.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );

    // ------------------------------------------------------------------
    // Lemma 3.2 on random (almost surely nonsingular) instances.
    // ------------------------------------------------------------------
    println!("\n--- Lemma 3.2: singular(M) ⟺ B·u ∈ Span(A) ---");
    let mut singular_count = 0;
    for _ in 0..50 {
        let inst = RestrictedInstance::random(params, &mut rng);
        assert!(lemma32::lemma32_holds(&inst));
        if lemma32::m_is_singular(&inst) {
            singular_count += 1;
        }
    }
    println!(
        "equivalence held on 50/50 random instances ({singular_count} happened to be singular)"
    );

    // ------------------------------------------------------------------
    // Lemma 3.4: distinct C ⇒ distinct spans.
    // ------------------------------------------------------------------
    println!("\n--- Lemma 3.4: span distinctness ---");
    let tiny = Params::new(5, 2);
    let count = lemma34::verify_injectivity_exhaustive(tiny, 200).unwrap();
    println!(
        "n = 5, k = 2: all q^(h²) = {count} C-instances give distinct Span(A) (exhaustive check)"
    );
    let sampled = lemma34::verify_injectivity_sampled(params, 25, &mut rng);
    println!(
        "n = {}, k = {}: {sampled} random perturbation pairs all distinct",
        params.n, params.k
    );

    // ------------------------------------------------------------------
    // Lemmas 3.3/3.6: intersections shrink as rectangles grow rows.
    // ------------------------------------------------------------------
    println!("\n--- Lemmas 3.3/3.6: span intersections under growing row sets ---");
    let mut cs: Vec<Matrix<Integer>> = Vec::new();
    print!("rows:dim  ");
    for r in 1..=6 {
        cs.push(rand_block(&mut rng, h, h));
        let dim = rectangles::intersection_dimension(params, &cs);
        print!("{r}:{dim}  ");
    }
    println!(
        "\n(dimension starts at n−1 = {} and must fall below 7n/8−1 = {:.2} for huge row counts)",
        params.n - 1,
        rectangles::lemma36_dimension_bound(params)
    );

    // ------------------------------------------------------------------
    // The counting that assembles Theorem 1.1.
    // ------------------------------------------------------------------
    println!("\n--- Theorem 1.1 counting (log_q scale) ---");
    println!(
        "{:>4} {:>3} | {:>10} {:>10} {:>10} {:>12} {:>12} {:>10} | {:>12}",
        "n", "k", "rows", "cols", "ones", "small-rect", "large-rect", "d(f)", "bound(bits)"
    );
    for p in [
        Params::new(21, 2),
        Params::new(41, 4),
        Params::new(61, 8),
        Params::new(99, 8),
    ] {
        let b = counting::theorem_bound(p);
        println!(
            "{:>4} {:>3} | {:>10.1} {:>10.1} {:>10.1} {:>12.1} {:>12.1} {:>10.1} | {:>12.0}",
            p.n,
            p.k,
            b.rows_log_q,
            b.cols_log_q,
            b.ones_log_q,
            b.small_rect_area_log_q,
            b.large_rect_area_log_q,
            b.d_log_q,
            b.lower_bound_bits
        );
    }
    println!("\nbound/(k·n²) should approach a constant (the Ω(k n²) shape):");
    for p in [Params::new(41, 4), Params::new(61, 4), Params::new(99, 4)] {
        println!(
            "  n = {:>3}: {:.4}",
            p.n,
            counting::normalized_lower_bound(p)
        );
    }
}
