//! Deterministic vs randomized singularity testing — the paper's
//! Theorem 1.1 vs the Leighton (1987) bound, as live metered protocols.
//!
//! Sweeps matrix size and entry width, runs both protocols on random and
//! adversarial inputs, and prints worst-case communication next to the
//! theory lines `2k n²` and `O(n² max(log n, log k))`.
//!
//! Run with: `cargo run --release --example singularity_protocols`

use ccmx::comm::meter::{meter_inputs, meter_random};
use ccmx::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_singular_inputs(enc: &MatrixEncoding, count: usize, rng: &mut StdRng) -> Vec<BitString> {
    (0..count)
        .map(|_| {
            let mut m = Matrix::from_fn(enc.dim, enc.dim, |_, _| {
                Integer::from(rng.gen_range(0..(1i64 << enc.k)))
            });
            // Duplicate a random column to force singularity.
            let (src, dst) = (rng.gen_range(0..enc.dim), rng.gen_range(0..enc.dim));
            if src != dst {
                for r in 0..enc.dim {
                    m[(r, dst)] = m[(r, src)].clone();
                }
            } else {
                for r in 0..enc.dim {
                    m[(r, dst)] = Integer::zero();
                }
            }
            enc.encode(&m)
        })
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let security = 20;

    println!("=== Deterministic vs randomized singularity testing ===");
    println!("(worst-case bits over 40 random + 20 adversarial-singular inputs per cell)\n");
    println!(
        "{:>4} {:>3} | {:>12} {:>12} {:>12} | {:>8} {:>8}",
        "dim", "k", "input bits", "send-all", "mod-prime", "ratio", "errors"
    );

    for dim in [4usize, 6, 8, 10] {
        for k in [2u32, 8, 24, 48] {
            let f = Singularity::new(dim, k);
            let enc = f.enc;
            let pi0 = Partition::pi_zero(&enc);

            let det = SendAll::new(Singularity::new(dim, k));
            let prob = ModPrimeSingularity::new(dim, k, security);

            let det_rep = meter_random(&det, &pi0, &f, 40, 1);
            let singular_inputs = random_singular_inputs(&enc, 20, &mut rng);
            let det_sing = meter_inputs(&det, &pi0, &f, &singular_inputs, 2);
            assert_eq!(
                det_rep.errors + det_sing.errors,
                0,
                "deterministic protocol erred"
            );

            let prob_rep = meter_random(&prob, &pi0, &f, 40, 3);
            let prob_sing = meter_inputs(&prob, &pi0, &f, &singular_inputs, 4);

            let det_max = det_rep.max_bits.max(det_sing.max_bits);
            let prob_max = prob_rep.max_bits.max(prob_sing.max_bits);
            println!(
                "{:>4} {:>3} | {:>12} {:>12} {:>12} | {:>8.2} {:>8}",
                dim,
                k,
                enc.total_bits(),
                det_max,
                prob_max,
                det_max as f64 / prob_max as f64,
                prob_rep.errors + prob_sing.errors
            );
        }
    }

    println!("\nThe ratio grows with k at fixed dim (deterministic pays k/2 per entry;");
    println!("randomized pays ≈ log(k·dim) + security/entry): the paper's separation.");

    // ------------------------------------------------------------------
    // The same separation on the equality problem (context for §1).
    // ------------------------------------------------------------------
    println!("\n=== Equality: send-all vs fingerprinting ===");
    println!("{:>8} | {:>12} {:>12}", "bits", "send-all", "fingerprint");
    for half in [64usize, 512, 4096] {
        let _f = Equality { half_bits: half };
        let p = ccmx::comm::protocols::fingerprint::fixed_partition(half);
        let det = SendAll::new(Equality { half_bits: half });
        let fp = FingerprintEquality::new(half, security);
        // Cost is input-independent for both protocols; one run suffices.
        let mut input = BitString::zeros(half);
        input.extend(&BitString::zeros(half));
        let d = run_sequential(&det, &p, &input, 0).cost_bits();
        let r = run_sequential(&fp, &p, &input, 0).cost_bits();
        println!("{:>8} | {:>12} {:>12}", 2 * half, d, r);
    }
    println!("\nEquality fingerprinting is exponentially cheaper; Theorem 1.1 shows");
    println!("singularity testing admits no such deterministic shortcut.");
}
