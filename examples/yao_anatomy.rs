//! Anatomy of Yao's method, live: protocols *are* rectangle partitions.
//!
//! Runs real protocols on every input of a tiny domain, groups the runs
//! by transcript, and shows that (1) each class is a monochromatic
//! rectangle of the truth matrix, (2) the class count lower-bounds the
//! cost, and (3) amplification trades rounds for error exactly as the
//! one-sided analysis predicts.
//!
//! Run with: `cargo run --release --example yao_anatomy`

use ccmx::comm::randomized::{estimate_error, AmplifiedModPrime};
use ccmx::comm::yao::{classes_match_function, transcript_partition};
use ccmx::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. Transcript classes of real protocols are monochromatic rectangles.
    // ------------------------------------------------------------------
    println!("=== Protocols are rectangle partitions (Yao, Section 2) ===\n");
    let f = Singularity::new(2, 2);
    let enc = f.enc;
    let pi0 = Partition::pi_zero(&enc);

    for (name, tp) in [
        (
            "send-all",
            transcript_partition(&SendAll::new(f), &pi0, &Singularity::new(2, 2), 0),
        ),
        (
            "mod-prime (coins fixed)",
            transcript_partition(
                &ModPrimeSingularity::new(2, 2, 12),
                &pi0,
                &Singularity::new(2, 2),
                7,
            ),
        ),
    ] {
        let rects = tp.all_monochromatic_rectangles();
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = tp.classes.iter().map(|c| c.members.len()).collect();
            s.sort_unstable_by(|a, b| b.cmp(a));
            s.truncate(6);
            s
        };
        println!(
            "{name:>24}: {} classes over the 16x16 domain; all rectangles: {rects}; \
             largest classes {sizes:?}; worst cost {} bits ≥ log₂(classes) − 1 = {:.1}",
            tp.classes.len(),
            tp.max_cost_bits,
            (tp.classes.len() as f64).log2() - 1.0
        );
        assert!(rects);
    }
    println!();

    // A *correct* protocol's classes agree with the function everywhere.
    let tp = transcript_partition(&SendAll::new(f), &pi0, &Singularity::new(2, 2), 0);
    println!(
        "send-all classes match the singularity function on every input: {}\n",
        classes_match_function(&tp, &pi0, &Singularity::new(2, 2))
    );

    // ------------------------------------------------------------------
    // 2. Amplification: rounds vs error for the one-sided protocol.
    // ------------------------------------------------------------------
    println!("=== Amplification: error^t at t× the cost (one-sided AND-vote) ===\n");
    let inner = ModPrimeSingularity::new(4, 3, 8); // deliberately weak window
    println!(
        "{:>7} | {:>12} | {:>14} | {:>12}",
        "rounds", "cost (bits)", "error bound", "measured err"
    );
    let p4 = Partition::pi_zero(&inner.enc);
    let fsing = Singularity::new(4, 3);
    // An input mix with known answers.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let inputs: Vec<BitString> = (0..12)
        .map(|i| {
            let mut m = Matrix::from_fn(4, 4, |_, _| {
                Integer::from(rand::Rng::gen_range(&mut rng, 0i64..8))
            });
            if i % 2 == 0 {
                for r in 0..4 {
                    m[(r, 3)] = m[(r, 0)].clone();
                }
            }
            inner.enc.encode(&m)
        })
        .collect();
    for t in [1usize, 2, 4] {
        let amp = AmplifiedModPrime::new(inner, t);
        let est = estimate_error(&amp, &p4, &fsing, &inputs, 20);
        println!(
            "{:>7} | {:>12} | {:>14.2e} | {:>12.4}",
            t,
            amp.predicted_cost(),
            amp.error_bound(),
            est.rate()
        );
        assert!(est.observed_one_sided());
    }
    println!("\n(singular inputs were never misclassified in any run — the one-sided");
    println!(" guarantee — and the no-side error shrinks with rounds.)");
}
