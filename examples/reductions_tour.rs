//! Corollaries 1.2 and 1.3: one hardness result, many problems.
//!
//! Demonstrates every reduction in the paper's corollaries on live
//! matrices: determinant, rank, QR, SVD and LUP all reveal singularity;
//! the `[[I, B], [A, C]]` block trick turns product verification into a
//! rank question; and the restricted family turns singularity into
//! linear-system solvability. Ends with the Lovász–Saks vector-space
//! span problem.
//!
//! Run with: `cargo run --release --example reductions_tour`

use ccmx::core::{reductions, span_problem, Params, RestrictedInstance};
use ccmx::linalg::lup::lup;
use ccmx::linalg::qr::qr;
use ccmx::linalg::ring::{IntegerRing, RationalField};
use ccmx::linalg::svd::svd_structure;
use ccmx::linalg::{bareiss, solve, Matrix};
use ccmx::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let zz = IntegerRing;
    let qf = RationalField;

    println!("=== Corollary 1.2: every decomposition answers singularity ===\n");
    let n = 4;
    for trial in 0..3 {
        let mut m = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(-4i64..=4)));
        if trial == 1 {
            // Make it singular.
            for r in 0..n {
                m[(r, n - 1)] = m[(r, 0)].clone();
            }
        }
        let truth = bareiss::is_singular(&m);
        let mq = m.map(|e| Rational::from(e.clone()));
        let det = bareiss::det(&m);
        let rank = bareiss::rank(&m);
        let qr_d = qr(&mq);
        let svd = svd_structure(&m);
        let lup_d = lup(&qf, &mq);
        println!("matrix #{trial}: singular = {truth}");
        println!(
            "  (a) det        = {det:>8}  → singular: {}",
            reductions::singular_from_det(&det)
        );
        println!(
            "  (b) rank       = {rank:>8}  → singular: {}",
            reductions::singular_from_rank(rank, n)
        );
        println!(
            "  (c) QR         = zero Q col → singular: {}",
            reductions::singular_from_qr(&qr_d)
        );
        println!(
            "  (d) SVD        = {} nonzero σ → singular: {}",
            svd.rank,
            reductions::singular_from_svd(&svd)
        );
        println!(
            "  (e) LUP        = U zero row → singular: {}",
            reductions::singular_from_lup(&lup_d)
        );
        assert!(reductions::corollary12_consistent(&m));
    }

    println!("\n=== The Lin–Wu block trick: A·B = C ⟺ rank([[I,B],[A,C]]) = n ===\n");
    let a = Matrix::from_fn(3, 3, |_, _| Integer::from(rng.gen_range(-3i64..=3)));
    let b = Matrix::from_fn(3, 3, |_, _| Integer::from(rng.gen_range(-3i64..=3)));
    let c = a.mul(&zz, &b);
    let block = reductions::product_check_matrix(&a, &b, &c);
    println!(
        "rank of the 6x6 block matrix with the TRUE product:  {}",
        bareiss::rank(&block)
    );
    let mut wrong = c.clone();
    wrong[(1, 1)] += &Integer::one();
    let block_wrong = reductions::product_check_matrix(&a, &b, &wrong);
    println!(
        "rank with one entry of C perturbed:                  {}",
        bareiss::rank(&block_wrong)
    );
    assert!(reductions::product_check_via_rank(&a, &b, &c));
    assert!(!reductions::product_check_via_rank(&a, &b, &wrong));

    println!("\n=== Corollary 1.3: singularity ⟺ solvability on the hard family ===\n");
    let params = Params::new(7, 2);
    for label in ["random (nonsingular w.h.p.)", "completed (singular)"] {
        let inst = if label.starts_with("random") {
            RestrictedInstance::random(params, &mut rng)
        } else {
            let free = RestrictedInstance::random(params, &mut rng);
            ccmx::core::lemma35::complete(params, &free.c, &free.e).unwrap()
        };
        let m = inst.assemble();
        let (mp, rhs) = reductions::solvability_system(&inst);
        let singular = bareiss::is_singular(&m);
        let solvable = solve::is_solvable(&mp, &rhs);
        println!("{label}: singular(M) = {singular}, solvable(M'x = b) = {solvable}");
        assert_eq!(singular, solvable);
    }

    println!("\n=== The vector-space span problem (Lovász–Saks) ===\n");
    let m = Matrix::from_fn(4, 4, |_, _| Integer::from(rng.gen_range(0i64..4)));
    let (v1, v2) = span_problem::singularity_as_span_instance(&m);
    let spans = span_problem::union_spans_all(&v1, &v2);
    println!(
        "M nonsingular = {}, union of column-half spans covers Q⁴ = {spans}",
        !bareiss::is_singular(&m)
    );
    let (canon, bits) = span_problem::canonical_message(&v1);
    println!(
        "fixed-partition protocol: A ships the canonical form of Span(V₁) — {} rows, ≈{} bits",
        canon.rows(),
        bits
    );
    let x = vec![
        vec![Integer::from(1i64), Integer::from(0i64)],
        vec![Integer::from(0i64), Integer::from(1i64)],
        vec![Integer::from(1i64), Integer::from(1i64)],
    ];
    let lattice = span_problem::count_subspace_lattice(&x, 1 << 10);
    println!(
        "subspace lattice of X = {{e₁, e₂, e₁+e₂}} has #L = {lattice}; Lovász–Saks bound = log₂#L = {:.2} bits",
        (lattice as f64).log2()
    );
}
