//! Property and exhaustiveness tests for the exact CC(f) solver.
//!
//! The reference implementation here (`brute_cc`) is written from the
//! Bellman recursion with no canonicalization, no memo and no bound
//! certificates, so it shares no code with the production solver.

use ccmx_comm::bounds::lower_bounds;
use ccmx_comm::functions::Singularity;
use ccmx_comm::partition::Partition;
use ccmx_comm::truth::TruthMatrix;
use ccmx_search::{solve, SearchConfig};
use proptest::prelude::*;

/// Exhaustive reference solver (independent of `ccmx_search`).
fn brute_cc(t: &TruthMatrix) -> u32 {
    fn go(t: &TruthMatrix, rows: &[usize], cols: &[usize]) -> u32 {
        let first = t.get(rows[0], cols[0]);
        if rows
            .iter()
            .all(|&x| cols.iter().all(|&y| t.get(x, y) == first))
        {
            return 0;
        }
        let mut best = u32::MAX;
        for s in 1..(1u64 << (rows.len() - 1)) {
            let mask = s << 1;
            let zero: Vec<usize> = rows
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask >> i & 1 == 0)
                .map(|(_, &x)| x)
                .collect();
            let one: Vec<usize> = rows
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask >> i & 1 == 1)
                .map(|(_, &x)| x)
                .collect();
            best = best.min(1 + go(t, &zero, cols).max(go(t, &one, cols)));
        }
        for s in 1..(1u64 << (cols.len() - 1)) {
            let mask = s << 1;
            let zero: Vec<usize> = cols
                .iter()
                .enumerate()
                .filter(|&(j, _)| mask >> j & 1 == 0)
                .map(|(_, &y)| y)
                .collect();
            let one: Vec<usize> = cols
                .iter()
                .enumerate()
                .filter(|&(j, _)| mask >> j & 1 == 1)
                .map(|(_, &y)| y)
                .collect();
            best = best.min(1 + go(t, rows, &zero).max(go(t, rows, &one)));
        }
        best
    }
    let rows: Vec<usize> = (0..t.rows()).collect();
    let cols: Vec<usize> = (0..t.cols()).collect();
    go(t, &rows, &cols)
}

fn serial() -> SearchConfig {
    SearchConfig {
        threads: 1,
        ..SearchConfig::default()
    }
}

fn ceil_log2(n: usize) -> u32 {
    (usize::BITS - n.saturating_sub(1).leading_zeros()) * u32::from(n > 1)
}

#[test]
fn exhaustive_3x3_matches_brute_force() {
    // All 2^9 truth matrices on a 3x3 rectangle, one shared solver per
    // run is deliberately NOT used: every matrix gets a fresh solve so
    // a memo bug cannot leak between cases.
    for bits in 0u16..512 {
        let t = TruthMatrix::from_fn(3, 3, |x, y| bits >> (x * 3 + y) & 1 == 1);
        let expect = brute_cc(&t);
        let got = solve(&t, &serial()).unwrap();
        assert!(got.exact, "matrix {bits:#b} not solved exactly");
        assert_eq!(got.cc, expect, "matrix {bits:#b}");
        let cert = got
            .certificate
            .unwrap_or_else(|| panic!("matrix {bits:#b} has no certificate"));
        cert.verify()
            .unwrap_or_else(|e| panic!("matrix {bits:#b}: {e}"));
        assert_eq!(cert.cc, expect);
    }
}

#[test]
fn paper_small_hard_instances() {
    // Equality on n bits is the 2^n identity: CC = n + 1 (n bits to
    // name the row, one for the verdict; χ > 2^n rules out depth n).
    for n in [1usize, 2, 3] {
        let t = TruthMatrix::from_fn(1 << n, 1 << n, |x, y| x == y);
        let r = solve(&t, &serial()).unwrap();
        assert!(r.exact);
        assert_eq!(r.cc, n as u32 + 1, "equality on {n} bits");
    }
    // The paper's singularity function at its smallest partition:
    // 2x2 matrices of 1-bit entries under π₀ (A holds column 1).
    let f = Singularity::new(2, 1);
    let pi0 = Partition::pi_zero(&f.enc);
    let t = TruthMatrix::enumerate(&f, &pi0, 1);
    assert_eq!((t.rows(), t.cols()), (4, 4));
    let r = solve(&t, &serial()).unwrap();
    assert!(r.exact);
    assert_eq!(r.cc, brute_cc(&t), "singularity dim 2 k 1 under pi0");
    let cert = r.certificate.expect("4x4 instance must yield a witness");
    cert.verify().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Satellite: for random matrices up to 5x5 the exact CC sits in
    // [lower_bounds, ceil(log2 distinct_rows) + 1] and every emitted
    // certificate passes the independent verifier.
    #[test]
    fn cc_within_certified_bracket(rows in 1usize..6, cols in 1usize..6, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = TruthMatrix::from_fn(rows, cols, |_, _| rng.gen());
        let r = solve(&t, &serial()).unwrap();
        prop_assert!(r.exact);
        let rep = lower_bounds(&t);
        prop_assert!(
            f64::from(r.cc) >= rep.comm_lower_bound_bits,
            "cc {} below certified lower bound {}",
            r.cc,
            rep.comm_lower_bound_bits
        );
        let trivial_upper = ceil_log2(rep.distinct_rows) + u32::from(rep.distinct_rows > 1 || rep.distinct_cols > 1);
        prop_assert!(
            r.cc <= trivial_upper,
            "cc {} above the row-announce bound {}",
            r.cc,
            trivial_upper
        );
        let cert = r.certificate.expect("small instances always yield witnesses");
        prop_assert!(cert.verify().is_ok());
        prop_assert_eq!(cert.cc, r.cc);
    }

    // Parallel and serial search must agree exactly (the incumbent /
    // cancellation machinery may change *work*, never the answer).
    #[test]
    fn parallel_serial_and_memoless_agree(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = TruthMatrix::from_fn(5, 5, |_, _| rng.gen());
        let a = solve(&t, &serial()).unwrap();
        let b = solve(&t, &SearchConfig { threads: 4, ..SearchConfig::default() }).unwrap();
        let c = solve(&t, &SearchConfig { threads: 1, use_memo: false, ..SearchConfig::default() }).unwrap();
        prop_assert_eq!(a.cc, b.cc);
        prop_assert_eq!(a.cc, c.cc);
    }

    // Certificates survive the disk round-trip byte-for-byte.
    #[test]
    fn certificate_serialization_round_trips(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        use ccmx_search::CcCertificate;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = TruthMatrix::from_fn(4, 4, |_, _| rng.gen());
        let r = solve(&t, &serial()).unwrap();
        let cert = r.certificate.expect("4x4 always yields a witness");
        let back = CcCertificate::from_bytes(&cert.to_bytes()).unwrap();
        prop_assert_eq!(&back, &cert);
        let text = CcCertificate::from_hex(&cert.to_hex()).unwrap();
        prop_assert_eq!(&text, &cert);
    }
}
