//! Canonicalized sub-rectangles.
//!
//! The branch-and-bound solver revisits the same sub-rectangle
//! exponentially often: a rectangle reached by splitting rows then
//! columns is also reached by splitting columns then rows, and two
//! syntactically different rectangles with the same multiset of
//! distinct rows/columns have the same communication complexity.
//! Every rectangle is therefore reduced to a *canonical form* before
//! it is searched or memoized:
//!
//! 1. duplicate rows and duplicate columns are removed (a
//!    CC-preserving reduction: a protocol never needs to distinguish
//!    identical inputs),
//! 2. rows and columns are sorted by their bit patterns, alternating
//!    until a fixpoint (row order permutes column patterns and vice
//!    versa, so one pass is not enough),
//! 3. the lexicographically smaller of the matrix and its transpose is
//!    kept (CC is symmetric in the speakers).
//!
//! Step 2's fixpoint iteration is capped: sorting is deterministic, so
//! the map stays *sound* (equal keys ⟹ equal CC) even if two
//! equivalent rectangles occasionally canonicalize differently — that
//! only costs a duplicated memo entry, never a wrong bound.
//!
//! Rectangles are capped at 64×64 so that a row is exactly one `u64`
//! column-bitmask and a whole rectangle is at most 64 words.

/// Largest side the exact solver accepts: one `u64` per row/column.
pub const MAX_SEARCH_DIM: usize = 64;

/// Which party speaks at a protocol-tree node: `Rows` is player A
/// (who holds the row index), `Cols` is player B.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Speaker {
    /// Player A bipartitions the rectangle's rows.
    Rows,
    /// Player B bipartitions the rectangle's columns.
    Cols,
}

/// One branch-and-bound move: the speaker announces one bit splitting
/// their side by `mask` (set bits go to the `one` child). The mask is
/// over the *canonical* rectangle's row (or column) indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Move {
    /// Whose side is split.
    pub speaker: Speaker,
    /// Subset of the speaker's indices sent to the `one` child.
    /// Always excludes index 0 (fixing one side kills the mirror-image
    /// duplicate of every bipartition).
    pub mask: u64,
}

/// A canonical sub-rectangle: `rows[i]` is row `i`'s column-bitmask
/// over `ncols` columns, rows and columns deduplicated and sorted.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Canon {
    rows: Vec<u64>,
    ncols: u32,
}

fn dedup_sorted(mut rows: Vec<u64>) -> Vec<u64> {
    rows.sort_unstable();
    rows.dedup();
    rows
}

/// Transpose a row-mask matrix: `rows.len() ≤ 64` columns out.
pub(crate) fn transpose_masks(rows: &[u64], ncols: usize) -> Vec<u64> {
    debug_assert!(rows.len() <= 64);
    let mut cols = vec![0u64; ncols];
    for (i, &r) in rows.iter().enumerate() {
        let mut bits = r;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            cols[j] |= 1u64 << i;
            bits &= bits - 1;
        }
    }
    cols
}

/// Compact the bits of `word` selected by `mask` into the low bits
/// (software PEXT).
pub(crate) fn extract_bits(word: u64, mut mask: u64) -> u64 {
    let mut out = 0u64;
    let mut k = 0u32;
    while mask != 0 {
        let j = mask.trailing_zeros();
        out |= ((word >> j) & 1) << k;
        k += 1;
        mask &= mask - 1;
    }
    out
}

/// Alternate row-sort / column-sort (with dedup) to a fixpoint, capped
/// at a handful of passes (see the module docs: the cap affects only
/// dedup quality, never soundness).
fn canon_orient(mut rows: Vec<u64>, mut ncols: usize) -> (Vec<u64>, usize) {
    for _ in 0..8 {
        let before_rows = rows.clone();
        let before_ncols = ncols;
        rows = dedup_sorted(rows);
        let cols = dedup_sorted(transpose_masks(&rows, ncols));
        ncols = cols.len();
        rows = transpose_masks(&cols, rows.len());
        if rows == before_rows && ncols == before_ncols {
            break;
        }
    }
    (rows, ncols)
}

impl Canon {
    /// Canonicalize a raw rectangle given as row masks over `ncols`
    /// columns. Panics on empty rectangles or sides above
    /// [`MAX_SEARCH_DIM`] — the solver never constructs either.
    pub fn new(rows: Vec<u64>, ncols: usize) -> Canon {
        assert!(
            !rows.is_empty() && ncols > 0,
            "empty rectangles have no canonical form"
        );
        assert!(
            rows.len() <= MAX_SEARCH_DIM && ncols <= MAX_SEARCH_DIM,
            "rectangle exceeds the {MAX_SEARCH_DIM}x{MAX_SEARCH_DIM} search cap"
        );
        let (ar, ac) = canon_orient(rows.clone(), ncols);
        let (br, bc) = canon_orient(transpose_masks(&rows, ncols), rows.len());
        // Prefer the orientation with fewer rows, then fewer columns,
        // then the lexicographically smaller row list.
        let a_key = (ar.len(), ac);
        let b_key = (br.len(), bc);
        let (rows, ncols) = if (a_key, &ar) <= (b_key, &br) {
            (ar, ac)
        } else {
            (br, bc)
        };
        Canon {
            rows,
            ncols: ncols as u32,
        }
    }

    /// Canonicalize a full truth matrix.
    pub fn from_truth(t: &ccmx_comm::truth::TruthMatrix) -> Canon {
        assert!(
            t.rows() <= MAX_SEARCH_DIM && t.cols() <= MAX_SEARCH_DIM,
            "truth matrix exceeds the {MAX_SEARCH_DIM}x{MAX_SEARCH_DIM} search cap"
        );
        let rows: Vec<u64> = (0..t.rows())
            .map(|x| {
                (0..t.cols())
                    .filter(|&y| t.get(x, y))
                    .fold(0u64, |m, y| m | 1 << y)
            })
            .collect();
        Canon::new(rows, t.cols())
    }

    /// Number of (distinct) rows.
    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    /// Number of (distinct) columns.
    pub fn ncols(&self) -> usize {
        self.ncols as usize
    }

    /// Row masks (each over [`Canon::ncols`] bits).
    pub fn row_masks(&self) -> &[u64] {
        &self.rows
    }

    /// `Some(value)` iff the rectangle is monochromatic. Canonical
    /// monochromatic rectangles are exactly the two 1×1 forms.
    pub fn mono_value(&self) -> Option<bool> {
        if self.rows.len() == 1 && self.ncols == 1 {
            Some(self.rows[0] & 1 == 1)
        } else {
            None
        }
    }

    /// The canonical complement rectangle (0 ↔ 1 flipped): its rank
    /// certificates bound the number of 0-monochromatic leaves.
    pub fn complement(&self) -> Canon {
        let full = if self.ncols == 64 {
            u64::MAX
        } else {
            (1u64 << self.ncols) - 1
        };
        Canon::new(self.rows.iter().map(|r| !r & full).collect(), self.ncols())
    }

    /// Materialize as a [`ccmx_comm::truth::TruthMatrix`] so the
    /// `comm::bounds` certificates apply directly.
    pub fn to_truth(&self) -> ccmx_comm::truth::TruthMatrix {
        ccmx_comm::truth::TruthMatrix::from_fn(self.nrows(), self.ncols(), |x, y| {
            self.rows[x] >> y & 1 == 1
        })
    }

    /// Apply a move: both children, canonicalized. The mask must be a
    /// nontrivial subset of the speaker's indices.
    pub fn children(&self, mv: &Move) -> (Canon, Canon) {
        match mv.speaker {
            Speaker::Rows => {
                let side = self.rows.len();
                let full = if side == 64 {
                    u64::MAX
                } else {
                    (1u64 << side) - 1
                };
                debug_assert!(mv.mask != 0 && mv.mask & !full == 0 && mv.mask != full);
                let pick = |bits: u64| -> Vec<u64> {
                    let mut out = Vec::with_capacity(bits.count_ones() as usize);
                    let mut b = bits;
                    while b != 0 {
                        out.push(self.rows[b.trailing_zeros() as usize]);
                        b &= b - 1;
                    }
                    out
                };
                (
                    Canon::new(pick(full & !mv.mask), self.ncols()),
                    Canon::new(pick(mv.mask), self.ncols()),
                )
            }
            Speaker::Cols => {
                let side = self.ncols();
                let full = if side == 64 {
                    u64::MAX
                } else {
                    (1u64 << side) - 1
                };
                debug_assert!(mv.mask != 0 && mv.mask & !full == 0 && mv.mask != full);
                let keep = full & !mv.mask;
                let zero: Vec<u64> = self.rows.iter().map(|&r| extract_bits(r, keep)).collect();
                let one: Vec<u64> = self
                    .rows
                    .iter()
                    .map(|&r| extract_bits(r, mv.mask))
                    .collect();
                (
                    Canon::new(zero, keep.count_ones() as usize),
                    Canon::new(one, mv.mask.count_ones() as usize),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmx_comm::truth::TruthMatrix;

    #[test]
    fn mono_collapses_to_1x1() {
        let ones = Canon::new(vec![0b111, 0b111], 3);
        assert_eq!(ones.mono_value(), Some(true));
        let zeros = Canon::new(vec![0, 0, 0], 5);
        assert_eq!(zeros.mono_value(), Some(false));
    }

    #[test]
    fn permutations_and_duplicates_share_a_key() {
        // [[1,0],[0,1]] with a duplicated row and swapped columns.
        let a = Canon::new(vec![0b01, 0b10], 2);
        let b = Canon::new(vec![0b10, 0b01, 0b10], 2);
        assert_eq!(a, b);
        // Transpose maps to the same canonical form too.
        let t = TruthMatrix::from_fn(2, 3, |x, y| (x + y) % 2 == 0);
        assert_eq!(Canon::from_truth(&t), Canon::from_truth(&t.transpose()));
    }

    #[test]
    fn children_split_rows_and_cols() {
        // Identity 3x3; split row 1|{0,2}.
        let c = Canon::from_truth(&TruthMatrix::from_fn(3, 3, |x, y| x == y));
        assert_eq!((c.nrows(), c.ncols()), (3, 3));
        let (z, o) = c.children(&Move {
            speaker: Speaker::Rows,
            mask: 0b010,
        });
        // One row vs two rows; the singleton becomes [0 1] (one 1-col,
        // the dead columns merge), the pair stays a 2x3 partial identity.
        assert_eq!(o.nrows(), 1);
        assert!(z.nrows() == 2);
        let (z2, o2) = c.children(&Move {
            speaker: Speaker::Cols,
            mask: 0b100,
        });
        // The singleton-column child is a 2x1 / 1x2 half-identity (the
        // orientation rule may transpose it); the other keeps 2 columns.
        assert_eq!(o2.nrows() * o2.ncols(), 2);
        assert!(z2.ncols() <= 3 && z2.nrows() <= 3);
    }

    #[test]
    fn extract_bits_is_pext() {
        assert_eq!(extract_bits(0b1011, 0b1010), 0b11);
        assert_eq!(extract_bits(0b1011, 0b0101), 0b01);
        assert_eq!(extract_bits(0b1000, 0b1111), 0b1000);
        assert_eq!(extract_bits(u64::MAX, u64::MAX), u64::MAX);
    }
}
