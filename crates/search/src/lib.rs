//! # ccmx-search — exact `CC(f)` by branch-and-bound
//!
//! The paper's certificates (rank, fooling sets) only *bracket* the
//! deterministic communication complexity of a truth matrix; deciding
//! the exact value is NP-hard (Hirahara–Ilango–Loff), which makes the
//! interesting artifact the *search engine*: how fast can branch and
//! bound close the bracket? This crate explores protocol trees over
//! row/column bipartitions of sub-rectangles with three accelerators —
//! a canonicalized sub-rectangle memo ([`rect::Canon`]), cheap-first
//! pruning certificates seeded from `comm::bounds`, and parallel root
//! search on the shared `linalg::pool` with an atomic incumbent — and
//! emits serializable, independently verifiable optimal-protocol
//! certificates ([`certificate::CcCertificate`]).
//!
//! ```
//! use ccmx_comm::truth::TruthMatrix;
//! use ccmx_search::{solve, SearchConfig};
//!
//! // Equality on 2 bits: the 4x4 identity has CC = 3
//! // (χ = 4 one-leaves + ≥3 zero-leaves > 2^2 forces depth 3).
//! let eq = TruthMatrix::from_fn(4, 4, |x, y| x == y);
//! let r = solve(&eq, &SearchConfig::default()).unwrap();
//! assert!(r.exact);
//! assert_eq!(r.cc, 3);
//! let cert = r.certificate.unwrap();
//! cert.verify().unwrap();
//! ```

#![deny(missing_docs)]

pub mod certificate;
pub mod rect;
pub mod solver;

pub use certificate::{CcCertificate, CcTree};
pub use rect::{Canon, Move, Speaker, MAX_SEARCH_DIM};
pub use solver::{solve, CcResult, SearchConfig, SearchError, SearchStats};

use ccmx_comm::truth::TruthMatrix;

/// The root frontier of the search, for distributing across shards:
/// every nontrivial first move on the matrix's duplicate classes, as
/// pairs of concrete child sub-matrices `(zero, one)`. By the Bellman
/// recursion, for a non-monochromatic `t`,
/// `CC(t) = min over these pairs of 1 + max(CC(zero), CC(one))`
/// (see [`combine_root`]). Duplicate rows/columns are collapsed first,
/// so the frontier and the children stay small on the wire.
///
/// Panics if a side has more than 12 duplicate classes (the frontier
/// would not be worth shipping) — callers fan out small instances and
/// solve big structured ones locally.
pub fn root_moves(t: &TruthMatrix) -> Vec<(TruthMatrix, TruthMatrix)> {
    assert!(
        t.rows() <= MAX_SEARCH_DIM && t.cols() <= MAX_SEARCH_DIM,
        "root_moves is capped at {MAX_SEARCH_DIM}x{MAX_SEARCH_DIM}"
    );
    let canon = Canon::from_truth(t);
    if canon.mono_value().is_some() {
        return Vec::new();
    }
    let (r, c) = (canon.nrows(), canon.ncols());
    assert!(
        r <= 12 && c <= 12,
        "root frontier of a {r}x{c}-class matrix is too wide to ship"
    );
    let mut out = Vec::new();
    for (speaker, side) in [(Speaker::Rows, r), (Speaker::Cols, c)] {
        for s in 1..(1u64 << (side - 1)) {
            let (zero, one) = canon.children(&Move {
                speaker,
                mask: s << 1,
            });
            out.push((zero.to_truth(), one.to_truth()));
        }
    }
    out
}

/// Fold the root frontier back together: `min over moves of
/// 1 + max(cc_zero, cc_one)`. Returns `None` on an empty frontier
/// (monochromatic root, `CC = 0`).
pub fn combine_root(children_cc: &[(u32, u32)]) -> Option<u32> {
    children_cc.iter().map(|&(a, b)| 1 + a.max(b)).min()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference solver: plain exhaustive recursion on concrete
    /// rectangles, no canonicalization, no memo, no certificates
    /// beyond the monochromatic check. Deliberately independent of the
    /// production code paths.
    pub(crate) fn brute_cc(t: &TruthMatrix) -> u32 {
        type Split<'a> = (Vec<(usize, &'a usize)>, Vec<(usize, &'a usize)>);
        fn go(t: &TruthMatrix, rows: &[usize], cols: &[usize], fuel: u32) -> u32 {
            let first = t.get(rows[0], cols[0]);
            if rows
                .iter()
                .all(|&x| cols.iter().all(|&y| t.get(x, y) == first))
            {
                return 0;
            }
            assert!(fuel > 0, "brute force ran out of depth");
            let mut best = u32::MAX;
            for s in 1..(1u64 << (rows.len() - 1)) {
                let mask = s << 1;
                let (zero, one): Split = rows
                    .iter()
                    .enumerate()
                    .partition(|&(i, _)| mask >> i & 1 == 0);
                let zero: Vec<usize> = zero.into_iter().map(|(_, &x)| x).collect();
                let one: Vec<usize> = one.into_iter().map(|(_, &x)| x).collect();
                let v = 1 + go(t, &zero, cols, fuel - 1).max(go(t, &one, cols, fuel - 1));
                best = best.min(v);
            }
            for s in 1..(1u64 << (cols.len() - 1)) {
                let mask = s << 1;
                let (zero, one): Split = cols
                    .iter()
                    .enumerate()
                    .partition(|&(j, _)| mask >> j & 1 == 0);
                let zero: Vec<usize> = zero.into_iter().map(|(_, &y)| y).collect();
                let one: Vec<usize> = one.into_iter().map(|(_, &y)| y).collect();
                let v = 1 + go(t, rows, &zero, fuel - 1).max(go(t, rows, &one, fuel - 1));
                best = best.min(v);
            }
            best
        }
        let rows: Vec<usize> = (0..t.rows()).collect();
        let cols: Vec<usize> = (0..t.cols()).collect();
        go(t, &rows, &cols, 8)
    }

    fn serial() -> SearchConfig {
        SearchConfig {
            threads: 1,
            ..SearchConfig::default()
        }
    }

    #[test]
    fn known_small_values() {
        // Constant matrices: CC = 0.
        let ones = TruthMatrix::from_fn(3, 5, |_, _| true);
        assert_eq!(solve(&ones, &serial()).unwrap().cc, 0);
        // One distinguishing bit: CC = 1.
        let stripe = TruthMatrix::from_fn(2, 4, |_, y| y == 0);
        let r = solve(&stripe, &serial()).unwrap();
        assert_eq!((r.cc, r.exact), (1, true));
        // 2x2 identity: CC = 2.
        let eq1 = TruthMatrix::from_fn(2, 2, |x, y| x == y);
        assert_eq!(solve(&eq1, &serial()).unwrap().cc, 2);
        // 4x4 identity (equality on 2 bits): CC = 3.
        let eq2 = TruthMatrix::from_fn(4, 4, |x, y| x == y);
        assert_eq!(solve(&eq2, &serial()).unwrap().cc, 3);
    }

    #[test]
    fn matches_brute_force_on_mixed_shapes() {
        let mut seed = 0x5eed_cafe_u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for (r, c) in [(2, 2), (3, 3), (3, 4), (4, 4), (4, 3), (2, 5)] {
            for _ in 0..6 {
                let bits = next();
                let t = TruthMatrix::from_fn(r, c, |x, y| bits >> (x * c + y) & 1 == 1);
                let got = solve(&t, &serial()).unwrap();
                assert!(got.exact);
                assert_eq!(got.cc, brute_cc(&t), "matrix {bits:#x} at {r}x{c}");
                if let Some(cert) = got.certificate {
                    cert.verify().unwrap();
                    assert_eq!(cert.cc, got.cc);
                }
            }
        }
    }

    #[test]
    fn parallel_agrees_with_serial() {
        let mut seed = 0xdead_beef_u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            seed
        };
        let par = SearchConfig {
            threads: 4,
            ..SearchConfig::default()
        };
        for _ in 0..8 {
            let bits = next();
            let t = TruthMatrix::from_fn(5, 5, |x, y| bits >> (x * 5 + y) & 1 == 1);
            let a = solve(&t, &serial()).unwrap();
            let b = solve(&t, &par).unwrap();
            assert_eq!(a.cc, b.cc);
            assert!(a.exact && b.exact);
        }
    }

    #[test]
    fn memoless_agrees_with_memoized() {
        let t = TruthMatrix::from_fn(5, 5, |x, y| (x * 3 + y * 5) % 7 < 3);
        let with = solve(&t, &serial()).unwrap();
        let without = solve(
            &t,
            &SearchConfig {
                threads: 1,
                use_memo: false,
                ..SearchConfig::default()
            },
        )
        .unwrap();
        assert_eq!(with.cc, without.cc);
        assert_eq!(without.stats.memo_hits, 0);
        assert!(with.stats.memo_entries > 0);
        assert_eq!(without.stats.memo_entries, 0);
    }

    #[test]
    fn depth_limit_reports_inexact_lower_bound() {
        let eq2 = TruthMatrix::from_fn(4, 4, |x, y| x == y); // CC = 3
        let r = solve(
            &eq2,
            &SearchConfig {
                threads: 1,
                depth_limit: 1,
                ..SearchConfig::default()
            },
        )
        .unwrap();
        assert!(!r.exact);
        assert_eq!(r.cc, 2); // certified CC ≥ 2, nothing more
        assert!(r.certificate.is_none());
    }

    #[test]
    fn root_frontier_recombines_to_cc() {
        let t = TruthMatrix::from_fn(4, 4, |x, y| (x & y) != 0);
        let whole = solve(&t, &serial()).unwrap();
        let frontier = root_moves(&t);
        assert!(!frontier.is_empty());
        let ccs: Vec<(u32, u32)> = frontier
            .iter()
            .map(|(z, o)| {
                (
                    solve(z, &serial()).unwrap().cc,
                    solve(o, &serial()).unwrap().cc,
                )
            })
            .collect();
        assert_eq!(combine_root(&ccs), Some(whole.cc));
        // Monochromatic root: empty frontier.
        assert!(root_moves(&TruthMatrix::from_fn(3, 3, |_, _| true)).is_empty());
        assert_eq!(combine_root(&[]), None);
    }

    #[test]
    fn paper_hard_instances_close() {
        // Equality on 3 bits: 8x8 identity, CC = 4 (χ ≥ 8 + 7 > 2^3).
        let eq3 = TruthMatrix::from_fn(8, 8, |x, y| x == y);
        let r = solve(&eq3, &serial()).unwrap();
        assert_eq!((r.cc, r.exact), (4, true));
        // Greater-than on 3 bits: CC = 4.
        let gt3 = TruthMatrix::from_fn(8, 8, |x, y| x >= y);
        let r = solve(&gt3, &serial()).unwrap();
        assert!(r.exact);
        assert_eq!(r.cc, 4);
    }
}
