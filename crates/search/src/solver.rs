//! Branch-and-bound over protocol trees.
//!
//! `CC(R)` of a rectangle `R` satisfies the Bellman recursion
//!
//! ```text
//! CC(R) = 0                                    if R is monochromatic
//! CC(R) = min over speakers s and nontrivial bipartitions (R₀, R₁)
//!             of s's side:  1 + max(CC(R₀), CC(R₁))
//! ```
//!
//! The solver evaluates it with a budgeted search: `cc_bounded(R, b)`
//! returns the exact `CC(R)` when it is `≤ b`, and `b + 1` (a certified
//! "`> b`") otherwise. Three mechanisms keep the tree small:
//!
//! * **canonical memoization** ([`crate::rect::Canon`]): every
//!   rectangle is deduped/sorted before lookup, so isomorphic
//!   subproblems are solved once; the memo stores monotonically
//!   refined `(lower, upper)` bounds, which are budget-independent and
//!   therefore safe to share across calls with different budgets;
//! * **cheap-first pruning certificates**: `χ(R) ≥ rank(M) + rank(M̄)`
//!   over any field and `χ(R) ≥ |fooling set| + rank(M̄)` give
//!   `CC ≥ ⌈log₂ χ⌉`; certificates are evaluated cheapest first (GF(2)
//!   bitset rank, then the bitset fooling-set greedy, then big-prime
//!   rank on the PR-7 Montgomery kernels) and the search front is cut
//!   as soon as one clears the budget;
//! * **alpha-beta-style windows**: children are searched with budget
//!   `min(b, best − 1) − 1`, the harder-looking child first, so a
//!   failing move is abandoned after one child.
//!
//! With more than one thread the *root frontier* is searched in
//! parallel on the shared `linalg::pool`: every first move is a task,
//! an atomic incumbent is CAS-min'ed, and when the incumbent meets the
//! root lower bound a cancellation flag stops all siblings.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicU64, Ordering};

use ccmx_comm::bounds as cb;
use ccmx_comm::truth::TruthMatrix;
use ccmx_obs::{counter, gauge};
use parking_lot::Mutex;

use crate::certificate::{CcCertificate, CcTree};
use crate::rect::{Canon, Move, Speaker, MAX_SEARCH_DIM};

/// Mersenne prime `2^61 − 1`: odd and `< 2^62`, so the mod-p rank
/// certificate dispatches to the Montgomery kernel path, and large
/// enough that the rank of a 0/1 matrix equals its rank over ℚ.
const BIG_PRIME: u64 = (1 << 61) - 1;

/// Widest side (after dedup) the move enumerator will branch on:
/// `2^(side−1) − 1` bipartitions per speaker.
const MAX_BRANCH_SIDE: usize = 18;

/// How many shards the memo map is split into (hash of the canonical
/// rectangle picks the shard, so parallel workers rarely collide).
const MEMO_SHARDS: usize = 16;

/// Which certificate type justified a bound (indexes the prune
/// counters and the `certificate` metric label).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
enum CertKind {
    /// The trivial `χ ≥ 2` / non-monochromatic floor.
    Trivial = 0,
    /// GF(2) bitset rank (primal + complement).
    RankGf2 = 1,
    /// Greedy fooling set on the bitset fast path.
    Fooling = 2,
    /// Rank over the big prime field (Montgomery kernels).
    RankModP = 3,
    /// A previous exhausted search raised the stored lower bound.
    Search = 4,
}

const CERT_COUNT: usize = 5;
const CERT_NAMES: [&str; CERT_COUNT] = ["trivial", "rank_gf2", "fooling", "rank_modp", "search"];

impl CertKind {
    fn from_u8(v: u8) -> CertKind {
        match v {
            1 => CertKind::RankGf2,
            2 => CertKind::Fooling,
            3 => CertKind::RankModP,
            4 => CertKind::Search,
            _ => CertKind::Trivial,
        }
    }
}

/// Why a search was abandoned (never a wrong answer: the solver either
/// completes exactly or reports *why* it cannot).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchError {
    /// Input exceeds the 64×64 cap (or is empty).
    BadInput(String),
    /// Branching would enumerate `2^(side−1)` bipartitions of a side
    /// wider than the enumerator's cap.
    TooWide {
        /// Distinct-row/column count of the offending rectangle.
        side: usize,
    },
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::BadInput(msg) => write!(f, "bad search input: {msg}"),
            SearchError::TooWide { side } => write!(
                f,
                "refusing to branch a rectangle with {side} distinct rows/cols \
                 (cap {MAX_BRANCH_SIDE}: 2^{} bipartitions)",
                side.saturating_sub(1)
            ),
        }
    }
}

impl std::error::Error for SearchError {}

/// Why a recursive call unwound without an answer.
enum Stop {
    /// A sibling proved optimality (parallel mode only).
    Cancelled,
    /// Move enumeration over-wide; surfaces as [`SearchError::TooWide`].
    TooWide(usize),
}

/// Solver knobs.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Worker threads for the root frontier (1 = fully serial).
    pub threads: usize,
    /// Memoize canonical rectangles (disable only to measure the win).
    pub use_memo: bool,
    /// Budget: answers above this depth are reported as inexact lower
    /// bounds. CC of any 64×64 matrix is at most 7, so the default 32
    /// never truncates.
    pub depth_limit: u32,
    /// Extract a checkable [`CcCertificate`] for exact answers.
    pub want_certificate: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1),
            use_memo: true,
            depth_limit: 32,
            want_certificate: true,
        }
    }
}

/// Per-solve observability counters (also flushed into the global
/// `ccmx_search_*` metric family).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Search-tree nodes expanded.
    pub nodes: u64,
    /// Canonical-rectangle memo hits.
    pub memo_hits: u64,
    /// Canonical-rectangle memo misses (bounds computed fresh).
    pub memo_misses: u64,
    /// Distinct canonical rectangles held in the memo at the end.
    pub memo_entries: u64,
    /// Subtrees cut by a lower-bound certificate clearing the budget,
    /// indexed like `["trivial", "rank_gf2", "fooling", "rank_modp",
    /// "search"]`.
    pub prunes: [u64; CERT_COUNT],
    /// Move loops cut because the incumbent met the lower bound.
    pub incumbent_cutoffs: u64,
}

impl SearchStats {
    /// Total prunes across certificate types.
    pub fn prunes_total(&self) -> u64 {
        self.prunes.iter().sum::<u64>()
    }

    /// Human-readable `name → count` view of the prune counters.
    pub fn prunes_by_certificate(&self) -> Vec<(&'static str, u64)> {
        CERT_NAMES.iter().copied().zip(self.prunes).collect()
    }
}

/// An exact-CC answer.
#[derive(Clone, Debug)]
pub struct CcResult {
    /// `CC(f)` when `exact`, else a certified lower bound (the search
    /// proved `CC(f) ≥ cc` before exhausting `depth_limit`).
    pub cc: u32,
    /// Whether `cc` is the exact communication complexity.
    pub exact: bool,
    /// Optimal protocol tree, when requested, exact, and small enough
    /// to re-derive (`None` otherwise — never wrong, just absent).
    pub certificate: Option<CcCertificate>,
    /// Search counters for this solve.
    pub stats: SearchStats,
}

#[derive(Clone, Copy)]
struct Entry {
    lo: u8,
    hi: u8,
    cert: u8,
}

struct Memo {
    enabled: bool,
    shards: Vec<Mutex<HashMap<Canon, Entry>>>,
}

impl Memo {
    fn new(enabled: bool) -> Memo {
        Memo {
            enabled,
            shards: (0..MEMO_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, canon: &Canon) -> &Mutex<HashMap<Canon, Entry>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        canon.hash(&mut h);
        &self.shards[(h.finish() as usize) % MEMO_SHARDS]
    }

    fn get(&self, canon: &Canon) -> Option<Entry> {
        self.shard(canon).lock().get(canon).copied()
    }

    fn insert_fresh(&self, canon: &Canon, e: Entry) {
        self.shard(canon).lock().entry(canon.clone()).or_insert(e);
    }

    /// Record an achievable upper bound (monotone min).
    fn lower_upper_to(&self, canon: &Canon, hi: u8) {
        if !self.enabled {
            return;
        }
        if let Some(e) = self.shard(canon).lock().get_mut(canon) {
            e.hi = e.hi.min(hi);
        }
    }

    /// Record a certified lower bound (monotone max).
    fn raise_lower_to(&self, canon: &Canon, lo: u8, cert: CertKind) {
        if !self.enabled {
            return;
        }
        if let Some(e) = self.shard(canon).lock().get_mut(canon) {
            if lo > e.lo {
                e.lo = lo;
                e.cert = cert as u8;
            }
        }
    }

    fn set_exact(&self, canon: &Canon, cc: u8) {
        if !self.enabled {
            return;
        }
        if let Some(e) = self.shard(canon).lock().get_mut(canon) {
            debug_assert!(e.lo <= cc && cc <= e.hi, "memo bounds must bracket cc");
            e.lo = cc;
            e.hi = cc;
        }
    }

    fn len(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().len() as u64).sum()
    }
}

fn ceil_log2(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

struct Search<'a> {
    cfg: &'a SearchConfig,
    memo: Memo,
    cancel: AtomicBool,
    nodes: AtomicU64,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    prunes: [AtomicU64; CERT_COUNT],
    incumbent_cutoffs: AtomicU64,
}

impl<'a> Search<'a> {
    fn new(cfg: &'a SearchConfig) -> Search<'a> {
        Search {
            cfg,
            memo: Memo::new(cfg.use_memo),
            cancel: AtomicBool::new(false),
            nodes: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            prunes: Default::default(),
            incumbent_cutoffs: AtomicU64::new(0),
        }
    }

    /// Cheapest-first lower-bound certificates plus the trivial upper
    /// bound for a non-monochromatic canonical rectangle.
    ///
    /// Lower: any protocol partitions `R` into monochromatic leaves;
    /// the 1-leaves cover the support, so their count is at least
    /// `max(rank_F(M), |fooling set|)`, the 0-leaves at least
    /// `rank_F(M̄)`; `CC ≥ ⌈log₂ χ⌉` with `χ` the leaf count.
    /// Upper: announce the row class (`⌈log₂ r⌉` bits), then one bit
    /// of the column's value in that row.
    fn fresh_bounds(&self, canon: &Canon) -> Entry {
        let r = canon.nrows();
        let c = canon.ncols();
        let hi = (ceil_log2(r.min(c) as u64) + 1) as u8;
        let t = canon.to_truth();
        let tc = canon.complement().to_truth();

        let mut ones_lb = 1usize;
        let mut zeros_lb = 1usize;
        let mut cert = CertKind::Trivial;

        let g1 = cb::rank_gf2(&t);
        let g0 = cb::rank_gf2(&tc);
        if g1 > ones_lb {
            ones_lb = g1;
            cert = CertKind::RankGf2;
        }
        if g0 > zeros_lb {
            zeros_lb = g0;
            cert = CertKind::RankGf2;
        }

        let f1 = cb::fooling_set_greedy(&t).len();
        let f0 = cb::fooling_set_greedy(&tc).len();
        if f1 > ones_lb {
            ones_lb = f1;
            cert = CertKind::Fooling;
        }
        if f0 > zeros_lb {
            zeros_lb = f0;
            cert = CertKind::Fooling;
        }

        // Big-prime rank only where it can beat GF(2) and the
        // certificate is not already tight against the upper bound.
        let closed = ceil_log2((ones_lb + zeros_lb) as u64) as u8 >= hi;
        if !closed && r.min(c) >= 4 && (g1 < r.min(c) || g0 < r.min(c)) {
            let p1 = cb::rank_mod_p(&t, BIG_PRIME);
            if p1 > ones_lb {
                ones_lb = p1;
                cert = CertKind::RankModP;
            }
            let p0 = cb::rank_mod_p(&tc, BIG_PRIME);
            if p0 > zeros_lb {
                zeros_lb = p0;
                cert = CertKind::RankModP;
            }
        }

        let lo = (ceil_log2((ones_lb + zeros_lb) as u64) as u8).clamp(1, hi);
        Entry {
            lo,
            hi,
            cert: cert as u8,
        }
    }

    fn bounds_of(&self, canon: &Canon) -> Entry {
        if self.memo.enabled {
            if let Some(e) = self.memo.get(canon) {
                self.memo_hits.fetch_add(1, Ordering::Relaxed);
                return e;
            }
            self.memo_misses.fetch_add(1, Ordering::Relaxed);
            let e = self.fresh_bounds(canon);
            self.memo.insert_fresh(canon, e);
            e
        } else {
            self.memo_misses.fetch_add(1, Ordering::Relaxed);
            self.fresh_bounds(canon)
        }
    }

    fn prune(&self, cert: CertKind) {
        self.prunes[cert as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// All nontrivial bipartition moves, balanced splits first
    /// (balanced splits minimize the larger child, which is what the
    /// `1 + max(...)` objective rewards), deterministic tie-break.
    fn order_moves(&self, canon: &Canon) -> Result<Vec<Move>, Stop> {
        let r = canon.nrows();
        let c = canon.ncols();
        let wide = r.max(c);
        if wide > MAX_BRANCH_SIDE {
            return Err(Stop::TooWide(wide));
        }
        let mut moves = Vec::with_capacity((1usize << (r - 1)) + (1usize << (c - 1)) - 2);
        for s in 1..(1u64 << (r - 1)) {
            moves.push(Move {
                speaker: Speaker::Rows,
                mask: s << 1,
            });
        }
        for s in 1..(1u64 << (c - 1)) {
            moves.push(Move {
                speaker: Speaker::Cols,
                mask: s << 1,
            });
        }
        let side = |mv: &Move| match mv.speaker {
            Speaker::Rows => r as u32,
            Speaker::Cols => c as u32,
        };
        moves.sort_unstable_by_key(|mv| {
            let ones = mv.mask.count_ones();
            let bigger = ones.max(side(mv) - ones);
            (bigger, mv.speaker as u8, mv.mask)
        });
        Ok(moves)
    }

    /// Cheap difficulty estimate used to search the harder child first.
    fn peek_difficulty(&self, canon: &Canon) -> u32 {
        if self.memo.enabled {
            if let Some(e) = self.memo.get(canon) {
                return u32::from(e.lo) << 8 | (canon.nrows() + canon.ncols()) as u32;
            }
        }
        (canon.nrows() + canon.ncols()) as u32
    }

    /// Exact `CC(canon)` if `≤ budget`, else `budget + 1` ("> budget").
    fn cc_bounded(&self, canon: &Canon, budget: i32) -> Result<i32, Stop> {
        if self.cancel.load(Ordering::Relaxed) {
            return Err(Stop::Cancelled);
        }
        self.nodes.fetch_add(1, Ordering::Relaxed);
        if canon.mono_value().is_some() {
            return Ok(0);
        }
        if budget <= 0 {
            // Non-monochromatic ⟹ CC ≥ 1 > budget.
            self.prune(CertKind::Trivial);
            return Ok(budget + 1);
        }
        let entry = self.bounds_of(canon);
        let (lo, hi) = (entry.lo as i32, entry.hi as i32);
        if lo > budget {
            self.prune(CertKind::from_u8(entry.cert));
            return Ok(budget + 1);
        }
        if lo == hi {
            return Ok(lo);
        }

        let mut best = hi;
        let moves = self.order_moves(canon)?;
        for mv in &moves {
            if best <= lo {
                self.incumbent_cutoffs.fetch_add(1, Ordering::Relaxed);
                break;
            }
            // Only protocols strictly better than `best` and within
            // `budget` matter; both children must fit in `limit − 1`.
            let limit = budget.min(best - 1);
            debug_assert!(limit >= 1);
            let (zero, one) = canon.children(mv);
            let (first, second) = if self.peek_difficulty(&one) > self.peek_difficulty(&zero) {
                (&one, &zero)
            } else {
                (&zero, &one)
            };
            let v1 = self.cc_bounded(first, limit - 1)?;
            if v1 > limit - 1 {
                continue;
            }
            let v2 = self.cc_bounded(second, limit - 1)?;
            if v2 > limit - 1 {
                continue;
            }
            best = 1 + v1.max(v2);
            debug_assert!(best <= limit);
            self.memo.lower_upper_to(canon, best as u8);
        }

        if best <= budget {
            // Every move was either evaluated exactly or proven ≥ best.
            self.memo.set_exact(canon, best as u8);
            Ok(best)
        } else {
            // Exhausted: no protocol of depth ≤ budget exists.
            self.memo
                .raise_lower_to(canon, (budget + 1) as u8, CertKind::Search);
            Ok(budget + 1)
        }
    }

    /// Parallel root frontier: each first move is a pool task sharing
    /// the memo, an atomic incumbent, and a cancellation flag.
    fn solve_root_parallel(&self, root: &Canon, budget: i32, root_lo: i32) -> Result<i32, Stop> {
        self.nodes.fetch_add(1, Ordering::Relaxed);
        let moves = self.order_moves(root)?;
        let incumbent = AtomicI32::new(budget + 1);
        let fatal: Mutex<Option<Stop>> = Mutex::new(None);
        ccmx_linalg::pool::run(moves.len(), self.cfg.threads, &|i| {
            if self.cancel.load(Ordering::Relaxed) {
                return;
            }
            let mv = &moves[i];
            let limit = budget.min(incumbent.load(Ordering::Relaxed) - 1);
            if limit < 1 {
                self.incumbent_cutoffs.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let (zero, one) = root.children(mv);
            let (first, second) = if self.peek_difficulty(&one) > self.peek_difficulty(&zero) {
                (&one, &zero)
            } else {
                (&zero, &one)
            };
            let outcome = (|| -> Result<Option<i32>, Stop> {
                let v1 = self.cc_bounded(first, limit - 1)?;
                if v1 > limit - 1 {
                    return Ok(None);
                }
                let v2 = self.cc_bounded(second, limit - 1)?;
                if v2 > limit - 1 {
                    return Ok(None);
                }
                Ok(Some(1 + v1.max(v2)))
            })();
            match outcome {
                Ok(None) | Err(Stop::Cancelled) => {}
                Ok(Some(cand)) => {
                    let mut cur = incumbent.load(Ordering::Relaxed);
                    while cand < cur {
                        match incumbent.compare_exchange_weak(
                            cur,
                            cand,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => {
                                self.memo.lower_upper_to(root, cand as u8);
                                if cand <= root_lo {
                                    // Optimal: cancel all siblings.
                                    self.cancel.store(true, Ordering::Relaxed);
                                }
                                break;
                            }
                            Err(now) => cur = now,
                        }
                    }
                }
                Err(stop) => {
                    *fatal.lock() = Some(stop);
                    self.cancel.store(true, Ordering::Relaxed);
                }
            }
        });
        // `pool::run` is a barrier; the flag only ever meant "siblings
        // may stop", so clear it before certificate extraction.
        self.cancel.store(false, Ordering::Relaxed);
        if let Some(stop) = fatal.into_inner() {
            return Err(stop);
        }
        let best = incumbent.load(Ordering::Relaxed);
        if best <= budget {
            self.memo.set_exact(root, best as u8);
            Ok(best)
        } else {
            self.memo
                .raise_lower_to(root, (budget + 1) as u8, CertKind::Search);
            Ok(budget + 1)
        }
    }

    /// Exact CC of a concrete sub-rectangle (by original row/col ids).
    fn cc_of_sub(
        &self,
        t: &TruthMatrix,
        rows: &[u32],
        cols: &[u32],
        budget: i32,
    ) -> Result<i32, Stop> {
        let masks: Vec<u64> = rows
            .iter()
            .map(|&x| {
                cols.iter()
                    .enumerate()
                    .filter(|&(_, &y)| t.get(x as usize, y as usize))
                    .fold(0u64, |m, (j, _)| m | 1 << j)
            })
            .collect();
        self.cc_bounded(&Canon::new(masks, cols.len()), budget)
    }

    /// Re-derive an optimal protocol tree for the concrete rectangle
    /// `(rows × cols)` whose exact CC is at most `budget`. Runs after
    /// the search, so the memo answers most `cc_bounded` probes.
    fn extract_node(
        &self,
        t: &TruthMatrix,
        rows: &[u32],
        cols: &[u32],
        budget: i32,
    ) -> Result<CcTree, Stop> {
        let first = t.get(rows[0] as usize, cols[0] as usize);
        let mono = rows
            .iter()
            .all(|&x| cols.iter().all(|&y| t.get(x as usize, y as usize) == first));
        if mono {
            return Ok(CcTree::Leaf { value: first });
        }
        let cc = self.cc_of_sub(t, rows, cols, budget)?;
        debug_assert!(cc <= budget, "extraction needs an exact cc within budget");

        // Group concrete rows (then columns) into duplicate classes and
        // enumerate bipartitions of the classes, balanced first — the
        // same move space the canonical search explored.
        let class_masks = |side: &[u32], patterns: &[u64]| -> Vec<u64> {
            let mut order: HashMap<u64, u64> = HashMap::new();
            for (i, &p) in patterns.iter().enumerate() {
                *order.entry(p).or_insert(0) |= 1u64 << i;
            }
            debug_assert!(side.len() == patterns.len());
            let mut classes: Vec<(u64, u64)> = order.into_iter().collect();
            classes.sort_unstable();
            classes.into_iter().map(|(_, m)| m).collect()
        };
        let row_patterns: Vec<u64> = rows
            .iter()
            .map(|&x| {
                cols.iter()
                    .enumerate()
                    .filter(|&(_, &y)| t.get(x as usize, y as usize))
                    .fold(0u64, |m, (j, _)| m | 1 << j)
            })
            .collect();
        let col_patterns: Vec<u64> = cols
            .iter()
            .map(|&y| {
                rows.iter()
                    .enumerate()
                    .filter(|&(_, &x)| t.get(x as usize, y as usize))
                    .fold(0u64, |m, (i, _)| m | 1 << i)
            })
            .collect();
        let row_classes = class_masks(rows, &row_patterns);
        let col_classes = class_masks(cols, &col_patterns);

        let mut candidates: Vec<(Speaker, u64)> = Vec::new();
        for (speaker, classes) in [(Speaker::Rows, &row_classes), (Speaker::Cols, &col_classes)] {
            let d = classes.len();
            if d - 1 > MAX_BRANCH_SIDE {
                return Err(Stop::TooWide(d));
            }
            if d < 2 {
                continue;
            }
            for s in 1..(1u64 << (d - 1)) {
                let mask = classes
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| s << 1 >> k & 1 == 1)
                    .fold(0u64, |m, (_, &cm)| m | cm);
                candidates.push((speaker, mask));
            }
        }
        let side_len = |speaker: Speaker| match speaker {
            Speaker::Rows => rows.len() as u32,
            Speaker::Cols => cols.len() as u32,
        };
        candidates.sort_unstable_by_key(|&(speaker, mask)| {
            let ones = mask.count_ones();
            (ones.max(side_len(speaker) - ones), speaker as u8, mask)
        });

        for (speaker, mask) in candidates {
            let (z_rows, z_cols, o_rows, o_cols) = match speaker {
                Speaker::Rows => {
                    let (z, o): (Vec<_>, Vec<_>) = rows
                        .iter()
                        .enumerate()
                        .partition(|&(i, _)| mask >> i & 1 == 0);
                    (
                        z.into_iter().map(|(_, &x)| x).collect::<Vec<u32>>(),
                        cols.to_vec(),
                        o.into_iter().map(|(_, &x)| x).collect::<Vec<u32>>(),
                        cols.to_vec(),
                    )
                }
                Speaker::Cols => {
                    let (z, o): (Vec<_>, Vec<_>) = cols
                        .iter()
                        .enumerate()
                        .partition(|&(j, _)| mask >> j & 1 == 0);
                    (
                        rows.to_vec(),
                        z.into_iter().map(|(_, &y)| y).collect::<Vec<u32>>(),
                        rows.to_vec(),
                        o.into_iter().map(|(_, &y)| y).collect::<Vec<u32>>(),
                    )
                }
            };
            let vz = self.cc_of_sub(t, &z_rows, &z_cols, cc - 1)?;
            if vz > cc - 1 {
                continue;
            }
            let vo = self.cc_of_sub(t, &o_rows, &o_cols, cc - 1)?;
            if vo > cc - 1 {
                continue;
            }
            let zero = self.extract_node(t, &z_rows, &z_cols, cc - 1)?;
            let one = self.extract_node(t, &o_rows, &o_cols, cc - 1)?;
            return Ok(CcTree::Node {
                speaker,
                mask,
                zero: Box::new(zero),
                one: Box::new(one),
            });
        }
        unreachable!("an exact cc always has a witnessing first move")
    }

    fn stats(&self) -> SearchStats {
        SearchStats {
            nodes: self.nodes.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.memo_misses.load(Ordering::Relaxed),
            memo_entries: self.memo.len(),
            prunes: std::array::from_fn(|i| self.prunes[i].load(Ordering::Relaxed)),
            incumbent_cutoffs: self.incumbent_cutoffs.load(Ordering::Relaxed),
        }
    }
}

fn flush_metrics(stats: &SearchStats) {
    counter!("ccmx_search_solves_total").inc();
    counter!("ccmx_search_nodes_total").add(stats.nodes);
    counter!("ccmx_search_memo_hits_total").add(stats.memo_hits);
    counter!("ccmx_search_memo_misses_total").add(stats.memo_misses);
    gauge!("ccmx_search_memo_entries").set(stats.memo_entries as i64);
    let [trivial, gf2, fooling, modp, search] = stats.prunes;
    counter!("ccmx_search_prunes_total", "certificate" => "trivial").add(trivial);
    counter!("ccmx_search_prunes_total", "certificate" => "rank_gf2").add(gf2);
    counter!("ccmx_search_prunes_total", "certificate" => "fooling").add(fooling);
    counter!("ccmx_search_prunes_total", "certificate" => "rank_modp").add(modp);
    counter!("ccmx_search_prunes_total", "certificate" => "search").add(search);
    counter!("ccmx_search_prunes_total", "certificate" => "incumbent").add(stats.incumbent_cutoffs);
}

/// Decide the exact deterministic communication complexity of a truth
/// matrix (up to 64×64) by branch-and-bound.
pub fn solve(t: &TruthMatrix, cfg: &SearchConfig) -> Result<CcResult, SearchError> {
    if t.rows() == 0 || t.cols() == 0 {
        return Err(SearchError::BadInput("empty truth matrix".into()));
    }
    if t.rows() > MAX_SEARCH_DIM || t.cols() > MAX_SEARCH_DIM {
        return Err(SearchError::BadInput(format!(
            "{}x{} exceeds the {MAX_SEARCH_DIM}x{MAX_SEARCH_DIM} search cap",
            t.rows(),
            t.cols()
        )));
    }
    let search = Search::new(cfg);
    let root = Canon::from_truth(t);

    let cc_raw = if root.mono_value().is_some() {
        search.nodes.fetch_add(1, Ordering::Relaxed);
        0
    } else {
        let entry = search.bounds_of(&root);
        let budget = (cfg.depth_limit as i32).min(entry.hi as i32);
        let serial = cfg.threads <= 1 || entry.lo == entry.hi;
        let r = if serial {
            search.cc_bounded(&root, budget)
        } else {
            search.solve_root_parallel(&root, budget, entry.lo as i32)
        };
        match r {
            Ok(v) => v,
            Err(Stop::TooWide(side)) => return Err(SearchError::TooWide { side }),
            Err(Stop::Cancelled) => unreachable!("cancellation never escapes the root"),
        }
    };

    let (cc, exact) = if cc_raw as u32 > cfg.depth_limit {
        (cfg.depth_limit + 1, false)
    } else {
        (cc_raw as u32, true)
    };

    let certificate = if exact && cfg.want_certificate {
        let rows: Vec<u32> = (0..t.rows() as u32).collect();
        let cols: Vec<u32> = (0..t.cols() as u32).collect();
        match search.extract_node(t, &rows, &cols, cc as i32) {
            Ok(tree) => Some(CcCertificate::new(t, cc, tree)),
            // Extraction can exceed the branch cap on structured
            // instances the bound certificates decided without
            // branching; the answer stands, the witness is omitted.
            Err(Stop::TooWide(_)) => None,
            Err(Stop::Cancelled) => unreachable!("extraction runs with the flag clear"),
        }
    } else {
        None
    };

    let stats = search.stats();
    flush_metrics(&stats);
    Ok(CcResult {
        cc,
        exact,
        certificate,
        stats,
    })
}
