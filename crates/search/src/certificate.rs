//! Serializable optimal-protocol certificates.
//!
//! A [`CcCertificate`] packages the truth matrix, the claimed `CC`,
//! and a full protocol tree: every internal node names a speaker and
//! the subset of that node's rows (or columns) sent to the `one`
//! child, every leaf names the monochromatic value of its rectangle.
//! [`CcCertificate::verify`] re-walks the tree against the embedded
//! matrix in `O(tree size × matrix size)` with no reference to the
//! solver: leaves must be monochromatic and the deepest leaf must sit
//! at exactly the claimed `cc`, which certifies `CC(f) ≤ cc`
//! independently of any search-code bug.
//!
//! The byte format is self-contained (magic `CCC1`) so certificates
//! can be committed to disk, replayed by `verify.sh`, or carried
//! opaquely over the wire by crates the search layer must not depend
//! on. A hex text form is provided for version-controlled files.

use ccmx_comm::truth::TruthMatrix;

use crate::rect::{Speaker, MAX_SEARCH_DIM};

const MAGIC: &[u8; 4] = b"CCC1";
/// Parser guard: a well-formed tree over a 64×64 matrix can't nest
/// deeper than 128 nontrivial splits.
const MAX_TREE_DEPTH: u32 = 160;

/// One protocol-tree node: either a monochromatic leaf or a one-bit
/// announcement splitting the current rectangle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CcTree {
    /// The current rectangle is monochromatic with this value.
    Leaf {
        /// The constant value on the rectangle.
        value: bool,
    },
    /// The speaker announces one bit: positions of their current index
    /// list with a set bit in `mask` continue in `one`, the rest in
    /// `zero`. `mask` is over *positions within the node's rectangle*
    /// (bit `i` = the `i`-th surviving row/column), not original ids.
    Node {
        /// Who speaks.
        speaker: Speaker,
        /// Nontrivial position subset sent to the `one` child.
        mask: u64,
        /// Subtree for announcement `0`.
        zero: Box<CcTree>,
        /// Subtree for announcement `1`.
        one: Box<CcTree>,
    },
}

impl CcTree {
    /// Number of tree nodes (leaves included).
    pub fn node_count(&self) -> usize {
        match self {
            CcTree::Leaf { .. } => 1,
            CcTree::Node { zero, one, .. } => 1 + zero.node_count() + one.node_count(),
        }
    }
}

/// A checkable witness that `CC(f) ≤ cc` — paired with the solver's
/// exhaustion proof, the exact value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CcCertificate {
    /// Matrix height.
    pub rows: usize,
    /// Matrix width.
    pub cols: usize,
    /// The truth matrix, one column-bitmask per row.
    pub row_masks: Vec<u64>,
    /// Claimed exact communication complexity.
    pub cc: u32,
    /// The optimal protocol tree.
    pub tree: CcTree,
}

impl CcCertificate {
    /// Bundle a solved matrix with its protocol tree.
    pub fn new(t: &TruthMatrix, cc: u32, tree: CcTree) -> CcCertificate {
        let row_masks = (0..t.rows())
            .map(|x| {
                (0..t.cols())
                    .filter(|&y| t.get(x, y))
                    .fold(0u64, |m, y| m | 1 << y)
            })
            .collect();
        CcCertificate {
            rows: t.rows(),
            cols: t.cols(),
            row_masks,
            cc,
            tree,
        }
    }

    /// The embedded truth matrix.
    pub fn matrix(&self) -> TruthMatrix {
        TruthMatrix::from_fn(self.rows, self.cols, |x, y| self.row_masks[x] >> y & 1 == 1)
    }

    /// Independently check the certificate: well-formed dimensions,
    /// nontrivial in-range splits, monochromatic leaves, and a deepest
    /// leaf at exactly `cc`.
    pub fn verify(&self) -> Result<(), String> {
        if self.rows == 0 || self.cols == 0 {
            return Err("empty matrix".into());
        }
        if self.rows > MAX_SEARCH_DIM || self.cols > MAX_SEARCH_DIM {
            return Err(format!(
                "{}x{} exceeds the {MAX_SEARCH_DIM}x{MAX_SEARCH_DIM} cap",
                self.rows, self.cols
            ));
        }
        if self.row_masks.len() != self.rows {
            return Err("row mask count disagrees with the height".into());
        }
        let full = if self.cols == 64 {
            u64::MAX
        } else {
            (1u64 << self.cols) - 1
        };
        if self.row_masks.iter().any(|&m| m & !full != 0) {
            return Err("a row mask has bits beyond the width".into());
        }
        let rows: Vec<u32> = (0..self.rows as u32).collect();
        let cols: Vec<u32> = (0..self.cols as u32).collect();
        let depth = self.check_node(&self.tree, &rows, &cols, 0)?;
        if depth != self.cc {
            return Err(format!(
                "tree proves CC ≤ {depth} but the certificate claims {}",
                self.cc
            ));
        }
        Ok(())
    }

    fn check_node(
        &self,
        node: &CcTree,
        rows: &[u32],
        cols: &[u32],
        depth: u32,
    ) -> Result<u32, String> {
        match node {
            CcTree::Leaf { value } => {
                for &x in rows {
                    for &y in cols {
                        if (self.row_masks[x as usize] >> y & 1 == 1) != *value {
                            return Err(format!(
                                "leaf at depth {depth} claims {value} but ({x},{y}) disagrees"
                            ));
                        }
                    }
                }
                Ok(depth)
            }
            CcTree::Node {
                speaker,
                mask,
                zero,
                one,
            } => {
                let side: &[u32] = match speaker {
                    Speaker::Rows => rows,
                    Speaker::Cols => cols,
                };
                let n = side.len();
                let full = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
                if *mask == 0 || *mask == full || *mask & !full != 0 {
                    return Err(format!("trivial or out-of-range split at depth {depth}"));
                }
                let pick = |bit: u64| -> Vec<u32> {
                    side.iter()
                        .enumerate()
                        .filter(|&(i, _)| mask >> i & 1 == bit)
                        .map(|(_, &v)| v)
                        .collect()
                };
                let (z_side, o_side) = (pick(0), pick(1));
                let (dz, doo) = match speaker {
                    Speaker::Rows => (
                        self.check_node(zero, &z_side, cols, depth + 1)?,
                        self.check_node(one, &o_side, cols, depth + 1)?,
                    ),
                    Speaker::Cols => (
                        self.check_node(zero, rows, &z_side, depth + 1)?,
                        self.check_node(one, rows, &o_side, depth + 1)?,
                    ),
                };
                Ok(dz.max(doo))
            }
        }
    }

    /// Self-contained binary encoding (magic `CCC1`, dimensions, row
    /// masks, claimed cc, preorder tree).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 8 * self.rows + 16 * self.tree.node_count());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.rows as u16).to_le_bytes());
        out.extend_from_slice(&(self.cols as u16).to_le_bytes());
        for &m in &self.row_masks {
            out.extend_from_slice(&m.to_le_bytes());
        }
        out.push(self.cc as u8);
        fn emit(node: &CcTree, out: &mut Vec<u8>) {
            match node {
                CcTree::Leaf { value } => {
                    out.push(0);
                    out.push(u8::from(*value));
                }
                CcTree::Node {
                    speaker,
                    mask,
                    zero,
                    one,
                } => {
                    out.push(1);
                    out.push(match speaker {
                        Speaker::Rows => 0,
                        Speaker::Cols => 1,
                    });
                    out.extend_from_slice(&mask.to_le_bytes());
                    emit(zero, out);
                    emit(one, out);
                }
            }
        }
        emit(&self.tree, &mut out);
        out
    }

    /// Parse the binary encoding (strict: trailing bytes are an error;
    /// semantic validity is [`CcCertificate::verify`]'s job).
    pub fn from_bytes(bytes: &[u8]) -> Result<CcCertificate, String> {
        struct Cur<'a> {
            b: &'a [u8],
            at: usize,
        }
        impl<'a> Cur<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
                if self.at + n > self.b.len() {
                    return Err("truncated certificate".into());
                }
                let s = &self.b[self.at..self.at + n];
                self.at += n;
                Ok(s)
            }
            fn u8(&mut self) -> Result<u8, String> {
                Ok(self.take(1)?[0])
            }
        }
        fn tree(cur: &mut Cur<'_>, depth: u32) -> Result<CcTree, String> {
            if depth > MAX_TREE_DEPTH {
                return Err("tree deeper than any valid protocol".into());
            }
            match cur.u8()? {
                0 => Ok(CcTree::Leaf {
                    value: cur.u8()? != 0,
                }),
                1 => {
                    let speaker = match cur.u8()? {
                        0 => Speaker::Rows,
                        1 => Speaker::Cols,
                        s => return Err(format!("unknown speaker tag {s}")),
                    };
                    let mask = u64::from_le_bytes(cur.take(8)?.try_into().unwrap());
                    let zero = Box::new(tree(cur, depth + 1)?);
                    let one = Box::new(tree(cur, depth + 1)?);
                    Ok(CcTree::Node {
                        speaker,
                        mask,
                        zero,
                        one,
                    })
                }
                t => Err(format!("unknown tree tag {t}")),
            }
        }
        let mut cur = Cur { b: bytes, at: 0 };
        if cur.take(4)? != MAGIC {
            return Err("bad magic (not a CCC1 certificate)".into());
        }
        let rows = u16::from_le_bytes(cur.take(2)?.try_into().unwrap()) as usize;
        let cols = u16::from_le_bytes(cur.take(2)?.try_into().unwrap()) as usize;
        if rows == 0 || cols == 0 || rows > MAX_SEARCH_DIM || cols > MAX_SEARCH_DIM {
            return Err(format!("dimensions {rows}x{cols} out of range"));
        }
        let mut row_masks = Vec::with_capacity(rows);
        for _ in 0..rows {
            row_masks.push(u64::from_le_bytes(cur.take(8)?.try_into().unwrap()));
        }
        let cc = u32::from(cur.u8()?);
        let t = tree(&mut cur, 0)?;
        if cur.at != bytes.len() {
            return Err("trailing bytes after the tree".into());
        }
        Ok(CcCertificate {
            rows,
            cols,
            row_masks,
            cc,
            tree: t,
        })
    }

    /// Hex text form (for committed files); whitespace-insensitive on
    /// the way back in.
    pub fn to_hex(&self) -> String {
        let bytes = self.to_bytes();
        let mut s = String::with_capacity(bytes.len() * 2 + bytes.len() / 32);
        for (i, b) in bytes.iter().enumerate() {
            if i > 0 && i % 32 == 0 {
                s.push('\n');
            }
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parse the hex text form.
    pub fn from_hex(text: &str) -> Result<CcCertificate, String> {
        let digits: Vec<u8> = text
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(|c| {
                c.to_digit(16)
                    .map(|d| d as u8)
                    .ok_or_else(|| format!("non-hex character {c:?}"))
            })
            .collect::<Result<_, _>>()?;
        if !digits.len().is_multiple_of(2) {
            return Err("odd number of hex digits".into());
        }
        let bytes: Vec<u8> = digits.chunks(2).map(|p| p[0] << 4 | p[1]).collect();
        CcCertificate::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hand_cert() -> CcCertificate {
        // 2x2 identity: A says which row (1 bit), B says whether the
        // column matches (1 bit) — CC = 2.
        let t = TruthMatrix::from_fn(2, 2, |x, y| x == y);
        let leaf = |value| Box::new(CcTree::Leaf { value });
        // B always peels off column 1; the surviving cell's value
        // depends on which row A announced.
        let b_row0 = CcTree::Node {
            speaker: Speaker::Cols,
            mask: 0b10,
            zero: leaf(true), // (0,0) = 1
            one: leaf(false), // (0,1) = 0
        };
        let b_row1 = CcTree::Node {
            speaker: Speaker::Cols,
            mask: 0b10,
            zero: leaf(false), // (1,0) = 0
            one: leaf(true),   // (1,1) = 1
        };
        CcCertificate::new(
            &t,
            2,
            CcTree::Node {
                speaker: Speaker::Rows,
                mask: 0b10,
                zero: Box::new(b_row0),
                one: Box::new(b_row1),
            },
        )
    }

    #[test]
    fn hand_built_certificate_verifies() {
        let cert = hand_cert();
        cert.verify().unwrap();
        assert_eq!(cert.tree.node_count(), 7);
    }

    #[test]
    fn verifier_rejects_wrong_claims() {
        let mut cert = hand_cert();
        cert.cc = 3; // depth is 2
        assert!(cert.verify().is_err());
        let mut cert = hand_cert();
        cert.row_masks[0] = 0b11; // leaf no longer monochromatic
        assert!(cert.verify().is_err());
        let mut cert = hand_cert();
        if let CcTree::Node { mask, .. } = &mut cert.tree {
            *mask = 0b11; // trivial split
        }
        assert!(cert.verify().is_err());
    }

    #[test]
    fn bytes_and_hex_round_trip() {
        let cert = hand_cert();
        let back = CcCertificate::from_bytes(&cert.to_bytes()).unwrap();
        assert_eq!(cert, back);
        let back = CcCertificate::from_hex(&cert.to_hex()).unwrap();
        assert_eq!(cert, back);
        // Corruption is caught structurally or by the verifier.
        let mut bytes = cert.to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(CcCertificate::from_bytes(&bytes).is_err());
        assert!(CcCertificate::from_hex("zz").is_err());
    }
}
