//! Property suite for the consistent-hash ring — the two promises the
//! coordinator's cache-partitioning story rests on:
//!
//! 1. **Balance**: across 2–8 shards, each shard's share of a large
//!    hashed key population stays within ±20% of uniform, so no shard's
//!    bounds cache becomes the hot spot.
//! 2. **Stability**: a join or leave remaps only about `1/N` of keys,
//!    so resharding leaves the other shards' caches warm.

use ccmx_cluster::{fnv1a64, HashRing, DEFAULT_VNODES};
use proptest::prelude::*;

const KEYS: u64 = 20_000;

/// Hashed key population: the ring is only ever fed hashes (the
/// coordinator hashes the request bytes first), so the population we
/// test with is hashes of a seeded counter stream.
fn key_stream(salt: u64) -> impl Iterator<Item = u64> {
    (0..KEYS).map(move |i| fnv1a64(&(i ^ salt).to_le_bytes()))
}

fn ring_with(shards: usize, salt: u64) -> HashRing {
    let mut ring = HashRing::new(DEFAULT_VNODES);
    for i in 0..shards {
        ring.add_shard(&format!("shard-{salt}-{i}"));
    }
    ring
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every shard's share of 20k keys is within ±20% of `1/N` for all
    /// fleet sizes the lab targets (2–8 shards).
    #[test]
    fn key_distribution_within_20pct_of_uniform(
        shards in 2usize..=8,
        salt in any::<u64>(),
    ) {
        let ring = ring_with(shards, salt);
        let mut counts = std::collections::HashMap::new();
        for key in key_stream(salt) {
            *counts.entry(ring.route(key).unwrap().to_string()).or_insert(0u64) += 1;
        }
        prop_assert_eq!(counts.len(), shards, "every shard must own keys");
        let ideal = KEYS as f64 / shards as f64;
        for (name, count) in counts {
            let dev = (count as f64 - ideal).abs() / ideal;
            prop_assert!(
                dev <= 0.20,
                "{} owns {} of {} keys ({:.1}% off uniform share {:.0})",
                name, count, KEYS, dev * 100.0, ideal
            );
        }
    }

    /// A join moves some keys (the new shard must take load) but no
    /// more than ~`2/(N+1)` — twice the ideal `1/(N+1)` share, giving
    /// vnode variance headroom. Keys that move all move *to* the new
    /// shard: nobody else's cache is disturbed.
    #[test]
    fn join_remaps_about_one_nth_of_keys(
        shards in 2usize..=7,
        salt in any::<u64>(),
    ) {
        let mut ring = ring_with(shards, salt);
        let before: Vec<String> = key_stream(salt)
            .map(|k| ring.route(k).unwrap().to_string())
            .collect();
        let newcomer = format!("shard-{salt}-joiner");
        ring.add_shard(&newcomer);
        let mut moved = 0u64;
        for (key, old) in key_stream(salt).zip(before.iter()) {
            let now = ring.route(key).unwrap();
            if now != old {
                prop_assert_eq!(now, newcomer.as_str(),
                    "a join may only move keys to the joining shard");
                moved += 1;
            }
        }
        prop_assert!(moved > 0, "the joining shard must take some load");
        let bound = 2.0 * KEYS as f64 / (shards + 1) as f64;
        prop_assert!(
            (moved as f64) <= bound,
            "join moved {} of {} keys; bound {:.0}",
            moved, KEYS, bound
        );
    }

    /// A leave scatters only the departed shard's keys; every key that
    /// was *not* on the leaver keeps its shard (warm cache preserved).
    #[test]
    fn leave_remaps_only_the_departed_shards_keys(
        shards in 3usize..=8,
        salt in any::<u64>(),
        victim in 0usize..8,
    ) {
        let mut ring = ring_with(shards, salt);
        let victim = format!("shard-{salt}-{}", victim % shards);
        let before: Vec<String> = key_stream(salt)
            .map(|k| ring.route(k).unwrap().to_string())
            .collect();
        ring.remove_shard(&victim);
        for (key, old) in key_stream(salt).zip(before.iter()) {
            let now = ring.route(key).unwrap();
            if old != &victim {
                prop_assert_eq!(now, old.as_str(),
                    "a leave must not move keys that were not on the leaver");
            } else {
                prop_assert_ne!(now, victim.as_str());
            }
        }
    }
}
