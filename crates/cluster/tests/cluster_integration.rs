//! Cluster integration: a live coordinator in front of live shard
//! servers, exercised end-to-end — TCP routing, batch fan-out,
//! shard death mid-soak (the breaker absorbs it, failover re-routes,
//! and not one metered protocol bit moves), resharding under chaos,
//! and degraded-mode bounds when the whole fleet is dark.

use std::sync::Arc;

use ccmx_cluster::{cluster_soak, ClusterConfig, Coordinator, ShardConfig, ShardSpec, SoakConfig};
use ccmx_comm::protocol::run_sequential;
use ccmx_comm::BitString;
use ccmx_net::{BreakerState, ChaosLevel, Client, ProtoSpec, Request, Response};

fn boot_shards(prefix: &str, n: usize) -> (Vec<ccmx_cluster::ShardHandle>, Vec<ShardSpec>) {
    let mut handles = Vec::new();
    let mut specs = Vec::new();
    for i in 0..n {
        let name = format!("{prefix}-s{i}");
        let handle = ccmx_cluster::serve_shard(
            "127.0.0.1:0",
            ShardConfig {
                workers: 2,
                ..ShardConfig::named(&name)
            },
        )
        .expect("bind shard");
        specs.push(ShardSpec::new(&name, &handle.addr().to_string()));
        handles.push(handle);
    }
    (handles, specs)
}

/// Full TCP stack: client → coordinator server → shard servers. Every
/// request kind routes, batch members come back in order, and the
/// coordinator's own metrics expose the routing counters.
#[test]
fn tcp_coordinator_routes_every_request_kind() {
    let (shards, specs) = boot_shards("itcp", 2);
    let coordinator = Arc::new(Coordinator::over_tcp(ClusterConfig::default(), specs));
    let server = ccmx_cluster::serve_coordinator(
        "127.0.0.1:0",
        ccmx_net::ServerConfig::default(),
        Arc::clone(&coordinator),
    )
    .expect("bind coordinator");

    let mut client =
        Client::connect(server.addr(), Default::default()).expect("connect coordinator");
    client.ping().expect("ping");

    let spec = ProtoSpec::SendAllSingularity { dim: 2, k: 2 };
    let setup = spec.build();
    let input = BitString::from_u64(0b1011_0010, setup.input_bits);
    let viaduct = client.run(spec, &input, 99).expect("run via cluster");
    let reference = run_sequential(setup.proto.as_ref(), &setup.partition, &input, 99);
    assert_eq!(
        viaduct, reference,
        "cluster routing must not touch metered bits"
    );

    let b = client.bounds(5, 3, 64).expect("bounds via cluster");
    assert_eq!(b.n, 5);

    let members: Vec<Request> = (0..6)
        .map(|i| Request::Bounds {
            n: 5 + 2 * (i % 3),
            k: 3,
            security: 64,
        })
        .collect();
    match client
        .request(&Request::Batch(members.clone()))
        .expect("batch")
    {
        Response::Batch(resps) => {
            assert_eq!(resps.len(), members.len());
            for (req, resp) in members.iter().zip(&resps) {
                let (Request::Bounds { n, .. }, Response::Bounds(rep)) = (req, resp) else {
                    panic!("unexpected batch member answer: {resp:?}");
                };
                assert_eq!(rep.n, *n, "batch answers must stay in member order");
            }
        }
        other => panic!("expected batch, got {other:?}"),
    }

    let metrics = client.metrics().expect("metrics");
    assert!(
        metrics.contains("ccmx_cluster_routed_total"),
        "coordinator metrics must expose routing counters:\n{metrics}"
    );
    assert!(metrics.contains("ccmx_cluster_shards"));

    drop(client);
    server.shutdown();
    for s in shards {
        s.shutdown();
    }
}

/// Satellite 3: kill one shard mid-soak. The coordinator's breaker for
/// the dead shard opens, traffic re-routes to the survivor, every
/// request is still answered, and every answered run matches the
/// sequential reference bit-for-bit.
#[test]
fn killed_shard_opens_breaker_and_reroutes_without_bit_divergence() {
    let report = cluster_soak(SoakConfig {
        shards: 2,
        requests: 40,
        seed: 0x1111,
        level: ChaosLevel::Moderate,
        reshard: false,
        kill: true,
    });
    assert_eq!(
        report.answered, report.requests,
        "failover must keep answering"
    );
    assert_eq!(report.errors, 0);
    assert_eq!(
        report.diverged, 0,
        "metered bits diverged from run_sequential"
    );
    assert!(report.zero_bit_divergence);
    let killed = report.killed_shard.as_deref().expect("a shard was killed");
    assert!(
        matches!(
            report.killed_breaker,
            Some(BreakerState::Open | BreakerState::HalfOpen)
        ),
        "breaker for {killed} should have opened, got {:?}",
        report.killed_breaker
    );
    assert!(
        report.failovers > 0,
        "re-routing must be visible in metrics"
    );
}

/// Resharding (join + leave) under aggressive link chaos: membership
/// churn mid-run never perturbs a metered bit.
#[test]
fn resharding_under_chaos_keeps_bits_exact() {
    let report = cluster_soak(SoakConfig {
        shards: 3,
        requests: 45,
        seed: 0x2222,
        level: ChaosLevel::Aggressive,
        reshard: true,
        kill: false,
    });
    assert!(report.resharded, "the soak must actually join and leave");
    assert_eq!(report.errors, 0);
    assert_eq!(report.answered, report.requests);
    assert!(
        report.zero_bit_divergence,
        "{} runs diverged",
        report.diverged
    );
}

/// The CC(f) root frontier fans out across live shards and recombines
/// to exactly the local solver's answer, and a raw `CcSearch` request
/// routes through the coordinator like any other computational kind.
#[test]
fn cc_search_fans_out_and_recombines_exactly() {
    use ccmx_comm::truth::TruthMatrix;

    let (shards, specs) = boot_shards("iccfan", 2);
    let coordinator = Coordinator::over_tcp(ClusterConfig::default(), specs);

    // A raw CcSearch request routes to a shard like any other kind.
    let eq2 = TruthMatrix::from_fn(4, 4, |x, y| x == y);
    let bits = BitString::from_bits(
        (0..16)
            .map(|i: usize| eq2.get(i / 4, i % 4))
            .collect::<Vec<bool>>(),
    );
    let direct = coordinator.dispatch(&Request::CcSearch {
        rows: 4,
        cols: 4,
        bits,
        depth_limit: 32,
    });
    assert!(
        matches!(
            direct,
            Response::CcSearch {
                cc: 3,
                exact: true,
                ..
            }
        ),
        "direct routed cc-search answered {direct:?}"
    );

    // Root fan-out across the fleet equals the local solver, witnesses
    // included, on a spread of shapes.
    for (t, label) in [
        (eq2, "4x4 identity"),
        (TruthMatrix::from_fn(4, 4, |x, y| (x & y) != 0), "4x4 and"),
        (TruthMatrix::from_fn(5, 5, |x, y| x >= y), "5x5 gt"),
        (TruthMatrix::from_fn(3, 3, |_, _| true), "3x3 ones"),
    ] {
        let local = ccmx_search::solve(
            &t,
            &ccmx_search::SearchConfig {
                threads: 1,
                ..ccmx_search::SearchConfig::default()
            },
        )
        .expect("local solve");
        let fanned =
            ccmx_cluster::cc_via_fanout(&coordinator, &t, 32).expect("fan-out must answer");
        assert!(fanned.exact, "{label}: fan-out came back inexact");
        assert_eq!(fanned.cc, local.cc, "{label}: fan-out diverged from local");
        if local.cc > 0 {
            assert!(fanned.moves > 0 && fanned.unique_children > 0, "{label}");
        }
    }

    for s in shards {
        s.shutdown();
    }
}

/// When the entire fleet is dark, bounds the coordinator has seen
/// before are served from its degraded-mode cache; unseen bounds are
/// refused rather than invented.
#[test]
fn bounds_degrade_to_coordinator_cache_when_fleet_is_dark() {
    let (mut shards, specs) = boot_shards("idark", 1);
    let coordinator = Coordinator::over_tcp(ClusterConfig::default(), specs);

    let warm = Request::Bounds {
        n: 7,
        k: 3,
        security: 64,
    };
    let Response::Bounds(live) = coordinator.dispatch(&warm) else {
        panic!("live bounds should be answered by the shard");
    };

    shards.pop().expect("one shard").shutdown();

    let Response::Bounds(cached) = coordinator.dispatch(&warm) else {
        panic!("warm bounds must degrade to the coordinator cache");
    };
    assert_eq!(cached, live, "degraded answer must equal the live answer");

    let cold = Request::Bounds {
        n: 9,
        k: 3,
        security: 64,
    };
    match coordinator.dispatch(&cold) {
        Response::Error(msg) => assert!(msg.contains("no shard"), "got: {msg}"),
        other => panic!("cold bounds with no fleet must refuse, got {other:?}"),
    }
}
