//! # ccmx-cluster — sharded multi-node protocol lab
//!
//! The single-server lab (`ccmx-net`) answers Theorem 1.1 bound
//! queries, metered protocol runs, and singularity checks over one TCP
//! endpoint. This crate scales that lab *out*: a fleet of ordinary
//! shard servers plus one **coordinator** that consistent-hashes each
//! request's routing key — the same `(spec, input-hash, backend id)`
//! triple the server's bounds cache keys on — across the fleet.
//!
//! The payoff mirrors the multi-party direction in the literature
//! (Chu–Schnitger's bounds are two-party; follow-ups distribute the
//! matrix across `s` players): with deterministic key→shard placement,
//! `N` shards of cache capacity `C` behave like one bounds cache of
//! capacity `~N·C`, so adding shards grows the *working set* the lab
//! can hold at protocol speed — the effect experiment E18 measures.
//!
//! Layers:
//!
//! - [`ring`]: the consistent-hash circle (FNV-1a vnodes). Join/leave
//!   moves only `~1/N` of keys, so resharding keeps caches warm.
//! - [`shard`]: a named `ccmx_net::serve` instance with a
//!   `ccmx_shard_up{shard}` liveness gauge.
//! - [`coordinator`]: replica fan-out with breaker-guarded links
//!   (`ccmx-net`'s `CircuitBreaker` per shard), per-shard in-flight
//!   caps that shed load before queues melt, batch-group fan-out, and
//!   a degraded mode that answers `Bounds` from a local LRU when no
//!   shard is reachable. Everything is metered under
//!   `ccmx_cluster_*` metric families.
//! - [`chaos`]: seals every coordinator↔shard link inside the PR 5
//!   fault-injection transport and soaks the whole topology —
//!   asserting that failover, retransmission, resharding, and shard
//!   death never change a single metered protocol bit.
//!
//! The invariant of the whole repo holds one level up: the
//! coordinator is infrastructure, so nothing it does — routing,
//! retries, fan-out — may appear in the communication-complexity
//! ledger. `chaos::cluster_soak` enforces that bit-for-bit against
//! `run_sequential`.

#![deny(missing_docs)]

pub mod ccfan;
pub mod chaos;
pub mod coordinator;
pub mod ring;
pub mod shard;

pub use ccfan::{cc_via_fanout, CcFanResult};
pub use chaos::{cluster_soak, ChaosDialer, ClusterSoakReport, SoakConfig};
pub use coordinator::{
    request_route_key, serve_coordinator, ClusterConfig, Coordinator, CoordinatorHandler,
    ShardConn, ShardDialer, ShardSpec, TcpDialer,
};
pub use ring::{fnv1a64, HashRing, DEFAULT_VNODES};
pub use shard::{serve_shard, ShardConfig, ShardHandle};
