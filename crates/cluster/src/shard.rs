//! A shard: the ordinary protocol-lab server plus a cluster identity.
//!
//! A shard *is* `ccmx_net::serve` — same dispatch table, same bounds
//! cache, same evented engine — wrapped with a stable name for ring
//! placement and a `ccmx_shard_up{shard}` liveness gauge the operator
//! can alert on. The interesting per-shard knob is
//! `cache_capacity`: the coordinator's consistent hashing partitions
//! the key space, so N shards of capacity C behave like one bounds
//! cache of capacity ~N·C — the resource that actually scales when
//! shards are added (see experiment E18).

use ccmx_net::{serve, ServerConfig, ServerHandle, ServerStats};

use crate::coordinator::intern_label;

/// Identity and sizing for one shard server.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Stable shard name (ring position, metric label).
    pub name: String,
    /// Bounds-cache entries this shard holds.
    pub cache_capacity: usize,
    /// Compute-pool size for the evented engine.
    pub workers: usize,
    /// Data-directory *root* for the persistent certified-result
    /// store. Each shard keeps its own log under
    /// `<root>/<shard-name>`, so a whole cluster can share one root
    /// without write collisions, and a restarted shard warm-starts
    /// from exactly the verdicts it certified. `None` = in-memory.
    pub store_root: Option<std::path::PathBuf>,
    /// Remaining server knobs.
    pub server: ServerConfig,
}

impl ShardConfig {
    /// A shard named `name` with default server knobs.
    pub fn named(name: &str) -> Self {
        ShardConfig {
            name: name.to_string(),
            cache_capacity: ServerConfig::default().bounds_cache_capacity,
            workers: ServerConfig::default().workers,
            store_root: None,
            server: ServerConfig::default(),
        }
    }
}

/// A running shard. Dropping (or [`ShardHandle::shutdown`]) drains the
/// server and clears the liveness gauge.
pub struct ShardHandle {
    inner: Option<ServerHandle>,
    name: String,
    up: &'static ccmx_obs::Gauge,
}

impl ShardHandle {
    /// The shard's stable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bound socket address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.inner.as_ref().expect("live until dropped").addr()
    }

    /// Live server counters.
    pub fn stats(&self) -> ServerStats {
        self.inner.as_ref().expect("live until dropped").stats()
    }

    /// Drain in-flight work, close the listener, and mark the shard
    /// down.
    pub fn shutdown(mut self) {
        if let Some(inner) = self.inner.take() {
            inner.shutdown();
        }
        self.up.set(0);
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner.shutdown();
            self.up.set(0);
        }
    }
}

/// Bind `addr` and serve one shard.
pub fn serve_shard(addr: &str, config: ShardConfig) -> std::io::Result<ShardHandle> {
    let server = ServerConfig {
        bounds_cache_capacity: config.cache_capacity.max(1),
        workers: config.workers.max(1),
        store_dir: config
            .store_root
            .as_ref()
            .map(|root| root.join(&config.name))
            .or(config.server.store_dir.clone()),
        ..config.server
    };
    let inner = serve(addr, server)?;
    let label = intern_label(&config.name);
    let up = ccmx_obs::registry().gauge("ccmx_shard_up", &[("shard", label)]);
    up.set(1);
    Ok(ShardHandle {
        inner: Some(inner),
        name: config.name,
        up,
    })
}
