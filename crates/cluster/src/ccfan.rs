//! Cluster fan-out for the exact `CC(f)` search: split the root of the
//! branch-and-bound tree across shards.
//!
//! The Bellman recursion behind `ccmx_search` is embarrassingly
//! parallel at the root: for a non-monochromatic truth matrix,
//! `CC(t) = min over first moves of 1 + max(CC(zero), CC(one))`, and
//! each child rectangle is an *independent* sub-instance. The
//! coordinator therefore ships every distinct child as a
//! [`Request::CcSearch`] (one [`Request::Batch`], so the existing
//! batch router groups children by shard), and folds the verdicts back
//! together locally with [`ccmx_search::combine_root`]. Shard-side
//! memo tables and the depth-keyed CC cache do the rest: repeated
//! children across moves — extremely common, the frontier shares
//! rectangles heavily — cost one solve fleet-wide.

use ccmx_comm::truth::TruthMatrix;
use ccmx_comm::BitString;
use ccmx_net::api::{Request, Response};
use ccmx_search::{combine_root, root_moves, Canon, MAX_SEARCH_DIM};
use std::collections::HashMap;

use crate::coordinator::Coordinator;

/// Outcome of a root fan-out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CcFanResult {
    /// The communication complexity (a certified lower bound when
    /// `exact` is false).
    pub cc: u32,
    /// Whether `cc` is exact. Inexact answers happen when the child
    /// budget (`depth_limit - 1`) ran out under the winning move.
    pub exact: bool,
    /// Root moves the frontier enumerated.
    pub moves: usize,
    /// Distinct child rectangles actually shipped to shards.
    pub unique_children: usize,
    /// Total search nodes expanded across the fleet (cache hits are 0).
    pub nodes: u64,
}

fn child_key(t: &TruthMatrix) -> (usize, usize, Vec<bool>) {
    let bits: Vec<bool> = (0..t.rows())
        .flat_map(|x| (0..t.cols()).map(move |y| t.get(x, y)))
        .collect();
    (t.rows(), t.cols(), bits)
}

/// Solve `CC(t)` by fanning the root frontier out across the fleet.
///
/// Each distinct child is shipped once with budget `depth_limit - 1`;
/// the recombination is exact unless the winning move's children blew
/// that budget. Errors (unreachable fleet, oversized instance) come
/// back as `Err` — never a wrong number.
pub fn cc_via_fanout(
    coordinator: &Coordinator,
    t: &TruthMatrix,
    depth_limit: u32,
) -> Result<CcFanResult, String> {
    if t.rows() == 0 || t.cols() == 0 || t.rows() > MAX_SEARCH_DIM || t.cols() > MAX_SEARCH_DIM {
        return Err(format!(
            "cc fan-out needs dims in 1..={MAX_SEARCH_DIM}, got {}x{}",
            t.rows(),
            t.cols()
        ));
    }
    let canon = Canon::from_truth(t);
    if canon.nrows() > 12 || canon.ncols() > 12 {
        return Err(format!(
            "root frontier of a {}x{}-class matrix is too wide to ship",
            canon.nrows(),
            canon.ncols()
        ));
    }
    let frontier = root_moves(t);
    if frontier.is_empty() {
        return Ok(CcFanResult {
            cc: 0,
            exact: true,
            moves: 0,
            unique_children: 0,
            nodes: 0,
        });
    }
    ccmx_obs::counter!("ccmx_cluster_cc_fanout_total").inc();

    // Dedup children: the frontier reuses rectangles across moves, and
    // each distinct one needs exactly one shard solve.
    let mut order: Vec<(usize, usize, Vec<bool>)> = Vec::new();
    let mut index: HashMap<(usize, usize, Vec<bool>), usize> = HashMap::new();
    let mut move_children: Vec<(usize, usize)> = Vec::with_capacity(frontier.len());
    for (zero, one) in &frontier {
        let mut id_of = |c: &TruthMatrix| {
            let key = child_key(c);
            *index.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                order.len() - 1
            })
        };
        move_children.push((id_of(zero), id_of(one)));
    }
    let child_budget = depth_limit.saturating_sub(1);
    let batch: Vec<Request> = order
        .iter()
        .map(|(rows, cols, bits)| Request::CcSearch {
            rows: *rows,
            cols: *cols,
            bits: BitString::from_bits(bits.clone()),
            depth_limit: child_budget,
        })
        .collect();
    let unique_children = batch.len();
    let Response::Batch(resps) = coordinator.dispatch(&Request::Batch(batch)) else {
        return Err("coordinator returned a non-batch response".into());
    };
    let mut verdicts: Vec<(u32, bool)> = Vec::with_capacity(resps.len());
    let mut nodes = 0u64;
    for (i, resp) in resps.into_iter().enumerate() {
        match resp {
            Response::CcSearch {
                cc,
                exact,
                nodes: n,
                ..
            } => {
                nodes += n;
                verdicts.push((cc, exact));
            }
            Response::Error(msg) => return Err(format!("child {i} failed on its shard: {msg}")),
            other => return Err(format!("child {i} got an unexpected response: {other:?}")),
        }
    }

    // Recombine. An inexact child verdict is a *lower bound*, so a
    // move touching one contributes a lower bound on its true value:
    // the fold is exact iff the winning move is fully exact and no
    // lower-bound-only move undercuts it.
    let values: Vec<(u32, u32)> = move_children
        .iter()
        .map(|&(z, o)| (verdicts[z].0, verdicts[o].0))
        .collect();
    let cc = combine_root(&values).expect("non-empty frontier always recombines");
    let exact = move_children.iter().any(|&(z, o)| {
        verdicts[z].1 && verdicts[o].1 && 1 + verdicts[z].0.max(verdicts[o].0) == cc
    });
    Ok(CcFanResult {
        cc,
        exact,
        moves: frontier.len(),
        unique_children,
        nodes,
    })
}
