//! Consistent-hash ring over shard names.
//!
//! The coordinator must send *the same key to the same shard every
//! time* — that is what makes each shard's bounds cache an independent
//! slice of one large aggregate cache — while a shard join or leave
//! disturbs as few keys as possible. The classic construction: every
//! shard owns `vnodes_per_shard` pseudo-random points on a `u64` circle
//! (FNV-1a of `name:index`), and a key is routed to the shard owning
//! the first point at or clockwise after the key's position. Adding a
//! shard inserts only that shard's points, so only the arcs those
//! points split — about `1/(s+1)` of the circle — change owners; every
//! other key keeps its shard and therefore its warm cache entry. The
//! property suite in `tests/ring_props.rs` enforces both the ±20%
//! balance and the ~`1/N` remap bound.

/// Default vnode multiplicity. 160 points per shard keeps the maximum
/// arc-share deviation comfortably inside ±20% for 2–8 shards.
pub const DEFAULT_VNODES: usize = 160;

/// 64-bit FNV-1a: the ring's byte hash. Stable across processes (no
/// `RandomState`), so a coordinator restart routes identically.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer. FNV-1a alone avalanches poorly on short
/// inputs (vnode tags are ~10 bytes), which skews arc lengths far past
/// the ±20% balance budget; one multiply-xorshift round fixes the
/// distribution while staying fully deterministic.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A consistent-hash ring mapping `u64` key positions to shard names.
#[derive(Clone, Debug)]
pub struct HashRing {
    vnodes_per_shard: usize,
    shards: Vec<String>,
    /// Sorted `(point, shard index)` pairs — the circle.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// An empty ring; each shard added will own `vnodes_per_shard`
    /// points (clamped to at least 1).
    pub fn new(vnodes_per_shard: usize) -> Self {
        HashRing {
            vnodes_per_shard: vnodes_per_shard.max(1),
            shards: Vec::new(),
            points: Vec::new(),
        }
    }

    /// Shard names currently on the ring, in join order.
    pub fn shards(&self) -> &[String] {
        &self.shards
    }

    /// Number of shards on the ring.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True iff no shard has joined.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Add a shard. A name already present is a no-op (returns false).
    pub fn add_shard(&mut self, name: &str) -> bool {
        if self.shards.iter().any(|s| s == name) {
            return false;
        }
        self.shards.push(name.to_string());
        self.rebuild();
        true
    }

    /// Remove a shard by name; returns false if it was not present.
    pub fn remove_shard(&mut self, name: &str) -> bool {
        let Some(pos) = self.shards.iter().position(|s| s == name) else {
            return false;
        };
        self.shards.remove(pos);
        self.rebuild();
        true
    }

    /// Vnode positions depend only on `(name, index)`, so a rebuild
    /// reproduces every surviving shard's points bit-for-bit — which is
    /// exactly why membership changes move only ~1/N of the keyspace.
    fn rebuild(&mut self) {
        self.points.clear();
        for (idx, name) in self.shards.iter().enumerate() {
            let mut tag = Vec::with_capacity(name.len() + 9);
            tag.extend_from_slice(name.as_bytes());
            tag.push(b':');
            for i in 0..self.vnodes_per_shard {
                tag.truncate(name.len() + 1);
                tag.extend_from_slice(&(i as u64).to_le_bytes());
                self.points.push((mix64(fnv1a64(&tag)), idx));
            }
        }
        self.points.sort_unstable();
    }

    /// Index into `points` of the first point at or clockwise after
    /// `key` (wrapping past the top of the circle).
    fn successor(&self, key: u64) -> usize {
        match self.points.binary_search_by(|&(p, _)| p.cmp(&key)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0,
            Err(i) => i,
        }
    }

    /// The shard owning `key`'s position, or `None` on an empty ring.
    /// The key is finalized through the same mixer as the vnode points,
    /// so even weakly-hashed keys spread over the circle.
    pub fn route(&self, key: u64) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let (_, idx) = self.points[self.successor(mix64(key))];
        Some(&self.shards[idx])
    }

    /// Up to `n` *distinct* shards for `key`, primary first, then the
    /// next distinct owners clockwise — the replica set for failover
    /// and batch fan-out.
    pub fn candidates(&self, key: u64, n: usize) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::with_capacity(n.min(self.shards.len()));
        if self.points.is_empty() || n == 0 {
            return out;
        }
        let start = self.successor(mix64(key));
        for off in 0..self.points.len() {
            let (_, idx) = self.points[(start + off) % self.points.len()];
            let name = self.shards[idx].as_str();
            if !out.contains(&name) {
                out.push(name);
                if out.len() == n || out.len() == self.shards.len() {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_is_deterministic_and_total() {
        let mut ring = HashRing::new(DEFAULT_VNODES);
        assert!(ring.route(42).is_none());
        ring.add_shard("s0");
        ring.add_shard("s1");
        let a = ring.route(42).unwrap().to_string();
        let b = ring.route(42).unwrap().to_string();
        assert_eq!(a, b);
        assert!(a == "s0" || a == "s1");
    }

    #[test]
    fn duplicate_add_is_a_noop() {
        let mut ring = HashRing::new(8);
        assert!(ring.add_shard("s0"));
        assert!(!ring.add_shard("s0"));
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn candidates_are_distinct_and_primary_first() {
        let mut ring = HashRing::new(DEFAULT_VNODES);
        for i in 0..4 {
            ring.add_shard(&format!("s{i}"));
        }
        for key in [0u64, 7, 0xdead_beef, u64::MAX] {
            let c = ring.candidates(key, 3);
            assert_eq!(c.len(), 3);
            assert_eq!(c[0], ring.route(key).unwrap());
            let mut sorted: Vec<_> = c.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "candidates must be distinct");
        }
    }

    #[test]
    fn remove_restores_previous_routing() {
        let mut ring = HashRing::new(DEFAULT_VNODES);
        ring.add_shard("s0");
        ring.add_shard("s1");
        let before: Vec<String> = (0u8..=255)
            .map(|k| ring.route(fnv1a64(&[k])).unwrap().to_string())
            .collect();
        ring.add_shard("s2");
        ring.remove_shard("s2");
        let after: Vec<String> = (0u8..=255)
            .map(|k| ring.route(fnv1a64(&[k])).unwrap().to_string())
            .collect();
        assert_eq!(before, after, "join+leave must be routing-neutral");
    }
}
