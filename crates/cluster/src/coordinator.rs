//! The coordinator: a wire-compatible protocol-lab front door that
//! routes every request to a shard instead of computing it locally.
//!
//! Routing is consistent-hash over the request's *cache identity* — the
//! encoded request bytes plus the active exact-arithmetic backend id,
//! the same components that key the server-side bounds cache — so
//! identical requests always land on the same shard and the cluster's
//! aggregate cache capacity is the sum of the shards'. Around that
//! core:
//!
//! * **replica failover** — each key has an ordered candidate list of
//!   distinct shards (`ClusterConfig::replicas`); a candidate whose
//!   breaker is open, whose inflight cap is reached, or whose call
//!   fails is skipped and the next one tried (`ccmx_cluster_failover_total`);
//! * **batch fan-out** — a `Request::Batch` is split into per-shard
//!   sub-batches (preserving member order in the reassembled response),
//!   so one client burst amortizes across the cluster
//!   (`ccmx_cluster_batch_fanout_total`);
//! * **breaker-guarded links** — one [`CircuitBreaker`] per shard (the
//!   PR 5 stack), with the shared `ccmx_breaker_state{peer}` gauge;
//! * **degraded mode** — successful `Bounds` answers are mirrored into
//!   a coordinator-local LRU; when every candidate is dark the cached
//!   Theorem 1.1 report is served (`ccmx_cluster_degraded_total`)
//!   rather than an error;
//! * **live membership** — [`Coordinator::add_shard`] /
//!   [`Coordinator::remove_shard`] reshard without a restart
//!   (`ccmx_cluster_reshards_total{op}`); in-flight calls on a removed
//!   link complete before the connection closes.
//!
//! Ingress backpressure is the evented engine's own queue-depth
//! shedding (the coordinator serves on [`ccmx_net::serve_with_handler`],
//! so `ServerConfig::max_pending_requests` governs it); the per-shard
//! `max_inflight_per_shard` cap adds the per-edge dimension.

use std::collections::BTreeMap;
use std::sync::Arc;

use ccmx_net::cache::LruCache;
use ccmx_net::{
    BoundsReport, BreakerConfig, BreakerState, CircuitBreaker, Client, EventHandler, NetError,
    PromotedConn, Request, Response, ServerConfig, ServerHandle, TransportConfig, WireCodec,
};
use parking_lot::{Mutex, RwLock};

use crate::ring::{fnv1a64, HashRing, DEFAULT_VNODES};

/// Intern a shard name for use as a `'static` metric label.
pub(crate) fn intern_label(name: &str) -> &'static str {
    use std::sync::OnceLock;
    static TABLE: OnceLock<std::sync::Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut table = TABLE
        .get_or_init(|| std::sync::Mutex::new(Vec::new()))
        .lock()
        .unwrap();
    if let Some(&existing) = table.iter().find(|&&s| s == name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    table.push(leaked);
    leaked
}

/// One shard's identity: a stable name (ring position, metric label)
/// and a dialable address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Stable shard name; renaming a shard moves its ring points.
    pub name: String,
    /// `host:port` the shard server listens on.
    pub addr: String,
}

impl ShardSpec {
    /// Convenience constructor.
    pub fn new(name: &str, addr: &str) -> Self {
        ShardSpec {
            name: name.to_string(),
            addr: addr.to_string(),
        }
    }

    /// Parse the CLI form `name=addr`.
    pub fn parse(s: &str) -> Option<Self> {
        let (name, addr) = s.split_once('=')?;
        if name.is_empty() || addr.is_empty() {
            return None;
        }
        Some(ShardSpec::new(name, addr))
    }
}

/// One live connection to a shard.
pub trait ShardConn: Send {
    /// Send one request and wait for its response.
    fn call(&mut self, req: &Request) -> Result<Response, NetError>;
}

/// Opens connections to shards. Swapping the dialer is how the chaos
/// suite seals coordinator↔shard links inside `FaultTransport`
/// envelopes without the coordinator knowing.
pub trait ShardDialer: Send + Sync {
    /// Open a fresh connection to `spec`.
    fn dial(&self, spec: &ShardSpec) -> Result<Box<dyn ShardConn>, NetError>;
}

/// The production dialer: a plain [`Client`] over TCP.
pub struct TcpDialer {
    /// Timeouts/retries for each shard connection.
    pub config: TransportConfig,
}

struct ClientConn(Client);

impl ShardConn for ClientConn {
    fn call(&mut self, req: &Request) -> Result<Response, NetError> {
        self.0.request(req)
    }
}

impl ShardDialer for TcpDialer {
    fn dial(&self, spec: &ShardSpec) -> Result<Box<dyn ShardConn>, NetError> {
        Ok(Box::new(ClientConn(Client::connect(
            spec.addr.as_str(),
            self.config,
        )?)))
    }
}

/// Topology and resilience knobs for a [`Coordinator`].
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Vnodes per shard on the consistent-hash ring.
    pub vnodes_per_shard: usize,
    /// Distinct candidate shards tried per key (primary + failovers).
    pub replicas: usize,
    /// Per-shard circuit breaker policy.
    pub breaker: BreakerConfig,
    /// Transport config for shard connections (the default dialer).
    pub transport: TransportConfig,
    /// Capacity of the coordinator-local degraded-mode bounds cache.
    pub degraded_cache_capacity: usize,
    /// Calls allowed to queue against one shard before further
    /// candidates are preferred / the request is shed.
    pub max_inflight_per_shard: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            vnodes_per_shard: DEFAULT_VNODES,
            replicas: 2,
            breaker: BreakerConfig::default(),
            transport: TransportConfig::default(),
            degraded_cache_capacity: 64,
            max_inflight_per_shard: 512,
        }
    }
}

struct ShardLink {
    spec: ShardSpec,
    conn: Mutex<Option<Box<dyn ShardConn>>>,
    breaker: Mutex<CircuitBreaker>,
    inflight: std::sync::atomic::AtomicUsize,
    inflight_gauge: &'static ccmx_obs::Gauge,
    label: &'static str,
}

impl ShardLink {
    fn new(spec: ShardSpec, breaker_cfg: BreakerConfig) -> Arc<Self> {
        let label = intern_label(&spec.name);
        Arc::new(ShardLink {
            breaker: Mutex::new(CircuitBreaker::new(&spec.name, breaker_cfg)),
            spec,
            conn: Mutex::new(None),
            inflight: std::sync::atomic::AtomicUsize::new(0),
            inflight_gauge: ccmx_obs::registry()
                .gauge("ccmx_cluster_inflight", &[("shard", label)]),
            label,
        })
    }
}

/// The routing key a request hashes to: its encoded bytes plus the
/// active linalg backend id — mirroring the shard-side bounds-cache key
/// so an identical request is always served by the shard whose cache
/// already holds it.
pub fn request_route_key(req: &Request) -> u64 {
    let mut bytes = req.to_wire_bytes();
    bytes.extend_from_slice(ccmx_linalg::crt::active_backend().id().as_bytes());
    fnv1a64(&bytes)
}

fn shards_gauge() -> &'static ccmx_obs::Gauge {
    ccmx_obs::gauge!("ccmx_cluster_shards")
}

/// The shard router. Cheap to share (`Arc`); every method takes `&self`.
pub struct Coordinator {
    config: ClusterConfig,
    dialer: Arc<dyn ShardDialer>,
    ring: RwLock<HashRing>,
    links: RwLock<BTreeMap<String, Arc<ShardLink>>>,
    degraded: Mutex<LruCache<(usize, u32, u32), BoundsReport>>,
}

impl Coordinator {
    /// A coordinator over `shards`, dialing through `dialer`.
    pub fn new(
        config: ClusterConfig,
        shards: Vec<ShardSpec>,
        dialer: Arc<dyn ShardDialer>,
    ) -> Self {
        // Pre-register the cluster series so a scrape of an idle
        // coordinator shows them at zero.
        ccmx_obs::counter!("ccmx_cluster_shed_total").add(0);
        ccmx_obs::counter!("ccmx_cluster_degraded_total").add(0);
        ccmx_obs::counter!("ccmx_cluster_batch_fanout_total").add(0);
        let mut ring = HashRing::new(config.vnodes_per_shard);
        let mut links = BTreeMap::new();
        for spec in shards {
            if ring.add_shard(&spec.name) {
                links.insert(spec.name.clone(), ShardLink::new(spec, config.breaker));
            }
        }
        shards_gauge().set(ring.len() as i64);
        Coordinator {
            config,
            dialer,
            ring: RwLock::new(ring),
            links: RwLock::new(links),
            degraded: Mutex::new(LruCache::new(config.degraded_cache_capacity.max(1))),
        }
    }

    /// A coordinator with the plain TCP dialer.
    pub fn over_tcp(config: ClusterConfig, shards: Vec<ShardSpec>) -> Self {
        let transport = config.transport;
        Self::new(config, shards, Arc::new(TcpDialer { config: transport }))
    }

    /// Shard names currently routable, in name order.
    pub fn shard_names(&self) -> Vec<String> {
        self.links.read().keys().cloned().collect()
    }

    /// The breaker state guarding `name`, if that shard is known.
    pub fn breaker_state(&self, name: &str) -> Option<BreakerState> {
        self.links
            .read()
            .get(name)
            .map(|l| l.breaker.lock().state())
    }

    /// Join a shard live: future routes include it immediately; only
    /// ~1/N of the keyspace remaps onto it.
    pub fn add_shard(&self, spec: ShardSpec) -> bool {
        let mut ring = self.ring.write();
        if !ring.add_shard(&spec.name) {
            return false;
        }
        self.links
            .write()
            .insert(spec.name.clone(), ShardLink::new(spec, self.config.breaker));
        shards_gauge().set(ring.len() as i64);
        ccmx_obs::counter!("ccmx_cluster_reshards_total", "op" => "join").inc();
        true
    }

    /// Leave a shard live. The link is dropped from the routing table
    /// at once, but calls already holding it drain through the breaker
    /// stack before the connection closes (the `Arc` keeps it alive).
    pub fn remove_shard(&self, name: &str) -> bool {
        let mut ring = self.ring.write();
        if !ring.remove_shard(name) {
            return false;
        }
        self.links.write().remove(name);
        shards_gauge().set(ring.len() as i64);
        ccmx_obs::counter!("ccmx_cluster_reshards_total", "op" => "leave").inc();
        true
    }

    /// Route one request and return its response. Never panics; total.
    pub fn dispatch(&self, req: &Request) -> Response {
        match req {
            // The coordinator answers liveness and its own metrics
            // locally; everything computational goes to a shard.
            Request::Ping => Response::Pong,
            Request::Metrics => Response::Metrics(ccmx_obs::registry().render()),
            Request::Batch(members) => self.dispatch_batch(members),
            other => self.dispatch_single(other),
        }
    }

    fn dispatch_batch(&self, members: &[Request]) -> Response {
        if members.is_empty() {
            return Response::Batch(Vec::new());
        }
        // Group member indices by primary shard, preserving member
        // order inside each group (BTreeMap for deterministic fan-out
        // order).
        let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        {
            let ring = self.ring.read();
            for (i, m) in members.iter().enumerate() {
                let shard = match m {
                    // Sub-batching locally answerable members is
                    // pointless; and nested batches are rejected by
                    // shards anyway — dispatch them individually so the
                    // error is per-member.
                    Request::Ping | Request::Metrics | Request::Batch(_) => String::new(),
                    other => ring
                        .route(request_route_key(other))
                        .unwrap_or_default()
                        .to_string(),
                };
                groups.entry(shard).or_default().push(i);
            }
        }
        let mut slots: Vec<Option<Response>> = vec![None; members.len()];
        for (shard, idxs) in groups {
            if shard.is_empty() {
                for &i in &idxs {
                    slots[i] = Some(self.dispatch(&members[i]));
                }
                continue;
            }
            ccmx_obs::counter!("ccmx_cluster_batch_fanout_total").inc();
            let sub: Vec<Request> = idxs.iter().map(|&i| members[i].clone()).collect();
            match self.call_with_failover(&Request::Batch(sub), Some(&shard)) {
                Some(Response::Batch(resps)) if resps.len() == idxs.len() => {
                    for (&i, r) in idxs.iter().zip(resps) {
                        slots[i] = Some(r);
                    }
                }
                Some(other) => {
                    // A shard answering a batch with a non-batch (e.g.
                    // a top-level error) degrades every member of the
                    // group to that answer.
                    for &i in &idxs {
                        slots[i] = Some(other.clone());
                    }
                }
                None => {
                    // Whole group failed over to nothing: fall back to
                    // per-member dispatch, which can still degrade
                    // bounds members individually.
                    for &i in &idxs {
                        slots[i] = Some(self.dispatch_single(&members[i]));
                    }
                }
            }
        }
        Response::Batch(
            slots
                .into_iter()
                .map(|r| {
                    r.unwrap_or_else(|| Response::Error("batch member lost in fan-out".to_string()))
                })
                .collect(),
        )
    }

    fn dispatch_single(&self, req: &Request) -> Response {
        if let Some(resp) = self.call_with_failover(req, None) {
            return resp;
        }
        // Every candidate is dark. Degrade bounds requests to the
        // coordinator-local cache — stale Theorem 1.1 numbers beat no
        // numbers, and they are deterministic so "stale" equals fresh.
        if let Request::Bounds { n, k, security } = *req {
            if let Some(report) = self.degraded.lock().get(&(n, k, security)) {
                ccmx_obs::counter!("ccmx_cluster_degraded_total").inc();
                return Response::Bounds(report);
            }
        }
        ccmx_obs::counter!("ccmx_cluster_shed_total").inc();
        Response::Error("no shard available for this request".to_string())
    }

    /// Try `req` against the candidate shards for its key (or for
    /// `pinned`'s key space when a batch group already chose its
    /// primary), honoring breakers and inflight caps. `None` means
    /// every candidate was skipped or failed.
    fn call_with_failover(&self, req: &Request, pinned: Option<&str>) -> Option<Response> {
        let candidates: Vec<String> = {
            let ring = self.ring.read();
            match pinned {
                Some(primary) => {
                    // The batch group's primary first, then the other
                    // shards as failovers for the whole group.
                    let mut c = vec![primary.to_string()];
                    c.extend(
                        ring.shards()
                            .iter()
                            .filter(|s| s.as_str() != primary)
                            .take(self.config.replicas.max(1).saturating_sub(1))
                            .cloned(),
                    );
                    c
                }
                None => ring
                    .candidates(request_route_key(req), self.config.replicas.max(1))
                    .into_iter()
                    .map(String::from)
                    .collect(),
            }
        };
        for name in &candidates {
            let Some(link) = self.links.read().get(name).cloned() else {
                continue;
            };
            if !link.breaker.lock().allow() {
                continue;
            }
            let inflight = link
                .inflight
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst)
                + 1;
            link.inflight_gauge.set(inflight as i64);
            let result = if inflight > self.config.max_inflight_per_shard.max(1) {
                Err(NetError::Protocol("shard inflight cap reached".to_string()))
            } else {
                self.call_link(&link, req)
            };
            let now = link
                .inflight
                .fetch_sub(1, std::sync::atomic::Ordering::SeqCst)
                - 1;
            link.inflight_gauge.set(now as i64);
            match result {
                Ok(resp) => {
                    ccmx_obs::registry()
                        .counter("ccmx_cluster_routed_total", &[("shard", link.label)])
                        .inc();
                    if let (Request::Bounds { n, k, security }, Response::Bounds(report)) =
                        (req, &resp)
                    {
                        self.degraded.lock().put((*n, *k, *security), *report);
                    }
                    return Some(resp);
                }
                Err(_) => {
                    ccmx_obs::registry()
                        .counter("ccmx_cluster_failover_total", &[("shard", link.label)])
                        .inc();
                }
            }
        }
        None
    }

    /// One call on one link: dial on demand, drop the pooled connection
    /// on failure, and feed the breaker. A `Response::Error` from the
    /// shard is a *successful* call — the shard answered.
    fn call_link(&self, link: &ShardLink, req: &Request) -> Result<Response, NetError> {
        let result = {
            let mut conn = link.conn.lock();
            if conn.is_none() {
                match self.dialer.dial(&link.spec) {
                    Ok(c) => *conn = Some(c),
                    Err(e) => {
                        link.breaker.lock().record_failure();
                        return Err(e);
                    }
                }
            }
            let res = conn.as_mut().expect("dialed above").call(req);
            if res.is_err() {
                *conn = None;
            }
            res
        };
        match &result {
            Ok(_) => link.breaker.lock().record_success(),
            Err(_) => link.breaker.lock().record_failure(),
        }
        result
    }
}

/// [`EventHandler`] adapter: the coordinator served on the evented
/// engine, speaking the identical wire protocol as a shard.
pub struct CoordinatorHandler {
    coordinator: Arc<Coordinator>,
}

impl CoordinatorHandler {
    /// Wrap a coordinator for [`ccmx_net::serve_with_handler`].
    pub fn new(coordinator: Arc<Coordinator>) -> Self {
        CoordinatorHandler { coordinator }
    }
}

impl EventHandler for CoordinatorHandler {
    fn handle_request(&self, payload: &[u8], _received: std::time::Instant) -> Vec<u8> {
        let resp = match Request::from_wire_bytes(payload) {
            Ok(req) => self.coordinator.dispatch(&req),
            Err(e) => Response::Error(format!("bad request: {e}")),
        };
        resp.to_wire_bytes()
    }

    fn interactive(&self, conn: PromotedConn) {
        // An interactive run is a live two-agent exchange; proxying it
        // frame-by-frame through the router would meter coordinator hop
        // bits into the protocol ledger. Refuse with a pointer instead.
        conn.refuse("interactive runs must connect to a shard directly");
    }
}

/// Bind `addr` and serve the coordinator on the evented engine.
pub fn serve_coordinator(
    addr: &str,
    server: ServerConfig,
    coordinator: Arc<Coordinator>,
) -> std::io::Result<ServerHandle> {
    ccmx_net::serve_with_handler(addr, server, Arc::new(CoordinatorHandler::new(coordinator)))
}
