//! Cluster chaos: fault-sealed coordinator↔shard links and soaks that
//! assert the router never perturbs the metered protocol bits.
//!
//! The unit under attack here is the *routing fabric*, not the
//! protocol: every coordinator↔shard connection is tunneled through a
//! [`FaultTransport`] (the PR 5 envelope/NACK stack) in **sealed-frame
//! mode** — request/response frames ride the chaos envelopes with
//! checksums and retransmission, but none of their bytes are metered as
//! protocol bits, because coordinator hops are infrastructure. A bridge
//! thread per link pumps recovered frames onto a real TCP connection to
//! the shard.
//!
//! [`cluster_soak`] then drives a seeded protocol-run workload through
//! a live cluster while faults chew on every link, optionally
//! resharding (join + leave) or killing a shard mid-run, and checks
//! each answered run **bit-for-bit** against `run_sequential` — the
//! cluster-level version of the repo's invariant that transport
//! failures, retries, failovers and resharding must never leak into the
//! communication-complexity ledger.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ccmx_comm::protocol::run_sequential;
use ccmx_comm::BitString;
use ccmx_net::wire::{KIND_REQUEST, KIND_RESPONSE};
use ccmx_net::{
    fault_mem_pair, ChaosLevel, Client, FaultTransport, MemFrameLink, NetError, ProtoSpec, Request,
    Response, WireCodec,
};
use parking_lot::Mutex;

use crate::coordinator::{
    intern_label, ClusterConfig, Coordinator, ShardConn, ShardDialer, ShardSpec,
};
use crate::shard::{serve_shard, ShardConfig, ShardHandle};

/// How long a sealed call waits out chaos recovery before counting as a
/// link failure. In-memory links recover in milliseconds even under
/// aggressive schedules; seconds of silence means the peer is gone.
const SEALED_CALL_DEADLINE: Duration = Duration::from_secs(3);

/// A fixed salt so soak RNG streams never collide with shard seeds.
const SOAK_RNG_SALT: u64 = 0xc1a5_7e2d_0000_0001;

/// One sealed link: requests go out through a local fault transport,
/// and a bridge thread on the far end replays recovered frames to the
/// real shard over TCP.
struct SealedConn {
    side: FaultTransport<MemFrameLink>,
}

impl ShardConn for SealedConn {
    fn call(&mut self, req: &Request) -> Result<Response, NetError> {
        self.side.send_sealed(KIND_REQUEST, &req.to_wire_bytes())?;
        let (kind, payload) = self.side.recv_sealed()?;
        if kind != KIND_RESPONSE {
            return Err(NetError::Protocol(format!(
                "sealed link got unexpected frame kind {kind}"
            )));
        }
        Response::from_wire_bytes(&payload)
    }
}

/// A [`ShardDialer`] that seals every link it opens inside a pair of
/// fault transports with deterministic per-link schedules.
pub struct ChaosDialer {
    level: ChaosLevel,
    seed: u64,
    dials: AtomicU64,
    bridges: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ChaosDialer {
    /// A dialer whose `i`-th link uses schedules seeded from
    /// `(seed, i)` — rerunning a soak replays the identical fault
    /// pattern.
    pub fn new(level: ChaosLevel, seed: u64) -> Self {
        ChaosDialer {
            level,
            seed,
            dials: AtomicU64::new(0),
            bridges: Mutex::new(Vec::new()),
        }
    }

    /// Join every bridge thread whose link has been severed. Call after
    /// dropping the coordinator (links die with it).
    pub fn join_bridges(&self) {
        for handle in self.bridges.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl ShardDialer for ChaosDialer {
    fn dial(&self, spec: &ShardSpec) -> Result<Box<dyn ShardConn>, NetError> {
        // Connect synchronously so a dead shard fails the dial itself
        // (fast breaker feedback), not the first call.
        let mut client = Client::connect(spec.addr.as_str(), Default::default())?;
        let n = self.dials.fetch_add(1, Ordering::SeqCst);
        let salt = self.seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let (mut near, mut far) = fault_mem_pair(
            self.level.config(salt),
            self.level.config(salt ^ 0x5bd1_e995),
        );
        near.set_recv_deadline(SEALED_CALL_DEADLINE);
        far.set_recv_deadline(Duration::from_millis(200));
        let handle = std::thread::spawn(move || loop {
            match far.recv_sealed() {
                Ok((KIND_REQUEST, payload)) => {
                    let resp = match Request::from_wire_bytes(&payload) {
                        Ok(req) => match client.request(&req) {
                            Ok(r) => r,
                            // The shard itself is gone: sever the link
                            // so the coordinator sees a dead edge, not
                            // a slow one.
                            Err(_) => break,
                        },
                        Err(e) => Response::Error(format!("bad sealed request: {e}")),
                    };
                    if far
                        .send_sealed(KIND_RESPONSE, &resp.to_wire_bytes())
                        .is_err()
                    {
                        break;
                    }
                }
                Ok(_) => break,
                // Idle link: keep pumping the NACK clock.
                Err(NetError::Timeout) => continue,
                Err(_) => break,
            }
        });
        self.bridges.lock().push(handle);
        Ok(Box::new(SealedConn { side: near }))
    }
}

/// Knobs for one cluster soak.
#[derive(Clone, Copy, Debug)]
pub struct SoakConfig {
    /// Initial shard count.
    pub shards: usize,
    /// Protocol-run requests to drive through the coordinator.
    pub requests: usize,
    /// Master seed for inputs and fault schedules.
    pub seed: u64,
    /// Fault intensity on every coordinator↔shard link.
    pub level: ChaosLevel,
    /// Join a new shard at ⅓ of the run and retire an original at ⅔.
    pub reshard: bool,
    /// Kill (not cleanly remove) one original shard at ½ of the run;
    /// requires `shards >= 2` to have a failover target.
    pub kill: bool,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            shards: 2,
            requests: 48,
            seed: 7,
            level: ChaosLevel::Moderate,
            reshard: true,
            kill: false,
        }
    }
}

/// Verdict of one cluster soak.
#[derive(Clone, Debug)]
pub struct ClusterSoakReport {
    /// Shards at the start of the run.
    pub shards_initial: usize,
    /// Requests driven.
    pub requests: usize,
    /// Requests answered with a protocol-run result.
    pub answered: usize,
    /// Requests answered with an error (no shard reachable).
    pub errors: usize,
    /// Answered runs whose metered result differed from the sequential
    /// reference — the number that must be zero.
    pub diverged: usize,
    /// Whether a join+leave reshard happened mid-run.
    pub resharded: bool,
    /// Shard killed mid-run, if any.
    pub killed_shard: Option<String>,
    /// The killed shard's breaker state at the end of the run.
    pub killed_breaker: Option<ccmx_net::BreakerState>,
    /// Failovers observed across all shards (best-effort metric delta;
    /// parallel tests in the same process may inflate it).
    pub failovers: u64,
    /// The headline invariant: every answered run matched the
    /// sequential reference bit-for-bit.
    pub zero_bit_divergence: bool,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn failover_total(shard_names: &[String]) -> u64 {
    shard_names
        .iter()
        .map(|n| {
            ccmx_obs::registry()
                .counter_value("ccmx_cluster_failover_total", &[("shard", intern_label(n))])
                .unwrap_or(0)
        })
        .sum()
}

/// Boot an in-process cluster, chew on every coordinator↔shard link
/// with the configured fault schedule, drive a seeded protocol-run
/// workload, optionally reshard or kill mid-run, and compare every
/// answered run bit-for-bit with `run_sequential`.
pub fn cluster_soak(config: SoakConfig) -> ClusterSoakReport {
    assert!(config.shards >= 1, "a cluster needs at least one shard");
    let shard_cfg = |name: &str| ShardConfig {
        cache_capacity: 32,
        workers: 2,
        ..ShardConfig::named(name)
    };
    let mut handles: Vec<(String, Option<ShardHandle>)> = Vec::new();
    let mut specs = Vec::new();
    for i in 0..config.shards {
        let name = format!("soak-{}-s{i}", config.seed);
        let handle = serve_shard("127.0.0.1:0", shard_cfg(&name)).expect("bind soak shard");
        specs.push(ShardSpec::new(&name, &handle.addr().to_string()));
        handles.push((name, Some(handle)));
    }
    let all_names: Vec<String> = handles.iter().map(|(n, _)| n.clone()).collect();

    let dialer = Arc::new(ChaosDialer::new(config.level, config.seed));
    let coordinator = Coordinator::new(
        ClusterConfig {
            replicas: 2,
            ..ClusterConfig::default()
        },
        specs,
        Arc::clone(&dialer) as Arc<dyn ShardDialer>,
    );

    let spec = ProtoSpec::SendAllSingularity { dim: 2, k: 2 };
    let setup = spec.build();
    let failovers_before = failover_total(&all_names);

    let mut rng = config.seed ^ SOAK_RNG_SALT;
    let mut answered = 0usize;
    let mut errors = 0usize;
    let mut diverged = 0usize;
    let mut resharded = false;
    let mut killed_shard = None;
    let mut joined: Option<(String, ShardHandle)> = None;

    for i in 0..config.requests {
        if config.reshard && i == config.requests / 3 && joined.is_none() {
            let name = format!("soak-{}-joiner", config.seed);
            let handle = serve_shard("127.0.0.1:0", shard_cfg(&name)).expect("bind joining shard");
            let spec = ShardSpec::new(&name, &handle.addr().to_string());
            coordinator.add_shard(spec);
            joined = Some((name, handle));
        }
        if config.kill && i == config.requests / 2 && killed_shard.is_none() {
            // Kill the *server* but leave it on the ring: the breaker,
            // not the membership table, must absorb this.
            let (name, slot) = handles.first_mut().expect("at least one shard");
            if let Some(h) = slot.take() {
                h.shutdown();
            }
            killed_shard = Some(name.clone());
        }
        if config.reshard && i == (2 * config.requests) / 3 && !resharded {
            // Retire the last original shard cleanly (leave, then stop).
            let (name, slot) = handles.last_mut().expect("at least one shard");
            if killed_shard.as_deref() != Some(name.as_str()) {
                coordinator.remove_shard(name);
                if let Some(h) = slot.take() {
                    h.shutdown();
                }
                resharded = true;
            }
        }

        let bits = splitmix64(&mut rng);
        let input = BitString::from_u64(bits & ((1u64 << setup.input_bits) - 1), setup.input_bits);
        let seed = splitmix64(&mut rng);
        let req = Request::Run {
            spec,
            input: input.clone(),
            seed,
        };
        match coordinator.dispatch(&req) {
            Response::Run(result) => {
                answered += 1;
                let reference =
                    run_sequential(setup.proto.as_ref(), &setup.partition, &input, seed);
                if result != reference {
                    diverged += 1;
                }
            }
            Response::Error(_) => errors += 1,
            other => {
                errors += 1;
                let _ = other;
            }
        }
    }

    let killed_breaker = killed_shard
        .as_deref()
        .and_then(|n| coordinator.breaker_state(n));
    let mut names_for_delta = all_names.clone();
    if let Some((n, _)) = &joined {
        names_for_delta.push(n.clone());
    }
    let failovers = failover_total(&names_for_delta).saturating_sub(failovers_before);

    drop(coordinator);
    dialer.join_bridges();
    if let Some((_, handle)) = joined {
        handle.shutdown();
    }
    for (_, slot) in handles.iter_mut() {
        if let Some(h) = slot.take() {
            h.shutdown();
        }
    }

    ClusterSoakReport {
        shards_initial: config.shards,
        requests: config.requests,
        answered,
        errors,
        diverged,
        resharded,
        killed_shard,
        killed_breaker,
        failovers,
        zero_bit_divergence: diverged == 0,
    }
}
