//! Request/response vocabulary of the protocol-lab server, plus
//! [`ProtoSpec`] — the wire-transportable description of a protocol
//! instance that both endpoints can build identically.

use ccmx_comm::functions::{BooleanFunction, Equality, Singularity};
use ccmx_comm::protocol::{RunResult, TwoPartyProtocol};
use ccmx_comm::protocols::{fingerprint, FingerprintEquality, ModPrimeSingularity, SendAll};
use ccmx_comm::{BitString, Partition};

use crate::error::NetError;
use crate::wire::{Dec, WireCodec};

/// A protocol instance both sides can construct from parameters alone.
///
/// The server never receives protocol *objects* — it receives one of
/// these and rebuilds the instance locally, so client and server agents
/// are guaranteed to run the same deterministic state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtoSpec {
    /// Deterministic send-everything upper bound on singularity
    /// (`dim × dim` matrix of `k`-bit entries, π₀ partition).
    SendAllSingularity {
        /// Matrix dimension.
        dim: usize,
        /// Bits per entry.
        k: u32,
    },
    /// Randomized mod-a-random-prime singularity protocol.
    ModPrimeSingularity {
        /// Matrix dimension.
        dim: usize,
        /// Bits per entry.
        k: u32,
        /// Error `<= 2^-security`.
        security: u32,
    },
    /// Randomized fingerprint equality on two `half_bits`-bit halves.
    FingerprintEquality {
        /// Bits per half.
        half_bits: usize,
        /// Error `<= 2^-security`.
        security: u32,
    },
}

/// A protocol instance ready to run: the protocol object, the canonical
/// partition for its spec, the referee function, and the input width.
pub struct LabSetup {
    /// The protocol state machine.
    pub proto: Box<dyn TwoPartyProtocol + Send + Sync>,
    /// Canonical partition (π₀ for matrix problems, the fixed half
    /// split for equality).
    pub partition: Partition,
    /// Exact evaluator used as correctness referee.
    pub function: Box<dyn BooleanFunction + Send + Sync>,
    /// Total input bits the spec expects.
    pub input_bits: usize,
}

impl ProtoSpec {
    /// Build the protocol instance this spec describes. Deterministic:
    /// two endpoints building the same spec get byte-identical behavior.
    pub fn build(&self) -> LabSetup {
        match *self {
            ProtoSpec::SendAllSingularity { dim, k } => {
                let f = Singularity::new(dim, k);
                let partition = Partition::pi_zero(&f.enc);
                let input_bits = f.num_bits();
                LabSetup {
                    proto: Box::new(SendAll::new(f)),
                    partition,
                    function: Box::new(f),
                    input_bits,
                }
            }
            ProtoSpec::ModPrimeSingularity { dim, k, security } => {
                let proto = ModPrimeSingularity::new(dim, k, security);
                let f = Singularity::new(dim, k);
                let partition = Partition::pi_zero(&proto.enc);
                let input_bits = f.num_bits();
                LabSetup {
                    proto: Box::new(proto),
                    partition,
                    function: Box::new(f),
                    input_bits,
                }
            }
            ProtoSpec::FingerprintEquality {
                half_bits,
                security,
            } => {
                let f = Equality { half_bits };
                let input_bits = f.num_bits();
                LabSetup {
                    proto: Box::new(FingerprintEquality::new(half_bits, security)),
                    partition: fingerprint::fixed_partition(half_bits),
                    function: Box::new(f),
                    input_bits,
                }
            }
        }
    }

    /// Short name for logs and benchmark labels.
    pub fn name(&self) -> &'static str {
        match self {
            ProtoSpec::SendAllSingularity { .. } => "send-all-singularity",
            ProtoSpec::ModPrimeSingularity { .. } => "mod-prime-singularity",
            ProtoSpec::FingerprintEquality { .. } => "fingerprint-equality",
        }
    }
}

impl WireCodec for ProtoSpec {
    fn put(&self, out: &mut Vec<u8>) {
        match *self {
            ProtoSpec::SendAllSingularity { dim, k } => {
                out.push(0);
                dim.put(out);
                k.put(out);
            }
            ProtoSpec::ModPrimeSingularity { dim, k, security } => {
                out.push(1);
                dim.put(out);
                k.put(out);
                security.put(out);
            }
            ProtoSpec::FingerprintEquality {
                half_bits,
                security,
            } => {
                out.push(2);
                half_bits.put(out);
                security.put(out);
            }
        }
    }

    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        match d.take_u8()? {
            0 => Ok(ProtoSpec::SendAllSingularity {
                dim: usize::take(d)?,
                k: u32::take(d)?,
            }),
            1 => Ok(ProtoSpec::ModPrimeSingularity {
                dim: usize::take(d)?,
                k: u32::take(d)?,
                security: u32::take(d)?,
            }),
            2 => Ok(ProtoSpec::FingerprintEquality {
                half_bits: usize::take(d)?,
                security: u32::take(d)?,
            }),
            v => Err(NetError::Frame(format!("unknown ProtoSpec tag {v}"))),
        }
    }
}

/// Bound summary for `(n, k)` à la the `ccmx bounds` CLI, served from
/// the server's LRU cache.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundsReport {
    /// Half-dimension parameter (odd, `>= 5`).
    pub n: usize,
    /// Bits per entry.
    pub k: u32,
    /// Security parameter used for the randomized upper bound.
    pub security: u32,
    /// Theorem 1.1 lower bound, in bits.
    pub lower_bound_bits: f64,
    /// Deterministic (send-all) upper bound, in bits.
    pub deterministic_upper_bits: f64,
    /// Randomized (mod-prime) upper bound, in bits.
    pub randomized_upper_bits: f64,
}

impl WireCodec for BoundsReport {
    fn put(&self, out: &mut Vec<u8>) {
        self.n.put(out);
        self.k.put(out);
        self.security.put(out);
        self.lower_bound_bits.put(out);
        self.deterministic_upper_bits.put(out);
        self.randomized_upper_bits.put(out);
    }
    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        Ok(BoundsReport {
            n: usize::take(d)?,
            k: u32::take(d)?,
            security: u32::take(d)?,
            lower_bound_bits: f64::take(d)?,
            deterministic_upper_bits: f64::take(d)?,
            randomized_upper_bits: f64::take(d)?,
        })
    }
}

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Theorem 1.1 bound package for `(n, k)`; served from the LRU cache.
    Bounds {
        /// Half-dimension (odd, `>= 5`).
        n: usize,
        /// Bits per entry (`2..=63`).
        k: u32,
        /// Security for the randomized bound.
        security: u32,
    },
    /// Run a protocol in-process on the server and return the full
    /// metered result.
    Run {
        /// Which protocol instance.
        spec: ProtoSpec,
        /// Full input (the lab setting: the server splits it by the
        /// spec's canonical partition).
        input: BitString,
        /// Shared RNG seed.
        seed: u64,
    },
    /// Exact singularity decision for an encoded matrix.
    Singularity {
        /// Matrix dimension.
        dim: usize,
        /// Bits per entry.
        k: u32,
        /// Encoded matrix bits.
        input: BitString,
    },
    /// Exact `CC(f)` of an explicit truth matrix via the branch-and-
    /// bound engine in `ccmx-search`. `bits` is the matrix in row-major
    /// order (`rows * cols` entries). The server answers from a cache
    /// keyed on the *full* tuple including `depth_limit`, so a shallow
    /// (inexact) verdict can never be replayed for a deep query.
    CcSearch {
        /// Number of matrix rows (`1..=64`).
        rows: usize,
        /// Number of matrix columns (`1..=64`).
        cols: usize,
        /// Row-major truth entries, `rows * cols` bits.
        bits: BitString,
        /// Search depth budget; answers above it come back inexact.
        depth_limit: u32,
    },
    /// Several requests in one frame; the server's batcher groups them
    /// by setup so protocol construction is amortized across the burst.
    Batch(Vec<Request>),
    /// Live metrics scrape: the server answers with its whole
    /// [`ccmx_obs`] registry rendered as Prometheus-style
    /// exposition text.
    Metrics,
}

impl WireCodec for Request {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            Request::Ping => out.push(0),
            Request::Bounds { n, k, security } => {
                out.push(1);
                n.put(out);
                k.put(out);
                security.put(out);
            }
            Request::Run { spec, input, seed } => {
                out.push(2);
                spec.put(out);
                input.put(out);
                seed.put(out);
            }
            Request::Singularity { dim, k, input } => {
                out.push(3);
                dim.put(out);
                k.put(out);
                input.put(out);
            }
            Request::Batch(reqs) => {
                out.push(4);
                reqs.put(out);
            }
            Request::Metrics => out.push(5),
            Request::CcSearch {
                rows,
                cols,
                bits,
                depth_limit,
            } => {
                out.push(6);
                rows.put(out);
                cols.put(out);
                bits.put(out);
                depth_limit.put(out);
            }
        }
    }

    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        match d.take_u8()? {
            0 => Ok(Request::Ping),
            1 => Ok(Request::Bounds {
                n: usize::take(d)?,
                k: u32::take(d)?,
                security: u32::take(d)?,
            }),
            2 => Ok(Request::Run {
                spec: ProtoSpec::take(d)?,
                input: BitString::take(d)?,
                seed: u64::take(d)?,
            }),
            3 => Ok(Request::Singularity {
                dim: usize::take(d)?,
                k: u32::take(d)?,
                input: BitString::take(d)?,
            }),
            4 => Ok(Request::Batch(Vec::<Request>::take(d)?)),
            5 => Ok(Request::Metrics),
            6 => Ok(Request::CcSearch {
                rows: usize::take(d)?,
                cols: usize::take(d)?,
                bits: BitString::take(d)?,
                depth_limit: u32::take(d)?,
            }),
            v => Err(NetError::Frame(format!("unknown Request tag {v}"))),
        }
    }
}

/// A server response, paired 1:1 with [`Request`] variants.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Bound package (possibly a cache hit).
    Bounds(BoundsReport),
    /// Full metered run result; bit-identical to `run_sequential` on the
    /// same `(spec, input, seed)`.
    Run(RunResult),
    /// Exact singularity verdict.
    Singularity {
        /// Whether the matrix is singular.
        singular: bool,
    },
    /// Exact (or depth-limited) `CC(f)` verdict.
    CcSearch {
        /// The communication complexity; when `exact` is false this is
        /// the certified lower bound `depth_limit + 1`.
        cc: u32,
        /// Whether `cc` is the exact value.
        exact: bool,
        /// Search nodes expanded server-side (0 on a cache hit).
        nodes: u64,
        /// Serialized [`ccmx_search::CcCertificate`] (empty when the
        /// search was inexact or the witness was too wide to extract);
        /// decode with `CcCertificate::from_bytes`.
        certificate: Vec<u8>,
    },
    /// Batched responses in request order.
    Batch(Vec<Response>),
    /// The request could not be served.
    Error(String),
    /// Metrics exposition text (reply to [`Request::Metrics`]).
    Metrics(String),
}

impl WireCodec for Response {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            Response::Pong => out.push(0),
            Response::Bounds(report) => {
                out.push(1);
                report.put(out);
            }
            Response::Run(result) => {
                out.push(2);
                result.put(out);
            }
            Response::Singularity { singular } => {
                out.push(3);
                singular.put(out);
            }
            Response::Batch(responses) => {
                out.push(4);
                responses.put(out);
            }
            Response::Error(msg) => {
                out.push(5);
                msg.put(out);
            }
            Response::Metrics(text) => {
                out.push(6);
                text.put(out);
            }
            Response::CcSearch {
                cc,
                exact,
                nodes,
                certificate,
            } => {
                out.push(7);
                cc.put(out);
                exact.put(out);
                nodes.put(out);
                certificate.put(out);
            }
        }
    }

    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        match d.take_u8()? {
            0 => Ok(Response::Pong),
            1 => Ok(Response::Bounds(BoundsReport::take(d)?)),
            2 => Ok(Response::Run(RunResult::take(d)?)),
            3 => Ok(Response::Singularity {
                singular: bool::take(d)?,
            }),
            4 => Ok(Response::Batch(Vec::<Response>::take(d)?)),
            5 => Ok(Response::Error(String::take(d)?)),
            6 => Ok(Response::Metrics(String::take(d)?)),
            7 => Ok(Response::CcSearch {
                cc: u32::take(d)?,
                exact: bool::take(d)?,
                nodes: u64::take(d)?,
                certificate: Vec::<u8>::take(d)?,
            }),
            v => Err(NetError::Frame(format!("unknown Response tag {v}"))),
        }
    }
}

/// Setup header that switches a connection into an interactive run: the
/// client keeps agent A, the server plays agent B with the share below.
#[derive(Clone, Debug, PartialEq)]
pub struct InteractiveSetup {
    /// Which protocol instance both endpoints build.
    pub spec: ProtoSpec,
    /// Positions of agent B's share (must match the spec's canonical
    /// partition; the server verifies).
    pub b_positions: Vec<usize>,
    /// Values of agent B's share, aligned with `b_positions`.
    pub b_values: BitString,
    /// Shared RNG seed.
    pub seed: u64,
}

impl WireCodec for InteractiveSetup {
    fn put(&self, out: &mut Vec<u8>) {
        self.spec.put(out);
        self.b_positions.put(out);
        self.b_values.put(out);
        self.seed.put(out);
    }
    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        Ok(InteractiveSetup {
            spec: ProtoSpec::take(d)?,
            b_positions: Vec::<usize>::take(d)?,
            b_values: BitString::take(d)?,
            seed: u64::take(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proto_spec_round_trip() {
        for spec in [
            ProtoSpec::SendAllSingularity { dim: 2, k: 2 },
            ProtoSpec::ModPrimeSingularity {
                dim: 3,
                k: 4,
                security: 25,
            },
            ProtoSpec::FingerprintEquality {
                half_bits: 32,
                security: 20,
            },
        ] {
            assert_eq!(
                ProtoSpec::from_wire_bytes(&spec.to_wire_bytes()).unwrap(),
                spec
            );
        }
    }

    #[test]
    fn request_response_round_trip() {
        let req = Request::Batch(vec![
            Request::Ping,
            Request::Bounds {
                n: 5,
                k: 3,
                security: 20,
            },
            Request::Run {
                spec: ProtoSpec::SendAllSingularity { dim: 2, k: 2 },
                input: BitString::from_u64(0b1010_1010, 8),
                seed: 42,
            },
        ]);
        assert_eq!(Request::from_wire_bytes(&req.to_wire_bytes()).unwrap(), req);

        assert_eq!(
            Request::from_wire_bytes(&Request::Metrics.to_wire_bytes()).unwrap(),
            Request::Metrics
        );

        let resp = Response::Batch(vec![
            Response::Pong,
            Response::Error("nope".into()),
            Response::Singularity { singular: true },
            Response::Metrics("ccmx_server_requests_total 3\n".into()),
        ]);
        assert_eq!(
            Response::from_wire_bytes(&resp.to_wire_bytes()).unwrap(),
            resp
        );
    }

    #[test]
    fn specs_build_consistent_setups() {
        let setup = ProtoSpec::SendAllSingularity { dim: 2, k: 2 }.build();
        assert_eq!(setup.input_bits, 8);
        assert_eq!(setup.partition.len(), 8);
        assert!(setup.partition.is_even());

        let setup = ProtoSpec::FingerprintEquality {
            half_bits: 16,
            security: 20,
        }
        .build();
        assert_eq!(setup.input_bits, 32);
        assert_eq!(setup.partition.count_a(), 16);
    }
}
