//! Readiness-based event-loop engine: nonblocking TCP + `poll(2)`.
//!
//! The threaded engine in [`crate::server`] dedicates a worker thread to
//! each live connection, which caps concurrency at the pool size: ten
//! thousand idle clients would need ten thousand stacks. This engine
//! inverts the layout into the classic single-reactor shape:
//!
//! * **one loop thread** owns the nonblocking listener and every
//!   connection; `poll(2)` (via the vendored `polling` shim — the build
//!   is offline, so no tokio/mio) reports which sockets are readable or
//!   writable, and the loop moves bytes and parses frames incrementally;
//! * **a small compute pool** executes request dispatch off the loop;
//!   completed responses come back over a channel and a loopback UDP
//!   wake datagram nudges the loop out of `poll`;
//! * connections are *state*, not *threads*: a read buffer accumulating
//!   the next frame, a write queue of encoded responses, an idle clock
//!   for strike-based eviction, and a per-connection request queue so a
//!   pipelining client still gets its responses in order.
//!
//! **Backpressure / load-shedding**: the loop tracks outstanding
//! requests in the `ccmx_server_queue_depth` gauge; past
//! [`crate::ServerConfig::max_pending_requests`] it answers overload
//! errors immediately instead of queueing (`ccmx_server_shed_total`).
//!
//! **Graceful drain**: on shutdown the listener closes first, reading
//! stops, and the loop keeps polling until every queued request has been
//! answered and every write buffer flushed (bounded by
//! [`crate::ServerConfig::drain_timeout`]) — a stop mid-batch can no
//! longer silently drop queued batch members.
//!
//! **Interactive runs** cannot run on the loop (they are a blocking
//! two-agent exchange), so a `KIND_INTERACTIVE` frame *promotes* its
//! connection: the socket flips back to blocking mode and is handed —
//! together with any bytes already buffered past the frame — to the
//! [`EventHandler`], which may continue it on a dedicated thread with
//! the identical `run_agent` state machine.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, UdpSocket};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use polling::{poll_fds, PollFd, POLLIN, POLLOUT};

use crate::api::Response;
use crate::server::ServerState;
use crate::wire::{
    self, WireCodec, HEADER_BYTES, KIND_INTERACTIVE, KIND_REQUEST, KIND_RESPONSE, MAGIC,
    MAX_PAYLOAD_BYTES,
};

/// How the engine behaves between readiness events: the poll timeout is
/// also the resolution of the idle/eviction clock.
const TICK_MS: i32 = 25;

/// A connection handed out of the event loop for a blocking interactive
/// run (or refusal). The socket is back in blocking mode; `leftover`
/// holds any bytes that had already been read past the interactive
/// frame and must be consumed before the socket itself.
pub struct PromotedConn {
    /// The connection, in blocking mode, with no timeouts set.
    pub stream: TcpStream,
    /// Payload of the `KIND_INTERACTIVE` frame that triggered promotion.
    pub setup: Vec<u8>,
    /// Bytes buffered beyond the interactive frame, in arrival order.
    pub leftover: Vec<u8>,
}

impl PromotedConn {
    /// Refuse the promotion: answer with an error response and drop the
    /// connection.
    pub fn refuse(mut self, msg: &str) {
        let payload = Response::Error(msg.to_string()).to_wire_bytes();
        let _ = wire::write_frame(&mut self.stream, KIND_RESPONSE, &payload);
    }
}

/// What the event loop delegates: request dispatch (on the compute
/// pool) and interactive promotion (ownership of the socket).
pub trait EventHandler: Send + Sync + 'static {
    /// Serve one `KIND_REQUEST` payload; returns the encoded response
    /// payload. `received` is when the frame was fully parsed — the
    /// request-deadline clock starts there, not when a busy pool gets
    /// around to the job.
    fn handle_request(&self, payload: &[u8], received: Instant) -> Vec<u8>;

    /// Take over a connection that sent `KIND_INTERACTIVE`.
    fn interactive(&self, conn: PromotedConn);
}

struct Job {
    conn_id: u64,
    payload: Vec<u8>,
    received: Instant,
}

struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_queue: VecDeque<Vec<u8>>,
    write_pos: usize,
    /// Requests parsed but not yet submitted (per-connection FIFO keeps
    /// pipelined responses in request order).
    pending: VecDeque<(Vec<u8>, Instant)>,
    /// A request from this connection is on the compute pool.
    busy: bool,
    last_activity: Instant,
    strikes: u32,
    /// Peer sent EOF; flush what we owe, then close.
    read_closed: bool,
    /// Close as soon as the write queue drains (fatal protocol error).
    close_after_flush: bool,
}

impl Conn {
    fn idle(&self) -> bool {
        !self.busy && self.pending.is_empty() && self.write_queue.is_empty()
    }
}

/// Spawn the loop thread and compute pool for an evented server. The
/// returned threads (loop first) exit after `stop` is set and the drain
/// completes; `state.config` supplies every knob.
pub(crate) fn spawn_engine(
    listener: TcpListener,
    state: Arc<ServerState>,
    handler: Arc<dyn EventHandler>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<Vec<JoinHandle<()>>> {
    // The accept drain loops until `WouldBlock`; a blocking listener
    // would wedge the whole loop inside `accept` instead.
    listener.set_nonblocking(true)?;

    let (job_tx, job_rx) = crossbeam::channel::unbounded::<Job>();
    let (done_tx, done_rx) = crossbeam::channel::unbounded::<(u64, Vec<u8>)>();

    // Loopback UDP pair: workers nudge the loop out of `poll` the
    // instant a response is ready, instead of waiting out the tick.
    let wake_rx = UdpSocket::bind("127.0.0.1:0")?;
    wake_rx.set_nonblocking(true)?;
    let wake_addr = wake_rx.local_addr()?;
    let wake_tx = UdpSocket::bind("127.0.0.1:0")?;
    wake_tx.connect(wake_addr)?;

    let mut threads = Vec::new();
    {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        let handler = Arc::clone(&handler);
        threads.push(std::thread::spawn(move || {
            let mut el = EventLoop {
                listener: Some(listener),
                state,
                handler,
                stop,
                job_tx,
                done_rx,
                wake_rx,
                conns: HashMap::new(),
                next_id: 0,
                outstanding: 0,
                scratch: vec![0u8; 64 * 1024],
            };
            el.run();
        }));
    }

    for _ in 0..state.config.workers.max(1) {
        let rx = job_rx.clone();
        let tx = done_tx.clone();
        let wake = wake_tx.try_clone()?;
        let state = Arc::clone(&state);
        let handler = Arc::clone(&handler);
        threads.push(std::thread::spawn(move || {
            while let Ok(job) = rx.recv() {
                let payload = handler.handle_request(&job.payload, job.received);
                let frame = match wire::encode_frame(KIND_RESPONSE, &payload) {
                    Ok(f) => f,
                    Err(_) => {
                        let fallback =
                            Response::Error("response exceeded the frame cap".to_string())
                                .to_wire_bytes();
                        wire::encode_frame(KIND_RESPONSE, &fallback)
                            .expect("fallback error response fits any frame cap")
                    }
                };
                if tx.send((job.conn_id, frame)).is_err() {
                    break;
                }
                let _ = wake.send(&[1]);
            }
            drop(state);
        }));
    }
    Ok(threads)
}

struct EventLoop {
    listener: Option<TcpListener>,
    state: Arc<ServerState>,
    handler: Arc<dyn EventHandler>,
    stop: Arc<AtomicBool>,
    job_tx: crossbeam::channel::Sender<Job>,
    done_rx: crossbeam::channel::Receiver<(u64, Vec<u8>)>,
    wake_rx: UdpSocket,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    /// Requests parsed but not yet answered, across all connections —
    /// the load-shedding signal, mirrored into the queue-depth gauge.
    outstanding: usize,
    scratch: Vec<u8>,
}

fn queue_depth_gauge() -> &'static ccmx_obs::Gauge {
    ccmx_obs::gauge!("ccmx_server_queue_depth")
}

impl EventLoop {
    fn run(&mut self) {
        let mut draining_since: Option<Instant> = None;
        loop {
            if self.stop.load(Ordering::SeqCst) && draining_since.is_none() {
                // Drain phase: no new connections, no new reads; finish
                // what was accepted and flush what is owed.
                self.listener = None;
                draining_since = Some(Instant::now());
            }
            if let Some(since) = draining_since {
                let drained =
                    self.outstanding == 0 && self.conns.values().all(|c| c.write_queue.is_empty());
                if drained || since.elapsed() >= self.state.config.drain_timeout {
                    break;
                }
            }

            let mut fds = Vec::with_capacity(self.conns.len() + 2);
            let mut tokens: Vec<Token> = Vec::with_capacity(self.conns.len() + 2);
            fds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
            tokens.push(Token::Wake);
            if let Some(l) = &self.listener {
                fds.push(PollFd::new(l.as_raw_fd(), POLLIN));
                tokens.push(Token::Listener);
            }
            for (&id, conn) in &self.conns {
                let mut events = 0i16;
                if !conn.read_closed && draining_since.is_none() {
                    events |= POLLIN;
                }
                if !conn.write_queue.is_empty() {
                    events |= POLLOUT;
                }
                if events == 0 {
                    continue;
                }
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                tokens.push(Token::Conn(id));
            }

            if poll_fds(&mut fds, TICK_MS).is_err() {
                // EINVAL/ENOMEM from poll is unrecoverable for the loop;
                // bail out rather than spin.
                break;
            }

            for (fd, token) in fds.iter().zip(&tokens) {
                match token {
                    Token::Wake => {
                        if fd.readable() {
                            let mut buf = [0u8; 64];
                            while self.wake_rx.recv(&mut buf).is_ok() {}
                        }
                    }
                    Token::Listener => {
                        if fd.readable() {
                            self.accept_ready();
                        }
                    }
                    Token::Conn(id) => {
                        let id = *id;
                        if fd.readable() && !self.read_ready(id) {
                            continue;
                        }
                        if fd.writable() {
                            self.write_ready(id);
                        }
                    }
                }
            }

            self.drain_completions();
            self.reap_idle(draining_since.is_some());
        }
        queue_depth_gauge().set(0);
    }

    fn accept_ready(&mut self) {
        let Some(listener) = &self.listener else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.state.counters.inc_accepted();
                    let id = self.next_id;
                    self.next_id += 1;
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            read_buf: Vec::new(),
                            write_queue: VecDeque::new(),
                            write_pos: 0,
                            pending: VecDeque::new(),
                            busy: false,
                            last_activity: Instant::now(),
                            strikes: 0,
                            read_closed: false,
                            close_after_flush: false,
                        },
                    );
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Pull everything currently readable off connection `id` and parse
    /// complete frames. Returns false if the connection was removed.
    fn read_ready(&mut self, id: u64) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return false;
            };
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&self.scratch[..n]);
                    conn.last_activity = Instant::now();
                    conn.strikes = 0;
                    if !self.parse_frames(id) {
                        return false;
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.drop_conn(id);
                    return false;
                }
            }
        }
        // EOF with nothing owed: close now; otherwise the responses
        // still in flight are flushed first (drain semantics).
        if let Some(conn) = self.conns.get(&id) {
            if conn.read_closed && conn.idle() {
                self.remove_conn(id);
            }
        }
        true
    }

    /// Parse complete frames out of `id`'s read buffer. Returns false
    /// if the connection was promoted or dropped.
    fn parse_frames(&mut self, id: u64) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return false;
            };
            if conn.read_buf.len() < HEADER_BYTES {
                return true;
            }
            let header: [u8; HEADER_BYTES] = conn.read_buf[..HEADER_BYTES]
                .try_into()
                .expect("sliced exactly HEADER_BYTES");
            let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]) as usize;
            if header[0] != MAGIC || len > MAX_PAYLOAD_BYTES {
                self.protocol_error(id, "bad magic byte or oversized frame");
                return false;
            }
            if conn.read_buf.len() < HEADER_BYTES + len {
                return true;
            }
            let kind = header[1];
            let payload = conn.read_buf[HEADER_BYTES..HEADER_BYTES + len].to_vec();
            conn.read_buf.drain(..HEADER_BYTES + len);
            match kind {
                KIND_REQUEST => {
                    ccmx_obs::histogram!(
                        "ccmx_server_request_bytes",
                        &ccmx_obs::buckets::SIZE_BYTES
                    )
                    .record(payload.len() as u64);
                    if self.outstanding >= self.state.config.max_pending_requests.max(1) {
                        self.state.counters.inc_shed();
                        let resp = Response::Error(
                            "server overloaded: request queue is full, retry later".to_string(),
                        );
                        self.enqueue_response(id, &resp.to_wire_bytes());
                        continue;
                    }
                    self.outstanding += 1;
                    queue_depth_gauge().add(1);
                    let conn = self.conns.get_mut(&id).expect("conn checked above");
                    conn.pending.push_back((payload, Instant::now()));
                    self.submit_next(id);
                }
                KIND_INTERACTIVE => {
                    let conn = self.conns.get(&id).expect("conn checked above");
                    if conn.busy || !conn.pending.is_empty() || !conn.write_queue.is_empty() {
                        self.protocol_error(id, "interactive setup while requests are in flight");
                        return false;
                    }
                    let mut conn = self.conns.remove(&id).expect("conn checked above");
                    if conn.stream.set_nonblocking(false).is_err() {
                        self.state.counters.inc_dropped();
                        return false;
                    }
                    let leftover = std::mem::take(&mut conn.read_buf);
                    self.handler.interactive(PromotedConn {
                        stream: conn.stream,
                        setup: payload,
                        leftover,
                    });
                    return false;
                }
                other => {
                    self.protocol_error(id, &format!("unexpected frame kind {other}"));
                    return false;
                }
            }
        }
    }

    /// Submit `id`'s next pending request to the pool, if it is free.
    fn submit_next(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.busy {
            return;
        }
        if let Some((payload, received)) = conn.pending.pop_front() {
            conn.busy = true;
            let _ = self.job_tx.send(Job {
                conn_id: id,
                payload,
                received,
            });
        }
    }

    /// Answer with an error frame, then close once it is flushed. The
    /// threaded engine drops such connections too — this one just owes
    /// the bytes already queued first.
    fn protocol_error(&mut self, id: u64, msg: &str) {
        let resp = Response::Error(msg.to_string());
        self.enqueue_response(id, &resp.to_wire_bytes());
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.close_after_flush = true;
        }
        self.state.counters.inc_dropped();
    }

    fn enqueue_response(&mut self, id: u64, payload: &[u8]) {
        let Ok(frame) = wire::encode_frame(KIND_RESPONSE, payload) else {
            self.drop_conn(id);
            return;
        };
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.write_queue.push_back(frame);
        }
        self.write_ready(id);
    }

    /// Flush as much of `id`'s write queue as the socket accepts.
    fn write_ready(&mut self, id: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            // Disjoint field borrows: the queue front is read while the
            // stream is written.
            let Conn {
                stream,
                write_queue,
                write_pos,
                ..
            } = conn;
            let Some(front) = write_queue.front() else {
                if conn.close_after_flush || (conn.read_closed && conn.idle()) {
                    self.remove_conn(id);
                }
                return;
            };
            match stream.write(&front[*write_pos..]) {
                Ok(0) => {
                    self.drop_conn(id);
                    return;
                }
                Ok(n) => {
                    *write_pos += n;
                    if *write_pos == front.len() {
                        write_queue.pop_front();
                        *write_pos = 0;
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.drop_conn(id);
                    return;
                }
            }
        }
    }

    fn drain_completions(&mut self) {
        while let Ok((id, frame)) = self.done_rx.try_recv() {
            self.outstanding = self.outstanding.saturating_sub(1);
            queue_depth_gauge().add(-1);
            if let Some(conn) = self.conns.get_mut(&id) {
                conn.busy = false;
                conn.write_queue.push_back(frame);
                self.write_ready(id);
                self.submit_next(id);
            }
        }
    }

    /// Strike-based eviction, identical policy to the threaded engine: a
    /// connection silent past the read timeout earns a strike per
    /// window, and is evicted once `eviction_strikes` are exhausted. A
    /// connection we owe work or bytes to is never idle.
    fn reap_idle(&mut self, draining: bool) {
        if draining {
            return;
        }
        let timeout = self.state.config.read_timeout;
        let max_strikes = self.state.config.eviction_strikes.max(1);
        let mut evict = Vec::new();
        for (&id, conn) in self.conns.iter_mut() {
            if !conn.idle() || conn.read_closed {
                continue;
            }
            if conn.last_activity.elapsed() >= timeout {
                conn.strikes += 1;
                conn.last_activity = Instant::now();
                if conn.strikes >= max_strikes {
                    evict.push(id);
                }
            }
        }
        for id in evict {
            self.state.counters.inc_evicted();
            self.drop_conn(id);
        }
    }

    /// Remove a connection cleanly (no drop counter): EOF after all
    /// owed bytes were flushed, or close-after-flush. Requests still
    /// queued (never to be answered) leave the outstanding count.
    fn remove_conn(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            let abandoned = conn.pending.len();
            self.outstanding = self.outstanding.saturating_sub(abandoned);
            queue_depth_gauge().add(-(abandoned as i64));
        }
    }

    /// Remove a connection for cause (I/O failure, eviction).
    fn drop_conn(&mut self, id: u64) {
        if self.conns.contains_key(&id) {
            self.remove_conn(id);
            self.state.counters.inc_dropped();
        }
    }
}

enum Token {
    Wake,
    Listener,
    Conn(u64),
}
