//! Per-peer circuit breaker: stop hammering a failing server, probe it
//! gently, and let callers degrade gracefully while it is dark.
//!
//! The classic three-state machine:
//!
//! * **Closed** — traffic flows; consecutive failures are counted and
//!   the breaker trips open at
//!   [`BreakerConfig::failure_threshold`].
//! * **Open** — calls are refused locally (no wire traffic, no metered
//!   bits) until [`BreakerConfig::open_for`] has elapsed. Callers fall
//!   back to cached answers — see
//!   [`crate::retry::RetryClient::bounds_degraded`].
//! * **Half-open** — after the cool-down, probe requests are let
//!   through; [`BreakerConfig::half_open_successes`] consecutive
//!   successes re-close the breaker, any failure re-opens it.
//!
//! Every state change is visible in the metrics registry as a
//! `ccmx_breaker_state{peer="…"}` gauge (0 = closed, 1 = open,
//! 2 = half-open) and a `ccmx_breaker_transitions_total{peer,to}`
//! counter, so a chaos soak can assert the transitions it provoked.

use std::time::{Duration, Instant};

/// The three breaker states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, failures are counted.
    Closed,
    /// Tripped: requests are refused without touching the wire.
    Open,
    /// Probing: limited traffic decides between re-close and re-open.
    HalfOpen,
}

impl BreakerState {
    /// Gauge encoding: 0 closed, 1 open, 2 half-open.
    pub fn gauge_value(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }

    /// Label value for transition counters.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Trip/recover policy for a [`CircuitBreaker`].
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures (while closed) that trip the breaker.
    pub failure_threshold: u32,
    /// Cool-down before an open breaker lets a probe through.
    pub open_for: Duration,
    /// Consecutive half-open successes that re-close the breaker.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            open_for: Duration::from_millis(250),
            half_open_successes: 1,
        }
    }
}

/// Metric labels want `&'static str`; peers form a tiny closed set per
/// process, so leak each distinct name once.
pub(crate) fn intern_label(name: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static TABLE: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut table = TABLE.get_or_init(|| Mutex::new(Vec::new())).lock().unwrap();
    if let Some(&existing) = table.iter().find(|&&s| s == name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    table.push(leaked);
    leaked
}

/// A circuit breaker guarding one peer.
pub struct CircuitBreaker {
    peer: &'static str,
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    probe_successes: u32,
    opened_at: Option<Instant>,
    transitions: u64,
    state_gauge: &'static ccmx_obs::Gauge,
}

impl CircuitBreaker {
    /// A closed breaker for `peer` (interned for metric labels).
    pub fn new(peer: &str, config: BreakerConfig) -> Self {
        let peer = intern_label(peer);
        let state_gauge = ccmx_obs::registry().gauge("ccmx_breaker_state", &[("peer", peer)]);
        state_gauge.set(BreakerState::Closed.gauge_value());
        CircuitBreaker {
            peer,
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probe_successes: 0,
            opened_at: None,
            transitions: 0,
            state_gauge,
        }
    }

    /// The peer this breaker guards.
    pub fn peer(&self) -> &'static str {
        self.peer
    }

    /// Current state *without* ticking the open→half-open clock.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Total state transitions so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// May a request go out now? An open breaker flips to half-open
    /// (and answers yes) once its cool-down has elapsed.
    pub fn allow(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                let cooled = self
                    .opened_at
                    .map(|t| t.elapsed() >= self.config.open_for)
                    .unwrap_or(true);
                if cooled {
                    self.transition(BreakerState::HalfOpen);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful request.
    pub fn record_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.config.half_open_successes {
                    self.transition(BreakerState::Closed);
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Record a failed request.
    pub fn record_failure(&mut self) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.transition(BreakerState::Open);
                }
            }
            BreakerState::HalfOpen => self.transition(BreakerState::Open),
            BreakerState::Open => {}
        }
    }

    fn transition(&mut self, to: BreakerState) {
        self.state = to;
        self.transitions += 1;
        self.consecutive_failures = 0;
        self.probe_successes = 0;
        self.opened_at = match to {
            BreakerState::Open => Some(Instant::now()),
            _ => None,
        };
        self.state_gauge.set(to.gauge_value());
        ccmx_obs::registry()
            .counter(
                "ccmx_breaker_transitions_total",
                &[("peer", self.peer), ("to", to.label())],
            )
            .inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 2,
            open_for: Duration::from_millis(20),
            half_open_successes: 2,
        }
    }

    #[test]
    fn trips_after_threshold_and_recovers_through_half_open() {
        let mut b = CircuitBreaker::new("test-peer-a", fast());
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(), "open breaker must refuse before cool-down");

        std::thread::sleep(Duration::from_millis(25));
        assert!(b.allow(), "cooled breaker must let a probe through");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::HalfOpen, "needs two successes");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens() {
        let mut b = CircuitBreaker::new("test-peer-b", fast());
        b.record_failure();
        b.record_failure();
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new("test-peer-c", fast());
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
    }

    #[test]
    fn transitions_are_observable_in_the_registry() {
        let mut b = CircuitBreaker::new("test-peer-obs", fast());
        b.record_failure();
        b.record_failure();
        let rendered = ccmx_obs::registry().render();
        assert!(
            rendered.contains(r#"ccmx_breaker_state{peer="test-peer-obs"} 1"#),
            "open state not visible:\n{rendered}"
        );
        assert!(rendered
            .contains(r#"ccmx_breaker_transitions_total{peer="test-peer-obs",to="open"} 1"#));
    }

    #[test]
    fn intern_label_dedups() {
        let a = intern_label("same-peer");
        let b = intern_label("same-peer");
        assert!(std::ptr::eq(a, b));
    }
}
