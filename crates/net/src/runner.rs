//! Transported protocol runners: execute a two-party protocol with the
//! agents talking over a real transport, and return a [`RunResult`]
//! that must be *bit-identical* to `run_sequential` on the same
//! `(protocol, partition, input, seed)`.
//!
//! The guarantee holds by construction: every runner here drives the
//! same `ccmx_comm::run_agent` state machine as the in-process runners,
//! only the channel underneath changes. The `*_metered` variants also
//! return each endpoint's [`TransportStats`] so callers can assert that
//! the wire carried exactly `transcript.total_bits()` protocol bits.

use std::net::TcpListener;

use ccmx_comm::partition::Owner;
use ccmx_comm::protocol::{round_limit, run_agent, RunResult, Turn, TwoPartyProtocol};
use ccmx_comm::{BitString, Partition};

use crate::error::NetError;
use crate::transport::{
    mem_transport_pair, AsChannel, TcpTransport, Transport, TransportConfig, TransportStats,
};

/// Drive both agents over an arbitrary connected transport pair,
/// propagating transport errors instead of panicking. After each agent
/// finishes, its transport is handed to a `finish` closure — identity
/// stats collection for the plain runners, recovery-traffic draining
/// for the chaos layer ([`crate::chaos`]).
#[allow(clippy::too_many_arguments)]
pub fn run_over_result<TA, TB, FA, FB, OA, OB>(
    proto: &dyn TwoPartyProtocol,
    partition: &Partition,
    input: &BitString,
    seed: u64,
    chan_a: TA,
    chan_b: TB,
    finish_a: FA,
    finish_b: FB,
) -> Result<(RunResult, OA, OB), NetError>
where
    TA: Transport + Send,
    TB: Transport + Send,
    FA: FnOnce(TA) -> Result<OA, NetError> + Send,
    FB: FnOnce(TB) -> Result<OB, NetError> + Send,
    OA: Send,
    OB: Send,
{
    assert_eq!(
        partition.len(),
        input.len(),
        "partition and input length mismatch"
    );
    let (share_a, share_b) = partition.split(input);
    let limit = round_limit(input.len());

    let (res_a, res_b) = crossbeam::scope(|s| {
        let a = s.spawn(|_| -> Result<(RunResult, OA), NetError> {
            let mut chan = AsChannel(chan_a);
            let r = run_agent(proto, partition, &share_a, Turn::A, seed, limit, &mut chan)
                .map_err(|e| NetError::Protocol(format!("agent A: {e}")))?;
            Ok((r, finish_a(chan.into_inner())?))
        });
        let b = s.spawn(|_| -> Result<(RunResult, OB), NetError> {
            let mut chan = AsChannel(chan_b);
            let r = run_agent(proto, partition, &share_b, Turn::B, seed, limit, &mut chan)
                .map_err(|e| NetError::Protocol(format!("agent B: {e}")))?;
            Ok((r, finish_b(chan.into_inner())?))
        });
        (
            a.join().expect("agent A panicked"),
            b.join().expect("agent B panicked"),
        )
    })
    .expect("transported run panicked");

    let (result_a, out_a) = res_a?;
    let (result_b, out_b) = res_b?;
    if result_a != result_b {
        return Err(NetError::Protocol(
            "the two agents disagree on the run result".to_string(),
        ));
    }
    Ok((result_a, out_a, out_b))
}

/// Drive both agents over an arbitrary connected transport pair.
fn run_over<TA, TB>(
    proto: &dyn TwoPartyProtocol,
    partition: &Partition,
    input: &BitString,
    seed: u64,
    chan_a: TA,
    chan_b: TB,
) -> (RunResult, TransportStats, TransportStats)
where
    TA: Transport + Send,
    TB: Transport + Send,
{
    let (result, stats_a, stats_b) = run_over_result(
        proto,
        partition,
        input,
        seed,
        chan_a,
        chan_b,
        |t: TA| Ok(t.stats()),
        |t: TB| Ok(t.stats()),
    )
    .expect("transported run failed");
    assert_eq!(
        stats_a.bits_total(),
        result.transcript.total_bits(),
        "wire metering diverged from the transcript"
    );
    (result, stats_a, stats_b)
}

/// Run over the in-memory framed transport; returns per-endpoint stats.
pub fn run_mem_metered(
    proto: &dyn TwoPartyProtocol,
    partition: &Partition,
    input: &BitString,
    seed: u64,
) -> (RunResult, TransportStats, TransportStats) {
    let (chan_a, chan_b) = mem_transport_pair();
    run_over(proto, partition, input, seed, chan_a, chan_b)
}

/// Run over a real TCP loopback connection; returns per-endpoint stats.
pub fn run_tcp_loopback_metered(
    proto: &dyn TwoPartyProtocol,
    partition: &Partition,
    input: &BitString,
    seed: u64,
) -> (RunResult, TransportStats, TransportStats) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
    let addr = listener.local_addr().expect("loopback listener address");
    let cfg = TransportConfig::default();

    // Accept on a helper thread so connect/accept cannot deadlock.
    let (accepted, connected) = crossbeam::scope(|s| {
        let acceptor = s.spawn(move |_| {
            let (stream, _) = listener.accept().expect("accept loopback peer");
            TcpTransport::from_stream(stream, cfg).expect("wrap accepted stream")
        });
        let connected = TcpTransport::connect(addr, cfg).expect("connect loopback peer");
        (acceptor.join().expect("acceptor panicked"), connected)
    })
    .expect("loopback setup panicked");

    run_over(proto, partition, input, seed, connected, accepted)
}

/// [`run_mem_metered`] with `run_sequential`'s signature, pluggable into
/// `ccmx_comm::meter::meter_inputs_with`.
pub fn run_mem_transport(
    proto: &dyn TwoPartyProtocol,
    partition: &Partition,
    input: &BitString,
    seed: u64,
) -> RunResult {
    run_mem_metered(proto, partition, input, seed).0
}

/// [`run_tcp_loopback_metered`] with `run_sequential`'s signature,
/// pluggable into `ccmx_comm::meter::meter_inputs_with`.
pub fn run_tcp_loopback(
    proto: &dyn TwoPartyProtocol,
    partition: &Partition,
    input: &BitString,
    seed: u64,
) -> RunResult {
    run_tcp_loopback_metered(proto, partition, input, seed).0
}

/// Sanity helper used by tests and the server: each endpoint's sent
/// bits must equal the transcript bits attributed to its agent.
pub fn endpoint_bits_consistent(
    result: &RunResult,
    stats_a: &TransportStats,
    stats_b: &TransportStats,
) -> bool {
    let a_bits = result.transcript.bits_from(Turn::A).len();
    let b_bits = result.transcript.bits_from(Turn::B).len();
    stats_a.bits_sent == a_bits
        && stats_b.bits_sent == b_bits
        && stats_a.bits_received == b_bits
        && stats_b.bits_received == a_bits
}

/// Count how many input positions each agent owns — convenience for
/// assembling interactive-session setups.
pub fn owned_positions(partition: &Partition, who: Owner) -> Vec<usize> {
    partition.positions_of(who)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmx_comm::functions::{Equality, Singularity};
    use ccmx_comm::protocol::run_sequential;
    use ccmx_comm::protocols::{FingerprintEquality, ModPrimeSingularity, SendAll};
    use ccmx_comm::MatrixEncoding;

    fn assert_matches_sequential(
        proto: &dyn TwoPartyProtocol,
        partition: &Partition,
        input: &BitString,
        seed: u64,
    ) {
        let expected = run_sequential(proto, partition, input, seed);
        let (mem, ma, mb) = run_mem_metered(proto, partition, input, seed);
        assert_eq!(mem, expected, "mem transport diverged from sequential");
        assert!(endpoint_bits_consistent(&mem, &ma, &mb));
        let (tcp, ta, tb) = run_tcp_loopback_metered(proto, partition, input, seed);
        assert_eq!(tcp, expected, "tcp transport diverged from sequential");
        assert!(endpoint_bits_consistent(&tcp, &ta, &tb));
        assert_eq!(ta.bits_total(), expected.transcript.total_bits());
    }

    #[test]
    fn send_all_matches_sequential_over_both_transports() {
        let f = Singularity::new(2, 2);
        let enc = MatrixEncoding::new(2, 2);
        let partition = Partition::pi_zero(&enc);
        let proto = SendAll::new(f);
        for v in [0u64, 0b1010_1010, 0xff] {
            assert_matches_sequential(&proto, &partition, &BitString::from_u64(v, 8), 7 ^ v);
        }
    }

    #[test]
    fn mod_prime_matches_sequential_over_both_transports() {
        let proto = ModPrimeSingularity::new(2, 2, 20);
        let partition = Partition::pi_zero(&proto.enc);
        for v in [3u64, 0b1100_0011] {
            assert_matches_sequential(&proto, &partition, &BitString::from_u64(v, 8), 99 ^ v);
        }
    }

    #[test]
    fn fingerprint_matches_sequential_over_both_transports() {
        let proto = FingerprintEquality::new(16, 20);
        let partition = ccmx_comm::protocols::fingerprint::fixed_partition(16);
        let _ = Equality { half_bits: 16 };
        let equal = BitString::from_u64(0xabcd_abcd, 32);
        let unequal = BitString::from_u64(0xabcd_abce, 32);
        assert_matches_sequential(&proto, &partition, &equal, 1);
        assert_matches_sequential(&proto, &partition, &unequal, 2);
    }
}
