//! # ccmx-net
//!
//! Wire-level transport and a multi-client protocol-lab server for the
//! Chu–Schnitger reproduction.
//!
//! The sequential and threaded runners in `ccmx-comm` execute both
//! agents inside one process; this crate lifts the *same* agent state
//! machine onto real byte streams, making the two-party separation
//! physical while keeping the communication-complexity accounting
//! exact. The layers:
//!
//! * [`wire`] — a length-prefixed, bit-accurate framed codec for every
//!   value that crosses a socket (`BitString`, `Message`, `Transcript`,
//!   `RunResult`, `MeterReport`, requests and responses). Hand-rolled
//!   because the build is fully offline and serde cannot be vendored;
//!   the codec's round-trip law is enforced by a property suite.
//! * [`transport`] — [`transport::Transport`]: in-memory
//!   ([`transport::MemTransport`], crossbeam channels carrying encoded
//!   frames) and TCP ([`transport::TcpTransport`], timeouts + bounded
//!   retry with backoff). Both meter exactly the protocol bits they
//!   carry, so the wire cost of a run equals its transcript bit count.
//! * [`runner`] — transported runners whose [`ccmx_comm::RunResult`] is
//!   asserted bit-identical to `run_sequential`'s.
//! * [`server`] / [`client`] — a threaded protocol-lab server (fixed
//!   worker pool, per-connection timeouts, graceful shutdown) answering
//!   bound, singularity, protocol-run, and live interactive-run
//!   requests for many concurrent clients, with an LRU [`cache`] for
//!   repeated bound computations and a request [`batch`]er that
//!   amortizes protocol setup across bursts.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod api;
pub mod batch;
pub mod cache;
pub mod client;
pub mod error;
pub mod runner;
pub mod server;
pub mod transport;
pub mod wire;

pub use api::{BoundsReport, InteractiveSetup, ProtoSpec, Request, Response};
pub use client::Client;
pub use error::NetError;
pub use runner::{run_mem_metered, run_mem_transport, run_tcp_loopback, run_tcp_loopback_metered};
pub use server::{serve, ServerConfig, ServerHandle, ServerStats};
pub use transport::{
    mem_transport_pair, AsChannel, MemTransport, TcpTransport, Transport, TransportConfig,
    TransportStats,
};
pub use wire::WireCodec;
