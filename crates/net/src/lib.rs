//! # ccmx-net
//!
//! Wire-level transport and a multi-client protocol-lab server for the
//! Chu–Schnitger reproduction.
//!
//! The sequential and threaded runners in `ccmx-comm` execute both
//! agents inside one process; this crate lifts the *same* agent state
//! machine onto real byte streams, making the two-party separation
//! physical while keeping the communication-complexity accounting
//! exact. The layers:
//!
//! * [`wire`] — a length-prefixed, bit-accurate framed codec for every
//!   value that crosses a socket (`BitString`, `Message`, `Transcript`,
//!   `RunResult`, `MeterReport`, requests and responses). Hand-rolled
//!   because the build is fully offline and serde cannot be vendored;
//!   the codec's round-trip law is enforced by a property suite.
//! * [`transport`] — [`transport::Transport`]: in-memory
//!   ([`transport::MemTransport`], crossbeam channels carrying encoded
//!   frames) and TCP ([`transport::TcpTransport`], timeouts + bounded
//!   retry with backoff). Both meter exactly the protocol bits they
//!   carry, so the wire cost of a run equals its transcript bit count.
//! * [`runner`] — transported runners whose [`ccmx_comm::RunResult`] is
//!   asserted bit-identical to `run_sequential`'s.
//! * [`evloop`] — a hand-rolled readiness-based event loop (nonblocking
//!   TCP + `poll(2)` via the vendored `polling` shim; the build is
//!   offline, so no async runtime): one thread multiplexes the accept
//!   path and every idle or header-reading connection, and promotes a
//!   connection to a worker only once a complete request header is
//!   buffered. Thousands of open connections cost file descriptors,
//!   not threads. The [`evloop::EventHandler`] trait lets embedders
//!   (the cluster coordinator) reuse the engine with their own
//!   dispatch.
//! * [`server`] / [`client`] — the protocol-lab server on top of that
//!   engine (fixed worker pool for request execution, per-connection
//!   timeouts, per-request deadlines, strike-based slow-client
//!   eviction, queue-depth load shedding, graceful shutdown that
//!   drains in-flight batch groups) answering bound, singularity,
//!   protocol-run, and live interactive-run requests for many
//!   concurrent clients, with an LRU [`cache`] for repeated bound
//!   computations and a request [`batch`]er that amortizes protocol
//!   setup across bursts.
//! * [`fault`] / [`chaos`] — chaos engineering: [`fault::FaultTransport`]
//!   wraps any frame link in a deterministic seeded schedule of bit
//!   flips, truncations, drops, duplicates, delays and stalls, recovers
//!   via checksummed envelopes + NACK retransmission, and still meters
//!   *exactly* the protocol bits — the seeded soaks in [`chaos`] assert
//!   zero metered-bit divergence against `run_sequential`.
//! * [`retry`] / [`breaker`] — the client-side resilience stack:
//!   jittered exponential backoff behind an idempotency key (retried
//!   runs never double-count metered bits; see the two-ledger
//!   accounting in [`retry`]) and a per-peer closed/open/half-open
//!   [`breaker::CircuitBreaker`] with graceful degradation to cached
//!   Theorem 1.1 bounds while the peer is dark.
//!
//! Paper mapping: this crate is the physical realization of Yao's
//! two-party model that Chu & Schnitger's Theorem 1.1 lower-bounds —
//! two agents separated by a real byte stream, every protocol bit
//! metered. The chaos layer exists to defend that accounting: the
//! Ω(k n²) bound is a statement about *protocol* bits, so transport
//! faults, retransmissions and retries must never leak into the meter.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod api;
pub mod batch;
pub mod breaker;
pub mod cache;
pub mod chaos;
pub mod client;
pub mod error;
pub mod evloop;
pub mod fault;
pub(crate) mod persist;
pub mod retry;
pub mod runner;
pub mod server;
pub mod transport;
pub mod wire;

pub use api::{BoundsReport, InteractiveSetup, ProtoSpec, Request, Response};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use chaos::{chaos_soak, server_soak, ChaosLevel, ChaosReport};
pub use client::Client;
pub use error::NetError;
pub use evloop::{EventHandler, PromotedConn};
pub use fault::{
    fault_mem_pair, mem_link_pair, FaultConfig, FaultKind, FaultPlan, FaultStats, FaultTransport,
    FrameLink, MemFrameLink,
};
pub use retry::{IdempotentRun, RetryClient, RetryPolicy};
pub use runner::{run_mem_metered, run_mem_transport, run_tcp_loopback, run_tcp_loopback_metered};
pub use server::{
    serve, serve_with_handler, ServerConfig, ServerEngine, ServerHandle, ServerStats,
};
pub use transport::{
    mem_transport_pair, AsChannel, MemTransport, TcpTransport, Transport, TransportConfig,
    TransportStats,
};
pub use wire::WireCodec;
