//! Deterministic fault injection underneath the bit-metering layer.
//!
//! The paper's protocols are a *measurement instrument*: a run is only
//! meaningful if the wire carried exactly `Transcript::total_bits()`
//! protocol bits. This module stress-tests that invariant by injecting
//! a seeded, reproducible schedule of faults — bit flips, truncations
//! (mid-frame cuts), duplicate deliveries, outright drops, delays and
//! stalls — *between* the metering layer and the raw byte link, then
//! recovering transparently so the metered count never moves.
//!
//! Layering:
//!
//! * [`FrameLink`] — the raw byte link: moves `(kind, payload)` frames
//!   and nothing else. Implemented by [`MemFrameLink`] (crossbeam
//!   channels) and by [`crate::TcpTransport`] (a real socket).
//! * [`FaultTransport`] — wraps a `FrameLink` and implements
//!   [`Transport`]. Every protocol message is sealed into a *chaos
//!   envelope* (`seq` + FNV-1a checksum + encoded message) and sent as
//!   a [`wire::KIND_CHAOS`] frame. The configured [`FaultPlan`] then
//!   mangles the envelope **payload only** — the outer frame header
//!   stays intact, so a TCP stream never desynchronizes and recovery
//!   traffic can flow on the same connection. A true socket teardown is
//!   modeled as envelope truncation for exactly this reason; the clean
//!   EOF vs mid-frame EOF distinction at the outer layer is covered by
//!   `wire::read_frame`'s own tests.
//!
//! Recovery is receiver-driven: corrupt or missing envelopes trigger a
//! `NACK(expected_seq)` back to the sender, which retransmits from its
//! send log; every third transmission of the same sequence number is
//! forced clean, so progress is guaranteed no matter the fault rates.
//! Duplicates (injected or caused by spurious NACKs) are dropped by
//! sequence number; out-of-order arrivals wait in a reorder buffer.
//!
//! **Metering is exactly-once by construction**: `bits_sent` ticks when
//! a message enters the send log (not per transmission) and
//! `bits_received` ticks when the in-order message is handed to the
//! agent (not per arrival). Retransmissions and duplicates only inflate
//! `raw_bytes_*`, never the metered protocol bits — which is the
//! invariant [`crate::chaos`] soaks assert as *zero divergence*.

use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

use ccmx_comm::protocol::WireMsg;
use crossbeam::channel::{Receiver, Sender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::NetError;
use crate::transport::{TcpTransport, Transport, TransportStats};
use crate::wire::{self, payload_bits, WireCodec, KIND_CHAOS};

// ----------------------------------------------------------------------
// The raw frame link
// ----------------------------------------------------------------------

/// A raw bidirectional link moving `(kind, payload)` frames with no
/// metering and no delivery guarantees beyond what the medium gives.
/// [`FaultTransport`] builds its sequenced, checksummed envelope
/// protocol on top of this.
///
/// `recv_link` must return [`NetError::Timeout`] when nothing arrives
/// within the link's configured read timeout — the fault layer uses
/// that tick to request retransmission of missing frames.
pub trait FrameLink {
    /// Send one frame.
    fn send_link(&mut self, kind: u8, payload: &[u8]) -> Result<(), NetError>;
    /// Receive the next frame, or [`NetError::Timeout`] after the
    /// link's read timeout.
    fn recv_link(&mut self) -> Result<(u8, Vec<u8>), NetError>;
}

/// In-process [`FrameLink`]: encoded frames over crossbeam channels,
/// with a bounded receive timeout so the fault layer's NACK clock
/// ticks.
pub struct MemFrameLink {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    recv_timeout: Duration,
}

/// Two connected [`MemFrameLink`] endpoints. `recv_timeout` is the
/// NACK clock: how long an endpoint waits for a missing frame before
/// requesting retransmission.
pub fn mem_link_pair(recv_timeout: Duration) -> (MemFrameLink, MemFrameLink) {
    let (tx_ab, rx_ab) = crossbeam::channel::unbounded();
    let (tx_ba, rx_ba) = crossbeam::channel::unbounded();
    let mk = |tx, rx| MemFrameLink {
        tx,
        rx,
        recv_timeout,
    };
    (mk(tx_ab, rx_ba), mk(tx_ba, rx_ab))
}

impl FrameLink for MemFrameLink {
    fn send_link(&mut self, kind: u8, payload: &[u8]) -> Result<(), NetError> {
        let frame = wire::encode_frame(kind, payload)?;
        self.tx.send(frame).map_err(|_| NetError::Disconnected)
    }

    fn recv_link(&mut self) -> Result<(u8, Vec<u8>), NetError> {
        use crossbeam::channel::RecvTimeoutError;
        let frame = self
            .rx
            .recv_timeout(self.recv_timeout)
            .map_err(|e| match e {
                RecvTimeoutError::Timeout => NetError::Timeout,
                RecvTimeoutError::Disconnected => NetError::Disconnected,
            })?;
        wire::read_frame(&mut frame.as_slice())
    }
}

/// A TCP socket is a frame link: construct it with a short
/// [`crate::TransportConfig::read_timeout`] so the fault layer's NACK
/// clock ticks at a useful rate.
impl FrameLink for TcpTransport {
    fn send_link(&mut self, kind: u8, payload: &[u8]) -> Result<(), NetError> {
        self.send_frame(kind, payload)
    }

    fn recv_link(&mut self) -> Result<(u8, Vec<u8>), NetError> {
        self.recv_frame()
    }
}

// ----------------------------------------------------------------------
// Fault schedule
// ----------------------------------------------------------------------

/// One kind of injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one bit somewhere in the envelope.
    Flip,
    /// Cut the envelope short (models a mid-frame disconnect).
    Truncate,
    /// Deliver the envelope twice.
    Duplicate,
    /// Silently discard the envelope.
    Drop,
    /// Deliver after a short random delay.
    Delay,
    /// Deliver after a long pause (provoke the peer's NACK clock).
    Stall,
}

/// Per-transmission fault probabilities, in permille, plus the seed
/// that makes the whole schedule reproducible. The six rates must sum
/// to at most 1000; the remainder is the clean-delivery probability.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// Permille of transmissions that get one bit flipped.
    pub flip_permille: u32,
    /// Permille of transmissions cut short mid-envelope.
    pub truncate_permille: u32,
    /// Permille of transmissions delivered twice.
    pub duplicate_permille: u32,
    /// Permille of transmissions silently dropped.
    pub drop_permille: u32,
    /// Permille of transmissions delayed by up to [`Self::max_delay`].
    pub delay_permille: u32,
    /// Permille of transmissions stalled for [`Self::stall`].
    pub stall_permille: u32,
    /// Upper bound for an injected delay.
    pub max_delay: Duration,
    /// Length of an injected stall; should exceed the peer's NACK
    /// clock so stalls exercise the spurious-retransmit path.
    pub stall: Duration,
}

impl FaultConfig {
    /// No faults at all: the envelope protocol runs but every
    /// transmission is clean. The pass-through baseline.
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            flip_permille: 0,
            truncate_permille: 0,
            duplicate_permille: 0,
            drop_permille: 0,
            delay_permille: 0,
            stall_permille: 0,
            max_delay: Duration::ZERO,
            stall: Duration::ZERO,
        }
    }

    /// Moderate chaos: roughly one transmission in five is faulted.
    pub fn moderate(seed: u64) -> Self {
        FaultConfig {
            flip_permille: 60,
            truncate_permille: 40,
            duplicate_permille: 50,
            drop_permille: 40,
            delay_permille: 20,
            stall_permille: 10,
            max_delay: Duration::from_micros(500),
            stall: Duration::from_millis(25),
            ..FaultConfig::quiet(seed)
        }
    }

    /// Heavy chaos: roughly half of all transmissions are faulted.
    pub fn aggressive(seed: u64) -> Self {
        FaultConfig {
            flip_permille: 160,
            truncate_permille: 100,
            duplicate_permille: 120,
            drop_permille: 90,
            delay_permille: 20,
            stall_permille: 10,
            max_delay: Duration::from_micros(500),
            stall: Duration::from_millis(25),
            ..FaultConfig::quiet(seed)
        }
    }

    fn fault_permille(&self) -> u32 {
        self.flip_permille
            + self.truncate_permille
            + self.duplicate_permille
            + self.drop_permille
            + self.delay_permille
            + self.stall_permille
    }
}

/// The deterministic fault schedule: a seeded RNG mapped through the
/// configured permille rates. Each decision consumes exactly two RNG
/// draws (the roll and an auxiliary word), so the schedule is a pure
/// function of `(seed, decision index)` regardless of which faults
/// fire.
pub struct FaultPlan {
    rng: StdRng,
    config: FaultConfig,
}

impl FaultPlan {
    /// Build the schedule; panics if the fault rates exceed 1000‰.
    pub fn new(config: FaultConfig) -> Self {
        assert!(
            config.fault_permille() <= 1000,
            "fault rates sum to {}‰ > 1000‰",
            config.fault_permille()
        );
        FaultPlan {
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// Next scheduled action: `None` for a clean delivery, or a fault
    /// kind plus an auxiliary random word (bit position, cut point,
    /// delay scale — interpretation depends on the kind).
    ///
    /// Not an [`Iterator`]: `None` means "this transmission is clean",
    /// not "the schedule ended" — the schedule is infinite.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(FaultKind, u64)> {
        let roll: u32 = self.rng.gen_range(0..1000u32);
        let aux: u64 = self.rng.gen();
        let c = &self.config;
        let mut edge = c.flip_permille;
        if roll < edge {
            return Some((FaultKind::Flip, aux));
        }
        edge += c.truncate_permille;
        if roll < edge {
            return Some((FaultKind::Truncate, aux));
        }
        edge += c.duplicate_permille;
        if roll < edge {
            return Some((FaultKind::Duplicate, aux));
        }
        edge += c.drop_permille;
        if roll < edge {
            return Some((FaultKind::Drop, aux));
        }
        edge += c.delay_permille;
        if roll < edge {
            return Some((FaultKind::Delay, aux));
        }
        edge += c.stall_permille;
        if roll < edge {
            return Some((FaultKind::Stall, aux));
        }
        None
    }
}

/// Per-endpoint fault bookkeeping: what was injected on the send side
/// and what the recovery machinery did about the peer's injections.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Bit flips injected into outgoing envelopes.
    pub injected_flips: u64,
    /// Envelopes cut short on send.
    pub injected_truncations: u64,
    /// Envelopes delivered twice on purpose.
    pub injected_duplicates: u64,
    /// Envelopes silently dropped on send.
    pub injected_drops: u64,
    /// Envelopes delayed on send.
    pub injected_delays: u64,
    /// Envelopes stalled on send.
    pub injected_stalls: u64,
    /// Incoming envelopes rejected as corrupt (checksum or structure).
    pub corrupt_detected: u64,
    /// Incoming envelopes dropped as duplicates.
    pub duplicates_dropped: u64,
    /// Retransmission requests sent to the peer.
    pub nacks_sent: u64,
    /// Envelopes retransmitted at the peer's request.
    pub retransmits: u64,
}

impl FaultStats {
    /// Total faults injected on this endpoint's send side.
    pub fn injected_total(&self) -> u64 {
        self.injected_flips
            + self.injected_truncations
            + self.injected_duplicates
            + self.injected_drops
            + self.injected_delays
            + self.injected_stalls
    }
}

// ----------------------------------------------------------------------
// Chaos envelope codec
// ----------------------------------------------------------------------

const TAG_DATA: u8 = 0;
const TAG_NACK: u8 = 1;
/// tag + seq + checksum.
const DATA_HEADER: usize = 1 + 8 + 8;
const NACK_LEN: usize = 1 + 8;

/// FNV-1a over the sequence number and the inner payload. Each step
/// `h ← (h ⊕ byte)·p` is injective in `h`, so any single corrupted
/// byte in an equal-length envelope is detected with certainty;
/// length-changing corruption is caught structurally or with
/// probability `1 − 2⁻⁶⁴`.
fn fnv1a64(seq: u64, inner: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in seq.to_le_bytes().into_iter().chain(inner.iter().copied()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn data_envelope(seq: u64, inner: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(DATA_HEADER + inner.len());
    out.push(TAG_DATA);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&fnv1a64(seq, inner).to_le_bytes());
    out.extend_from_slice(inner);
    out
}

fn nack_envelope(seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(NACK_LEN);
    out.push(TAG_NACK);
    out.extend_from_slice(&seq.to_le_bytes());
    out
}

enum Envelope {
    Data { seq: u64, inner: Vec<u8> },
    Nack { seq: u64 },
    Corrupt(&'static str),
}

fn parse_envelope(payload: &[u8]) -> Envelope {
    let le8 = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("8-byte slice"));
    match payload.first() {
        Some(&TAG_DATA) if payload.len() >= DATA_HEADER => {
            let seq = le8(&payload[1..9]);
            let checksum = le8(&payload[9..17]);
            let inner = &payload[DATA_HEADER..];
            if fnv1a64(seq, inner) == checksum {
                Envelope::Data {
                    seq,
                    inner: inner.to_vec(),
                }
            } else {
                Envelope::Corrupt("checksum mismatch")
            }
        }
        Some(&TAG_DATA) => Envelope::Corrupt("data envelope shorter than its header"),
        Some(&TAG_NACK) if payload.len() == NACK_LEN => Envelope::Nack {
            seq: le8(&payload[1..9]),
        },
        Some(&TAG_NACK) => Envelope::Corrupt("nack envelope of the wrong length"),
        Some(_) => Envelope::Corrupt("unknown envelope tag"),
        None => Envelope::Corrupt("empty envelope"),
    }
}

// ----------------------------------------------------------------------
// The fault transport
// ----------------------------------------------------------------------

/// Default total budget a `recv_wire` call spends waiting (including
/// recovery round trips) before giving up.
pub const DEFAULT_RECV_DEADLINE: Duration = Duration::from_secs(10);

/// Default NACK clock for [`fault_mem_pair`] links.
pub const DEFAULT_NACK_INTERVAL: Duration = Duration::from_millis(10);

/// A [`Transport`] that injects a deterministic fault schedule into
/// every envelope it transmits, and transparently recovers from the
/// peer's injections — without ever perturbing the metered protocol
/// bit count. See the module docs for the envelope protocol.
pub struct FaultTransport<L: FrameLink> {
    link: L,
    plan: FaultPlan,
    stats: TransportStats,
    fstats: FaultStats,
    next_send_seq: u64,
    next_recv_seq: u64,
    /// Inner (encoded message) bytes of everything sent, by sequence
    /// number, for NACK-driven retransmission.
    sent_log: Vec<Vec<u8>>,
    /// Transmission count per sequence number; every third attempt is
    /// forced clean so recovery always terminates.
    attempts: Vec<u32>,
    /// Out-of-order arrivals waiting for the gap to fill.
    reorder: BTreeMap<u64, Vec<u8>>,
    /// In-order payloads not yet handed to the agent.
    ready: VecDeque<Vec<u8>>,
    recv_deadline: Duration,
}

impl<L: FrameLink> FaultTransport<L> {
    /// Wrap a frame link with the given fault schedule.
    pub fn new(link: L, config: FaultConfig) -> Self {
        FaultTransport {
            link,
            plan: FaultPlan::new(config),
            stats: TransportStats::default(),
            fstats: FaultStats::default(),
            next_send_seq: 0,
            next_recv_seq: 0,
            sent_log: Vec::new(),
            attempts: Vec::new(),
            reorder: BTreeMap::new(),
            ready: VecDeque::new(),
            recv_deadline: DEFAULT_RECV_DEADLINE,
        }
    }

    /// Bound the total time one `recv_wire` call may spend waiting and
    /// recovering before reporting [`NetError::Timeout`].
    pub fn set_recv_deadline(&mut self, deadline: Duration) {
        self.recv_deadline = deadline;
    }

    /// Fault bookkeeping so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.fstats
    }

    /// Unwrap the underlying link.
    pub fn into_inner(self) -> L {
        self.link
    }

    fn note(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::Flip => {
                self.fstats.injected_flips += 1;
                ccmx_obs::counter!("ccmx_fault_injected_total", "fault" => "flip").inc();
            }
            FaultKind::Truncate => {
                self.fstats.injected_truncations += 1;
                ccmx_obs::counter!("ccmx_fault_injected_total", "fault" => "truncate").inc();
            }
            FaultKind::Duplicate => {
                self.fstats.injected_duplicates += 1;
                ccmx_obs::counter!("ccmx_fault_injected_total", "fault" => "duplicate").inc();
            }
            FaultKind::Drop => {
                self.fstats.injected_drops += 1;
                ccmx_obs::counter!("ccmx_fault_injected_total", "fault" => "drop").inc();
            }
            FaultKind::Delay => {
                self.fstats.injected_delays += 1;
                ccmx_obs::counter!("ccmx_fault_injected_total", "fault" => "delay").inc();
            }
            FaultKind::Stall => {
                self.fstats.injected_stalls += 1;
                ccmx_obs::counter!("ccmx_fault_injected_total", "fault" => "stall").inc();
            }
        }
    }

    /// Put one envelope on the link, counting its raw framed bytes.
    fn put(&mut self, envelope: &[u8]) -> Result<(), NetError> {
        self.stats.raw_bytes_sent += wire::HEADER_BYTES + envelope.len();
        self.link.send_link(KIND_CHAOS, envelope)
    }

    /// Transmit (or retransmit) the logged message `seq`, applying the
    /// next scheduled fault — except that every third attempt for the
    /// same sequence number is forced clean, so NACK-driven recovery
    /// terminates under any fault rates.
    fn transmit(&mut self, seq: u64) -> Result<(), NetError> {
        let idx = usize::try_from(seq).expect("sequence number fits usize");
        let attempt = self.attempts[idx];
        self.attempts[idx] += 1;
        let envelope = data_envelope(seq, &self.sent_log[idx]);
        let action = if attempt % 3 == 2 {
            None
        } else {
            self.plan.next()
        };
        match action {
            None => self.put(&envelope),
            Some((FaultKind::Flip, aux)) => {
                self.note(FaultKind::Flip);
                let mut env = envelope;
                let bit = (aux % (env.len() as u64 * 8)) as usize;
                env[bit / 8] ^= 1 << (bit % 8);
                self.put(&env)
            }
            Some((FaultKind::Truncate, aux)) => {
                self.note(FaultKind::Truncate);
                let mut env = envelope;
                let keep = (aux % env.len() as u64) as usize;
                env.truncate(keep);
                self.put(&env)
            }
            Some((FaultKind::Duplicate, _)) => {
                self.note(FaultKind::Duplicate);
                self.put(&envelope)?;
                self.put(&envelope)
            }
            Some((FaultKind::Drop, _)) => {
                self.note(FaultKind::Drop);
                Ok(())
            }
            Some((FaultKind::Delay, aux)) => {
                self.note(FaultKind::Delay);
                let cap = self.plan.config.max_delay.as_micros() as u64;
                std::thread::sleep(Duration::from_micros(aux % (cap + 1)));
                self.put(&envelope)
            }
            Some((FaultKind::Stall, _)) => {
                self.note(FaultKind::Stall);
                std::thread::sleep(self.plan.config.stall);
                self.put(&envelope)
            }
        }
    }

    /// Ask the peer to retransmit everything from `seq` on.
    fn send_nack(&mut self, seq: u64) -> Result<(), NetError> {
        self.fstats.nacks_sent += 1;
        ccmx_obs::counter!("ccmx_fault_nacks_total").inc();
        let env = nack_envelope(seq);
        self.put(&env)
    }

    /// Process one incoming chaos envelope: deliver, buffer, dedup,
    /// answer a NACK, or reject corruption (and NACK for a clean copy).
    fn handle_envelope(&mut self, payload: &[u8]) -> Result<(), NetError> {
        match parse_envelope(payload) {
            Envelope::Corrupt(_why) => {
                self.fstats.corrupt_detected += 1;
                ccmx_obs::counter!("ccmx_fault_corrupt_detected_total").inc();
                self.send_nack(self.next_recv_seq)
            }
            Envelope::Nack { seq } => {
                if seq < self.next_send_seq {
                    self.fstats.retransmits += 1;
                    ccmx_obs::counter!("ccmx_fault_retransmits_total").inc();
                    self.transmit(seq)
                } else {
                    // The peer is waiting for a message the protocol
                    // has not produced yet; its NACK clock fired early.
                    Ok(())
                }
            }
            Envelope::Data { seq, inner } => {
                if seq < self.next_recv_seq || self.reorder.contains_key(&seq) {
                    self.fstats.duplicates_dropped += 1;
                    ccmx_obs::counter!("ccmx_fault_duplicates_dropped_total").inc();
                    Ok(())
                } else if seq == self.next_recv_seq {
                    self.ready.push_back(inner);
                    self.next_recv_seq += 1;
                    while let Some(next) = self.reorder.remove(&self.next_recv_seq) {
                        self.ready.push_back(next);
                        self.next_recv_seq += 1;
                    }
                    Ok(())
                } else {
                    self.reorder.insert(seq, inner);
                    self.send_nack(self.next_recv_seq)
                }
            }
        }
    }

    /// Pump the link until at least one in-order inner payload sits in
    /// `ready` or `deadline` passes, running the full recovery protocol
    /// (NACKs on silence, retransmits on the peer's NACKs) meanwhile.
    fn fill_ready(&mut self, deadline: Instant) -> Result<(), NetError> {
        loop {
            if !self.ready.is_empty() {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(NetError::Timeout);
            }
            match self.link.recv_link() {
                Ok((KIND_CHAOS, payload)) => {
                    self.stats.raw_bytes_received += wire::HEADER_BYTES + payload.len();
                    self.handle_envelope(&payload)?;
                }
                Ok((kind, _)) => {
                    return Err(NetError::Protocol(format!(
                        "chaos link got unexpected frame kind {kind}"
                    )))
                }
                Err(NetError::Timeout) => {
                    // Nothing arrived within the NACK clock: assume our
                    // expected frame was lost and ask for it again (a
                    // spurious NACK is ignored by the peer).
                    self.send_nack(self.next_recv_seq)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Send an arbitrary `(kind, payload)` frame through the chaos
    /// envelope machinery — same sequence numbers, checksums, NACK
    /// recovery and forced-clean retransmits as protocol messages, but
    /// **no protocol bits are metered**: sealed frames carry
    /// request/response traffic (e.g. a cluster coordinator talking to
    /// a shard), whose bytes are infrastructure, not Theorem 1.1
    /// communication. Do not mix sealed and [`Transport::send_wire`]
    /// traffic on one link: they share a sequence space but the
    /// receiver must know which decoder to apply.
    pub fn send_sealed(&mut self, kind: u8, payload: &[u8]) -> Result<(), NetError> {
        let seq = self.next_send_seq;
        self.next_send_seq += 1;
        let mut inner = Vec::with_capacity(1 + payload.len());
        inner.push(kind);
        inner.extend_from_slice(payload);
        self.sent_log.push(inner);
        self.attempts.push(0);
        self.transmit(seq)
    }

    /// Receive the next sealed `(kind, payload)` frame, in order,
    /// surviving whatever the fault schedule did to it in flight.
    pub fn recv_sealed(&mut self) -> Result<(u8, Vec<u8>), NetError> {
        let deadline = Instant::now() + self.recv_deadline;
        self.fill_ready(deadline)?;
        let mut inner = self.ready.pop_front().expect("fill_ready guarantees one");
        if inner.is_empty() {
            return Err(NetError::Protocol("empty sealed frame".to_string()));
        }
        let kind = inner.remove(0);
        Ok((kind, inner))
    }

    /// After the local agent has finished its run, keep servicing the
    /// peer's recovery traffic (NACKs for envelopes of ours that were
    /// dropped or corrupted in flight) until the link has been quiet
    /// for `quiet`. Without this, a faulted final message would strand
    /// the peer: the sender's agent is done and would never answer the
    /// NACK.
    pub fn drain(&mut self, quiet: Duration) -> Result<(), NetError> {
        let mut last = Instant::now();
        loop {
            match self.link.recv_link() {
                Ok((KIND_CHAOS, payload)) => {
                    self.stats.raw_bytes_received += wire::HEADER_BYTES + payload.len();
                    self.handle_envelope(&payload)?;
                    last = Instant::now();
                }
                Ok((_, _)) => last = Instant::now(),
                Err(NetError::Timeout) => {
                    if last.elapsed() >= quiet {
                        return Ok(());
                    }
                }
                Err(NetError::Disconnected) => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }
}

impl<L: FrameLink> Transport for FaultTransport<L> {
    fn send_wire(&mut self, msg: &WireMsg) -> Result<(), NetError> {
        let seq = self.next_send_seq;
        self.next_send_seq += 1;
        self.sent_log.push(msg.to_wire_bytes());
        self.attempts.push(0);
        // Metered exactly once, here — retransmissions and duplicates
        // below only move raw_bytes_sent.
        self.stats.msgs_sent += 1;
        self.stats.bits_sent += payload_bits(msg);
        self.transmit(seq)
    }

    fn recv_wire(&mut self) -> Result<WireMsg, NetError> {
        let deadline = Instant::now() + self.recv_deadline;
        self.fill_ready(deadline)?;
        let inner = self.ready.pop_front().expect("fill_ready guarantees one");
        let msg = WireMsg::from_wire_bytes(&inner)?;
        // Metered exactly once, on in-order delivery.
        self.stats.msgs_received += 1;
        self.stats.bits_received += payload_bits(&msg);
        Ok(msg)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

/// Two connected fault transports over in-memory links, each with its
/// own fault schedule (use [`FaultConfig::quiet`] on one side for
/// asymmetric chaos).
pub fn fault_mem_pair(
    cfg_a: FaultConfig,
    cfg_b: FaultConfig,
) -> (FaultTransport<MemFrameLink>, FaultTransport<MemFrameLink>) {
    let (la, lb) = mem_link_pair(DEFAULT_NACK_INTERVAL);
    (
        FaultTransport::new(la, cfg_a),
        FaultTransport::new(lb, cfg_b),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmx_comm::BitString;

    fn msg(v: u64, n: usize) -> WireMsg {
        WireMsg::Bits(BitString::from_u64(v, n))
    }

    #[test]
    fn fnv_detects_any_single_bit_flip() {
        let inner = b"some envelope payload".to_vec();
        let base = fnv1a64(42, &inner);
        for bit in 0..inner.len() * 8 {
            let mut mutated = inner.clone();
            mutated[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(base, fnv1a64(42, &mutated), "flip at bit {bit} undetected");
        }
        assert_ne!(base, fnv1a64(43, &inner), "seq corruption undetected");
    }

    #[test]
    fn envelope_round_trip_and_corruption() {
        let env = data_envelope(7, b"abc");
        match parse_envelope(&env) {
            Envelope::Data { seq, inner } => {
                assert_eq!(seq, 7);
                assert_eq!(inner, b"abc");
            }
            _ => panic!("clean data envelope rejected"),
        }
        assert!(matches!(
            parse_envelope(&nack_envelope(9)),
            Envelope::Nack { seq: 9 }
        ));
        assert!(matches!(parse_envelope(&[]), Envelope::Corrupt(_)));
        assert!(matches!(parse_envelope(&[2, 0, 0]), Envelope::Corrupt(_)));
        assert!(matches!(
            parse_envelope(&env[..DATA_HEADER - 1]),
            Envelope::Corrupt(_)
        ));
        let mut flipped = env.clone();
        flipped[DATA_HEADER] ^= 0x10;
        assert!(matches!(parse_envelope(&flipped), Envelope::Corrupt(_)));
    }

    #[test]
    fn fault_plan_is_deterministic() {
        let mut a = FaultPlan::new(FaultConfig::aggressive(99));
        let mut b = FaultPlan::new(FaultConfig::aggressive(99));
        for _ in 0..500 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn quiet_config_passes_messages_untouched() {
        let (mut a, mut b) = fault_mem_pair(FaultConfig::quiet(1), FaultConfig::quiet(2));
        for i in 0..20u64 {
            a.send_wire(&msg(i, 16)).unwrap();
        }
        a.send_wire(&WireMsg::Final(true)).unwrap();
        for i in 0..20u64 {
            assert_eq!(b.recv_wire().unwrap(), msg(i, 16));
        }
        assert_eq!(b.recv_wire().unwrap(), WireMsg::Final(true));
        assert_eq!(a.stats().bits_sent, 20 * 16);
        assert_eq!(b.stats().bits_received, 20 * 16);
        assert_eq!(a.fault_stats().injected_total(), 0);
        assert_eq!(b.fault_stats().nacks_sent, 0);
    }

    #[test]
    fn aggressive_faults_deliver_in_order_with_exact_metering() {
        let n = 60u64;
        let (mut a, mut b) = fault_mem_pair(FaultConfig::aggressive(7), FaultConfig::quiet(0));
        let receiver = std::thread::spawn(move || {
            for i in 0..n {
                assert_eq!(b.recv_wire().unwrap(), msg(i, 24), "message {i} mangled");
            }
            b.drain(Duration::from_millis(60)).unwrap();
            (b.stats(), b.fault_stats())
        });
        for i in 0..n {
            a.send_wire(&msg(i, 24)).unwrap();
        }
        a.drain(Duration::from_millis(60)).unwrap();
        let (b_stats, b_fault) = receiver.join().unwrap();

        assert_eq!(a.stats().bits_sent, n as usize * 24);
        assert_eq!(b_stats.bits_received, n as usize * 24);
        assert_eq!(b_stats.msgs_received, n as usize);
        let a_fault = a.fault_stats();
        assert!(a_fault.injected_total() > 0, "schedule injected nothing");
        // Destructive faults must all have been noticed and repaired.
        assert!(
            a_fault.injected_flips + a_fault.injected_truncations == 0
                || b_fault.corrupt_detected > 0
        );
        assert!(
            a_fault.injected_drops == 0 || b_fault.nacks_sent > 0,
            "drops happened but the receiver never NACKed"
        );
        assert!(
            a_fault.retransmits > 0 || a_fault.injected_total() == a_fault.injected_delays,
            "faults happened but nothing was retransmitted"
        );
        // Raw bytes inflate under recovery; metered bits never do.
        assert!(a.stats().raw_bytes_sent > a.stats().bits_sent / 8);
    }

    #[test]
    fn bidirectional_chaos_converges() {
        let rounds = 25u64;
        let (mut a, mut b) = fault_mem_pair(FaultConfig::aggressive(3), FaultConfig::moderate(4));
        let side_b = std::thread::spawn(move || {
            for i in 0..rounds {
                assert_eq!(b.recv_wire().unwrap(), msg(i, 8));
                b.send_wire(&msg(i ^ 0xff, 8)).unwrap();
            }
            b.drain(Duration::from_millis(60)).unwrap();
            b.stats()
        });
        for i in 0..rounds {
            a.send_wire(&msg(i, 8)).unwrap();
            assert_eq!(a.recv_wire().unwrap(), msg(i ^ 0xff, 8));
        }
        a.drain(Duration::from_millis(60)).unwrap();
        let b_stats = side_b.join().unwrap();
        assert_eq!(a.stats().bits_total(), rounds as usize * 16);
        assert_eq!(b_stats.bits_total(), rounds as usize * 16);
    }
}
