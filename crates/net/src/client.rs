//! Typed client for the protocol-lab server.

use std::net::ToSocketAddrs;

use ccmx_comm::bits::BitString;
use ccmx_comm::partition::Owner;
use ccmx_comm::protocol::{round_limit, run_agent, RunResult, Turn};

use crate::api::{BoundsReport, InteractiveSetup, ProtoSpec, Request, Response};
use crate::error::NetError;
use crate::transport::{AsChannel, TcpTransport, Transport, TransportConfig, TransportStats};
use crate::wire::{WireCodec, KIND_INTERACTIVE, KIND_REQUEST, KIND_RESPONSE};

/// A connected client. One request in flight at a time (the wire
/// protocol is strictly request/response).
pub struct Client {
    transport: TcpTransport,
}

impl Client {
    /// Connect to a serving address.
    pub fn connect<A: ToSocketAddrs>(addr: A, config: TransportConfig) -> Result<Self, NetError> {
        Ok(Client {
            transport: TcpTransport::connect(addr, config)?,
        })
    }

    /// Send one request and wait for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, NetError> {
        self.transport
            .send_frame(KIND_REQUEST, &req.to_wire_bytes())?;
        let (kind, payload) = self.transport.recv_frame()?;
        if kind != KIND_RESPONSE {
            return Err(NetError::Protocol(format!(
                "expected a response frame, got kind {kind}"
            )));
        }
        Response::from_wire_bytes(&payload)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Theorem 1.1 bound package for `(n, k)`.
    pub fn bounds(&mut self, n: usize, k: u32, security: u32) -> Result<BoundsReport, NetError> {
        match self.request(&Request::Bounds { n, k, security })? {
            Response::Bounds(report) => Ok(report),
            other => Err(unexpected("Bounds", &other)),
        }
    }

    /// Run a protocol in-process on the server; the result is
    /// bit-identical to a local `run_sequential` with the same triple.
    pub fn run(
        &mut self,
        spec: ProtoSpec,
        input: &BitString,
        seed: u64,
    ) -> Result<RunResult, NetError> {
        match self.request(&Request::Run {
            spec,
            input: input.clone(),
            seed,
        })? {
            Response::Run(result) => Ok(result),
            other => Err(unexpected("Run", &other)),
        }
    }

    /// Exact singularity verdict for an encoded matrix.
    pub fn singularity(&mut self, dim: usize, k: u32, input: &BitString) -> Result<bool, NetError> {
        match self.request(&Request::Singularity {
            dim,
            k,
            input: input.clone(),
        })? {
            Response::Singularity { singular } => Ok(singular),
            other => Err(unexpected("Singularity", &other)),
        }
    }

    /// Exact `CC(f)` of an explicit truth matrix (row-major `bits`),
    /// solved server-side by the `ccmx-search` branch-and-bound engine.
    /// Returns `(cc, exact, nodes, serialized certificate)`; the
    /// certificate is empty when no witness was extracted and otherwise
    /// decodes with `ccmx_search::CcCertificate::from_bytes` for local,
    /// trust-free verification.
    pub fn cc_search(
        &mut self,
        rows: usize,
        cols: usize,
        bits: &BitString,
        depth_limit: u32,
    ) -> Result<(u32, bool, u64, Vec<u8>), NetError> {
        match self.request(&Request::CcSearch {
            rows,
            cols,
            bits: bits.clone(),
            depth_limit,
        })? {
            Response::CcSearch {
                cc,
                exact,
                nodes,
                certificate,
            } => Ok((cc, exact, nodes, certificate)),
            other => Err(unexpected("CcSearch", &other)),
        }
    }

    /// Scrape the server's live metrics registry: Prometheus-style
    /// exposition text (`name{label="v"} value` lines) covering request
    /// counters and latency histograms, pool gauges, CRT fast-path and
    /// enumeration counters.
    pub fn metrics(&mut self) -> Result<String, NetError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Send a burst of requests in one frame; the server amortizes
    /// protocol setup across the burst. Responses are in request order.
    pub fn batch(&mut self, reqs: Vec<Request>) -> Result<Vec<Response>, NetError> {
        match self.request(&Request::Batch(reqs))? {
            Response::Batch(resps) => Ok(resps),
            other => Err(unexpected("Batch", &other)),
        }
    }

    /// Run a protocol *live* against the server: this client plays agent
    /// A over the socket, the server plays agent B. Returns A's
    /// assembled [`RunResult`], the server's (they must agree — the
    /// caller can assert), and this endpoint's metered wire stats, whose
    /// `bits_total()` equals the transcript's bit count exactly.
    pub fn run_interactive(
        &mut self,
        spec: ProtoSpec,
        input: &BitString,
        seed: u64,
    ) -> Result<(RunResult, RunResult, TransportStats), NetError> {
        let lab = spec.build();
        if input.len() != lab.input_bits {
            return Err(NetError::Protocol(format!(
                "input is {} bits, {} expects {}",
                input.len(),
                spec.name(),
                lab.input_bits
            )));
        }
        let (share_a, share_b) = lab.partition.split(input);
        let setup = InteractiveSetup {
            spec,
            b_positions: lab.partition.positions_of(Owner::B),
            b_values: share_b.to_bitstring(),
            seed,
        };
        let stats_before = self.transport.stats();
        self.transport
            .send_frame(KIND_INTERACTIVE, &setup.to_wire_bytes())?;

        let limit = round_limit(lab.partition.len());
        let result_a = {
            let mut chan = AsChannel(&mut self.transport);
            run_agent(
                lab.proto.as_ref(),
                &lab.partition,
                &share_a,
                Turn::A,
                seed,
                limit,
                &mut chan,
            )
            .map_err(|e| NetError::Protocol(e.to_string()))?
        };

        let (kind, payload) = self.transport.recv_frame()?;
        if kind != KIND_RESPONSE {
            return Err(NetError::Protocol(format!(
                "expected a response frame, got kind {kind}"
            )));
        }
        let result_b = match Response::from_wire_bytes(&payload)? {
            Response::Run(result) => result,
            other => return Err(unexpected("Run", &other)),
        };

        let after = self.transport.stats();
        let run_stats = TransportStats {
            msgs_sent: after.msgs_sent - stats_before.msgs_sent,
            msgs_received: after.msgs_received - stats_before.msgs_received,
            bits_sent: after.bits_sent - stats_before.bits_sent,
            bits_received: after.bits_received - stats_before.bits_received,
            raw_bytes_sent: after.raw_bytes_sent - stats_before.raw_bytes_sent,
            raw_bytes_received: after.raw_bytes_received - stats_before.raw_bytes_received,
        };
        Ok((result_a, result_b, run_stats))
    }

    /// Cumulative wire stats for this connection.
    pub fn stats(&self) -> TransportStats {
        self.transport.stats()
    }
}

fn unexpected(wanted: &str, got: &Response) -> NetError {
    match got {
        Response::Error(msg) => NetError::Protocol(format!("server error: {msg}")),
        other => NetError::Protocol(format!("expected a {wanted} response, got {other:?}")),
    }
}
