//! Request batching: group the runnable requests of a burst by their
//! protocol setup so instance construction (protocol object, partition,
//! referee function) happens once per distinct [`ProtoSpec`] instead of
//! once per request.
//!
//! Responses are always returned in the original request order; the
//! plan only reorders *execution*.

use std::collections::HashMap;

use crate::api::{ProtoSpec, Request};

/// One group of a batch plan: every request index that shares `spec`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchGroup {
    /// The shared protocol setup.
    pub spec: ProtoSpec,
    /// Indices into the original request slice, in arrival order.
    pub indices: Vec<usize>,
}

/// Execution plan for a batch: `Run` requests grouped by spec, plus the
/// indices of everything else (served individually, in order).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchPlan {
    /// Groups of `Run` requests sharing a setup, in first-arrival order.
    pub groups: Vec<BatchGroup>,
    /// Indices of non-`Run` requests.
    pub singles: Vec<usize>,
}

impl BatchPlan {
    /// Amortization factor: runnable requests per constructed setup.
    /// `1.0` means batching saved nothing; `8.0` means each setup served
    /// eight requests.
    pub fn amortization(&self) -> f64 {
        let runs: usize = self.groups.iter().map(|g| g.indices.len()).sum();
        if self.groups.is_empty() {
            return 1.0;
        }
        runs as f64 / self.groups.len() as f64
    }
}

/// Plan a burst of requests. Nested batches are treated as opaque
/// singles (the dispatcher rejects them — one level of batching only).
pub fn plan(requests: &[Request]) -> BatchPlan {
    let mut plan = BatchPlan::default();
    let mut by_spec: HashMap<ProtoSpec, usize> = HashMap::new();
    for (i, req) in requests.iter().enumerate() {
        match req {
            Request::Run { spec, .. } => {
                let gi = *by_spec.entry(*spec).or_insert_with(|| {
                    plan.groups.push(BatchGroup {
                        spec: *spec,
                        indices: Vec::new(),
                    });
                    plan.groups.len() - 1
                });
                plan.groups[gi].indices.push(i);
            }
            _ => plan.singles.push(i),
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmx_comm::BitString;

    fn run_req(spec: ProtoSpec, seed: u64) -> Request {
        let bits = spec.build().input_bits;
        Request::Run {
            spec,
            input: BitString::zeros(bits),
            seed,
        }
    }

    #[test]
    fn runs_group_by_spec_in_arrival_order() {
        let send_all = ProtoSpec::SendAllSingularity { dim: 2, k: 2 };
        let mod_prime = ProtoSpec::ModPrimeSingularity {
            dim: 2,
            k: 2,
            security: 20,
        };
        let reqs = vec![
            run_req(send_all, 0),
            Request::Ping,
            run_req(mod_prime, 1),
            run_req(send_all, 2),
            Request::Bounds {
                n: 5,
                k: 3,
                security: 20,
            },
            run_req(send_all, 3),
        ];
        let plan = plan(&reqs);
        assert_eq!(plan.groups.len(), 2);
        assert_eq!(plan.groups[0].spec, send_all);
        assert_eq!(plan.groups[0].indices, vec![0, 3, 5]);
        assert_eq!(plan.groups[1].indices, vec![2]);
        assert_eq!(plan.singles, vec![1, 4]);
        assert!((plan.amortization() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_batch_plans_empty() {
        let plan = plan(&[]);
        assert!(plan.groups.is_empty());
        assert!(plan.singles.is_empty());
        assert_eq!(plan.amortization(), 1.0);
    }
}
