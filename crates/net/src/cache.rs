//! A small LRU cache for repeated bound computations.
//!
//! The server answers `Bounds { n, k, security }` requests by running
//! the Theorem 1.1 counting machinery; distinct parameter tuples are
//! few and requests for them are heavily repeated under load, so a
//! small recency-evicting map removes the recomputation entirely.
//!
//! Implementation note: capacity stays small (tens to hundreds), so
//! eviction scans for the minimum recency stamp instead of maintaining
//! an intrusive list — O(capacity) on insert-when-full, O(1) hits.

use std::collections::HashMap;
use std::hash::Hash;

/// Hit/miss counters for observability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

/// Process-wide mirror of one cache's counters in the [`ccmx_obs`]
/// registry. Unlike the per-instance [`CacheStats`], these survive the
/// cache (and the server owning it) being dropped, so totals aggregate
/// across server restarts and client reconnects within the process.
struct MetricsMirror {
    hits: &'static ccmx_obs::Counter,
    misses: &'static ccmx_obs::Counter,
    evictions: &'static ccmx_obs::Counter,
}

/// Least-recently-used cache with a fixed capacity.
pub struct LruCache<K, V> {
    map: HashMap<K, (V, u64)>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
    mirror: Option<MetricsMirror>,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// New cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            stats: CacheStats::default(),
            mirror: None,
        }
    }

    /// Like [`LruCache::new`], but additionally mirror hit/miss/eviction
    /// counts into the shared metrics registry as
    /// `ccmx_cache_{hits,misses,evictions}_total{cache="<label>"}`.
    /// The per-instance [`LruCache::stats`] still start at zero; the
    /// registry series accumulate across every cache created with the
    /// same label for the life of the process.
    pub fn with_metrics(capacity: usize, label: &'static str) -> Self {
        let reg = ccmx_obs::registry();
        let labels = [("cache", label)];
        let mut cache = Self::new(capacity);
        cache.mirror = Some(MetricsMirror {
            hits: reg.counter("ccmx_cache_hits_total", &labels),
            misses: reg.counter("ccmx_cache_misses_total", &labels),
            evictions: reg.counter("ccmx_cache_evictions_total", &labels),
        });
        cache
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((v, stamp)) => {
                *stamp = self.tick;
                self.stats.hits += 1;
                if let Some(m) = &self.mirror {
                    m.hits.inc();
                }
                Some(v.clone())
            }
            None => {
                self.stats.misses += 1;
                if let Some(m) = &self.mirror {
                    m.misses.inc();
                }
                None
            }
        }
    }

    /// Insert `key → value`, evicting the least-recently-used entry if
    /// the cache is full.
    pub fn put(&mut self, key: K, value: V) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.stats.evictions += 1;
                if let Some(m) = &self.mirror {
                    m.evictions.inc();
                }
            }
        }
        self.map.insert(key, (value, self.tick));
    }

    /// Get or compute-and-insert.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&mut self, key: K, compute: F) -> V {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let v = compute();
        self.put(key, v.clone());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_refreshes_recency() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        assert_eq!(c.get(&"a"), Some(1)); // "a" is now the freshest
        c.put("c", 3); // evicts "b", not "a"
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"c"), Some(3));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = LruCache::new(3);
        for i in 0..10 {
            c.put(i, i * i);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&9), Some(81));
        assert_eq!(c.get(&0), None);
    }

    #[test]
    fn get_or_insert_computes_once() {
        let mut c = LruCache::new(4);
        let mut calls = 0;
        let v = c.get_or_insert_with(7, || {
            calls += 1;
            42
        });
        assert_eq!(v, 42);
        let v = c.get_or_insert_with(7, || {
            calls += 1;
            43
        });
        assert_eq!(v, 42);
        assert_eq!(calls, 1);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn backend_id_in_key_separates_entries() {
        // Regression: the server keys bound computations by
        // (n, k, security, backend id). Entries computed under one
        // exact-arithmetic backend must never satisfy a lookup for
        // another — a cross-backend upgrade starts cold, not stale.
        let mut c: LruCache<(usize, u32, u32, &'static str), u64> = LruCache::new(8);
        let rational = ccmx_linalg::crt::Backend::RationalGauss.id();
        let crt = ccmx_linalg::crt::Backend::MontgomeryCrt.id();
        assert_ne!(rational, crt);
        c.put((7, 2, 40, rational), 111);
        assert_eq!(c.get(&(7, 2, 40, crt)), None, "cross-backend hit");
        c.put((7, 2, 40, crt), 222);
        assert_eq!(c.get(&(7, 2, 40, rational)), Some(111));
        assert_eq!(c.get(&(7, 2, 40, crt)), Some(222));
        // And the active backend id is one of the declared ones.
        let active = ccmx_linalg::crt::active_backend().id();
        assert!(["rational", "bareiss", "crt"].contains(&active));
    }

    #[test]
    fn metrics_mirror_outlives_the_cache() {
        let reg = ccmx_obs::registry();
        let labels = [("cache", "test-cache-mirror")];
        let base_hits = reg.counter("ccmx_cache_hits_total", &labels).get();
        let base_misses = reg.counter("ccmx_cache_misses_total", &labels).get();
        {
            let mut c = LruCache::with_metrics(2, "test-cache-mirror");
            c.put("a", 1i32);
            assert_eq!(c.get(&"a"), Some(1));
            assert_eq!(c.get(&"b"), None);
            assert_eq!(c.stats().hits, 1);
            assert_eq!(c.stats().misses, 1);
        } // cache dropped here
        {
            let mut c: LruCache<&str, i32> = LruCache::with_metrics(2, "test-cache-mirror");
            assert_eq!(c.get(&"a"), None, "fresh cache starts cold");
            assert_eq!(c.stats().misses, 1, "per-instance stats restart");
        }
        // The registry series aggregated across both instances.
        assert_eq!(
            reg.counter("ccmx_cache_hits_total", &labels).get() - base_hits,
            1
        );
        assert_eq!(
            reg.counter("ccmx_cache_misses_total", &labels).get() - base_misses,
            2
        );
    }

    #[test]
    fn overwrite_same_key_does_not_evict() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("a", 2);
        c.put("b", 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(2));
        assert_eq!(c.stats().evictions, 0);
    }
}
