//! Error type for the wire layer.

use std::fmt;
use std::io;

/// Anything that can go wrong between two networked agents.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket / pipe failure.
    Io(io::Error),
    /// The peer's read side stalled past the configured timeout.
    Timeout,
    /// The peer closed the connection mid-exchange.
    Disconnected,
    /// A frame violated the format (bad magic, truncation, overrun).
    Frame(String),
    /// A frame decoded structurally but made no semantic sense here.
    Protocol(String),
    /// The per-peer circuit breaker is open: the call was refused
    /// locally, without wire traffic, and nothing cached could answer
    /// it. See [`crate::breaker`].
    CircuitOpen,
}

impl NetError {
    /// Classify an I/O error: timeouts and disconnects get their own
    /// variants so callers can distinguish "slow peer" from "dead peer".
    pub fn from_io(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => NetError::Timeout,
            io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe => NetError::Disconnected,
            _ => NetError::Io(e),
        }
    }

    /// Is this worth retrying with backoff (transient), as opposed to a
    /// dead or misbehaving peer?
    pub fn is_transient(&self) -> bool {
        matches!(self, NetError::Io(e) if e.kind() == io::ErrorKind::Interrupted)
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Timeout => write!(f, "peer stalled past the read/write timeout"),
            NetError::Disconnected => write!(f, "peer disconnected mid-exchange"),
            NetError::Frame(msg) => write!(f, "malformed frame: {msg}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::CircuitOpen => {
                write!(f, "circuit breaker open and no cached answer available")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::from_io(e)
    }
}
