//! Glue between the server's in-memory caches and the persistent
//! certified-result store (`ccmx-store`).
//!
//! The store moves bytes; this module owns what those bytes *mean* for
//! the lab: key and value encodings for each keyspace, reusing the
//! deterministic [`WireCodec`] layouts so `docs/STORAGE.md` §4 can
//! specify them by reference to the wire format.
//!
//! | keyspace | key                                   | value                |
//! |----------|---------------------------------------|----------------------|
//! | `BOUNDS` | `n, k, security, backend-id`          | `BoundsReport` bytes |
//! | `CC`     | `rows, cols, bits, depth_limit`       | `Response` bytes     |
//! | `CRT`    | `dim, k, fingerprint, backend-id`     | `[singular as u8]`   |
//! | `RUN`    | `fnv64(spec, input, seed)` (u64 LE)   | `IdempotentRun` bytes|
//!
//! Backend-qualified keys ([`ccmx_linalg::crt::Backend::id`]) carry the
//! same guarantee on disk as in RAM: a binary running a different
//! exact-arithmetic engine warm-starts *cold* for those entries rather
//! than trusting another engine's verdicts. Decoders here are total —
//! a record that fails to decode is skipped (and counted), never
//! trusted, so a store written by a future layout degrades a warm start
//! into a partial one instead of corrupting answers.

use std::path::Path;

use ccmx_store::{Store, StoreConfig};

use crate::wire::{Dec, WireCodec};

/// Open (or create) a store for a server, non-fatally: a store that
/// cannot be opened is surfaced on stderr and as
/// `ccmx_store_open_errors_total`, and the server simply runs cold —
/// persistence is an accelerator, never an availability dependency.
pub(crate) fn open_store(dir: &Path, label: &str) -> Option<Store> {
    match Store::open(StoreConfig::new(dir).label(label)) {
        Ok(store) => {
            let rec = store.recovery();
            if !rec.clean() {
                for issue in &rec.issues {
                    eprintln!(
                        "ccmx-store[{label}]: repaired segment {} at offset {}: {} ({})",
                        issue.segment, issue.offset, issue.kind, issue.detail
                    );
                }
            }
            Some(store)
        }
        Err(e) => {
            ccmx_obs::counter!("ccmx_store_open_errors_total").inc();
            eprintln!(
                "ccmx-store[{label}]: cannot open {}: {e}; serving cold",
                dir.display()
            );
            None
        }
    }
}

/// Warm-seed counter for one cache, labelled like the cache metrics.
pub(crate) fn seeded_counter(cache: &'static str) -> &'static ccmx_obs::Counter {
    ccmx_obs::registry().counter("ccmx_store_warm_seeded_total", &[("cache", cache)])
}

/// Records skipped during warm seeding because their key or value no
/// longer decodes (foreign backend entries are *not* counted here —
/// they are valid records awaiting their engine).
pub(crate) fn skipped_counter() -> &'static ccmx_obs::Counter {
    ccmx_obs::counter!("ccmx_store_warm_skipped_total")
}

// ----------------------------------------------------------------------
// BOUNDS keyspace
// ----------------------------------------------------------------------

/// Encode a bounds-cache key.
pub(crate) fn bounds_key(n: usize, k: u32, security: u32, backend: &str) -> Vec<u8> {
    let mut out = Vec::new();
    n.put(&mut out);
    k.put(&mut out);
    security.put(&mut out);
    backend.to_string().put(&mut out);
    out
}

/// Decode a bounds-cache key: `(n, k, security, backend id)`.
pub(crate) fn decode_bounds_key(bytes: &[u8]) -> Option<(usize, u32, u32, String)> {
    let mut d = Dec::new(bytes);
    let n = usize::take(&mut d).ok()?;
    let k = u32::take(&mut d).ok()?;
    let security = u32::take(&mut d).ok()?;
    let backend = String::take(&mut d).ok()?;
    d.finish().ok()?;
    Some((n, k, security, backend))
}

// ----------------------------------------------------------------------
// CC keyspace
// ----------------------------------------------------------------------

/// Encode a cc-search cache key.
pub(crate) fn cc_key(rows: usize, cols: usize, bits: &[bool], depth_limit: u32) -> Vec<u8> {
    let mut out = Vec::new();
    rows.put(&mut out);
    cols.put(&mut out);
    ccmx_comm::BitString::from_bits(bits.to_vec()).put(&mut out);
    depth_limit.put(&mut out);
    out
}

/// Decode a cc-search cache key: `(rows, cols, bits, depth_limit)`.
pub(crate) fn decode_cc_key(bytes: &[u8]) -> Option<(usize, usize, Vec<bool>, u32)> {
    let mut d = Dec::new(bytes);
    let rows = usize::take(&mut d).ok()?;
    let cols = usize::take(&mut d).ok()?;
    let bits = ccmx_comm::BitString::take(&mut d).ok()?;
    let depth_limit = u32::take(&mut d).ok()?;
    d.finish().ok()?;
    Some((rows, cols, bits.as_slice().to_vec(), depth_limit))
}

// ----------------------------------------------------------------------
// CRT keyspace
// ----------------------------------------------------------------------

/// Encode a singularity-verdict key.
pub(crate) fn sing_key(dim: usize, k: u32, fingerprint: u64, backend: &str) -> Vec<u8> {
    let mut out = Vec::new();
    dim.put(&mut out);
    k.put(&mut out);
    fingerprint.put(&mut out);
    backend.to_string().put(&mut out);
    out
}

/// Decode a singularity-verdict key: `(dim, k, fingerprint, backend)`.
pub(crate) fn decode_sing_key(bytes: &[u8]) -> Option<(usize, u32, u64, String)> {
    let mut d = Dec::new(bytes);
    let dim = usize::take(&mut d).ok()?;
    let k = u32::take(&mut d).ok()?;
    let fingerprint = u64::take(&mut d).ok()?;
    let backend = String::take(&mut d).ok()?;
    d.finish().ok()?;
    Some((dim, k, fingerprint, backend))
}

// ----------------------------------------------------------------------
// RUN keyspace
// ----------------------------------------------------------------------

/// Encode a committed idempotent run: both agents' [`RunResult`]s, the
/// committed wire stats, and the attempt count. The `replayed` flag is
/// *not* stored — it describes a call, not a result, and the replay
/// path recomputes it.
pub(crate) fn encode_run(run: &crate::retry::IdempotentRun) -> Vec<u8> {
    let mut out = Vec::new();
    run.result_a.put(&mut out);
    run.result_b.put(&mut out);
    run.stats.msgs_sent.put(&mut out);
    run.stats.msgs_received.put(&mut out);
    run.stats.bits_sent.put(&mut out);
    run.stats.bits_received.put(&mut out);
    run.stats.raw_bytes_sent.put(&mut out);
    run.stats.raw_bytes_received.put(&mut out);
    run.attempts.put(&mut out);
    out
}

/// Decode a committed idempotent run.
pub(crate) fn decode_run(bytes: &[u8]) -> Option<crate::retry::IdempotentRun> {
    let mut d = Dec::new(bytes);
    let result_a = ccmx_comm::RunResult::take(&mut d).ok()?;
    let result_b = ccmx_comm::RunResult::take(&mut d).ok()?;
    let stats = crate::transport::TransportStats {
        msgs_sent: usize::take(&mut d).ok()?,
        msgs_received: usize::take(&mut d).ok()?,
        bits_sent: usize::take(&mut d).ok()?,
        bits_received: usize::take(&mut d).ok()?,
        raw_bytes_sent: usize::take(&mut d).ok()?,
        raw_bytes_received: usize::take(&mut d).ok()?,
    };
    let attempts = u32::take(&mut d).ok()?;
    d.finish().ok()?;
    Some(crate::retry::IdempotentRun {
        result_a,
        result_b,
        stats,
        replayed: false,
        attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_key_round_trips() {
        let key = bounds_key(17, 4, 40, "crt");
        assert_eq!(
            decode_bounds_key(&key),
            Some((17usize, 4u32, 40u32, "crt".to_string()))
        );
        assert_eq!(decode_bounds_key(&key[..key.len() - 1]), None);
    }

    #[test]
    fn cc_key_round_trips() {
        let bits = vec![true, false, true, true];
        let key = cc_key(2, 2, &bits, 32);
        assert_eq!(decode_cc_key(&key), Some((2usize, 2usize, bits, 32u32)));
    }

    #[test]
    fn sing_key_round_trips() {
        let key = sing_key(5, 3, 0xdead_beef_feed_f00d, "crt");
        assert_eq!(
            decode_sing_key(&key),
            Some((5usize, 3u32, 0xdead_beef_feed_f00d, "crt".to_string()))
        );
    }

    #[test]
    fn keys_are_deterministic_and_distinct() {
        assert_eq!(bounds_key(5, 3, 20, "crt"), bounds_key(5, 3, 20, "crt"));
        assert_ne!(
            bounds_key(5, 3, 20, "crt"),
            bounds_key(5, 3, 20, "rational")
        );
        assert_ne!(cc_key(2, 2, &[true; 4], 0), cc_key(2, 2, &[true; 4], 32));
    }
}
