//! Retrying client: jittered exponential backoff, idempotency-keyed
//! replay, and breaker-guarded degradation to cached bounds.
//!
//! The accounting rule that makes retries safe for a *bit-metering*
//! instrument: every wire attempt is charged to exactly one of two
//! ledgers. Bits moved by an attempt that ultimately succeeds land in
//! [`RetryClient::committed_stats`]; bits moved by an attempt that
//! fails (connection died mid-run, server error, timeout) land in
//! [`RetryClient::discarded_bits`]. A protocol run replayed from the
//! idempotency cache touches neither — no wire traffic happens at all
//! — so retried runs can never double-count metered bits, and
//! `committed_stats().bits_total()` remains comparable bit-for-bit
//! with `Transcript::total_bits()` sums.
//!
//! The per-peer [`CircuitBreaker`] sits in front of every attempt:
//! while open, calls fail fast locally ([`NetError::CircuitOpen`])
//! except for bound queries, which degrade to the last good cached
//! [`BoundsReport`] — the Theorem 1.1 package is a pure function of
//! `(n, k, security)`, so a cached answer is exactly as correct as a
//! fresh one.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use ccmx_comm::protocol::RunResult;
use ccmx_comm::BitString;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::api::{BoundsReport, ProtoSpec};
use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::client::Client;
use crate::error::NetError;
use crate::transport::{TransportConfig, TransportStats};
use crate::wire::WireCodec;

/// Backoff schedule for [`RetryClient`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Wire attempts per call before giving up.
    pub max_attempts: u32,
    /// Backoff before attempt 2; doubles per attempt.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the jitter schedule (deterministic soaks).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            jitter_seed: 0x5eed,
        }
    }
}

/// Outcome of an idempotent protocol run.
#[derive(Clone, Debug)]
pub struct IdempotentRun {
    /// Agent A's (client-side) result.
    pub result_a: RunResult,
    /// Agent B's (server-side) result; must equal `result_a`.
    pub result_b: RunResult,
    /// Wire stats of the one committed execution of this run.
    pub stats: TransportStats,
    /// True when served from the idempotency cache: no wire traffic
    /// happened and no new bits were metered.
    pub replayed: bool,
    /// Wire attempts this call made (0 when replayed).
    pub attempts: u32,
}

/// FNV-1a over an encoded request — the idempotency key.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn stats_delta(after: TransportStats, before: TransportStats) -> TransportStats {
    TransportStats {
        msgs_sent: after.msgs_sent - before.msgs_sent,
        msgs_received: after.msgs_received - before.msgs_received,
        bits_sent: after.bits_sent - before.bits_sent,
        bits_received: after.bits_received - before.bits_received,
        raw_bytes_sent: after.raw_bytes_sent - before.raw_bytes_sent,
        raw_bytes_received: after.raw_bytes_received - before.raw_bytes_received,
    }
}

/// A client that retries with jittered exponential backoff behind an
/// idempotency key and a per-peer circuit breaker. See the module docs
/// for the two-ledger bit accounting.
pub struct RetryClient {
    addr: String,
    transport_config: TransportConfig,
    policy: RetryPolicy,
    breaker: CircuitBreaker,
    conn: Option<Client>,
    /// Stats watermark at the last committed success on the current
    /// connection; the delta past it belongs to the in-flight attempt.
    conn_watermark: TransportStats,
    rng: StdRng,
    completed_runs: HashMap<u64, IdempotentRun>,
    bounds_cache: HashMap<(usize, u32, u32), BoundsReport>,
    committed: TransportStats,
    discarded_bits: u64,
    /// Persistent backing for the idempotency cache, when attached:
    /// committed runs are appended as they complete, so replays
    /// survive process death.
    store: Option<ccmx_store::Store>,
}

impl RetryClient {
    /// Build a client for `addr`. Connects lazily on first use.
    pub fn new(
        addr: &str,
        transport_config: TransportConfig,
        policy: RetryPolicy,
        breaker_config: BreakerConfig,
    ) -> Self {
        RetryClient {
            addr: addr.to_string(),
            transport_config,
            policy,
            breaker: CircuitBreaker::new(addr, breaker_config),
            conn: None,
            conn_watermark: TransportStats::default(),
            rng: StdRng::seed_from_u64(policy.jitter_seed),
            completed_runs: HashMap::new(),
            bounds_cache: HashMap::new(),
            committed: TransportStats::default(),
            discarded_bits: 0,
            store: None,
        }
    }

    /// Attach a persistent store under `dir`: every committed run
    /// already on disk is re-seeded into the idempotency cache right
    /// away (so replays survive process death), and every future
    /// committed run is appended. Returns how many runs were loaded.
    ///
    /// Fails only if the directory cannot be opened as a store at all;
    /// individual undecodable records are skipped (and counted on
    /// `ccmx_store_warm_skipped_total`), never trusted.
    pub fn attach_store(&mut self, dir: &std::path::Path) -> Result<usize, NetError> {
        let store = ccmx_store::Store::open(ccmx_store::StoreConfig::new(dir).label("client"))
            .map_err(|e| NetError::Protocol(format!("cannot open run store: {e}")))?;
        let mut loaded = 0usize;
        store.for_each(ccmx_store::Keyspace::RUN, |key, value| {
            match (<[u8; 8]>::try_from(key), crate::persist::decode_run(value)) {
                (Ok(key), Some(run)) => {
                    self.completed_runs.insert(u64::from_le_bytes(key), run);
                    loaded += 1;
                }
                _ => crate::persist::skipped_counter().inc(),
            }
        });
        crate::persist::seeded_counter("runs").add(loaded as u64);
        self.store = Some(store);
        Ok(loaded)
    }

    /// Current breaker state (ticks the open→half-open clock).
    pub fn breaker_state(&mut self) -> BreakerState {
        self.breaker.allow();
        self.breaker.state()
    }

    /// The breaker guarding this peer.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Wire stats of committed (successful) attempts only.
    pub fn committed_stats(&self) -> TransportStats {
        self.committed
    }

    /// Metered bits moved by attempts that later failed; kept out of
    /// [`Self::committed_stats`] so retries never double-count.
    pub fn discarded_bits(&self) -> u64 {
        self.discarded_bits
    }

    fn conn(&mut self) -> Result<&mut Client, NetError> {
        if self.conn.is_none() {
            self.conn = Some(Client::connect(self.addr.as_str(), self.transport_config)?);
            self.conn_watermark = TransportStats::default();
        }
        Ok(self.conn.as_mut().expect("connection was just established"))
    }

    /// Tear down the connection, charging the bits its in-flight
    /// attempt moved to the discard ledger.
    fn discard_conn(&mut self) {
        if let Some(c) = self.conn.take() {
            let wasted = stats_delta(c.stats(), self.conn_watermark);
            self.discarded_bits += wasted.bits_total() as u64;
            ccmx_obs::counter!("ccmx_retry_discarded_bits_total").add(wasted.bits_total() as u64);
        }
        self.conn_watermark = TransportStats::default();
    }

    fn backoff(&mut self, attempt: u32) {
        let exp = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.policy.max_backoff).as_micros() as u64;
        // Jitter in [capped/2, capped]: desynchronize a retry storm.
        let jittered = capped / 2 + self.rng.gen_range(0..=capped / 2);
        std::thread::sleep(Duration::from_micros(jittered));
    }

    /// Run `op` with breaker-guarded retries. On success, commit the
    /// connection's stats delta; on each failure, discard it.
    fn with_retries<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, NetError>,
    ) -> Result<(T, TransportStats, u32), NetError> {
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            if !self.breaker.allow() {
                ccmx_obs::counter!("ccmx_retry_rejected_total").inc();
                return Err(NetError::CircuitOpen);
            }
            attempt += 1;
            ccmx_obs::counter!("ccmx_retry_attempts_total").inc();
            let outcome = match self.conn() {
                Ok(client) => op(client),
                Err(e) => Err(e),
            };
            match outcome {
                Ok(value) => {
                    let stats_now = self
                        .conn
                        .as_ref()
                        .map(|c| c.stats())
                        .unwrap_or(self.conn_watermark);
                    let delta = stats_delta(stats_now, self.conn_watermark);
                    self.conn_watermark = stats_now;
                    self.committed = TransportStats {
                        msgs_sent: self.committed.msgs_sent + delta.msgs_sent,
                        msgs_received: self.committed.msgs_received + delta.msgs_received,
                        bits_sent: self.committed.bits_sent + delta.bits_sent,
                        bits_received: self.committed.bits_received + delta.bits_received,
                        raw_bytes_sent: self.committed.raw_bytes_sent + delta.raw_bytes_sent,
                        raw_bytes_received: self.committed.raw_bytes_received
                            + delta.raw_bytes_received,
                    };
                    self.breaker.record_success();
                    ccmx_obs::counter!("ccmx_retry_success_total").inc();
                    ccmx_obs::histogram!("ccmx_retry_latency_ns", &ccmx_obs::buckets::LATENCY_NS)
                        .record(started.elapsed().as_nanos() as u64);
                    return Ok((value, delta, attempt));
                }
                Err(e) => {
                    self.discard_conn();
                    self.breaker.record_failure();
                    ccmx_obs::counter!("ccmx_retry_failures_total").inc();
                    if attempt >= self.policy.max_attempts {
                        ccmx_obs::counter!("ccmx_retry_exhausted_total").inc();
                        ccmx_obs::histogram!(
                            "ccmx_retry_latency_ns",
                            &ccmx_obs::buckets::LATENCY_NS
                        )
                        .record(started.elapsed().as_nanos() as u64);
                        return Err(e);
                    }
                    self.backoff(attempt - 1);
                }
            }
        }
    }

    /// Liveness probe through the retry/breaker stack.
    pub fn ping(&mut self) -> Result<(), NetError> {
        self.with_retries(|c| c.ping()).map(|_| ())
    }

    /// Run a protocol interactively against the server, retrying whole
    /// runs behind an idempotency key over `(spec, input, seed)`. A
    /// repeat call with the same key replays the cached result without
    /// touching the wire.
    pub fn run_idempotent(
        &mut self,
        spec: ProtoSpec,
        input: &BitString,
        seed: u64,
    ) -> Result<IdempotentRun, NetError> {
        let mut key_bytes = spec.to_wire_bytes();
        input.put(&mut key_bytes);
        seed.put(&mut key_bytes);
        let key = fnv64(&key_bytes);
        if let Some(cached) = self.completed_runs.get(&key) {
            ccmx_obs::counter!("ccmx_retry_idempotent_replays_total").inc();
            let mut replay = cached.clone();
            replay.replayed = true;
            replay.attempts = 0;
            return Ok(replay);
        }
        let ((result_a, result_b, stats), _, attempts) =
            self.with_retries(|c| c.run_interactive(spec, input, seed))?;
        let run = IdempotentRun {
            result_a,
            result_b,
            stats,
            replayed: false,
            attempts,
        };
        self.completed_runs.insert(key, run.clone());
        if let Some(store) = &mut self.store {
            let put = store
                .put(
                    ccmx_store::Keyspace::RUN,
                    &key.to_le_bytes(),
                    &crate::persist::encode_run(&run),
                )
                .and_then(|()| store.sync());
            if let Err(e) = put {
                ccmx_obs::counter!("ccmx_store_write_errors_total").inc();
                eprintln!("ccmx-store[client]: write failed: {e}");
            }
        }
        Ok(run)
    }

    /// Theorem 1.1 bounds with graceful degradation: while the breaker
    /// is open (or every attempt failed), serve the last good cached
    /// report for `(n, k, security)` instead of failing. Returns the
    /// report and whether it came from the degraded cache.
    pub fn bounds_degraded(
        &mut self,
        n: usize,
        k: u32,
        security: u32,
    ) -> Result<(BoundsReport, bool), NetError> {
        let key = (n, k, security);
        if !self.breaker.allow() {
            return match self.bounds_cache.get(&key) {
                Some(report) => {
                    ccmx_obs::counter!("ccmx_retry_degraded_total").inc();
                    Ok((*report, true))
                }
                None => {
                    ccmx_obs::counter!("ccmx_retry_rejected_total").inc();
                    Err(NetError::CircuitOpen)
                }
            };
        }
        match self.with_retries(|c| c.bounds(n, k, security)) {
            Ok((report, _, _)) => {
                self.bounds_cache.insert(key, report);
                Ok((report, false))
            }
            Err(e) => match self.bounds_cache.get(&key) {
                Some(report) => {
                    ccmx_obs::counter!("ccmx_retry_degraded_total").inc();
                    Ok((*report, true))
                }
                None => Err(e),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve, ServerConfig};
    use ccmx_comm::protocol::run_sequential;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            jitter_seed: 1,
        }
    }

    fn breaker_cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_for: Duration::from_millis(40),
            half_open_successes: 1,
        }
    }

    #[test]
    fn idempotent_replay_moves_no_new_bits() {
        let server = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.addr().to_string();
        let mut rc = RetryClient::new(&addr, TransportConfig::default(), policy(), breaker_cfg());
        let spec = ProtoSpec::FingerprintEquality {
            half_bits: 16,
            security: 16,
        };
        let input = BitString::from_u64(0xdead_beef, 32);

        let first = rc.run_idempotent(spec, &input, 5).unwrap();
        assert!(!first.replayed);
        assert_eq!(first.attempts, 1);
        let lab = spec.build();
        let expected = run_sequential(lab.proto.as_ref(), &lab.partition, &input, 5);
        assert_eq!(first.result_a, expected);
        assert_eq!(
            first.stats.bits_total(),
            expected.transcript.total_bits(),
            "wire bits must equal the transcript"
        );
        let committed_after_first = rc.committed_stats();

        let second = rc.run_idempotent(spec, &input, 5).unwrap();
        assert!(second.replayed, "same key must replay from cache");
        assert_eq!(second.attempts, 0);
        assert_eq!(second.result_a, expected);
        assert_eq!(
            rc.committed_stats(),
            committed_after_first,
            "a replay must not move the committed ledger"
        );
        assert_eq!(rc.discarded_bits(), 0);
        server.shutdown();
    }

    #[test]
    fn idempotent_replays_survive_process_death() {
        let dir = std::env::temp_dir().join(format!("ccmx-retry-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.addr().to_string();
        let spec = ProtoSpec::FingerprintEquality {
            half_bits: 16,
            security: 16,
        };
        let input = BitString::from_u64(0xfeed_f00d, 32);

        // First client lifetime: run once, persist, drop (the "death").
        let first = {
            let mut rc =
                RetryClient::new(&addr, TransportConfig::default(), policy(), breaker_cfg());
            assert_eq!(rc.attach_store(&dir).unwrap(), 0);
            rc.run_idempotent(spec, &input, 9).unwrap()
        };
        assert!(!first.replayed);

        // Second lifetime: a brand-new client with the same store
        // replays the run without touching the wire.
        let mut rc = RetryClient::new(&addr, TransportConfig::default(), policy(), breaker_cfg());
        assert_eq!(rc.attach_store(&dir).unwrap(), 1, "one run re-seeded");
        server.shutdown(); // nobody to talk to: a replay is the only way
        let replay = rc.run_idempotent(spec, &input, 9).unwrap();
        assert!(replay.replayed, "a persisted run must replay from disk");
        assert_eq!(replay.attempts, 0);
        assert_eq!(replay.result_a, first.result_a);
        assert_eq!(replay.result_b, first.result_b);
        assert_eq!(replay.stats, first.stats);
        assert_eq!(
            rc.committed_stats(),
            TransportStats::default(),
            "a disk replay moves no new bits"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn distinct_seeds_are_distinct_keys() {
        let server = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.addr().to_string();
        let mut rc = RetryClient::new(&addr, TransportConfig::default(), policy(), breaker_cfg());
        let spec = ProtoSpec::FingerprintEquality {
            half_bits: 8,
            security: 12,
        };
        let input = BitString::from_u64(0xaaaa, 16);
        assert!(!rc.run_idempotent(spec, &input, 1).unwrap().replayed);
        assert!(!rc.run_idempotent(spec, &input, 2).unwrap().replayed);
        assert!(rc.run_idempotent(spec, &input, 1).unwrap().replayed);
        server.shutdown();
    }

    #[test]
    fn dead_server_exhausts_retries_and_opens_the_breaker() {
        // Bind-then-drop: nobody listens on this port.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let mut rc = RetryClient::new(&addr, TransportConfig::default(), policy(), breaker_cfg());
        assert!(matches!(
            rc.ping(),
            Err(NetError::Io(_) | NetError::Disconnected | NetError::Timeout)
        ));
        assert_eq!(
            rc.breaker().state(),
            BreakerState::Open,
            "three failed attempts must trip a threshold-3 breaker"
        );
        // While open, calls fail fast without wire traffic.
        assert!(matches!(rc.ping(), Err(NetError::CircuitOpen)));
        assert_eq!(rc.discarded_bits(), 0, "pings carry no metered bits");
    }

    #[test]
    fn bounds_degrade_to_cache_when_the_server_dies() {
        let server = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.addr().to_string();
        let mut rc = RetryClient::new(&addr, TransportConfig::default(), policy(), breaker_cfg());
        let (fresh, degraded) = rc.bounds_degraded(5, 3, 20).unwrap();
        assert!(!degraded);
        server.shutdown();

        // The server is gone: retries exhaust, then the cache answers.
        let (cached, degraded) = rc.bounds_degraded(5, 3, 20).unwrap();
        assert!(degraded, "dead server must degrade to the cached report");
        assert_eq!(cached, fresh);
        // An uncached key has nothing to degrade to.
        let err = rc.bounds_degraded(7, 3, 20);
        assert!(matches!(
            err,
            Err(NetError::CircuitOpen | NetError::Io(_) | NetError::Disconnected)
        ));
    }

    #[test]
    fn breaker_recovers_once_the_server_is_back() {
        let addr;
        {
            // Reserve a port, then kill the listener to force failures.
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            addr = l.local_addr().unwrap();
        }
        let mut rc = RetryClient::new(
            &addr.to_string(),
            TransportConfig::default(),
            policy(),
            breaker_cfg(),
        );
        let _ = rc.ping();
        assert_eq!(rc.breaker().state(), BreakerState::Open);

        // Resurrect a server on the same port, wait out the cool-down,
        // and watch the half-open probe close the breaker.
        let server = match serve(&addr.to_string(), ServerConfig::default()) {
            Ok(s) => s,
            // Port already reused by another test: skip the recovery
            // half without failing the suite.
            Err(_) => return,
        };
        std::thread::sleep(Duration::from_millis(50));
        assert!(rc.ping().is_ok(), "half-open probe should succeed");
        assert_eq!(rc.breaker().state(), BreakerState::Closed);
        server.shutdown();
    }
}
