//! The protocol-lab server: a TCP service answering bound, singularity,
//! and protocol-run requests for many concurrent clients, with a choice
//! of two engines behind one [`serve`] front door:
//!
//! * [`ServerEngine::Evented`] (the default) — a readiness-based event
//!   loop ([`crate::evloop`]): one loop thread owns every connection via
//!   nonblocking sockets and `poll(2)`, a small compute pool executes
//!   dispatch, and connections are state rather than threads — which is
//!   what lets one process hold ten thousand concurrent clients.
//! * [`ServerEngine::Threaded`] — the original thread-per-connection
//!   layout: an accept thread pushes connections into a bounded
//!   crossbeam channel drained by a fixed worker pool. Kept as the
//!   conservative fallback and as a behavioral reference for the loop.
//!
//! Both engines share everything above the socket: the dispatch table,
//! a shared [`LruCache`] memoizing Theorem 1.1 bound packages,
//! per-request deadlines, strike-based slow-client eviction, and
//! **graceful shutdown that drains in-flight work** — a stop closes the
//! listener first and answers what was already queued (batch members
//! are never silently dropped) before joining every thread.
//!
//! Interactive runs: a client may switch its connection into a live
//! two-agent protocol run (client = agent A, server = agent B). The
//! server replays the identical `run_agent` state machine as the
//! in-process runners, so the transcript both sides assemble — and
//! therefore the metered bit cost — is byte-for-byte the same as
//! `run_sequential` on one machine. Under the evented engine such a
//! connection is *promoted* off the loop onto a dedicated thread, since
//! the exchange is blocking by nature.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ccmx_comm::bits::Share;
use ccmx_comm::functions::{BooleanFunction, Singularity};
use ccmx_comm::partition::Owner;
use ccmx_comm::protocol::{round_limit, run_agent, run_sequential, Turn};
use ccmx_core::counting;
use ccmx_core::params::Params;
use parking_lot::Mutex;

use crate::api::{BoundsReport, InteractiveSetup, Request, Response};
use crate::batch;
use crate::cache::{CacheStats, LruCache};
use crate::error::NetError;
use crate::evloop::{self, EventHandler, PromotedConn};
use crate::persist;
use crate::transport::{AsChannel, TcpTransport, TransportConfig};
use crate::wire::{WireCodec, KIND_INTERACTIVE, KIND_REQUEST, KIND_RESPONSE};

/// Which connection-handling engine [`serve`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerEngine {
    /// Readiness-based event loop: nonblocking sockets + `poll(2)`,
    /// connections as state. Scales to tens of thousands of clients.
    Evented,
    /// Thread-per-connection with a fixed worker pool: concurrency is
    /// capped at [`ServerConfig::workers`].
    Threaded,
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Connection engine; [`ServerEngine::Evented`] unless overridden.
    pub engine: ServerEngine,
    /// Compute-pool size (evented) or connection-worker count
    /// (threaded).
    pub workers: usize,
    /// Per-connection read timeout; a client silent for longer is
    /// dropped (and its worker freed).
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Bounded retries for transient I/O errors.
    pub max_io_retries: u32,
    /// Initial retry backoff; doubles per attempt.
    pub retry_backoff: Duration,
    /// Capacity of the bounds LRU cache.
    pub bounds_cache_capacity: usize,
    /// Depth of the accepted-connection queue.
    pub queue_depth: usize,
    /// Per-request compute budget. A request whose dispatch overruns it
    /// is answered with an error (the connection survives); batch
    /// members past the deadline are refused without executing.
    /// `None` means unbounded.
    pub request_deadline: Option<Duration>,
    /// Consecutive read-timeout strikes before a slow client is
    /// evicted. `1` reproduces the old drop-on-first-timeout behavior;
    /// higher values give bursty-but-alive clients extra read windows.
    pub eviction_strikes: u32,
    /// Evented engine: requests parsed but not yet answered before the
    /// loop starts shedding load with immediate overload errors.
    pub max_pending_requests: usize,
    /// Evented engine: how long a shutdown waits for in-flight requests
    /// to finish and their responses to flush before giving up.
    pub drain_timeout: Duration,
    /// Data directory for the persistent certified-result store
    /// (`ccmx-store`). `Some(dir)` warm-starts the bounds, cc-search
    /// and singularity caches from disk on boot and persists every
    /// fresh verdict; `None` (the default) serves purely in-memory.
    /// An unopenable store degrades to cold serving, never a refusal
    /// to start.
    pub store_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            engine: ServerEngine::Evented,
            workers: 4,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            max_io_retries: 3,
            retry_backoff: Duration::from_millis(10),
            bounds_cache_capacity: 64,
            queue_depth: 16,
            request_deadline: None,
            eviction_strikes: 1,
            max_pending_requests: 16 * 1024,
            drain_timeout: Duration::from_secs(5),
            store_dir: None,
        }
    }
}

impl ServerConfig {
    fn transport_config(&self) -> TransportConfig {
        TransportConfig {
            read_timeout: Some(self.read_timeout),
            write_timeout: Some(self.write_timeout),
            max_retries: self.max_io_retries,
            retry_backoff: self.retry_backoff,
        }
    }
}

/// Monotonic counters, readable while the server runs.
///
/// Per-`ServerHandle` instance values (what [`ServerHandle::stats`]
/// reports) live in the atomics; every increment is mirrored into the
/// process-wide [`ccmx_obs`] registry (`ccmx_server_*_total`), where the
/// totals survive this server being dropped and aggregate across
/// servers in the process.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    connections_accepted: AtomicU64,
    requests_served: AtomicU64,
    interactive_runs: AtomicU64,
    connections_dropped: AtomicU64,
    connections_evicted: AtomicU64,
    deadlines_exceeded: AtomicU64,
    requests_shed: AtomicU64,
}

impl Counters {
    pub(crate) fn inc_accepted(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
        ccmx_obs::counter!("ccmx_server_connections_total").inc();
    }
    fn inc_served(&self) {
        self.requests_served.fetch_add(1, Ordering::Relaxed);
        ccmx_obs::counter!("ccmx_server_requests_total").inc();
    }
    fn inc_interactive(&self) {
        self.interactive_runs.fetch_add(1, Ordering::Relaxed);
        ccmx_obs::counter!("ccmx_server_interactive_runs_total").inc();
    }
    pub(crate) fn inc_dropped(&self) {
        self.connections_dropped.fetch_add(1, Ordering::Relaxed);
        ccmx_obs::counter!("ccmx_server_connections_dropped_total").inc();
    }
    pub(crate) fn inc_evicted(&self) {
        self.connections_evicted.fetch_add(1, Ordering::Relaxed);
        ccmx_obs::counter!("ccmx_server_evicted_total").inc();
    }
    fn inc_deadline(&self) {
        self.deadlines_exceeded.fetch_add(1, Ordering::Relaxed);
        ccmx_obs::counter!("ccmx_server_deadline_exceeded_total").inc();
    }
    pub(crate) fn inc_shed(&self) {
        self.requests_shed.fetch_add(1, Ordering::Relaxed);
        ccmx_obs::counter!("ccmx_server_shed_total").inc();
    }
}

/// Connections accepted but not yet picked up by a worker.
fn queue_depth_gauge() -> &'static ccmx_obs::Gauge {
    ccmx_obs::gauge!("ccmx_server_queue_depth")
}

/// A point-in-time copy of the server counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections the accept thread handed to the pool.
    pub connections_accepted: u64,
    /// Requests answered (batch members count individually).
    pub requests_served: u64,
    /// Interactive agent-vs-agent runs completed.
    pub interactive_runs: u64,
    /// Connections dropped for timeouts, garbage, or I/O failure.
    pub connections_dropped: u64,
    /// Slow clients evicted after exhausting their read-timeout
    /// strikes (also counted in `connections_dropped`).
    pub connections_evicted: u64,
    /// Requests that overran [`ServerConfig::request_deadline`].
    pub deadlines_exceeded: u64,
    /// Requests answered with an immediate overload error because the
    /// evented engine's pending queue was full.
    pub requests_shed: u64,
}

/// Bounds-cache key: `(n, k, security, linalg backend id)` — the backend
/// component guarantees a server upgrade that swaps the exact-arithmetic
/// engine can never serve an entry computed by the old one.
type BoundsKey = (usize, u32, u32, &'static str);

/// CC-search cache key: `(rows, cols, row-major entries, depth_limit)`.
/// The depth limit is part of the key on purpose — a shallow search's
/// inexact verdict for a matrix must never alias the exact answer a
/// later deep query expects (and vice versa).
type CcKey = (usize, usize, Vec<bool>, u32);

/// Singularity-verdict cache key: `(dim, k, content fingerprint,
/// linalg backend id)`. The fingerprint
/// ([`ccmx_linalg::crt::matrix_fingerprint`]) stands in for the matrix
/// itself, so a warm hit answers without re-decoding entries or running
/// any elimination; the backend component carries the same
/// upgrade-safety guarantee as [`BoundsKey`].
type SingKey = (usize, u32, u64, &'static str);

pub(crate) struct ServerState {
    pub(crate) config: ServerConfig,
    pub(crate) counters: Counters,
    bounds_cache: Mutex<LruCache<BoundsKey, BoundsReport>>,
    cc_cache: Mutex<LruCache<CcKey, Response>>,
    sing_cache: Mutex<LruCache<SingKey, bool>>,
    /// Persistent certified-result tier, when the config names a data
    /// directory. Lock order is always cache lock before store lock
    /// (and never both across a compute) — persistence happens after
    /// the cache lock is released.
    store: Option<Mutex<ccmx_store::Store>>,
}

impl ServerState {
    /// Build the shared state for any engine: caches, counters, and —
    /// when configured — the persistent store, opened (with crash
    /// recovery) and drained into the caches so the server boots warm.
    fn new(config: ServerConfig) -> ServerState {
        let cap = config.bounds_cache_capacity;
        let store = config
            .store_dir
            .as_deref()
            .and_then(|dir| persist::open_store(dir, "server"));
        let state = ServerState {
            config,
            counters: Counters::default(),
            bounds_cache: Mutex::new(LruCache::with_metrics(cap, "bounds")),
            cc_cache: Mutex::new(LruCache::with_metrics(cap, "cc")),
            sing_cache: Mutex::new(LruCache::with_metrics(cap, "sing")),
            store: store.map(Mutex::new),
        };
        state.warm_start();
        state
    }

    /// Re-seed the in-memory caches from every decodable record on
    /// disk. Entries certified by a different linalg backend stay on
    /// disk untouched (they are valid, just not ours to trust);
    /// undecodable records are skipped and counted, never trusted.
    fn warm_start(&self) {
        let Some(store) = &self.store else { return };
        let store = store.lock();
        let active = ccmx_linalg::crt::active_backend().id();

        let mut bounds = 0u64;
        store.for_each(ccmx_store::Keyspace::BOUNDS, |key, value| {
            match (
                persist::decode_bounds_key(key),
                BoundsReport::from_wire_bytes(value),
            ) {
                (Some((n, k, security, backend)), Ok(report)) if backend == active => {
                    self.bounds_cache
                        .lock()
                        .put((n, k, security, active), report);
                    bounds += 1;
                }
                (Some(_), Ok(_)) => {}
                _ => persist::skipped_counter().inc(),
            }
        });
        persist::seeded_counter("bounds").add(bounds);

        let mut cc = 0u64;
        store.for_each(ccmx_store::Keyspace::CC, |key, value| {
            match (
                persist::decode_cc_key(key),
                Response::from_wire_bytes(value),
            ) {
                (Some((rows, cols, bits, depth_limit)), Ok(resp))
                    if matches!(resp, Response::CcSearch { .. }) =>
                {
                    self.cc_cache
                        .lock()
                        .put((rows, cols, bits, depth_limit), resp);
                    cc += 1;
                }
                _ => persist::skipped_counter().inc(),
            }
        });
        persist::seeded_counter("cc").add(cc);

        let mut sing = 0u64;
        store.for_each(ccmx_store::Keyspace::CRT, |key, value| {
            match (persist::decode_sing_key(key), value) {
                (Some((dim, k, fp, backend)), [flag @ (0 | 1)]) if backend == active => {
                    self.sing_cache.lock().put((dim, k, fp, active), *flag == 1);
                    sing += 1;
                }
                (Some(_), [0 | 1]) => {}
                _ => persist::skipped_counter().inc(),
            }
        });
        persist::seeded_counter("sing").add(sing);
    }

    /// Append one certified result to the store, if there is one.
    /// Write failures cost a counter and a stderr line, never an
    /// answer — the store is an accelerator, not a dependency.
    fn persist(&self, keyspace: ccmx_store::Keyspace, key: &[u8], value: &[u8]) {
        let Some(store) = &self.store else { return };
        let mut store = store.lock();
        if let Err(e) = store.put(keyspace, key, value).and_then(|()| store.sync()) {
            ccmx_obs::counter!("ccmx_store_write_errors_total").inc();
            eprintln!("ccmx-store[server]: write failed: {e}");
        }
    }
}

/// Handle to a running server; dropping it (or calling
/// [`ServerHandle::shutdown`]) stops the server gracefully.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    /// Connections promoted off the event loop for interactive runs;
    /// joined at shutdown so no agent thread outlives the handle.
    promoted: Arc<Mutex<Vec<JoinHandle<()>>>>,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        let c = &self.state.counters;
        ServerStats {
            connections_accepted: c.connections_accepted.load(Ordering::Relaxed),
            requests_served: c.requests_served.load(Ordering::Relaxed),
            interactive_runs: c.interactive_runs.load(Ordering::Relaxed),
            connections_dropped: c.connections_dropped.load(Ordering::Relaxed),
            connections_evicted: c.connections_evicted.load(Ordering::Relaxed),
            deadlines_exceeded: c.deadlines_exceeded.load(Ordering::Relaxed),
            requests_shed: c.requests_shed.load(Ordering::Relaxed),
        }
    }

    /// Bounds-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.state.bounds_cache.lock().stats()
    }

    /// Singularity-verdict cache counters.
    pub fn sing_cache_stats(&self) -> CacheStats {
        self.state.sing_cache.lock().stats()
    }

    /// Snapshot of the persistent store, or `None` when the server
    /// runs without one (no [`ServerConfig::store_dir`], or the open
    /// failed and the server degraded to cold serving).
    pub fn store_stat(&self) -> Option<ccmx_store::StoreStat> {
        self.state.store.as_ref().map(|s| s.lock().stat())
    }

    /// Stop accepting, let workers finish in-flight connections, and
    /// join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The threaded accept thread blocks in `accept`; a throwaway
        // self-connection wakes it so it can observe the flag. The
        // event loop notices at its next tick regardless.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let promoted = std::mem::take(&mut *self.promoted.lock());
        for t in promoted {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and start the configured engine.
pub fn serve(addr: &str, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    // Pre-register the robustness series so a metrics scrape of a
    // healthy server shows them at zero instead of omitting them.
    ccmx_obs::counter!("ccmx_server_evicted_total").add(0);
    ccmx_obs::counter!("ccmx_server_deadline_exceeded_total").add(0);
    ccmx_obs::counter!("ccmx_server_shed_total").add(0);
    let engine = config.engine;
    let state = Arc::new(ServerState::new(config));
    let stop = Arc::new(AtomicBool::new(false));
    let promoted: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let threads = match engine {
        ServerEngine::Evented => {
            let handler = Arc::new(LabHandler {
                state: Arc::clone(&state),
                promoted: Arc::clone(&promoted),
            });
            evloop::spawn_engine(listener, Arc::clone(&state), handler, Arc::clone(&stop))?
        }
        ServerEngine::Threaded => spawn_threaded(listener, Arc::clone(&state), Arc::clone(&stop)),
    };

    Ok(ServerHandle {
        addr: local,
        stop,
        threads,
        promoted,
        state,
    })
}

/// Bind `addr` and run the evented engine with a *custom* dispatch —
/// the building block for services that speak the lab's wire protocol
/// but answer requests their own way (the cluster coordinator routes
/// them to shards instead of computing locally). The handler runs on
/// the engine's compute pool; `config` supplies the pool size, drain
/// and backpressure knobs exactly as for [`serve`].
pub fn serve_with_handler(
    addr: &str,
    config: ServerConfig,
    handler: Arc<dyn EventHandler>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let state = Arc::new(ServerState::new(config));
    let stop = Arc::new(AtomicBool::new(false));
    let promoted: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let threads = evloop::spawn_engine(listener, Arc::clone(&state), handler, Arc::clone(&stop))?;
    Ok(ServerHandle {
        addr: local,
        stop,
        threads,
        promoted,
        state,
    })
}

/// The thread-per-connection engine: accept thread + fixed worker pool.
fn spawn_threaded(
    listener: TcpListener,
    state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
) -> Vec<JoinHandle<()>> {
    let queue_depth = state.config.queue_depth.max(1);
    let workers = state.config.workers.max(1);
    let (conn_tx, conn_rx) = crossbeam::channel::bounded::<TcpStream>(queue_depth);

    let mut threads = Vec::with_capacity(workers + 1);
    threads.push({
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                state.counters.inc_accepted();
                queue_depth_gauge().add(1);
                if conn_tx.send(stream).is_err() {
                    queue_depth_gauge().add(-1);
                    break;
                }
            }
            // conn_tx drops here; workers drain and exit.
        })
    });
    for _ in 0..workers {
        let rx = conn_rx.clone();
        let state = Arc::clone(&state);
        threads.push(std::thread::spawn(move || {
            // recv drains queued connections and returns Err once the
            // accept thread drops the sole sender: shutdown.
            while let Ok(stream) = rx.recv() {
                queue_depth_gauge().add(-1);
                serve_connection(&state, stream);
            }
        }));
    }
    threads
}

/// The event loop's bridge into the lab dispatch table.
struct LabHandler {
    state: Arc<ServerState>,
    promoted: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl EventHandler for LabHandler {
    fn handle_request(&self, payload: &[u8], received: std::time::Instant) -> Vec<u8> {
        answer_request(&self.state, payload, received).to_wire_bytes()
    }

    fn interactive(&self, conn: PromotedConn) {
        // The blocking two-agent exchange gets its own thread; the
        // handle is kept so shutdown joins it.
        let state = Arc::clone(&self.state);
        let handle = std::thread::spawn(move || serve_promoted(&state, conn));
        self.promoted.lock().push(handle);
    }
}

/// Continue a connection promoted off the event loop: replay the
/// interactive frame it was promoted for (any bytes already buffered
/// come first via the transport's prefix), then keep serving the same
/// connection with the ordinary blocking loop.
fn serve_promoted(state: &ServerState, conn: PromotedConn) {
    let mut transport = match TcpTransport::from_stream_with_prefix(
        conn.stream,
        state.config.transport_config(),
        conn.leftover,
    ) {
        Ok(t) => t,
        Err(_) => {
            state.counters.inc_dropped();
            return;
        }
    };
    serve_transport(state, &mut transport, Some((KIND_INTERACTIVE, conn.setup)));
}

/// Serve one connection until it closes, exhausts its read-timeout
/// strikes, or errors. Never panics out to the worker loop.
fn serve_connection(state: &ServerState, stream: TcpStream) {
    let mut transport = match TcpTransport::from_stream(stream, state.config.transport_config()) {
        Ok(t) => t,
        Err(_) => {
            state.counters.inc_dropped();
            return;
        }
    };
    serve_transport(state, &mut transport, None);
}

/// The blocking per-connection serve loop, optionally starting from a
/// frame that was already read on the caller's behalf.
fn serve_transport(
    state: &ServerState,
    transport: &mut TcpTransport,
    first: Option<(u8, Vec<u8>)>,
) {
    let mut pending = first;
    let mut strikes = 0u32;
    loop {
        let frame = match pending.take() {
            Some(f) => Ok(f),
            None => transport.recv_frame(),
        };
        match frame {
            Ok((KIND_REQUEST, payload)) => {
                strikes = 0;
                let response = answer_request(state, &payload, std::time::Instant::now());
                if transport
                    .send_frame(KIND_RESPONSE, &response.to_wire_bytes())
                    .is_err()
                {
                    state.counters.inc_dropped();
                    return;
                }
            }
            Ok((KIND_INTERACTIVE, payload)) => {
                strikes = 0;
                let response = match InteractiveSetup::from_wire_bytes(&payload) {
                    Ok(setup) => match interactive_run(state, transport, &setup) {
                        Ok(resp) => resp,
                        Err(_) => {
                            // The protocol exchange itself broke; the
                            // connection is out of sync — drop it.
                            state.counters.inc_dropped();
                            return;
                        }
                    },
                    Err(e) => Response::Error(format!("bad interactive setup: {e}")),
                };
                if transport
                    .send_frame(KIND_RESPONSE, &response.to_wire_bytes())
                    .is_err()
                {
                    state.counters.inc_dropped();
                    return;
                }
            }
            Ok((kind, _)) => {
                let resp = Response::Error(format!("unexpected frame kind {kind}"));
                let _ = transport.send_frame(KIND_RESPONSE, &resp.to_wire_bytes());
                state.counters.inc_dropped();
                return;
            }
            Err(NetError::Disconnected) => return, // clean close
            Err(NetError::Timeout) => {
                // A slow client earns a strike per silent read window;
                // it is evicted — freeing the worker — only once the
                // configured strikes are exhausted.
                strikes += 1;
                if strikes >= state.config.eviction_strikes.max(1) {
                    state.counters.inc_evicted();
                    state.counters.inc_dropped();
                    return;
                }
            }
            Err(_) => {
                // Garbage or I/O failure: drop, freeing the worker for
                // the next connection.
                state.counters.inc_dropped();
                return;
            }
        }
    }
}

/// Decode and dispatch one request payload, with metering, the panic
/// shield, and post-hoc deadline enforcement. Shared by both engines;
/// `received` anchors the deadline clock at frame arrival.
fn answer_request(state: &ServerState, payload: &[u8], received: std::time::Instant) -> Response {
    ccmx_obs::histogram!("ccmx_server_request_bytes", &ccmx_obs::buckets::SIZE_BYTES)
        .record(payload.len() as u64);
    let deadline = state.config.request_deadline.map(|d| received + d);
    let mut response = {
        let _sp = ccmx_obs::span("server.request");
        match Request::from_wire_bytes(payload) {
            Ok(req) => dispatch_guarded(state, &req, deadline),
            Err(e) => Response::Error(format!("bad request: {e}")),
        }
    };
    // Post-hoc enforcement for the top-level request: a dispatch cannot
    // be preempted mid-computation, but an overrun answer is replaced
    // by an error so the client never mistakes a blown budget for a
    // timely result. Batches are exempt — their members were enforced
    // individually and the partial answers are kept.
    if let Some(d) = deadline {
        if std::time::Instant::now() > d
            && !matches!(response, Response::Error(_) | Response::Batch(_))
        {
            state.counters.inc_deadline();
            response = Response::Error(format!(
                "request deadline of {:?} exceeded",
                state.config.request_deadline.unwrap_or_default()
            ));
        }
    }
    ccmx_obs::histogram!(
        "ccmx_server_request_latency_ns",
        &ccmx_obs::buckets::LATENCY_NS
    )
    .record(received.elapsed().as_nanos() as u64);
    response
}

/// Dispatch with a panic shield: a request that trips an internal
/// assertion produces `Response::Error`, not a dead worker.
fn dispatch_guarded(
    state: &ServerState,
    req: &Request,
    deadline: Option<std::time::Instant>,
) -> Response {
    catch_unwind(AssertUnwindSafe(|| dispatch(state, req, deadline)))
        .unwrap_or_else(|_| Response::Error("internal error while serving the request".into()))
}

/// Refuse work whose budget is already spent: checked between batch
/// members so one slow item cannot drag every later item past the
/// deadline "for free".
fn past_deadline(state: &ServerState, deadline: Option<std::time::Instant>) -> Option<Response> {
    match deadline {
        Some(d) if std::time::Instant::now() > d => {
            state.counters.inc_deadline();
            Some(Response::Error(format!(
                "request deadline of {:?} exceeded",
                state.config.request_deadline.unwrap_or_default()
            )))
        }
        _ => None,
    }
}

fn dispatch(state: &ServerState, req: &Request, deadline: Option<std::time::Instant>) -> Response {
    state.counters.inc_served();
    match req {
        Request::Ping => Response::Pong,
        Request::Bounds { n, k, security } => bounds_response(state, *n, *k, *security),
        Request::Run { spec, input, seed } => {
            let setup = spec.build();
            if input.len() != setup.input_bits {
                return Response::Error(format!(
                    "input is {} bits, {} expects {}",
                    input.len(),
                    spec.name(),
                    setup.input_bits
                ));
            }
            Response::Run(run_sequential(
                setup.proto.as_ref(),
                &setup.partition,
                input,
                *seed,
            ))
        }
        Request::Singularity { dim, k, input } => {
            let f = Singularity::new(*dim, *k);
            if input.len() != f.num_bits() {
                return Response::Error(format!(
                    "encoded matrix is {} bits, dim={dim} k={k} expects {}",
                    input.len(),
                    f.num_bits()
                ));
            }
            // Decide via the certified CRT rank path (same verdict as
            // `f.eval`'s Bareiss elimination — a square matrix is
            // singular iff its rank is deficient) so server traffic
            // exercises, and is counted by, the exact-linalg fast path.
            // Verdicts are memoized by content fingerprint — a warm
            // (possibly disk-seeded) hit answers with zero elimination
            // work, observable as the CRT certification counters
            // standing still.
            let m = f.enc.decode(input);
            let backend = ccmx_linalg::crt::active_backend().id();
            let fp = ccmx_linalg::crt::matrix_fingerprint(&m);
            let mut fresh = None;
            let singular =
                state
                    .sing_cache
                    .lock()
                    .get_or_insert_with((*dim, *k, fp, backend), || {
                        let s = ccmx_linalg::crt::rank_int(&m) < *dim;
                        fresh = Some(s);
                        s
                    });
            if let Some(s) = fresh {
                state.persist(
                    ccmx_store::Keyspace::CRT,
                    &persist::sing_key(*dim, *k, fp, backend),
                    &[u8::from(s)],
                );
            }
            Response::Singularity { singular }
        }
        Request::Batch(reqs) => batch_response(state, reqs, deadline),
        Request::Metrics => Response::Metrics(ccmx_obs::registry().render()),
        Request::CcSearch {
            rows,
            cols,
            bits,
            depth_limit,
        } => cc_search_response(state, *rows, *cols, bits, *depth_limit),
    }
}

fn cc_search_response(
    state: &ServerState,
    rows: usize,
    cols: usize,
    bits: &ccmx_comm::BitString,
    depth_limit: u32,
) -> Response {
    let max = ccmx_search::MAX_SEARCH_DIM;
    if rows == 0 || cols == 0 || rows > max || cols > max {
        return Response::Error(format!(
            "cc-search needs dims in 1..={max}, got {rows}x{cols}"
        ));
    }
    if bits.len() != rows * cols {
        return Response::Error(format!(
            "truth matrix is {} bits, {rows}x{cols} expects {}",
            bits.len(),
            rows * cols
        ));
    }
    let key = (rows, cols, bits.as_slice().to_vec(), depth_limit);
    let mut fresh = None;
    let response = state.cc_cache.lock().get_or_insert_with(key, || {
        let t = ccmx_comm::truth::TruthMatrix::from_fn(rows, cols, |x, y| bits.get(x * cols + y));
        let cfg = ccmx_search::SearchConfig {
            depth_limit,
            ..ccmx_search::SearchConfig::default()
        };
        let resp = match ccmx_search::solve(&t, &cfg) {
            Ok(r) => Response::CcSearch {
                cc: r.cc,
                exact: r.exact,
                nodes: r.stats.nodes,
                certificate: r.certificate.map(|c| c.to_bytes()).unwrap_or_default(),
            },
            Err(e) => Response::Error(format!("cc-search failed: {e}")),
        };
        fresh = Some(resp.clone());
        resp
    });
    // Only search *answers* are certified results worth keeping; error
    // responses stay in RAM (they are still memoized so a hostile
    // client cannot re-trigger the failing search for free).
    if let Some(resp) = &fresh {
        if matches!(resp, Response::CcSearch { .. }) {
            state.persist(
                ccmx_store::Keyspace::CC,
                &persist::cc_key(rows, cols, bits.as_slice(), depth_limit),
                &resp.to_wire_bytes(),
            );
        }
    }
    response
}

fn bounds_response(state: &ServerState, n: usize, k: u32, security: u32) -> Response {
    if n < 5 || n.is_multiple_of(2) || !(2..=63).contains(&k) {
        return Response::Error(format!(
            "bounds need odd n >= 5 and k in 2..=63, got n={n} k={k}"
        ));
    }
    let backend = ccmx_linalg::crt::active_backend().id();
    let mut fresh = false;
    let report = state
        .bounds_cache
        .lock()
        .get_or_insert_with((n, k, security, backend), || {
            fresh = true;
            let p = Params::new(n, k);
            BoundsReport {
                n,
                k,
                security,
                lower_bound_bits: counting::theorem_bound(p).lower_bound_bits,
                deterministic_upper_bits: counting::deterministic_upper_bound_bits(p),
                randomized_upper_bits: counting::probabilistic_upper_bound_bits(p, security),
            }
        });
    if fresh {
        state.persist(
            ccmx_store::Keyspace::BOUNDS,
            &persist::bounds_key(n, k, security, backend),
            &report.to_wire_bytes(),
        );
    }
    Response::Bounds(report)
}

/// Execute a batch: `Run` requests grouped by spec so each distinct
/// protocol setup is constructed once, everything else served in place.
/// Responses come back in request order.
fn batch_response(
    state: &ServerState,
    reqs: &[Request],
    deadline: Option<std::time::Instant>,
) -> Response {
    let plan = batch::plan(reqs);
    let mut responses: Vec<Option<Response>> = vec![None; reqs.len()];
    // Distinct-spec groups fan out over the shared ccmx-linalg worker
    // pool: each pool task builds its own protocol setup, so only the
    // (Sync) server state crosses threads. Singles and the final merge
    // stay on the connection thread. Floor of two lanes: batches arrive
    // over the wire, so overlapping group setup with execution pays even
    // when `default_threads()` reports one core, and the persistent pool
    // makes the extra lane a parked worker rather than a spawn.
    let threads = ccmx_linalg::parallel::default_threads().max(2);
    let group_outs: Vec<Vec<(usize, Response)>> =
        ccmx_linalg::parallel::par_map(plan.groups.len(), threads, |g| {
            let group = &plan.groups[g];
            let setup = group.spec.build();
            group
                .indices
                .iter()
                .map(|&i| {
                    let Request::Run { input, seed, .. } = &reqs[i] else {
                        unreachable!()
                    };
                    let resp = if let Some(refused) = past_deadline(state, deadline) {
                        refused
                    } else if input.len() != setup.input_bits {
                        Response::Error(format!(
                            "input is {} bits, {} expects {}",
                            input.len(),
                            group.spec.name(),
                            setup.input_bits
                        ))
                    } else {
                        state.counters.inc_served();
                        Response::Run(run_sequential(
                            setup.proto.as_ref(),
                            &setup.partition,
                            input,
                            *seed,
                        ))
                    };
                    (i, resp)
                })
                .collect()
        });
    for (i, r) in group_outs.into_iter().flatten() {
        responses[i] = Some(r);
    }
    for &i in &plan.singles {
        responses[i] = Some(match &reqs[i] {
            Request::Batch(_) => Response::Error("nested batches are not allowed".into()),
            other => match past_deadline(state, deadline) {
                Some(refused) => refused,
                None => dispatch_guarded(state, other, deadline),
            },
        });
    }
    Response::Batch(
        responses
            .into_iter()
            .map(|r| r.expect("batch plan covered every index"))
            .collect(),
    )
}

/// Play agent B of an interactive run on this connection. `Err` means
/// the wire itself failed mid-run (connection must drop); a bad setup
/// is reported as a normal `Response::Error`.
fn interactive_run(
    state: &ServerState,
    transport: &mut TcpTransport,
    setup: &InteractiveSetup,
) -> Result<Response, NetError> {
    let lab = setup.spec.build();
    let expected_positions = lab.partition.positions_of(Owner::B);
    if setup.b_positions != expected_positions {
        return Ok(Response::Error(format!(
            "share positions do not match {}'s canonical partition",
            setup.spec.name()
        )));
    }
    if setup.b_values.len() != expected_positions.len() {
        return Ok(Response::Error(format!(
            "share has {} values for {} positions",
            setup.b_values.len(),
            expected_positions.len()
        )));
    }
    let share = Share::new(
        setup.b_positions.clone(),
        setup.b_values.as_slice().to_vec(),
    );
    let limit = round_limit(lab.partition.len());

    let result = {
        let mut chan = AsChannel(&mut *transport);
        let run = catch_unwind(AssertUnwindSafe(|| {
            run_agent(
                lab.proto.as_ref(),
                &lab.partition,
                &share,
                Turn::B,
                setup.seed,
                limit,
                &mut chan,
            )
        }));
        match run {
            Ok(Ok(result)) => result,
            Ok(Err(e)) => return Err(NetError::Protocol(e.to_string())),
            Err(_) => {
                return Ok(Response::Error(
                    "protocol run failed on the server (round limit or internal assertion)".into(),
                ))
            }
        }
    };
    state.counters.inc_interactive();
    Ok(Response::Run(result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ProtoSpec;
    use ccmx_comm::BitString;

    fn small_server() -> ServerHandle {
        serve(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                read_timeout: Duration::from_millis(200),
                ..ServerConfig::default()
            },
        )
        .expect("bind test server")
    }

    fn connect(h: &ServerHandle) -> TcpTransport {
        TcpTransport::connect(h.addr(), TransportConfig::default()).expect("connect to test server")
    }

    fn roundtrip(t: &mut TcpTransport, req: &Request) -> Response {
        t.send_frame(KIND_REQUEST, &req.to_wire_bytes()).unwrap();
        let (kind, payload) = t.recv_frame().unwrap();
        assert_eq!(kind, KIND_RESPONSE);
        Response::from_wire_bytes(&payload).unwrap()
    }

    #[test]
    fn ping_pong() {
        let server = small_server();
        let mut t = connect(&server);
        assert_eq!(roundtrip(&mut t, &Request::Ping), Response::Pong);
        server.shutdown();
    }

    #[test]
    fn bounds_are_cached() {
        let server = small_server();
        let mut t = connect(&server);
        let req = Request::Bounds {
            n: 5,
            k: 3,
            security: 20,
        };
        let first = roundtrip(&mut t, &req);
        let second = roundtrip(&mut t, &req);
        assert_eq!(first, second);
        assert!(matches!(
            first,
            Response::Bounds(b) if b.lower_bound_bits >= 0.0 && b.deterministic_upper_bits > 0.0
        ));
        let cache = server.cache_stats();
        assert_eq!(cache.misses, 1);
        assert_eq!(cache.hits, 1);
        server.shutdown();
    }

    #[test]
    fn metrics_request_serves_live_exposition_text() {
        let server = small_server();
        let mut t = connect(&server);
        assert_eq!(roundtrip(&mut t, &Request::Ping), Response::Pong);
        // Exercise the CRT path so its counter is live in the scrape.
        let f = ccmx_comm::functions::Singularity::new(2, 2);
        let m = ccmx_linalg::Matrix::from_fn(2, 2, |i, j| {
            ccmx_bigint::Integer::from(if i == j { 1i64 } else { 0 })
        });
        let resp = roundtrip(
            &mut t,
            &Request::Singularity {
                dim: 2,
                k: 2,
                input: f.enc.encode(&m),
            },
        );
        assert_eq!(resp, Response::Singularity { singular: false });
        let Response::Metrics(text) = roundtrip(&mut t, &Request::Metrics) else {
            panic!("expected a metrics response")
        };
        for series in [
            "ccmx_server_requests_total",
            "ccmx_server_connections_total",
            "ccmx_server_request_latency_ns_bucket",
            "ccmx_server_request_latency_ns_count",
            "ccmx_server_request_bytes_sum",
            "ccmx_crt_certified_total",
        ] {
            assert!(
                text.contains(series),
                "metrics text lacks {series}:\n{text}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn cc_search_answers_and_certifies() {
        let server = small_server();
        let mut t = connect(&server);
        // Equality on 2 bits: the 4x4 identity, CC = 3.
        let bits = BitString::from_bits((0..16).map(|i| i / 4 == i % 4).collect());
        let req = Request::CcSearch {
            rows: 4,
            cols: 4,
            bits: bits.clone(),
            depth_limit: 32,
        };
        let Response::CcSearch {
            cc,
            exact,
            certificate,
            ..
        } = roundtrip(&mut t, &req)
        else {
            panic!("expected a cc-search response")
        };
        assert_eq!((cc, exact), (3, true));
        let cert = ccmx_search::CcCertificate::from_bytes(&certificate).unwrap();
        cert.verify().unwrap();
        assert_eq!(cert.cc, 3);
        // Same query again: a cache hit with the identical verdict.
        let again = roundtrip(&mut t, &req);
        assert!(matches!(
            again,
            Response::CcSearch {
                cc: 3,
                exact: true,
                ..
            }
        ));
        // Malformed dims are an error, not a crash.
        let bad = roundtrip(
            &mut t,
            &Request::CcSearch {
                rows: 2,
                cols: 3,
                bits: BitString::from_u64(0, 4),
                depth_limit: 32,
            },
        );
        assert!(matches!(bad, Response::Error(_)));
        server.shutdown();
    }

    #[test]
    fn cc_cache_key_includes_depth_limit() {
        // Regression: a depth-0 query certifies only "CC >= 1" for any
        // non-monochromatic matrix. If the cache key omitted the depth
        // limit, that shallow verdict would be replayed for the deep
        // query below and report cc=1, exact=false for a CC-3 matrix.
        let server = small_server();
        let mut t = connect(&server);
        let bits = BitString::from_bits((0..16).map(|i| i / 4 == i % 4).collect());
        let shallow = roundtrip(
            &mut t,
            &Request::CcSearch {
                rows: 4,
                cols: 4,
                bits: bits.clone(),
                depth_limit: 0,
            },
        );
        let Response::CcSearch {
            cc,
            exact,
            certificate,
            ..
        } = shallow
        else {
            panic!("expected a cc-search response")
        };
        assert_eq!((cc, exact), (1, false));
        assert!(certificate.is_empty());
        let deep = roundtrip(
            &mut t,
            &Request::CcSearch {
                rows: 4,
                cols: 4,
                bits,
                depth_limit: 32,
            },
        );
        assert!(
            matches!(
                deep,
                Response::CcSearch {
                    cc: 3,
                    exact: true,
                    ..
                }
            ),
            "deep query aliased the shallow cache entry: {deep:?}"
        );
        server.shutdown();
    }

    #[test]
    fn invalid_bounds_params_are_an_error_not_a_crash() {
        let server = small_server();
        let mut t = connect(&server);
        let resp = roundtrip(
            &mut t,
            &Request::Bounds {
                n: 4,
                k: 3,
                security: 20,
            },
        );
        assert!(matches!(resp, Response::Error(_)));
        // Worker survived; the same connection still serves.
        assert_eq!(roundtrip(&mut t, &Request::Ping), Response::Pong);
        server.shutdown();
    }

    #[test]
    fn run_request_matches_local_sequential() {
        let server = small_server();
        let mut t = connect(&server);
        let spec = ProtoSpec::SendAllSingularity { dim: 2, k: 2 };
        let input = BitString::from_u64(0b1011_0010, 8);
        let resp = roundtrip(
            &mut t,
            &Request::Run {
                spec,
                input: input.clone(),
                seed: 11,
            },
        );
        let setup = spec.build();
        let expected = run_sequential(setup.proto.as_ref(), &setup.partition, &input, 11);
        assert_eq!(resp, Response::Run(expected));
        server.shutdown();
    }

    #[test]
    fn batch_amortizes_and_preserves_order() {
        let server = small_server();
        let mut t = connect(&server);
        let spec = ProtoSpec::SendAllSingularity { dim: 2, k: 2 };
        let mk = |v: u64| Request::Run {
            spec,
            input: BitString::from_u64(v, 8),
            seed: v,
        };
        let batch = Request::Batch(vec![mk(1), Request::Ping, mk(2), mk(3)]);
        let Response::Batch(resps) = roundtrip(&mut t, &batch) else {
            panic!("expected a batch response")
        };
        assert_eq!(resps.len(), 4);
        assert_eq!(resps[1], Response::Pong);
        for (i, v) in [(0usize, 1u64), (2, 2), (3, 3)] {
            let setup = spec.build();
            let expected = run_sequential(
                setup.proto.as_ref(),
                &setup.partition,
                &BitString::from_u64(v, 8),
                v,
            );
            assert_eq!(resps[i], Response::Run(expected), "batch slot {i}");
        }
        server.shutdown();
    }

    #[test]
    fn multi_group_batch_runs_on_shared_pool() {
        let server = small_server();
        let mut t = connect(&server);
        let spec_a = ProtoSpec::SendAllSingularity { dim: 2, k: 2 };
        let spec_b = ProtoSpec::SendAllSingularity { dim: 2, k: 1 };
        let (_, batches_before) = ccmx_linalg::pool::pool_stats();
        let batch = Request::Batch(vec![
            Request::Run {
                spec: spec_a,
                input: BitString::from_u64(0b1010_0110, 8),
                seed: 1,
            },
            Request::Run {
                spec: spec_b,
                input: BitString::from_u64(0b1001, 4),
                seed: 2,
            },
            Request::Run {
                spec: spec_a,
                input: BitString::from_u64(0b0011_0101, 8),
                seed: 3,
            },
        ]);
        let Response::Batch(resps) = roundtrip(&mut t, &batch) else {
            panic!("expected a batch response")
        };
        let (_, batches_after) = ccmx_linalg::pool::pool_stats();
        assert!(
            batches_after > batches_before,
            "group fan-out should submit a pool batch"
        );
        for (i, (spec, v, seed)) in [
            (spec_a, 0b1010_0110u64, 1u64),
            (spec_b, 0b1001, 2),
            (spec_a, 0b0011_0101, 3),
        ]
        .into_iter()
        .enumerate()
        {
            let setup = spec.build();
            let expected = run_sequential(
                setup.proto.as_ref(),
                &setup.partition,
                &BitString::from_u64(v, setup.input_bits),
                seed,
            );
            assert_eq!(resps[i], Response::Run(expected), "batch slot {i}");
        }
        server.shutdown();
    }

    #[test]
    fn nested_batch_rejected() {
        let server = small_server();
        let mut t = connect(&server);
        let nested = Request::Batch(vec![Request::Batch(vec![Request::Ping])]);
        let Response::Batch(resps) = roundtrip(&mut t, &nested) else {
            panic!("expected a batch response")
        };
        assert!(matches!(&resps[0], Response::Error(msg) if msg.contains("nested")));
        server.shutdown();
    }

    #[test]
    fn stalling_client_is_dropped_without_wedging_the_pool() {
        let server = small_server();
        // Occupy a worker with a silent connection…
        let stalled = TcpStream::connect(server.addr()).unwrap();
        // …wait for the server's read timeout to reap it…
        std::thread::sleep(Duration::from_millis(400));
        // …then verify a real client is still served promptly.
        let mut t = connect(&server);
        assert_eq!(roundtrip(&mut t, &Request::Ping), Response::Pong);
        assert!(server.stats().connections_dropped >= 1);
        drop(stalled);
        server.shutdown();
    }

    #[test]
    fn zero_deadline_rejects_requests_but_keeps_the_connection() {
        let server = serve(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                request_deadline: Some(Duration::ZERO),
                ..ServerConfig::default()
            },
        )
        .expect("bind test server");
        let mut t = connect(&server);
        let resp = roundtrip(&mut t, &Request::Ping);
        assert!(
            matches!(&resp, Response::Error(msg) if msg.contains("deadline")),
            "zero budget must refuse even a ping, got {resp:?}"
        );
        // The connection survives a blown deadline.
        let again = roundtrip(&mut t, &Request::Ping);
        assert!(matches!(again, Response::Error(_)));
        assert!(server.stats().deadlines_exceeded >= 2);
        server.shutdown();
    }

    #[test]
    fn zero_deadline_refuses_batch_members_individually() {
        let server = serve(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                request_deadline: Some(Duration::ZERO),
                ..ServerConfig::default()
            },
        )
        .expect("bind test server");
        let mut t = connect(&server);
        let spec = ProtoSpec::SendAllSingularity { dim: 2, k: 2 };
        let batch = Request::Batch(vec![
            Request::Ping,
            Request::Run {
                spec,
                input: BitString::from_u64(0b1011_0010, 8),
                seed: 1,
            },
        ]);
        let Response::Batch(resps) = roundtrip(&mut t, &batch) else {
            panic!("expected a batch response")
        };
        for (i, r) in resps.iter().enumerate() {
            assert!(
                matches!(r, Response::Error(msg) if msg.contains("deadline")),
                "batch slot {i} should be refused, got {r:?}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn eviction_strikes_give_slow_clients_extra_windows() {
        let server = serve(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                read_timeout: Duration::from_millis(80),
                eviction_strikes: 3,
                ..ServerConfig::default()
            },
        )
        .expect("bind test server");
        let mut t = connect(&server);
        // One silent window (one strike) must not cost the connection…
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(roundtrip(&mut t, &Request::Ping), Response::Pong);
        assert_eq!(server.stats().connections_evicted, 0);
        // …but exhausting all three strikes must.
        std::thread::sleep(Duration::from_millis(400));
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while server.stats().connections_evicted == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let stats = server.stats();
        assert_eq!(stats.connections_evicted, 1, "slow client not evicted");
        assert!(stats.connections_dropped >= 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_everything() {
        let server = small_server();
        let addr = server.addr();
        server.shutdown();
        // After shutdown the listener is gone: connecting either fails
        // outright or the connection is never served.
        let still_up = TcpTransport::connect(addr, TransportConfig::default())
            .and_then(|mut t| {
                t.send_frame(KIND_REQUEST, &Request::Ping.to_wire_bytes())?;
                t.recv_frame()
            })
            .is_ok();
        assert!(!still_up, "server still answering after shutdown");
    }

    #[test]
    fn threaded_engine_still_serves() {
        let server = serve(
            "127.0.0.1:0",
            ServerConfig {
                engine: ServerEngine::Threaded,
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind threaded test server");
        let mut t = connect(&server);
        assert_eq!(roundtrip(&mut t, &Request::Ping), Response::Pong);
        let resp = roundtrip(
            &mut t,
            &Request::Bounds {
                n: 5,
                k: 3,
                security: 20,
            },
        );
        assert!(matches!(resp, Response::Bounds(_)));
        server.shutdown();
    }

    #[test]
    fn evented_pipelining_preserves_response_order() {
        let server = small_server();
        let mut t = connect(&server);
        // Fire a burst of requests without reading a single response;
        // the per-connection FIFO must answer them in request order
        // even though dispatch happens off-loop.
        let ns = [5u16, 7, 9, 11, 5, 7];
        for &n in &ns {
            t.send_frame(
                KIND_REQUEST,
                &Request::Bounds {
                    n: n as usize,
                    k: 3,
                    security: 20,
                }
                .to_wire_bytes(),
            )
            .unwrap();
        }
        for &n in &ns {
            let (kind, payload) = t.recv_frame().unwrap();
            assert_eq!(kind, KIND_RESPONSE);
            let Response::Bounds(b) = Response::from_wire_bytes(&payload).unwrap() else {
                panic!("expected a bounds response for n={n}")
            };
            assert_eq!(b.n, n as usize, "responses out of request order");
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_inflight_batch_group() {
        // Regression: a stop during batch fan-out used to close the
        // listener and drop queued batch members silently. The evented
        // engine's drain phase must finish the batch and flush the full
        // response before the loop exits.
        let server = serve(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind test server");
        let mut t = connect(&server);
        let spec = ProtoSpec::SendAllSingularity { dim: 2, k: 2 };
        let members: Vec<Request> = (0..24)
            .map(|v| Request::Run {
                spec,
                input: BitString::from_u64(v, 8),
                seed: v,
            })
            .collect();
        let n_members = members.len();
        t.send_frame(KIND_REQUEST, &Request::Batch(members).to_wire_bytes())
            .unwrap();
        // Stop the server while the batch is (very likely) mid-flight.
        // `shutdown` blocks until the drain completes, so run it from a
        // second thread while this one waits for the response.
        let stopper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            server.shutdown();
        });
        let (kind, payload) = t
            .recv_frame()
            .expect("batch response must survive shutdown");
        assert_eq!(kind, KIND_RESPONSE);
        let Response::Batch(resps) = Response::from_wire_bytes(&payload).unwrap() else {
            panic!("expected a batch response")
        };
        assert_eq!(resps.len(), n_members, "batch members dropped by shutdown");
        for (i, r) in resps.iter().enumerate() {
            assert!(
                matches!(r, Response::Run(_)),
                "batch slot {i} degraded to {r:?} during drain"
            );
        }
        stopper.join().unwrap();
    }

    #[test]
    fn overload_sheds_new_requests_with_an_error() {
        let server = serve(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                max_pending_requests: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind test server");
        let mut t = connect(&server);
        // One slow batch occupies the single queue slot…
        let spec = ProtoSpec::SendAllSingularity { dim: 2, k: 2 };
        let members: Vec<Request> = (0..32)
            .map(|v| Request::Run {
                spec,
                input: BitString::from_u64(v, 8),
                seed: v,
            })
            .collect();
        t.send_frame(KIND_REQUEST, &Request::Batch(members).to_wire_bytes())
            .unwrap();
        // …so a request arriving right behind it must be shed. Shed
        // errors jump the response queue (they are answered at parse
        // time), so read both and sort by shape.
        t.send_frame(KIND_REQUEST, &Request::Ping.to_wire_bytes())
            .unwrap();
        let mut saw_batch = false;
        let mut saw_shed = false;
        for _ in 0..2 {
            let (_, payload) = t.recv_frame().unwrap();
            match Response::from_wire_bytes(&payload).unwrap() {
                Response::Batch(resps) => {
                    assert_eq!(resps.len(), 32);
                    saw_batch = true;
                }
                Response::Error(msg) => {
                    assert!(msg.contains("overloaded"), "unexpected error: {msg}");
                    saw_shed = true;
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert!(saw_batch, "the in-flight batch must still complete");
        assert!(saw_shed, "the second request should have been shed");
        assert!(server.stats().requests_shed >= 1);
        server.shutdown();
    }

    #[test]
    fn warm_restart_answers_from_disk_without_recompute() {
        let dir = std::env::temp_dir().join(format!("ccmx-server-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServerConfig {
            workers: 2,
            store_dir: Some(dir.clone()),
            ..ServerConfig::default()
        };
        let bounds_req = Request::Bounds {
            n: 7,
            k: 3,
            security: 24,
        };
        let f = ccmx_comm::functions::Singularity::new(2, 2);
        let m = ccmx_linalg::Matrix::from_fn(2, 2, |i, j| {
            ccmx_bigint::Integer::from(if i == j { 3i64 } else { 1 })
        });
        let sing_req = Request::Singularity {
            dim: 2,
            k: 2,
            input: f.enc.encode(&m),
        };
        let cc_bits = BitString::from_bits((0..16).map(|i| i / 4 == i % 4).collect());
        let cc_req = Request::CcSearch {
            rows: 4,
            cols: 4,
            bits: cc_bits,
            depth_limit: 32,
        };

        // Cold lifetime: compute and persist three kinds of verdict.
        let (cold_bounds, cold_sing, cold_cc) = {
            let server = serve("127.0.0.1:0", config.clone()).unwrap();
            let mut t = connect(&server);
            let out = (
                roundtrip(&mut t, &bounds_req),
                roundtrip(&mut t, &sing_req),
                roundtrip(&mut t, &cc_req),
            );
            let stat = server.store_stat().expect("server must have a store");
            assert_eq!(stat.live_records, 3, "three verdicts persisted");
            server.shutdown();
            out
        };
        assert!(matches!(
            cold_sing,
            Response::Singularity { singular: false }
        ));

        // Warm lifetime: a fresh server answers all three from the
        // disk-seeded caches — every request is a cache *hit*, so none
        // of the compute closures (theorem counting, elimination,
        // branch-and-bound) ran again.
        let server = serve("127.0.0.1:0", config).unwrap();
        let mut t = connect(&server);
        assert_eq!(roundtrip(&mut t, &bounds_req), cold_bounds);
        assert_eq!(roundtrip(&mut t, &sing_req), cold_sing);
        assert_eq!(roundtrip(&mut t, &cc_req), cold_cc);
        let bounds = server.cache_stats();
        assert_eq!((bounds.hits, bounds.misses), (1, 0), "bounds warm hit");
        let sing = server.sing_cache_stats();
        assert_eq!((sing.hits, sing.misses), (1, 0), "singularity warm hit");
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
