//! Seeded chaos soaks: prove that the metered bit count of a protocol
//! run is *invariant under transport faults*.
//!
//! A soak runs the same `(spec, input, seed)` triples twice — once
//! through `run_sequential` (the in-process reference) and once over a
//! [`FaultTransport`] pair injecting a deterministic fault schedule —
//! and aggregates the divergence. The acceptance bar is **zero**: the
//! faulted wire must carry exactly `Transcript::total_bits()` metered
//! protocol bits and produce bit-identical [`RunResult`]s, no matter
//! how many envelopes were flipped, cut, dropped, duplicated or
//! stalled underneath. Raw framed bytes are *expected* to inflate
//! (that is the recovery traffic); the report keeps both numbers so
//! the distinction stays visible.
//!
//! [`server_soak`] applies the same verdict to the live serving stack:
//! concurrent clients drive interactive runs against a real server and
//! every run's wire stats are checked against its own transcript.

use std::time::Duration;

use ccmx_comm::protocol::{run_sequential, RunResult, Turn};
use ccmx_comm::BitString;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::api::ProtoSpec;
use crate::client::Client;
use crate::error::NetError;
use crate::fault::{fault_mem_pair, FaultConfig, FaultStats, FaultTransport, MemFrameLink};
use crate::runner::run_over_result;
use crate::transport::{Transport, TransportConfig, TransportStats};

/// How hard a soak leans on the transport.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosLevel {
    /// Envelope protocol active, zero faults — the control group.
    Quiet,
    /// ~20% of transmissions faulted.
    Moderate,
    /// ~50% of transmissions faulted.
    Aggressive,
}

impl ChaosLevel {
    /// The fault schedule this level prescribes for one endpoint.
    pub fn config(self, seed: u64) -> FaultConfig {
        match self {
            ChaosLevel::Quiet => FaultConfig::quiet(seed),
            ChaosLevel::Moderate => FaultConfig::moderate(seed),
            ChaosLevel::Aggressive => FaultConfig::aggressive(seed),
        }
    }

    /// Parse a CLI-style level name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "quiet" => Some(ChaosLevel::Quiet),
            "moderate" => Some(ChaosLevel::Moderate),
            "aggressive" => Some(ChaosLevel::Aggressive),
            _ => None,
        }
    }
}

/// Aggregated verdict of a chaos soak. The soak *passes* iff metered
/// bits diverged by zero, every faulted run matched its clean
/// reference, and no trial errored out.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Protocol spec label.
    pub spec: String,
    /// Trials executed.
    pub trials: usize,
    /// Metered bits across all clean reference runs.
    pub clean_bits: u64,
    /// Metered bits across all faulted runs.
    pub faulted_bits: u64,
    /// Raw framed bytes the faulted runs put on the wire (headers,
    /// envelopes, retransmissions, NACKs — the recovery overhead).
    pub faulted_raw_bytes: u64,
    /// Faults injected across both endpoints.
    pub faults_injected: u64,
    /// Corrupt envelopes detected (checksum or structure).
    pub corrupt_detected: u64,
    /// Retransmissions performed.
    pub retransmits: u64,
    /// NACKs sent.
    pub nacks: u64,
    /// Duplicate envelopes dropped.
    pub duplicates_dropped: u64,
    /// Trials whose faulted result differed from the clean reference.
    pub result_mismatches: usize,
    /// Trials that failed with a transport error.
    pub errors: usize,
}

impl ChaosReport {
    /// Metered-bit divergence: faulted minus clean. Must be zero.
    pub fn bit_divergence(&self) -> i64 {
        self.faulted_bits as i64 - self.clean_bits as i64
    }

    /// Did the soak uphold the invariant?
    pub fn passed(&self) -> bool {
        self.bit_divergence() == 0 && self.result_mismatches == 0 && self.errors == 0
    }

    fn absorb_faults(&mut self, fs: &FaultStats) {
        self.faults_injected += fs.injected_total();
        self.corrupt_detected += fs.corrupt_detected;
        self.retransmits += fs.retransmits;
        self.nacks += fs.nacks_sent;
        self.duplicates_dropped += fs.duplicates_dropped;
    }
}

/// Quiet period both endpoints wait after their agent finishes, so a
/// faulted final message can still be re-requested and re-served.
const DRAIN_QUIET: Duration = Duration::from_millis(60);

/// Run one protocol instance over a faulted in-memory pair; both
/// endpoints drain recovery traffic after their agent completes.
fn run_one_faulted(
    spec: ProtoSpec,
    input: &BitString,
    seed: u64,
    cfg_a: FaultConfig,
    cfg_b: FaultConfig,
) -> Result<
    (
        RunResult,
        TransportStats,
        TransportStats,
        FaultStats,
        FaultStats,
    ),
    NetError,
> {
    let lab = spec.build();
    let (chan_a, chan_b) = fault_mem_pair(cfg_a, cfg_b);
    let finish = |mut t: FaultTransport<MemFrameLink>| -> Result<_, NetError> {
        t.drain(DRAIN_QUIET)?;
        Ok((t.stats(), t.fault_stats()))
    };
    let (result, (stats_a, faults_a), (stats_b, faults_b)) = run_over_result(
        lab.proto.as_ref(),
        &lab.partition,
        input,
        seed,
        chan_a,
        chan_b,
        finish,
        finish,
    )?;
    Ok((result, stats_a, stats_b, faults_a, faults_b))
}

/// Deterministic random input of the width `spec` expects.
pub fn random_input(spec: ProtoSpec, seed: u64) -> BitString {
    let width = spec.build().input_bits;
    let mut rng = StdRng::seed_from_u64(seed);
    BitString::from_bits((0..width).map(|_| rng.gen::<bool>()).collect())
}

/// Run a seeded chaos soak for one protocol spec: `trials` random
/// inputs, each executed clean (`run_sequential`) and faulted (over a
/// [`fault_mem_pair`] whose endpoints both follow `level`'s schedule),
/// with metered bits and results compared per trial.
pub fn chaos_soak(spec: ProtoSpec, trials: usize, seed: u64, level: ChaosLevel) -> ChaosReport {
    let lab = spec.build();
    let mut report = ChaosReport {
        spec: spec.name().to_string(),
        ..ChaosReport::default()
    };
    for trial in 0..trials as u64 {
        let input = random_input(
            spec,
            seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(trial + 1)),
        );
        let run_seed = seed.wrapping_add(trial);
        let clean = run_sequential(lab.proto.as_ref(), &lab.partition, &input, run_seed);
        let clean_bits = clean.transcript.total_bits() as u64;
        report.trials += 1;
        report.clean_bits += clean_bits;
        let cfg_a = level.config(seed.wrapping_mul(2).wrapping_add(trial));
        let cfg_b = level.config(seed.wrapping_mul(3).wrapping_add(trial));
        match run_one_faulted(spec, &input, run_seed, cfg_a, cfg_b) {
            Ok((result, stats_a, stats_b, faults_a, faults_b)) => {
                report.faulted_bits += stats_a.bits_total() as u64;
                report.faulted_raw_bytes +=
                    (stats_a.raw_bytes_sent + stats_b.raw_bytes_sent) as u64;
                report.absorb_faults(&faults_a);
                report.absorb_faults(&faults_b);
                if result != clean {
                    report.result_mismatches += 1;
                }
            }
            Err(_) => report.errors += 1,
        }
    }
    report
}

/// Soak the live serving stack: `clients` concurrent connections each
/// drive `trials` interactive runs against the server at `addr`, and
/// every run's wire stats must equal its transcript bit count (and the
/// client- and server-side results must agree). Faults are not injected
/// here — the server speaks plain frames — but the verdict is the same
/// zero-divergence invariant, now measured through the full
/// accept/worker/deadline path under concurrency.
pub fn server_soak(
    addr: &str,
    spec: ProtoSpec,
    clients: usize,
    trials: usize,
    seed: u64,
) -> ChaosReport {
    let lab = spec.build();
    let mut report = ChaosReport {
        spec: spec.name().to_string(),
        ..ChaosReport::default()
    };
    let outcomes = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.to_string();
                let lab = &lab;
                s.spawn(move |_| {
                    let mut out = Vec::new();
                    let mut client =
                        match Client::connect(addr.as_str(), TransportConfig::default()) {
                            Ok(cl) => cl,
                            Err(e) => {
                                out.push(Err(e));
                                return out;
                            }
                        };
                    for t in 0..trials as u64 {
                        let run_seed = seed ^ (c as u64) << 32 | t;
                        let input = random_input(spec, run_seed);
                        let clean =
                            run_sequential(lab.proto.as_ref(), &lab.partition, &input, run_seed);
                        out.push(
                            client
                                .run_interactive(spec, &input, run_seed)
                                .map(|(ra, rb, stats)| (clean, ra, rb, stats)),
                        );
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("soak client panicked"))
            .collect::<Vec<_>>()
    })
    .expect("server soak panicked");

    for outcome in outcomes {
        report.trials += 1;
        match outcome {
            Ok((clean, ra, rb, stats)) => {
                let clean_bits = clean.transcript.total_bits() as u64;
                report.clean_bits += clean_bits;
                report.faulted_bits += stats.bits_total() as u64;
                report.faulted_raw_bytes += stats.raw_bytes_sent as u64;
                if ra != clean || rb != clean {
                    report.result_mismatches += 1;
                }
            }
            Err(_) => report.errors += 1,
        }
    }
    report
}

/// Human-readable soak summary (used by `ccmx chaos` and verify.sh).
pub fn render_report(r: &ChaosReport) -> String {
    format!(
        "spec={} trials={} clean_bits={} faulted_bits={} divergence={} \
         raw_bytes={} faults={} corrupt={} retransmits={} nacks={} dups_dropped={} \
         mismatches={} errors={} verdict={}",
        r.spec,
        r.trials,
        r.clean_bits,
        r.faulted_bits,
        r.bit_divergence(),
        r.faulted_raw_bytes,
        r.faults_injected,
        r.corrupt_detected,
        r.retransmits,
        r.nacks,
        r.duplicates_dropped,
        r.result_mismatches,
        r.errors,
        if r.passed() { "PASS" } else { "FAIL" },
    )
}

/// Per-turn cross-check used in tests: the faulted endpoints' sent
/// bits must match the transcript attribution exactly.
pub fn faulted_endpoint_bits_consistent(
    result: &RunResult,
    stats_a: &TransportStats,
    stats_b: &TransportStats,
) -> bool {
    let a_bits = result.transcript.bits_from(Turn::A).len();
    let b_bits = result.transcript.bits_from(Turn::B).len();
    stats_a.bits_sent == a_bits
        && stats_b.bits_sent == b_bits
        && stats_a.bits_received == b_bits
        && stats_b.bits_received == a_bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_soak_has_zero_divergence_and_zero_faults() {
        let spec = ProtoSpec::FingerprintEquality {
            half_bits: 24,
            security: 20,
        };
        let report = chaos_soak(spec, 4, 11, ChaosLevel::Quiet);
        assert!(report.passed(), "{}", render_report(&report));
        assert_eq!(report.faults_injected, 0);
        assert!(report.clean_bits > 0);
    }

    #[test]
    fn aggressive_soak_faults_heavily_but_diverges_zero() {
        let spec = ProtoSpec::ModPrimeSingularity {
            dim: 2,
            k: 4,
            security: 16,
        };
        let report = chaos_soak(spec, 5, 23, ChaosLevel::Aggressive);
        assert!(report.passed(), "{}", render_report(&report));
        assert!(report.faults_injected > 0, "schedule injected nothing");
        assert_eq!(report.bit_divergence(), 0);
        assert!(
            report.faulted_raw_bytes > report.faulted_bits / 8,
            "recovery overhead should show up in raw bytes"
        );
    }

    #[test]
    fn send_all_survives_moderate_chaos() {
        let spec = ProtoSpec::SendAllSingularity { dim: 2, k: 3 };
        let report = chaos_soak(spec, 4, 5, ChaosLevel::Moderate);
        assert!(report.passed(), "{}", render_report(&report));
    }

    #[test]
    fn faulted_run_matches_per_endpoint_attribution() {
        let spec = ProtoSpec::FingerprintEquality {
            half_bits: 16,
            security: 16,
        };
        let input = random_input(spec, 77);
        let (result, sa, sb, fa, fb) = run_one_faulted(
            spec,
            &input,
            9,
            FaultConfig::aggressive(1),
            FaultConfig::aggressive(2),
        )
        .expect("faulted run failed");
        assert!(faulted_endpoint_bits_consistent(&result, &sa, &sb));
        assert!(fa.injected_total() + fb.injected_total() > 0);
    }

    #[test]
    fn chaos_level_parses() {
        assert_eq!(ChaosLevel::parse("quiet"), Some(ChaosLevel::Quiet));
        assert_eq!(ChaosLevel::parse("moderate"), Some(ChaosLevel::Moderate));
        assert_eq!(
            ChaosLevel::parse("aggressive"),
            Some(ChaosLevel::Aggressive)
        );
        assert_eq!(ChaosLevel::parse("nope"), None);
    }
}
