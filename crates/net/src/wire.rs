//! Bit-accurate framed wire codec for protocol traffic.
//!
//! Every value that crosses a socket is encoded by [`WireCodec`] and
//! carried inside a *frame*:
//!
//! ```text
//! +-------+------+-------------+--------------+
//! | magic | kind | len (u32 LE)| payload[len] |
//! +-------+------+-------------+--------------+
//! ```
//!
//! The codec is hand-rolled rather than serde-derived: the build runs
//! fully offline and serde (a proc-macro crate) cannot be vendored as a
//! minimal path shim, so `Transcript`, `Message`, `MeterReport` and
//! `RunResult` get explicit, versionable byte layouts here instead.
//!
//! Bit accuracy is the design constraint that matters: a
//! [`WireMsg::Bits`] payload encodes the *exact* bit count of the
//! protocol message (LSB-first packing, zero padding enforced on
//! decode), so [`payload_bits`] metered over a connection equals the
//! sequential runner's `Transcript::total_bits()` — the wire never
//! inflates or deflates the communication-complexity cost it carries.

use ccmx_comm::protocol::{Message, RunResult, Transcript, Turn, WireMsg};
use ccmx_comm::BitString;
use std::io::{Read, Write};

use crate::error::NetError;

/// First byte of every frame; rejects non-ccmx peers immediately.
pub const MAGIC: u8 = 0xCC;

/// Hard payload ceiling (4 MiB). Anything longer is a corrupt length
/// field or a hostile peer; reading it would let one connection pin the
/// worker's memory.
pub const MAX_PAYLOAD_BYTES: usize = 1 << 22;

/// Frame header length in bytes: magic + kind + u32 payload length.
pub const HEADER_BYTES: usize = 6;

/// Frame kind: a single protocol message between two running agents.
pub const KIND_WIRE_MSG: u8 = 1;
/// Frame kind: a client request to the protocol-lab server.
pub const KIND_REQUEST: u8 = 2;
/// Frame kind: a server response.
pub const KIND_RESPONSE: u8 = 3;
/// Frame kind: setup header that switches the connection into an
/// interactive agent-vs-agent protocol run.
pub const KIND_INTERACTIVE: u8 = 4;
/// Frame kind: a chaos-layer envelope (sequenced, checksummed protocol
/// message or a retransmission request) — see [`crate::fault`].
pub const KIND_CHAOS: u8 = 5;

// ----------------------------------------------------------------------
// Decoder cursor
// ----------------------------------------------------------------------

/// Cursor over a received payload; every `take_*` bounds-checks so a
/// truncated or trailing-garbage payload is a decode error, never a
/// panic.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Start decoding `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.remaining() < n {
            return Err(NetError::Frame(format!(
                "truncated payload: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Take one byte.
    pub fn take_u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take_bytes(1)?[0])
    }

    /// Take a little-endian u32.
    pub fn take_u32(&mut self) -> Result<u32, NetError> {
        let b = self.take_bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Take a little-endian u64.
    pub fn take_u64(&mut self) -> Result<u64, NetError> {
        let b = self.take_bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Require that the whole payload was consumed.
    pub fn finish(self) -> Result<(), NetError> {
        if self.remaining() != 0 {
            return Err(NetError::Frame(format!(
                "{} trailing bytes after a complete value",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// WireCodec
// ----------------------------------------------------------------------

/// Symmetric byte codec: `put` appends the encoding, `take` parses it
/// back. Round-tripping is the law this crate's proptest suite enforces.
pub trait WireCodec: Sized {
    /// Append this value's encoding to `out`.
    fn put(&self, out: &mut Vec<u8>);

    /// Parse one value off the cursor.
    fn take(d: &mut Dec<'_>) -> Result<Self, NetError>;

    /// Encode into a fresh buffer.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.put(&mut out);
        out
    }

    /// Decode a full buffer, rejecting trailing garbage.
    fn from_wire_bytes(bytes: &[u8]) -> Result<Self, NetError> {
        let mut d = Dec::new(bytes);
        let v = Self::take(&mut d)?;
        d.finish()?;
        Ok(v)
    }
}

impl WireCodec for bool {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        match d.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(NetError::Frame(format!("bool byte must be 0/1, got {v}"))),
        }
    }
}

impl WireCodec for u8 {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        d.take_u8()
    }
}

impl WireCodec for u32 {
    fn put(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        d.take_u32()
    }
}

impl WireCodec for u64 {
    fn put(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        d.take_u64()
    }
}

impl WireCodec for usize {
    fn put(&self, out: &mut Vec<u8>) {
        (*self as u64).put(out);
    }
    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        let v = d.take_u64()?;
        usize::try_from(v).map_err(|_| NetError::Frame(format!("usize overflow: {v}")))
    }
}

impl WireCodec for f64 {
    fn put(&self, out: &mut Vec<u8>) {
        self.to_bits().put(out);
    }
    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        Ok(f64::from_bits(d.take_u64()?))
    }
}

impl WireCodec for String {
    fn put(&self, out: &mut Vec<u8>) {
        let bytes = self.as_bytes();
        (bytes.len() as u32).put(out);
        out.extend_from_slice(bytes);
    }
    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        let len = d.take_u32()? as usize;
        let bytes = d.take_bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| NetError::Frame("string is not valid UTF-8".into()))
    }
}

impl<T: WireCodec> WireCodec for Vec<T> {
    fn put(&self, out: &mut Vec<u8>) {
        (self.len() as u32).put(out);
        for item in self {
            item.put(out);
        }
    }
    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        let len = d.take_u32()? as usize;
        // A length field larger than the bytes behind it is corruption;
        // cap before allocating so a bad frame cannot force a huge Vec.
        if len > d.remaining() {
            return Err(NetError::Frame(format!(
                "sequence claims {len} elements but only {} bytes remain",
                d.remaining()
            )));
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::take(d)?);
        }
        Ok(v)
    }
}

impl WireCodec for BitString {
    /// `u32` exact bit count, then `ceil(len/8)` bytes packed LSB-first.
    /// Unused high bits of the last byte must be zero — enforced on
    /// decode so every bit string has exactly one wire form.
    fn put(&self, out: &mut Vec<u8>) {
        (self.len() as u32).put(out);
        let mut byte = 0u8;
        for (i, &bit) in self.as_slice().iter().enumerate() {
            if bit {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                out.push(byte);
                byte = 0;
            }
        }
        if !self.len().is_multiple_of(8) {
            out.push(byte);
        }
    }

    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        let nbits = d.take_u32()? as usize;
        let nbytes = nbits.div_ceil(8);
        let packed = d.take_bytes(nbytes)?;
        let bits: Vec<bool> = (0..nbits)
            .map(|i| packed[i / 8] & (1 << (i % 8)) != 0)
            .collect();
        if !nbits.is_multiple_of(8) {
            let pad = packed[nbytes - 1] >> (nbits % 8);
            if pad != 0 {
                return Err(NetError::Frame(
                    "nonzero padding bits in final byte of bit string".into(),
                ));
            }
        }
        Ok(BitString::from_bits(bits))
    }
}

impl WireCodec for Turn {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Turn::A => 0,
            Turn::B => 1,
        });
    }
    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        match d.take_u8()? {
            0 => Ok(Turn::A),
            1 => Ok(Turn::B),
            v => Err(NetError::Frame(format!("turn byte must be 0/1, got {v}"))),
        }
    }
}

impl WireCodec for Message {
    fn put(&self, out: &mut Vec<u8>) {
        self.from.put(out);
        self.bits.put(out);
    }
    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        let from = Turn::take(d)?;
        let bits = BitString::take(d)?;
        Ok(Message { from, bits })
    }
}

impl WireCodec for Transcript {
    fn put(&self, out: &mut Vec<u8>) {
        self.messages().to_vec().put(out);
    }
    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        Ok(Transcript::from_messages(Vec::<Message>::take(d)?))
    }
}

impl WireCodec for RunResult {
    fn put(&self, out: &mut Vec<u8>) {
        self.output.put(out);
        self.announced_by.put(out);
        self.transcript.put(out);
    }
    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        let output = bool::take(d)?;
        let announced_by = Turn::take(d)?;
        let transcript = Transcript::take(d)?;
        Ok(RunResult {
            output,
            announced_by,
            transcript,
        })
    }
}

impl WireCodec for ccmx_comm::meter::MeterReport {
    fn put(&self, out: &mut Vec<u8>) {
        self.protocol.to_string().put(out);
        self.trials.put(out);
        self.max_bits.put(out);
        self.min_bits.put(out);
        self.mean_bits.put(out);
        self.max_rounds.put(out);
        self.errors.put(out);
    }
    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        let protocol = intern_protocol_name(String::take(d)?);
        Ok(ccmx_comm::meter::MeterReport {
            protocol,
            trials: usize::take(d)?,
            max_bits: usize::take(d)?,
            min_bits: usize::take(d)?,
            mean_bits: f64::take(d)?,
            max_rounds: usize::take(d)?,
            errors: usize::take(d)?,
        })
    }
}

/// `MeterReport::protocol` is `&'static str`; a decoded report needs one
/// too. Protocol names form a tiny closed set, so intern them: leak each
/// distinct name once and reuse it forever after.
fn intern_protocol_name(name: String) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static TABLE: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut table = TABLE.get_or_init(|| Mutex::new(Vec::new())).lock().unwrap();
    if let Some(&existing) = table.iter().find(|&&s| s == name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    table.push(leaked);
    leaked
}

impl WireCodec for WireMsg {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            WireMsg::Bits(bits) => {
                out.push(0);
                bits.put(out);
            }
            WireMsg::Final(output) => {
                out.push(1);
                output.put(out);
            }
        }
    }
    fn take(d: &mut Dec<'_>) -> Result<Self, NetError> {
        match d.take_u8()? {
            0 => Ok(WireMsg::Bits(BitString::take(d)?)),
            1 => Ok(WireMsg::Final(bool::take(d)?)),
            v => Err(NetError::Frame(format!("unknown WireMsg tag {v}"))),
        }
    }
}

/// The metered cost of a protocol message: the exact number of protocol
/// bits it carries. `Final` announces the output and costs nothing, in
/// agreement with `RunResult::cost_bits()` counting transcript bits only.
pub fn payload_bits(msg: &WireMsg) -> usize {
    match msg {
        WireMsg::Bits(bits) => bits.len(),
        WireMsg::Final(_) => 0,
    }
}

// ----------------------------------------------------------------------
// Frame I/O
// ----------------------------------------------------------------------

/// Build the full frame (header + payload) for a kind/payload pair.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Result<Vec<u8>, NetError> {
    if payload.len() > MAX_PAYLOAD_BYTES {
        return Err(NetError::Frame(format!(
            "payload of {} bytes exceeds the {MAX_PAYLOAD_BYTES}-byte frame cap",
            payload.len()
        )));
    }
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.push(MAGIC);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Write one frame and flush it.
pub fn write_frame(w: &mut dyn Write, kind: u8, payload: &[u8]) -> Result<(), NetError> {
    let frame = encode_frame(kind, payload)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read one frame. Distinguishes a clean close (EOF on the frame
/// boundary → [`NetError::Disconnected`]) from a truncated frame (EOF
/// mid-header or mid-payload → [`NetError::Frame`]).
pub fn read_frame(r: &mut dyn Read) -> Result<(u8, Vec<u8>), NetError> {
    let mut header = [0u8; HEADER_BYTES];
    let mut got = 0usize;
    while got < HEADER_BYTES {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Err(NetError::Disconnected);
                }
                return Err(NetError::Frame(format!(
                    "stream ended after {got} of {HEADER_BYTES} header bytes"
                )));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(NetError::from_io(e)),
        }
    }
    if header[0] != MAGIC {
        return Err(NetError::Frame(format!(
            "bad magic byte {:#04x} (expected {MAGIC:#04x})",
            header[0]
        )));
    }
    let kind = header[1];
    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]) as usize;
    if len > MAX_PAYLOAD_BYTES {
        return Err(NetError::Frame(format!(
            "frame declares {len}-byte payload, cap is {MAX_PAYLOAD_BYTES}"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            NetError::Frame(format!("stream ended inside a {len}-byte payload"))
        } else {
            NetError::from_io(e)
        }
    })?;
    Ok((kind, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitstring_round_trip_exact_bits() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let bits = BitString::from_bits((0..len).map(|i| i % 3 == 0).collect());
            let bytes = bits.to_wire_bytes();
            assert_eq!(bytes.len(), 4 + len.div_ceil(8));
            assert_eq!(BitString::from_wire_bytes(&bytes).unwrap(), bits);
        }
    }

    #[test]
    fn nonzero_padding_rejected() {
        let bits = BitString::from_bits(vec![true, false, true]);
        let mut bytes = bits.to_wire_bytes();
        *bytes.last_mut().unwrap() |= 0b1000_0000;
        assert!(matches!(
            BitString::from_wire_bytes(&bytes),
            Err(NetError::Frame(_))
        ));
    }

    #[test]
    fn transcript_round_trip() {
        let mut t = Transcript::new();
        t.push(Turn::A, BitString::from_u64(0b1011, 4));
        t.push(Turn::B, BitString::from_u64(0b1, 1));
        let back = Transcript::from_wire_bytes(&t.to_wire_bytes()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.total_bits(), 5);
    }

    #[test]
    fn run_result_round_trip() {
        let mut t = Transcript::new();
        t.push(Turn::A, BitString::from_u64(0x2a, 6));
        let r = RunResult {
            output: true,
            announced_by: Turn::B,
            transcript: t,
        };
        assert_eq!(RunResult::from_wire_bytes(&r.to_wire_bytes()).unwrap(), r);
    }

    #[test]
    fn meter_report_round_trip() {
        let rep = ccmx_comm::meter::MeterReport {
            protocol: "send-all",
            trials: 256,
            max_bits: 4,
            min_bits: 4,
            mean_bits: 4.0,
            max_rounds: 1,
            errors: 0,
        };
        let back = ccmx_comm::meter::MeterReport::from_wire_bytes(&rep.to_wire_bytes()).unwrap();
        assert_eq!(back, rep);
    }

    #[test]
    fn frame_round_trip() {
        let payload = WireMsg::Bits(BitString::from_u64(0b110, 3)).to_wire_bytes();
        let frame = encode_frame(KIND_WIRE_MSG, &payload).unwrap();
        let (kind, got) = read_frame(&mut frame.as_slice()).unwrap();
        assert_eq!(kind, KIND_WIRE_MSG);
        assert_eq!(got, payload);
    }

    #[test]
    fn truncated_frame_rejected() {
        let payload = WireMsg::Final(true).to_wire_bytes();
        let frame = encode_frame(KIND_WIRE_MSG, &payload).unwrap();
        for cut in 1..frame.len() {
            let err = read_frame(&mut frame[..cut].as_ref()).unwrap_err();
            assert!(matches!(err, NetError::Frame(_)), "cut at {cut} gave {err}");
        }
    }

    #[test]
    fn clean_eof_is_disconnect() {
        assert!(matches!(
            read_frame(&mut [].as_slice()),
            Err(NetError::Disconnected)
        ));
    }

    #[test]
    fn oversized_frame_rejected_without_allocation() {
        let mut header = vec![MAGIC, KIND_REQUEST];
        header.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            read_frame(&mut header.as_slice()),
            Err(NetError::Frame(_))
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let frame = encode_frame(KIND_WIRE_MSG, &[]).unwrap();
        let mut bad = frame.clone();
        bad[0] = 0x00;
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(NetError::Frame(_))
        ));
    }

    #[test]
    fn final_frames_cost_zero_bits() {
        assert_eq!(payload_bits(&WireMsg::Final(false)), 0);
        assert_eq!(payload_bits(&WireMsg::Bits(BitString::from_u64(0, 9))), 9);
    }
}
