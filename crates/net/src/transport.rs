//! Byte-stream transports for protocol messages.
//!
//! A [`Transport`] moves framed [`WireMsg`]s between two agents and
//! meters *exactly* the protocol bits it carries. Two implementations:
//!
//! * [`MemTransport`] — frames travel over in-process crossbeam
//!   channels; same codec work as TCP, zero syscalls. The baseline for
//!   measuring what the network itself costs.
//! * [`TcpTransport`] — frames travel over a `std::net::TcpStream` with
//!   read/write timeouts and bounded retry-with-backoff on transient
//!   I/O errors.
//!
//! Both plug into the `ccmx-comm` agent state machine through
//! [`AsChannel`], so a protocol run over either transport replays the
//! identical `run_agent` logic as the in-process runners — which is why
//! transcripts (and therefore costs) agree bit for bit.

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use ccmx_comm::protocol::{ChannelError, MsgChannel, WireMsg};
use crossbeam::channel::{Receiver, Sender};

use crate::error::NetError;
use crate::wire::{self, payload_bits, WireCodec, KIND_WIRE_MSG};

/// Per-direction traffic counters for one endpoint of a transport.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Protocol messages sent from this endpoint.
    pub msgs_sent: usize,
    /// Protocol messages received at this endpoint.
    pub msgs_received: usize,
    /// Metered protocol bits sent (`Final` frames count zero, matching
    /// the sequential runner's cost accounting).
    pub bits_sent: usize,
    /// Metered protocol bits received.
    pub bits_received: usize,
    /// Raw framed bytes sent, headers included.
    pub raw_bytes_sent: usize,
    /// Raw framed bytes received, headers included.
    pub raw_bytes_received: usize,
}

impl TransportStats {
    /// Total metered protocol bits seen at this endpoint; for a
    /// completed two-agent run this equals `Transcript::total_bits()`.
    pub fn bits_total(&self) -> usize {
        self.bits_sent + self.bits_received
    }
}

/// A bidirectional channel of protocol messages with bit-exact metering.
pub trait Transport {
    /// Send one protocol message.
    fn send_wire(&mut self, msg: &WireMsg) -> Result<(), NetError>;
    /// Receive the next protocol message.
    fn recv_wire(&mut self) -> Result<WireMsg, NetError>;
    /// Traffic counters so far.
    fn stats(&self) -> TransportStats;
}

impl<T: Transport + ?Sized> Transport for &mut T {
    fn send_wire(&mut self, msg: &WireMsg) -> Result<(), NetError> {
        (**self).send_wire(msg)
    }
    fn recv_wire(&mut self) -> Result<WireMsg, NetError> {
        (**self).recv_wire()
    }
    fn stats(&self) -> TransportStats {
        (**self).stats()
    }
}

/// Adapter: any [`Transport`] is a `ccmx-comm` [`MsgChannel`], so
/// `run_agent` can drive a protocol over it unchanged.
pub struct AsChannel<T: Transport>(pub T);

impl<T: Transport> AsChannel<T> {
    /// Unwrap the transport (e.g. to read final stats).
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T: Transport> MsgChannel for AsChannel<T> {
    fn send_msg(&mut self, msg: WireMsg) -> Result<(), ChannelError> {
        self.0
            .send_wire(&msg)
            .map_err(|e| ChannelError(e.to_string()))
    }
    fn recv_msg(&mut self) -> Result<WireMsg, ChannelError> {
        self.0.recv_wire().map_err(|e| ChannelError(e.to_string()))
    }
}

// ----------------------------------------------------------------------
// In-memory transport
// ----------------------------------------------------------------------

/// In-process transport: encoded frames over crossbeam channels. Runs
/// the full codec path (encode → frame → decode) without any socket.
pub struct MemTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    recv_timeout: Option<Duration>,
    stats: TransportStats,
}

/// Two connected [`MemTransport`] endpoints.
pub fn mem_transport_pair() -> (MemTransport, MemTransport) {
    let (tx_ab, rx_ab) = crossbeam::channel::unbounded();
    let (tx_ba, rx_ba) = crossbeam::channel::unbounded();
    let mk = |tx, rx| MemTransport {
        tx,
        rx,
        recv_timeout: None,
        stats: TransportStats::default(),
    };
    (mk(tx_ab, rx_ba), mk(tx_ba, rx_ab))
}

impl MemTransport {
    /// Bound how long `recv_wire` waits for the peer.
    pub fn set_recv_timeout(&mut self, timeout: Option<Duration>) {
        self.recv_timeout = timeout;
    }
}

impl Transport for MemTransport {
    fn send_wire(&mut self, msg: &WireMsg) -> Result<(), NetError> {
        let frame = wire::encode_frame(KIND_WIRE_MSG, &msg.to_wire_bytes())?;
        self.stats.msgs_sent += 1;
        self.stats.bits_sent += payload_bits(msg);
        self.stats.raw_bytes_sent += frame.len();
        self.tx.send(frame).map_err(|_| NetError::Disconnected)
    }

    fn recv_wire(&mut self) -> Result<WireMsg, NetError> {
        let frame = match self.recv_timeout {
            None => self.rx.recv().map_err(|_| NetError::Disconnected)?,
            Some(t) => self.rx.recv_timeout(t).map_err(|e| {
                use crossbeam::channel::RecvTimeoutError;
                match e {
                    RecvTimeoutError::Timeout => NetError::Timeout,
                    RecvTimeoutError::Disconnected => NetError::Disconnected,
                }
            })?,
        };
        let (kind, payload) = wire::read_frame(&mut frame.as_slice())?;
        if kind != KIND_WIRE_MSG {
            return Err(NetError::Protocol(format!(
                "expected protocol frame, got kind {kind}"
            )));
        }
        let msg = WireMsg::from_wire_bytes(&payload)?;
        self.stats.msgs_received += 1;
        self.stats.bits_received += payload_bits(&msg);
        self.stats.raw_bytes_received += frame.len();
        Ok(msg)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

// ----------------------------------------------------------------------
// TCP transport
// ----------------------------------------------------------------------

/// Timeouts and retry policy for a TCP endpoint.
#[derive(Clone, Copy, Debug)]
pub struct TransportConfig {
    /// How long a blocking read may wait before the peer counts as
    /// stalled. `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// How long a blocking write may wait.
    pub write_timeout: Option<Duration>,
    /// Bounded retries for transient send failures.
    pub max_retries: u32,
    /// Initial backoff between retries; doubles per attempt.
    pub retry_backoff: Duration,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            max_retries: 3,
            retry_backoff: Duration::from_millis(10),
        }
    }
}

/// A `TcpStream` reader that first replays bytes handed over by a
/// previous owner of the connection — e.g. the readiness event loop,
/// which may have buffered past the frame that triggered a promotion —
/// before reading from the socket itself.
pub(crate) struct PrefixedStream {
    prefix: Vec<u8>,
    pos: usize,
    stream: TcpStream,
}

impl Read for PrefixedStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos < self.prefix.len() {
            let n = (self.prefix.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.prefix[self.pos..self.pos + n]);
            self.pos += n;
            if self.pos == self.prefix.len() {
                self.prefix = Vec::new();
                self.pos = 0;
            }
            return Ok(n);
        }
        self.stream.read(buf)
    }
}

/// One endpoint of a TCP connection carrying framed protocol messages.
pub struct TcpTransport {
    reader: BufReader<PrefixedStream>,
    writer: BufWriter<TcpStream>,
    config: TransportConfig,
    stats: TransportStats,
}

impl TcpTransport {
    /// Connect to a listening peer.
    pub fn connect<A: ToSocketAddrs>(addr: A, config: TransportConfig) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream, config)
    }

    /// Wrap an accepted stream (server side).
    pub fn from_stream(stream: TcpStream, config: TransportConfig) -> Result<Self, NetError> {
        Self::from_stream_with_prefix(stream, config, Vec::new())
    }

    /// Wrap a stream that already had `prefix` bytes read off it; the
    /// reader consumes those first, so no data is lost when a
    /// connection migrates between engines.
    pub fn from_stream_with_prefix(
        stream: TcpStream,
        config: TransportConfig,
        prefix: Vec<u8>,
    ) -> Result<Self, NetError> {
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_write_timeout(config.write_timeout)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(PrefixedStream {
            prefix,
            pos: 0,
            stream: stream.try_clone()?,
        });
        Ok(TcpTransport {
            reader,
            writer: BufWriter::new(stream),
            config,
            stats: TransportStats::default(),
        })
    }

    /// Local socket address.
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.writer.get_ref().local_addr()?)
    }

    /// Send an arbitrary frame (requests/responses, not just protocol
    /// messages), with bounded retry-with-backoff on transient errors.
    pub fn send_frame(&mut self, kind: u8, payload: &[u8]) -> Result<(), NetError> {
        let mut backoff = self.config.retry_backoff;
        let mut attempts = 0u32;
        loop {
            match wire::write_frame(&mut self.writer, kind, payload) {
                Ok(()) => {
                    self.stats.raw_bytes_sent += wire::HEADER_BYTES + payload.len();
                    return Ok(());
                }
                Err(e @ (NetError::Timeout | NetError::Io(_)))
                    if attempts < self.config.max_retries =>
                {
                    if !matches!(e, NetError::Timeout) && !e.is_transient() {
                        return Err(e);
                    }
                    attempts += 1;
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Receive the next frame of any kind.
    pub fn recv_frame(&mut self) -> Result<(u8, Vec<u8>), NetError> {
        let (kind, payload) = wire::read_frame(&mut self.reader)?;
        self.stats.raw_bytes_received += wire::HEADER_BYTES + payload.len();
        Ok((kind, payload))
    }

    /// Flush and shut down the write side, signalling a clean close.
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        self.writer.flush()?;
        self.writer.get_ref().shutdown(std::net::Shutdown::Write)?;
        Ok(())
    }
}

impl Transport for TcpTransport {
    fn send_wire(&mut self, msg: &WireMsg) -> Result<(), NetError> {
        self.send_frame(KIND_WIRE_MSG, &msg.to_wire_bytes())?;
        self.stats.msgs_sent += 1;
        self.stats.bits_sent += payload_bits(msg);
        Ok(())
    }

    fn recv_wire(&mut self) -> Result<WireMsg, NetError> {
        let (kind, payload) = self.recv_frame()?;
        if kind != KIND_WIRE_MSG {
            return Err(NetError::Protocol(format!(
                "expected protocol frame, got kind {kind}"
            )));
        }
        let msg = WireMsg::from_wire_bytes(&payload)?;
        self.stats.msgs_received += 1;
        self.stats.bits_received += payload_bits(&msg);
        Ok(msg)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmx_comm::BitString;
    use std::net::TcpListener;

    #[test]
    fn mem_transport_meters_exact_bits() {
        let (mut a, mut b) = mem_transport_pair();
        a.send_wire(&WireMsg::Bits(BitString::from_u64(0b101, 3)))
            .unwrap();
        a.send_wire(&WireMsg::Final(true)).unwrap();
        assert_eq!(
            b.recv_wire().unwrap(),
            WireMsg::Bits(BitString::from_u64(0b101, 3))
        );
        assert_eq!(b.recv_wire().unwrap(), WireMsg::Final(true));
        assert_eq!(a.stats().bits_sent, 3);
        assert_eq!(b.stats().bits_received, 3);
        assert_eq!(b.stats().msgs_received, 2);
    }

    #[test]
    fn mem_transport_recv_timeout_fires() {
        let (_a, mut b) = mem_transport_pair();
        b.set_recv_timeout(Some(Duration::from_millis(20)));
        assert!(matches!(b.recv_wire(), Err(NetError::Timeout)));
    }

    #[test]
    fn mem_transport_disconnect_detected() {
        let (a, mut b) = mem_transport_pair();
        drop(a);
        assert!(matches!(b.recv_wire(), Err(NetError::Disconnected)));
    }

    #[test]
    fn tcp_transport_round_trips_and_meters() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream, TransportConfig::default()).unwrap();
            let msg = t.recv_wire().unwrap();
            t.send_wire(&msg).unwrap();
            t.stats()
        });

        let mut client = TcpTransport::connect(addr, TransportConfig::default()).unwrap();
        let sent = WireMsg::Bits(BitString::from_u64(0x5a, 7));
        client.send_wire(&sent).unwrap();
        assert_eq!(client.recv_wire().unwrap(), sent);

        let server_stats = server.join().unwrap();
        assert_eq!(client.stats().bits_sent, 7);
        assert_eq!(client.stats().bits_received, 7);
        assert_eq!(server_stats.bits_received, 7);
        assert_eq!(server_stats.bits_sent, 7);
    }

    #[test]
    fn tcp_read_timeout_drops_stalled_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Connect but never send: the reader must give up, not hang.
        let _stalled = TcpStream::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let cfg = TransportConfig {
            read_timeout: Some(Duration::from_millis(30)),
            ..TransportConfig::default()
        };
        let mut t = TcpTransport::from_stream(stream, cfg).unwrap();
        assert!(matches!(t.recv_wire(), Err(NetError::Timeout)));
    }
}
