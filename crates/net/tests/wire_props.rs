//! Property suite for the wire codec: every value that crosses a socket
//! must round-trip bit-exactly, and every malformed frame — truncated,
//! oversized, bad magic, padded — must be *rejected*, never mis-read.

use ccmx_comm::protocol::{Message, RunResult, Transcript, Turn, WireMsg};
use ccmx_comm::BitString;
use ccmx_net::api::{Request, Response};
use ccmx_net::wire::{
    encode_frame, read_frame, WireCodec, KIND_WIRE_MSG, MAGIC, MAX_PAYLOAD_BYTES,
};
use ccmx_net::{fault_mem_pair, FaultConfig, NetError, Transport};
use proptest::prelude::*;

fn bitstring_strategy(max_bits: usize) -> BoxedStrategy<BitString> {
    prop::collection::vec(any::<bool>(), 0..max_bits)
        .prop_map(BitString::from_bits)
        .boxed()
}

fn turn_strategy() -> BoxedStrategy<Turn> {
    prop_oneof![Just(Turn::A), Just(Turn::B)].boxed()
}

fn message_strategy() -> BoxedStrategy<Message> {
    (turn_strategy(), bitstring_strategy(96))
        .prop_map(|(from, bits)| Message { from, bits })
        .boxed()
}

fn transcript_strategy() -> BoxedStrategy<Transcript> {
    prop::collection::vec(message_strategy(), 0..12)
        .prop_map(Transcript::from_messages)
        .boxed()
}

fn wire_msg_strategy() -> BoxedStrategy<WireMsg> {
    prop_oneof![
        bitstring_strategy(128).prop_map(WireMsg::Bits),
        any::<bool>().prop_map(WireMsg::Final),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bitstring_round_trips(bits in bitstring_strategy(256)) {
        let bytes = bits.to_wire_bytes();
        prop_assert_eq!(bytes.len(), 4 + bits.len().div_ceil(8));
        prop_assert_eq!(BitString::from_wire_bytes(&bytes).unwrap(), bits);
    }

    #[test]
    fn wire_msg_round_trips(msg in wire_msg_strategy()) {
        prop_assert_eq!(WireMsg::from_wire_bytes(&msg.to_wire_bytes()).unwrap(), msg);
    }

    #[test]
    fn message_round_trips(msg in message_strategy()) {
        prop_assert_eq!(Message::from_wire_bytes(&msg.to_wire_bytes()).unwrap(), msg);
    }

    #[test]
    fn transcript_round_trips_preserving_bit_count(t in transcript_strategy()) {
        let back = Transcript::from_wire_bytes(&t.to_wire_bytes()).unwrap();
        prop_assert_eq!(back.total_bits(), t.total_bits());
        prop_assert_eq!(back.rounds(), t.rounds());
        prop_assert_eq!(back, t);
    }

    #[test]
    fn run_result_round_trips(
        t in transcript_strategy(),
        output in any::<bool>(),
        by in turn_strategy(),
    ) {
        let r = RunResult { output, announced_by: by, transcript: t };
        prop_assert_eq!(RunResult::from_wire_bytes(&r.to_wire_bytes()).unwrap(), r);
    }

    #[test]
    fn cc_search_request_round_trips(
        rows in 1usize..65,
        cols in 1usize..65,
        bits in bitstring_strategy(128),
        depth_limit in any::<u32>(),
    ) {
        // The codec layer does not validate dims against bit count —
        // the server does — so round-tripping must hold for any combo.
        let req = Request::CcSearch { rows, cols, bits, depth_limit };
        prop_assert_eq!(Request::from_wire_bytes(&req.to_wire_bytes()).unwrap(), req);
    }

    #[test]
    fn cc_search_response_round_trips(
        cc in any::<u32>(),
        exact in any::<bool>(),
        nodes in any::<u64>(),
        certificate in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let resp = Response::CcSearch { cc, exact, nodes, certificate };
        prop_assert_eq!(Response::from_wire_bytes(&resp.to_wire_bytes()).unwrap(), resp);
        // Batched alongside older variants it must still round-trip.
        let batch = Response::Batch(vec![Response::Pong, Response::from_wire_bytes(&resp.to_wire_bytes()).unwrap()]);
        prop_assert_eq!(Response::from_wire_bytes(&batch.to_wire_bytes()).unwrap(), batch);
    }

    #[test]
    fn framed_wire_msg_round_trips(msg in wire_msg_strategy()) {
        let payload = msg.to_wire_bytes();
        let frame = encode_frame(KIND_WIRE_MSG, &payload).unwrap();
        let (kind, got) = read_frame(&mut frame.as_slice()).unwrap();
        prop_assert_eq!(kind, KIND_WIRE_MSG);
        prop_assert_eq!(WireMsg::from_wire_bytes(&got).unwrap(), msg);
    }

    #[test]
    fn truncated_frames_rejected(msg in wire_msg_strategy(), cut_seed in any::<u64>()) {
        let frame = encode_frame(KIND_WIRE_MSG, &msg.to_wire_bytes()).unwrap();
        // Cut anywhere strictly inside the frame: header or payload.
        let cut = 1 + (cut_seed as usize) % (frame.len() - 1);
        let err = read_frame(&mut frame[..cut].as_ref()).unwrap_err();
        prop_assert!(matches!(err, NetError::Frame(_)), "cut {} gave {}", cut, err);
    }

    #[test]
    fn truncated_payloads_rejected_by_codec(msg in wire_msg_strategy()) {
        let bytes = msg.to_wire_bytes();
        prop_assume!(bytes.len() > 1);
        for cut in 0..bytes.len() - 1 {
            prop_assert!(WireMsg::from_wire_bytes(&bytes[..cut]).is_err(), "cut {}", cut);
        }
    }

    #[test]
    fn trailing_garbage_rejected(msg in wire_msg_strategy(), junk in any::<u8>()) {
        let mut bytes = msg.to_wire_bytes();
        bytes.push(junk);
        prop_assert!(WireMsg::from_wire_bytes(&bytes).is_err());
    }

    #[test]
    fn oversized_length_field_rejected(extra in 1u64..1_000_000) {
        let declared = (MAX_PAYLOAD_BYTES as u64 + extra).min(u32::MAX as u64) as u32;
        let mut frame = vec![MAGIC, KIND_WIRE_MSG];
        frame.extend_from_slice(&declared.to_le_bytes());
        let err = read_frame(&mut frame.as_slice()).unwrap_err();
        prop_assert!(matches!(err, NetError::Frame(_)), "got {}", err);
    }

    #[test]
    fn oversized_payload_refused_at_encode(kind in any::<u8>()) {
        // Don't materialize >4MiB per case; a zero-filled Vec is cheap
        // enough at 128 cases and exercises the real check.
        let too_big = vec![0u8; MAX_PAYLOAD_BYTES + 1];
        prop_assert!(encode_frame(kind, &too_big).is_err());
    }

    #[test]
    fn corrupted_magic_rejected(msg in wire_msg_strategy(), bad_magic in any::<u8>()) {
        prop_assume!(bad_magic != MAGIC);
        let mut frame = encode_frame(KIND_WIRE_MSG, &msg.to_wire_bytes()).unwrap();
        frame[0] = bad_magic;
        prop_assert!(matches!(read_frame(&mut frame.as_slice()), Err(NetError::Frame(_))));
    }

    #[test]
    fn corrupted_payload_bytes_never_panic(
        msg in wire_msg_strategy(),
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        // Codec payloads carry no checksum (the chaos envelope adds
        // one), so a flipped byte may decode to a *different* value or
        // a typed error — but it must never panic or loop.
        let mut bytes = msg.to_wire_bytes();
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= xor;
        let _ = WireMsg::from_wire_bytes(&bytes);
    }

    #[test]
    fn corrupted_run_results_never_panic(
        t in transcript_strategy(),
        output in any::<bool>(),
        by in turn_strategy(),
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let r = RunResult { output, announced_by: by, transcript: t };
        let mut bytes = r.to_wire_bytes();
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= xor;
        let _ = RunResult::from_wire_bytes(&bytes);
    }

    #[test]
    fn corrupted_frame_bytes_never_panic(
        msg in wire_msg_strategy(),
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let mut frame = encode_frame(KIND_WIRE_MSG, &msg.to_wire_bytes()).unwrap();
        let pos = (pos_seed as usize) % frame.len();
        frame[pos] ^= xor;
        match read_frame(&mut frame.as_slice()) {
            // A flip in the payload is invisible to the frame layer;
            // header flips must come back as typed errors.
            Ok((_, _)) => {}
            Err(NetError::Frame(_) | NetError::Disconnected | NetError::Io(_)) => {}
            Err(other) => prop_assert!(false, "untyped failure: {}", other),
        }
    }

}

proptest! {
    // Each case spins up threads and real drain windows; keep the case
    // count low so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fault_transport_bit_flips_cannot_corrupt_delivery(
        payloads in prop::collection::vec(bitstring_strategy(64), 1..6),
        seed in any::<u64>(),
    ) {
        // A flip-only fault schedule driven by the proptest seed: the
        // chaos envelope's checksum must catch every flip and the NACK
        // path must re-deliver the exact bits, metered exactly once.
        let flips = FaultConfig {
            flip_permille: 400,
            ..FaultConfig::quiet(seed)
        };
        let (mut a, mut b) = fault_mem_pair(flips, FaultConfig::quiet(seed ^ 1));
        let sent_bits: usize = payloads.iter().map(|p| p.len()).sum();
        // Recovery is peer-driven (NACK → retransmit), so the sender
        // must stay live until the receiver has everything: send on a
        // thread, then drain the NACK traffic.
        let expected = payloads.clone();
        let receiver = std::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..expected.len() {
                match b.recv_wire() {
                    Ok(WireMsg::Bits(bits)) => got.push(bits),
                    other => panic!("wrong message: {other:?}"),
                }
            }
            // Keep the endpoint alive so the sender's own drain can
            // finish; a Disconnected here just means the peer left.
            let _ = b.drain(std::time::Duration::from_millis(80));
            (got, b.stats())
        });
        for bits in &payloads {
            a.send_wire(&WireMsg::Bits(bits.clone())).unwrap();
        }
        match a.drain(std::time::Duration::from_millis(40)) {
            Ok(()) | Err(NetError::Disconnected) => {}
            Err(other) => prop_assert!(false, "drain failed: {}", other),
        }
        let (got, stats_b) = receiver.join().unwrap();
        prop_assert_eq!(got, payloads);
        prop_assert_eq!(a.stats().bits_sent, sent_bits);
        prop_assert_eq!(stats_b.bits_received, sent_bits);
    }
}
