//! The vector-space span problem (Section 1, after Corollary 1.3).
//!
//! Let `X` be a finite set of vectors spanning a space `U`, and let `L`
//! be the lattice of subspaces spanned by subsets of `X`. Given `V₁, V₂ ∈
//! L`, decide whether `V₁ ∪ V₂` spans `U`. Lovász & Saks (1988) showed
//! the *fixed-partition* communication complexity is `log₂ #L`; the
//! paper observes that Theorem 1.1 pins down the *unrestricted*
//! complexity when `X` is the set of `k`-bit integer vectors.
//!
//! We provide the exact decision procedure, a fixed-partition protocol
//! (agent A ships the canonical form of `V₁`), and the reduction showing
//! singularity testing is a span-problem instance (take `V₁` = columns
//! read by agent A, `V₂` = columns read by agent B: `M` nonsingular iff
//! the union spans ℚ^{2n}).

use ccmx_bigint::{Integer, Rational};
use ccmx_linalg::gauss::{rank, span_canonical_form};
use ccmx_linalg::ring::RationalField;
use ccmx_linalg::Matrix;

fn to_q(m: &Matrix<Integer>) -> Matrix<Rational> {
    m.map(|e| Rational::from(e.clone()))
}

/// Decide whether the columns of `v1` and `v2` together span the full
/// ambient space ℚ^dim (dim = row count). The rank runs on the certified
/// Montgomery-CRT path (full rank certifies from one residue; deficiency
/// via the verified nullspace).
pub fn union_spans_all(v1: &Matrix<Integer>, v2: &Matrix<Integer>) -> bool {
    assert_eq!(
        v1.rows(),
        v2.rows(),
        "subspaces of different ambient spaces"
    );
    let joint = Matrix::from_fn(v1.rows(), v1.cols() + v2.cols(), |i, j| {
        if j < v1.cols() {
            v1[(i, j)].clone()
        } else {
            v2[(i, j - v1.cols())].clone()
        }
    });
    ccmx_linalg::crt::rank_int(&joint) == v1.rows()
}

/// All-rational oracle for [`union_spans_all`] (kept for tests).
pub fn union_spans_all_rational(v1: &Matrix<Integer>, v2: &Matrix<Integer>) -> bool {
    assert_eq!(v1.rows(), v2.rows());
    let f = RationalField;
    let joint = Matrix::from_fn(v1.rows(), v1.cols() + v2.cols(), |i, j| {
        if j < v1.cols() {
            Rational::from(v1[(i, j)].clone())
        } else {
            Rational::from(v2[(i, j - v1.cols())].clone())
        }
    });
    rank(&f, &joint) == v1.rows()
}

/// The singularity-as-span-problem view: split `M`'s columns into the
/// first and last halves (the `π₀` partition); `M` is nonsingular iff the
/// two column sets jointly span everything.
pub fn singularity_as_span_instance(m: &Matrix<Integer>) -> (Matrix<Integer>, Matrix<Integer>) {
    assert!(m.is_square());
    let d = m.rows();
    let rows: Vec<usize> = (0..d).collect();
    let left: Vec<usize> = (0..d / 2).collect();
    let right: Vec<usize> = (d / 2..d).collect();
    (m.submatrix(&rows, &left), m.submatrix(&rows, &right))
}

/// The fixed-partition upper bound realized: A sends the canonical form
/// of `Span(V₁)` — `log₂ #L` bits suffice since there are only `#L`
/// distinct subspaces. Here we return the *message* (the canonical form)
/// and its exact bit size under a naive rational serialization, plus the
/// information-theoretic `log₂ #L` for comparison.
pub fn canonical_message(v1: &Matrix<Integer>) -> (Matrix<Rational>, usize) {
    let f = RationalField;
    let canon = span_canonical_form(&f, &to_q(v1));
    // Serialized size: each entry as numerator/denominator bit lengths
    // (a concrete, if not optimal, encoding).
    let bits: usize = canon
        .data()
        .iter()
        .map(|r| (r.numerator().bit_len() + r.denominator().bit_len() + 2) as usize)
        .sum();
    (canon, bits)
}

/// Count `#L` exactly for tiny `X` by enumerating all subsets of `X` and
/// collecting distinct spans. (Exponential; guarded.)
pub fn count_subspace_lattice(x: &[Vec<Integer>], max_subsets: usize) -> usize {
    assert!(!x.is_empty());
    let n_sub = 1usize << x.len();
    assert!(n_sub <= max_subsets, "lattice enumeration too large");
    let dim = x[0].len();
    let f = RationalField;
    let mut seen = std::collections::HashSet::new();
    for mask in 0..n_sub {
        let cols: Vec<&Vec<Integer>> = (0..x.len())
            .filter(|i| (mask >> i) & 1 == 1)
            .map(|i| &x[i])
            .collect();
        let m = Matrix::from_fn(dim, cols.len(), |i, j| Rational::from(cols[j][i].clone()));
        let canon = span_canonical_form(&f, &m);
        seen.insert(format!("{canon:?}"));
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmx_linalg::matrix::int_matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn iv(vals: &[i64]) -> Vec<Integer> {
        vals.iter().map(|&v| Integer::from(v)).collect()
    }

    #[test]
    fn union_span_basic() {
        let v1 = int_matrix(&[&[1], &[0], &[0]]);
        let v2 = int_matrix(&[&[0, 0], &[1, 0], &[0, 1]]);
        assert!(union_spans_all(&v1, &v2));
        let v3 = int_matrix(&[&[0], &[1], &[0]]);
        assert!(!union_spans_all(&v1, &v3));
    }

    #[test]
    fn singularity_equivalence() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..20 {
            let n = 4;
            let m = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(0i64..4)));
            let (v1, v2) = singularity_as_span_instance(&m);
            assert_eq!(
                union_spans_all(&v1, &v2),
                !ccmx_linalg::bareiss::is_singular(&m),
                "span-union test disagrees with singularity on {m:?}"
            );
        }
    }

    #[test]
    fn union_span_fast_path_matches_rational() {
        let mut rng = StdRng::seed_from_u64(72);
        for _ in 0..20 {
            let rows = rng.gen_range(2..=5);
            let v1 = Matrix::from_fn(rows, rng.gen_range(1..=3), |_, _| {
                Integer::from(rng.gen_range(-3i64..=3))
            });
            let v2 = Matrix::from_fn(rows, rng.gen_range(1..=3), |_, _| {
                Integer::from(rng.gen_range(-3i64..=3))
            });
            assert_eq!(
                union_spans_all(&v1, &v2),
                union_spans_all_rational(&v1, &v2)
            );
        }
    }

    #[test]
    fn canonical_message_identifies_span() {
        // Same span, different generators → same message.
        let a = int_matrix(&[&[1, 0], &[0, 1], &[0, 0]]);
        let b = int_matrix(&[&[2, 1], &[1, 1], &[0, 0]]);
        let (ca, _) = canonical_message(&a);
        let (cb, _) = canonical_message(&b);
        assert_eq!(ca, cb);
        // Different spans → different messages.
        let c = int_matrix(&[&[1, 0], &[0, 0], &[0, 1]]);
        let (cc, _) = canonical_message(&c);
        assert_ne!(ca, cc);
    }

    #[test]
    fn lattice_count_tiny() {
        // X = {e1, e2, e1+e2} in Q²: subsets span {0}, three lines, Q².
        let x = vec![iv(&[1, 0]), iv(&[0, 1]), iv(&[1, 1])];
        assert_eq!(count_subspace_lattice(&x, 1 << 10), 5);
        // log2(#L) ≈ 2.32 bits — the Lovász–Saks fixed-partition bound.
        let bits = (5f64).log2();
        assert!(bits > 2.0 && bits < 3.0);
    }

    #[test]
    fn lattice_count_with_duplicates() {
        let x = vec![iv(&[1, 0]), iv(&[2, 0])];
        // Subsets: {} -> 0, {v1} = {v2} = {v1,v2} -> same line: #L = 2.
        assert_eq!(count_subspace_lattice(&x, 16), 2);
    }

    #[test]
    fn message_bits_reasonable() {
        let v = int_matrix(&[&[1, 2], &[3, 4], &[5, 6]]);
        let (_, bits) = canonical_message(&v);
        assert!(bits > 0);
    }
}
