//! The *restricted truth matrix* — the paper's central combinatorial
//! object, enumerable.
//!
//! Rows are instances of `C` (agent A's free bits under `π₀`), columns
//! are instances of `(D, E, y)` (agent B's). Entry = "is `M(C; D,E,y)`
//! singular?". By Lemma 3.2 that is `B·u ∈ Span(A(C))`, so a row can be
//! evaluated against many columns with one factored solver
//! ([`ccmx_linalg::gauss::LinearSolver`]) — the column object `B·u`
//! depends only on `(D, E, y)` and is shared across rows.
//!
//! Full enumeration is `q^{h²} × q^{(n²−1)/2}` and explodes immediately
//! (by design — that *is* the theorem); this module supports exhaustive
//! rows with sampled or exhaustively-truncated column sets, which is
//! what the E2/E5/E6 experiments need.

use ccmx_bigint::prime::next_prime;
use ccmx_bigint::{Integer, Rational};
use ccmx_linalg::gauss::LinearSolver;
use ccmx_linalg::montgomery::echelon_mod;
use ccmx_linalg::ring::{PrimeField, RationalField};
use ccmx_linalg::Matrix;
use rand::Rng;

use crate::construction::RestrictedInstance;
use crate::params::Params;

/// A column of the restricted truth matrix: the blocks `(D, E, y)`
/// compressed to what Lemma 3.2 needs — the vector `B·u`.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnKey {
    /// `B·u ∈ ℤⁿ`.
    pub bu: Vec<Integer>,
}

impl ColumnKey {
    /// Build from an instance's B-side blocks.
    pub fn of(inst: &RestrictedInstance) -> Self {
        ColumnKey { bu: inst.b_dot_u() }
    }
}

/// Single-prime span rejector: the pivot rows of `RREF(Aᵀ mod p)` span
/// the column space of `A mod p`, so reducing `B·u mod p` against them
/// is an `O(rank · n)` word-arithmetic membership test. The filter is
/// only armed when `rank_p(A) = rank_ℚ(A)`; then `B·u ∈ Span_ℚ(A)`
/// implies `B·u mod p ∈ Span_p(A)`, so a modular *rejection* is an exact
/// "not in span" — no false negatives to re-check. A modular *accept*
/// can still be a `p`-coincidence and goes to the exact solver.
struct SpanFilter {
    p: u64,
    field: PrimeField,
    /// Pivot rows of `RREF(Aᵀ mod p)`, canonical residues.
    basis: Vec<Vec<u64>>,
    pivot_cols: Vec<usize>,
}

impl SpanFilter {
    /// Arm the filter iff `p` preserves the rank of `a` (certified
    /// against the exact rational rank already computed by the solver).
    fn build(a: &Matrix<Integer>, rank_q: usize) -> Option<SpanFilter> {
        let p = next_prime(1 << 61);
        let e = echelon_mod(&a.transpose(), p);
        if e.rank() != rank_q {
            return None;
        }
        let basis = (0..e.rank()).map(|i| e.rref.row(i).to_vec()).collect();
        Some(SpanFilter {
            p,
            field: PrimeField::new(p),
            basis,
            pivot_cols: e.pivot_cols.clone(),
        })
    }

    /// `false` ⟹ `v ∉ Span_ℚ(A)` exactly; `true` ⟹ run the exact test.
    fn maybe_in_span(&self, v: &[Integer]) -> bool {
        let p = self.p as u128;
        let mut r: Vec<u64> = v.iter().map(|e| self.field.reduce(e)).collect();
        for (row, &pc) in self.basis.iter().zip(&self.pivot_cols) {
            let coeff = r[pc];
            if coeff == 0 {
                continue;
            }
            for (rj, &bj) in r.iter_mut().zip(row) {
                let sub = (coeff as u128 * bj as u128) % p;
                let cur = *rj as u128;
                *rj = (cur + p - sub) as u64 % self.p;
            }
        }
        r.iter().all(|&x| x == 0)
    }
}

/// A row evaluator: fixes `C`, factors `Span(A(C))` once.
pub struct RowEvaluator {
    solver: LinearSolver<RationalField>,
    filter: Option<SpanFilter>,
}

impl RowEvaluator {
    /// Factor the row for a given `C`.
    pub fn new(params: Params, c: &Matrix<Integer>) -> Self {
        let mut inst = RestrictedInstance::zero(params);
        inst.c = c.clone();
        let a_int = inst.matrix_a();
        let a = a_int.map(|e| Rational::from(e.clone()));
        let solver = LinearSolver::new(RationalField, &a);
        let filter = SpanFilter::build(&a_int, solver.rank());
        RowEvaluator { solver, filter }
    }

    /// Is the modular prefilter armed? (It is unless the fixed prime
    /// happens to drop the rank of `A` — essentially never for the
    /// small-entry matrices this module builds.)
    pub fn has_modular_filter(&self) -> bool {
        self.filter.is_some()
    }

    /// Truth-matrix entry for one column: singular ⟺ membership.
    pub fn entry(&self, col: &ColumnKey) -> bool {
        if let Some(f) = &self.filter {
            if !f.maybe_in_span(&col.bu) {
                return false;
            }
        }
        let bu: Vec<Rational> = col.bu.iter().map(|e| Rational::from(e.clone())).collect();
        self.solver.contains(&bu)
    }

    /// Count ones across a column set.
    pub fn count_ones(&self, cols: &[ColumnKey]) -> usize {
        cols.iter().filter(|c| self.entry(c)).count()
    }
}

/// Enumerate all `q^{h²}` row blocks `C` (guarded).
pub fn all_c_blocks(params: Params, max: u64) -> Option<Vec<Matrix<Integer>>> {
    let h = params.h();
    let q = params.q_u64();
    let total = (q as u128).checked_pow((h * h) as u32)?;
    if total > max as u128 {
        return None;
    }
    let mut out = Vec::with_capacity(total as usize);
    for code in 0..total {
        let mut v = code;
        out.push(Matrix::from_fn(h, h, |_, _| {
            let d = (v % q as u128) as i64;
            v /= q as u128;
            Integer::from(d)
        }));
    }
    Some(out)
}

/// Sample `count` random columns (uniform `(D, E, y)`).
pub fn sample_columns<R: Rng + ?Sized>(
    params: Params,
    count: usize,
    rng: &mut R,
) -> Vec<ColumnKey> {
    (0..count)
        .map(|_| ColumnKey::of(&RestrictedInstance::random(params, rng)))
        .collect()
}

/// The columns guaranteed singular for a *given* row: completions of
/// every sampled `E` (Lemma 3.5's witnesses).
pub fn completed_columns<R: Rng + ?Sized>(
    params: Params,
    c: &Matrix<Integer>,
    count: usize,
    rng: &mut R,
) -> Vec<ColumnKey> {
    let h = params.h();
    let q = params.q_u64();
    (0..count)
        .map(|_| {
            let e = Matrix::from_fn(h, params.e_width(), |_, _| {
                Integer::from(rng.gen_range(0..q) as i64)
            });
            ColumnKey::of(&crate::lemma35::complete(params, c, &e).expect("Lemma 3.5"))
        })
        .collect()
}

/// Measured density report for one row of the restricted truth matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct RowDensity {
    /// Columns evaluated.
    pub columns: usize,
    /// Ones found among them.
    pub ones: usize,
}

/// Evaluate one row against a sampled column set.
pub fn row_density<R: Rng + ?Sized>(
    params: Params,
    c: &Matrix<Integer>,
    columns: usize,
    rng: &mut R,
) -> RowDensity {
    let row = RowEvaluator::new(params, c);
    let cols = sample_columns(params, columns, rng);
    RowDensity {
        columns,
        ones: row.count_ones(&cols),
    }
}

/// The largest 1-rectangle among given rows and columns, greedily: rows
/// are added while they keep a non-empty common singular column set
/// (the Lemma 3.3/3.7 object, on live data).
pub fn greedy_one_rectangle(
    params: Params,
    row_cs: &[Matrix<Integer>],
    cols: &[ColumnKey],
) -> (Vec<usize>, Vec<usize>) {
    let evaluators: Vec<RowEvaluator> = row_cs
        .iter()
        .map(|c| RowEvaluator::new(params, c))
        .collect();
    let mut best: (usize, Vec<usize>, Vec<usize>) = (0, Vec::new(), Vec::new());
    for seed in 0..evaluators.len() {
        let mut live: Vec<usize> = (0..cols.len())
            .filter(|&j| evaluators[seed].entry(&cols[j]))
            .collect();
        let mut rows = vec![seed];
        if live.is_empty() {
            continue;
        }
        loop {
            let mut improved = false;
            #[allow(clippy::needless_range_loop)]
            for cand in 0..evaluators.len() {
                if rows.contains(&cand) {
                    continue;
                }
                let filtered: Vec<usize> = live
                    .iter()
                    .copied()
                    .filter(|&j| evaluators[cand].entry(&cols[j]))
                    .collect();
                if (rows.len() + 1) * filtered.len() > rows.len() * live.len() {
                    rows.push(cand);
                    live = filtered;
                    improved = true;
                    break;
                }
            }
            if !improved {
                break;
            }
        }
        let area = rows.len() * live.len();
        if area > best.0 {
            best = (area, rows, live);
        }
    }
    (best.1, best.2)
}

/// All `q^{(n²−1)/2}` column keys of the restricted truth matrix,
/// enumerated exhaustively (guarded by `max` on the count). Columns are
/// generated directly in `B·u` form: each free entry of `(D, E, y)` is a
/// digit, and `B·u`'s components are radix evaluations — no matrix
/// assembly per column.
pub fn all_column_keys(params: Params, max: u64) -> Option<Vec<ColumnKey>> {
    let n = params.n;
    let h = params.h();
    let q = params.q_u64();
    let dw = params.d_width();
    let ew = params.e_width();
    let free = h * dw + h * ew + (n - 1);
    let total = (q as u128).checked_pow(free as u32)?;
    if total > max as u128 {
        return None;
    }
    let u = crate::negaq::power_vector(q, n - 1);
    let w = crate::negaq::power_vector(q, ew);
    let mut out = Vec::with_capacity(total as usize);
    for code in 0..total {
        let mut v = code;
        let mut digit = || {
            let d = (v % q as u128) as i64;
            v /= q as u128;
            Integer::from(d)
        };
        let mut bu = vec![Integer::zero(); n];
        // D rows: digits at u positions 0..dw-1.
        for row in bu.iter_mut().take(h) {
            for ut in u.iter().take(dw) {
                *row += &(&digit() * ut);
            }
        }
        // E rows: digits against w.
        for row in bu.iter_mut().take(n - 1).skip(h) {
            for wt in w.iter().take(ew) {
                *row += &(&digit() * wt);
            }
        }
        // y row: digits against the full u.
        for ut in u.iter().take(n - 1) {
            bu[n - 1] += &(&digit() * ut);
        }
        out.push(ColumnKey { bu });
    }
    Some(out)
}

/// Exact census of a full row of the restricted truth matrix: the
/// number of singular columns among **all** of them. Only feasible for
/// the tiniest families (`(n, k) = (5, 2)`: `3¹² = 531 441` columns).
pub fn exact_row_census(
    params: Params,
    c: &Matrix<Integer>,
    max_columns: u64,
) -> Option<RowDensity> {
    let cols = all_column_keys(params, max_columns)?;
    let row = RowEvaluator::new(params, c);
    Some(RowDensity {
        columns: cols.len(),
        ones: row.count_ones(&cols),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lemma32;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn column_keys_match_instance_bu() {
        // The radix-direct enumeration must agree with assembling B.
        let params = Params::new(5, 2);
        let keys = all_column_keys(params, 1 << 20).expect("3^12 columns");
        assert_eq!(keys.len(), 531_441);
        // The all-zero column has B·u = 0.
        assert!(keys[0].bu.iter().all(|v| v.is_zero()));
        // Sampled keys are pairwise distinct (no dead digit positions).
        let mut seen = std::collections::HashSet::new();
        for k in keys.iter().take(5000) {
            let sig: Vec<String> = k.bu.iter().map(|v| v.to_string()).collect();
            assert!(
                seen.insert(sig.join(",")),
                "duplicate B·u among sampled keys"
            );
        }
        // Oversized families are refused.
        assert!(all_column_keys(Params::new(7, 2), 1 << 20).is_none());
    }

    #[test]
    fn row_evaluator_matches_full_singularity() {
        let mut rng = StdRng::seed_from_u64(61);
        let params = Params::new(7, 2);
        for _ in 0..10 {
            let inst = RestrictedInstance::random(params, &mut rng);
            let row = RowEvaluator::new(params, &inst.c);
            let col = ColumnKey::of(&inst);
            assert_eq!(row.entry(&col), lemma32::m_is_singular(&inst));
        }
    }

    #[test]
    fn completed_columns_are_all_ones() {
        let mut rng = StdRng::seed_from_u64(62);
        let params = Params::new(7, 2);
        let c = RestrictedInstance::random(params, &mut rng).c;
        let row = RowEvaluator::new(params, &c);
        let cols = completed_columns(params, &c, 20, &mut rng);
        assert_eq!(
            row.count_ones(&cols),
            20,
            "Lemma 3.5 columns must all be ones"
        );
    }

    #[test]
    fn modular_prefilter_is_armed_and_agrees_with_exact() {
        let mut rng = StdRng::seed_from_u64(65);
        let params = Params::new(7, 2);
        let c = RestrictedInstance::random(params, &mut rng).c;
        let row = RowEvaluator::new(params, &c);
        assert!(row.has_modular_filter(), "2^61-prime should preserve rank");
        // Cross-check filtered entries against the raw rational test on
        // both rejecting (random) and accepting (completed) columns.
        let mut inst = RestrictedInstance::zero(params);
        inst.c = c.clone();
        let a = inst.matrix_a().map(|e| Rational::from(e.clone()));
        let mut cols = sample_columns(params, 30, &mut rng);
        cols.extend(completed_columns(params, &c, 10, &mut rng));
        for col in &cols {
            let bu: Vec<Rational> = col.bu.iter().map(|e| Rational::from(e.clone())).collect();
            let exact = ccmx_linalg::gauss::in_column_span(&RationalField, &a, &bu);
            assert_eq!(row.entry(col), exact);
        }
    }

    #[test]
    fn all_c_blocks_tiny_count() {
        let params = Params::new(5, 2);
        let blocks = all_c_blocks(params, 100).unwrap();
        assert_eq!(blocks.len(), 81);
        // All distinct.
        let set: std::collections::HashSet<String> =
            blocks.iter().map(|b| format!("{b:?}")).collect();
        assert_eq!(set.len(), 81);
        assert!(all_c_blocks(Params::new(9, 3), 100).is_none());
    }

    #[test]
    fn random_columns_are_mostly_zeros() {
        // Singularity is rare among random columns — the truth matrix is
        // sparse relative to the full grid, which is exactly why the
        // completion lemma is needed to exhibit the ones.
        let mut rng = StdRng::seed_from_u64(63);
        let params = Params::new(7, 2);
        let c = RestrictedInstance::random(params, &mut rng).c;
        let d = row_density(params, &c, 60, &mut rng);
        assert!(
            d.ones < d.columns / 2,
            "random columns unexpectedly dense: {d:?}"
        );
    }

    #[test]
    fn rectangle_on_live_family_rows_share_columns() {
        // Columns completed for C₁ are ones for row C₁; a rectangle with
        // a second random row keeps only columns that are also in the
        // second row's span — typically few. The greedy search must
        // return a verified rectangle.
        let mut rng = StdRng::seed_from_u64(64);
        let params = Params::new(5, 2);
        let rows: Vec<Matrix<Integer>> = (0..4)
            .map(|_| RestrictedInstance::random(params, &mut rng).c)
            .collect();
        let mut cols = completed_columns(params, &rows[0], 10, &mut rng);
        cols.extend(completed_columns(params, &rows[1], 10, &mut rng));
        let (ridx, cidx) = greedy_one_rectangle(params, &rows, &cols);
        // Verify 1-chromaticity of the returned rectangle.
        for &r in &ridx {
            let ev = RowEvaluator::new(params, &rows[r]);
            for &c in &cidx {
                assert!(ev.entry(&cols[c]), "greedy returned a non-1 rectangle");
            }
        }
        assert!(!ridx.is_empty() && !cidx.is_empty());
    }
}
