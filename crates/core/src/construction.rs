//! The restricted input format of Figs. 1 and 3.
//!
//! The hard instances are `2n × 2n` matrices `M` (entries in
//! `[0, 2^k − 1]`, `n` odd) with everything fixed except four blocks of
//! free entries, all ranging over `[0, q − 1]` with `q = 2^k − 1`:
//!
//! * `C` — `h × h` (`h = (n−1)/2`), inside `A`; parameterizes the row of
//!   the truth matrix (agent A's half under `π₀`),
//! * `D` (`h × (L+2)`), `E` (`h × (n−3−L)`) and the row `y` (`n−1`
//!   entries) — inside `B`; parameterize the column.
//!
//! Layout of `M` (0-indexed; paper is 1-indexed):
//!
//! ```text
//!        col 0   cols 1..n-1         cols n..2n-1
//! row 0   [1]    [    0    ]   [ anti-diagonal of 1s with a
//!  ...    [0]    [    0    ]     parallel sub-diagonal of qs ]   rows 0..n-1
//! row n-1 [0]    [    0    ]
//! row n   [0]    [         ]   [0 |                         ]
//!  ...    [0]    [    A    ]   [0 |           B             ]   rows n..2n-1
//! row 2n-1[0]    [         ]   [0 |                         ]
//! ```
//!
//! `A` (`n × (n−1)`): ones on the diagonal, `q` on the superdiagonal of
//! the first `h` columns, `C` in rows `0..h` × columns `h..n−1`, a `1` at
//! `(n−1, 0)`, zeros elsewhere.
//!
//! `B` (`n × (n−1)`): rows `0..h` hold `D` in the first `L+2` columns;
//! rows `h..n−1` hold `E` in the last `n−3−L` columns; row `n−1` is `y`.

use ccmx_bigint::{Integer, Natural};
use ccmx_linalg::Matrix;
use rand::Rng;

use crate::negaq::{dot, power_vector};
use crate::params::Params;

/// One member of the restricted family: the four free blocks.
#[derive(Clone, Debug, PartialEq)]
pub struct RestrictedInstance {
    /// Parameters.
    pub params: Params,
    /// The `h × h` block `C` (rows of the restricted truth matrix).
    pub c: Matrix<Integer>,
    /// The `h × (L+2)` block `D`.
    pub d: Matrix<Integer>,
    /// The `h × (n−3−L)` block `E`.
    pub e: Matrix<Integer>,
    /// The `n−1` row vector `y`.
    pub y: Vec<Integer>,
}

fn check_range(name: &str, it: impl IntoIterator<Item = Integer>, q: &Integer) {
    for v in it {
        assert!(
            !v.is_negative() && &v < q,
            "{name} entry {v} outside the restricted range [0, q-1]"
        );
    }
}

impl RestrictedInstance {
    /// Build from explicit blocks, validating shapes and ranges.
    pub fn new(
        params: Params,
        c: Matrix<Integer>,
        d: Matrix<Integer>,
        e: Matrix<Integer>,
        y: Vec<Integer>,
    ) -> Self {
        let h = params.h();
        assert_eq!((c.rows(), c.cols()), (h, h), "C must be h × h");
        assert_eq!(
            (d.rows(), d.cols()),
            (h, params.d_width()),
            "D must be h × (L+2)"
        );
        assert_eq!(
            (e.rows(), e.cols()),
            (h, params.e_width()),
            "E must be h × (n-3-L)"
        );
        assert_eq!(y.len(), params.n - 1, "y must have n-1 entries");
        let q = params.q();
        check_range("C", c.data().iter().cloned(), &q);
        check_range("D", d.data().iter().cloned(), &q);
        check_range("E", e.data().iter().cloned(), &q);
        check_range("y", y.iter().cloned(), &q);
        RestrictedInstance { params, c, d, e, y }
    }

    /// Uniformly random instance (all blocks uniform in `[0, q−1]`).
    pub fn random<R: Rng + ?Sized>(params: Params, rng: &mut R) -> Self {
        let h = params.h();
        let q = params.q_u64();
        let mut gen = |_: usize, _: usize| Integer::from(rng.gen_range(0..q) as i64);
        let c = Matrix::from_fn(h, h, &mut gen);
        let d = Matrix::from_fn(h, params.d_width(), &mut gen);
        let e = Matrix::from_fn(h, params.e_width(), &mut gen);
        let y = (0..params.n - 1)
            .map(|_| Integer::from(rng.gen_range(0..q) as i64))
            .collect();
        RestrictedInstance::new(params, c, d, e, y)
    }

    /// The all-zeros instance.
    pub fn zero(params: Params) -> Self {
        let h = params.h();
        let z = |r, c| Matrix::from_fn(r, c, |_, _| Integer::zero());
        RestrictedInstance::new(
            params,
            z(h, h),
            z(h, params.d_width()),
            z(h, params.e_width()),
            vec![Integer::zero(); params.n - 1],
        )
    }

    /// Definition 3.1's vector `u = [(−q)^{n−2}, …, (−q), 1]ᵀ`.
    pub fn u(&self) -> Vec<Integer> {
        power_vector(self.params.q_u64(), self.params.n - 1)
    }

    /// Lemma 3.7's vector `w = [(−q)^{n−4−L}, …, 1]ᵀ`.
    pub fn w(&self) -> Vec<Integer> {
        power_vector(self.params.q_u64(), self.params.e_width())
    }

    /// The `n × (n−1)` submatrix `A` (Fig. 3 restrictions applied).
    pub fn matrix_a(&self) -> Matrix<Integer> {
        let n = self.params.n;
        let h = self.params.h();
        let q = self.params.q();
        Matrix::from_fn(n, n - 1, |i, j| {
            if i < n - 1 && i == j {
                Integer::one() // diagonal
            } else if i + 1 == j && j < h {
                q.clone() // superdiagonal within the first h columns
            } else if i < h && j >= h {
                self.c[(i, j - h)].clone() // C block
            } else if i == n - 1 && j == 0 {
                Integer::one() // the lone 1 in the last row
            } else {
                Integer::zero()
            }
        })
    }

    /// The `n × (n−1)` submatrix `B` (Fig. 3 restrictions applied).
    pub fn matrix_b(&self) -> Matrix<Integer> {
        let n = self.params.n;
        let h = self.params.h();
        let dw = self.params.d_width();
        Matrix::from_fn(n, n - 1, |i, j| {
            if i < h {
                if j < dw {
                    self.d[(i, j)].clone()
                } else {
                    Integer::zero()
                }
            } else if i < n - 1 {
                if j >= dw {
                    self.e[(i - h, j - dw)].clone()
                } else {
                    Integer::zero()
                }
            } else {
                self.y[j].clone()
            }
        })
    }

    /// The vector `B·u` (the column object of Lemma 3.2).
    pub fn b_dot_u(&self) -> Vec<Integer> {
        let b = self.matrix_b();
        let u = self.u();
        (0..b.rows()).map(|i| dot(b.row(i), &u)).collect()
    }

    /// Assemble the full `2n × 2n` matrix `M` of Fig. 1.
    pub fn assemble(&self) -> Matrix<Integer> {
        let n = self.params.n;
        let q = self.params.q();
        let a = self.matrix_a();
        let b = self.matrix_b();
        Matrix::from_fn(2 * n, 2 * n, |i, j| {
            if j == 0 {
                // First column: e_0.
                if i == 0 {
                    Integer::one()
                } else {
                    Integer::zero()
                }
            } else if j < n {
                // Columns 1..n-1: zeros on top, A below.
                if i < n {
                    Integer::zero()
                } else {
                    a[(i - n, j - 1)].clone()
                }
            } else if i < n {
                // Top-right block: anti-diagonal of 1s (i + c = n-1) and a
                // parallel line of qs (i + c = n), c = j - n.
                let c = j - n;
                if i + c == n - 1 {
                    Integer::one()
                } else if i + c == n {
                    q.clone()
                } else {
                    Integer::zero()
                }
            } else if j == n {
                // Column n (paper's n+1): zero below the top block.
                Integer::zero()
            } else {
                b[(i - n, j - n - 1)].clone()
            }
        })
    }

    /// Encode `M` in the paper's bit layout.
    pub fn encode(&self) -> ccmx_comm::BitString {
        self.params.encoding().encode(&self.assemble())
    }

    /// The modulus `m = q^{n−3−L}` of Lemma 3.5's completion.
    pub fn modulus_m(&self) -> Integer {
        Integer::from(Natural::from(self.params.q_u64()).pow(self.params.e_width() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmx_linalg::{bareiss, gauss, ring::RationalField};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p7() -> Params {
        Params::new(7, 2)
    }

    #[test]
    fn shapes_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = RestrictedInstance::random(p7(), &mut rng);
        let a = inst.matrix_a();
        let b = inst.matrix_b();
        assert_eq!((a.rows(), a.cols()), (7, 6));
        assert_eq!((b.rows(), b.cols()), (7, 6));
        let m = inst.assemble();
        assert_eq!((m.rows(), m.cols()), (14, 14));
        // All entries are valid k-bit values.
        let max = Integer::from((1i64 << 2) - 1);
        for v in m.data() {
            assert!(!v.is_negative() && *v <= max);
        }
    }

    #[test]
    fn matrix_a_structure() {
        let inst = RestrictedInstance::zero(p7());
        let a = inst.matrix_a();
        let n = 7;
        let h = 3;
        let q = Integer::from(3i64);
        for i in 0..n {
            for j in 0..n - 1 {
                let expect = if i < n - 1 && i == j {
                    Integer::one()
                } else if i + 1 == j && j < h {
                    q.clone()
                } else if i == n - 1 && j == 0 {
                    Integer::one()
                } else {
                    Integer::zero() // C is zero in the zero instance
                };
                assert_eq!(a[(i, j)], expect, "A[{i}][{j}]");
            }
        }
    }

    #[test]
    fn span_a_always_has_dimension_n_minus_1() {
        // Lemma 3.4's premise: the fixed diagonal makes rank(A) = n-1 for
        // every C.
        let mut rng = StdRng::seed_from_u64(2);
        for params in [
            Params::new(5, 2),
            Params::new(7, 2),
            Params::new(7, 3),
            Params::new(9, 4),
        ] {
            for _ in 0..5 {
                let inst = RestrictedInstance::random(params, &mut rng);
                assert_eq!(
                    bareiss::rank(&inst.matrix_a()),
                    params.n - 1,
                    "rank deficiency at n={}, k={}",
                    params.n,
                    params.k
                );
            }
        }
    }

    #[test]
    fn last_2n_minus_1_columns_independent() {
        // The proof of Lemma 3.2 (and Corollary 1.3) needs columns
        // 2..2n of M linearly independent.
        let mut rng = StdRng::seed_from_u64(3);
        let inst = RestrictedInstance::random(p7(), &mut rng);
        let m = inst.assemble();
        let cols: Vec<usize> = (1..m.cols()).collect();
        let rows: Vec<usize> = (0..m.rows()).collect();
        let tail = m.submatrix(&rows, &cols);
        assert_eq!(bareiss::rank(&tail), m.cols() - 1);
    }

    #[test]
    fn top_right_block_matches_figure_one() {
        let inst = RestrictedInstance::zero(p7());
        let m = inst.assemble();
        let n = 7;
        let q = Integer::from(3i64);
        // M[0][2n-1] = 1 (paper M[1, 2n] = 1).
        assert_eq!(m[(0, 2 * n - 1)], Integer::one());
        // M[n-1][n] = 1 (paper M[n, n+1] = 1); column n otherwise 0.
        assert_eq!(m[(n - 1, n)], Integer::one());
        for i in 0..2 * n {
            if i != n - 1 {
                assert_eq!(m[(i, n)], Integer::zero(), "column n, row {i}");
            }
        }
        // The q line: M[i][j] = q iff i + (j - n) = n, within the top rows.
        for i in 0..n {
            for j in n..2 * n {
                let c = j - n;
                let expect = if i + c == n - 1 {
                    Integer::one()
                } else if i + c == n {
                    q.clone()
                } else {
                    Integer::zero()
                };
                assert_eq!(m[(i, j)], expect, "top-right ({i},{j})");
            }
        }
        // First column is e_0.
        assert_eq!(m[(0, 0)], Integer::one());
        for i in 1..2 * n {
            assert_eq!(m[(i, 0)], Integer::zero());
        }
    }

    #[test]
    fn b_dot_u_projection_is_e_dot_w() {
        // The proof of Lemma 3.7: projecting B·u to components h..n-2
        // (0-indexed rows of B) yields exactly E·w.
        let mut rng = StdRng::seed_from_u64(4);
        for params in [Params::new(7, 2), Params::new(9, 3)] {
            let inst = RestrictedInstance::random(params, &mut rng);
            let bu = inst.b_dot_u();
            let w = inst.w();
            let h = params.h();
            for r in 0..h {
                let expect = dot(inst.e.row(r), &w);
                assert_eq!(bu[h + r], expect, "row {r} of the projection");
            }
        }
    }

    #[test]
    fn d_rows_contribute_multiples_of_m() {
        // b_i · u for a D-row is always a multiple of m = q^{n-3-L}.
        let mut rng = StdRng::seed_from_u64(5);
        let params = Params::new(9, 3);
        let inst = RestrictedInstance::random(params, &mut rng);
        let bu = inst.b_dot_u();
        let m = inst.modulus_m();
        for (i, bu_i) in bu.iter().enumerate().take(params.h()) {
            assert!(
                bu_i.divisible_by(&m),
                "b_{i}·u = {bu_i} not divisible by m = {m}"
            );
        }
    }

    #[test]
    fn encode_roundtrips_through_the_shared_encoding() {
        let mut rng = StdRng::seed_from_u64(6);
        let inst = RestrictedInstance::random(p7(), &mut rng);
        let bits = inst.encode();
        let decoded = inst.params.encoding().decode(&bits);
        assert_eq!(decoded, inst.assemble());
    }

    #[test]
    #[should_panic(expected = "outside the restricted range")]
    fn rejects_out_of_range_blocks() {
        let params = p7();
        let h = params.h();
        let q_val = Matrix::from_fn(h, h, |_, _| params.q()); // = q, not ≤ q-1
        let z = |r, c| Matrix::from_fn(r, c, |_, _| Integer::zero());
        let _ = RestrictedInstance::new(
            params,
            q_val,
            z(h, params.d_width()),
            z(h, params.e_width()),
            vec![Integer::zero(); params.n - 1],
        );
    }

    #[test]
    fn rational_rank_of_m_never_below_2n_minus_1() {
        // Since the last 2n-1 columns are independent, rank(M) ∈
        // {2n-1, 2n}: exactly the singular/nonsingular dichotomy.
        let mut rng = StdRng::seed_from_u64(7);
        let f = RationalField;
        for _ in 0..5 {
            let inst = RestrictedInstance::random(p7(), &mut rng);
            let m = inst
                .assemble()
                .map(|e| ccmx_bigint::Rational::from(e.clone()));
            let r = gauss::rank(&f, &m);
            assert!(r == 13 || r == 14, "rank {r}");
        }
    }
}
