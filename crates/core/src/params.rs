//! Parameters of the restricted instance family (Section 3).
//!
//! The paper fixes a `2n × 2n` input of `k`-bit entries with `n` odd, and
//! sets `q = 2^k − 1` (the largest `k`-bit value). The Fig. 3 block
//! widths are all derived from `n`, `k`:
//!
//! * `h = (n−1)/2` — side of the square block `C`,
//! * `L = ⌈log_q n⌉` — the digit length needed to address `n` in base `q`,
//! * `D` is `h × (L + 2)`, `E` is `h × (n − 3 − L)`, `y` has `n − 1`
//!   entries; all their entries range over `[0, q − 1]`.
//!
//! The base-`q` digit machinery degenerates for `q = 1`, so the family
//! requires `k ≥ 2`; and `E`'s width must be non-negative, so
//! `n ≥ L + 3`. (Theorem 1.1 for other `n`, `k` follows by padding — see
//! [`crate::padding`] — and monotonicity in `k`.)

use ccmx_bigint::bounds::q_of_k;
use ccmx_bigint::Integer;

/// Validated parameters `(n, k)` of the restricted family, with all the
/// Fig. 3 derived quantities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Params {
    /// Half the matrix dimension; odd.
    pub n: usize,
    /// Bits per entry; `>= 2`.
    pub k: u32,
}

impl Params {
    /// Validate and construct.
    pub fn new(n: usize, k: u32) -> Self {
        assert!(n >= 5, "n must be at least 5");
        assert!(n % 2 == 1, "n must be odd (Section 3)");
        assert!((2..=63).contains(&k), "k must be in 2..=63");
        let p = Params { n, k };
        assert!(
            n >= p.log_q_n_ceil() + 3,
            "n = {n} too small for k = {k}: E would have negative width"
        );
        p
    }

    /// `q = 2^k − 1`.
    pub fn q(&self) -> Integer {
        q_of_k(self.k)
    }

    /// `q` as `u64` (valid since `k <= 63`).
    pub fn q_u64(&self) -> u64 {
        (1u64 << self.k) - 1
    }

    /// Matrix dimension `2n`.
    pub fn dim(&self) -> usize {
        2 * self.n
    }

    /// `h = (n − 1)/2`, the side of `C`.
    pub fn h(&self) -> usize {
        (self.n - 1) / 2
    }

    /// `L = ⌈log_q n⌉`.
    pub fn log_q_n_ceil(&self) -> usize {
        let q = self.q_u64();
        debug_assert!(q >= 2);
        let mut l = 0usize;
        let mut pow = 1u128;
        while pow < self.n as u128 {
            pow *= q as u128;
            l += 1;
        }
        l
    }

    /// Width of `D`: `L + 2`.
    pub fn d_width(&self) -> usize {
        self.log_q_n_ceil() + 2
    }

    /// Width of `E`: `n − 3 − L`.
    pub fn e_width(&self) -> usize {
        self.n - 3 - self.log_q_n_ceil()
    }

    /// Number of free entries in `C` (`h²`).
    pub fn c_entries(&self) -> usize {
        self.h() * self.h()
    }

    /// Number of free entries in `E` (`h · e_width`).
    pub fn e_entries(&self) -> usize {
        self.h() * self.e_width()
    }

    /// Total input bits of the `2n × 2n` instance: `k(2n)²`.
    pub fn input_bits(&self) -> u64 {
        ccmx_bigint::bounds::input_bits(self.dim(), self.k)
    }

    /// The encoding geometry shared with `ccmx-comm`.
    pub fn encoding(&self) -> ccmx_comm::MatrixEncoding {
        ccmx_comm::MatrixEncoding::new(self.dim(), self.k)
    }

    /// Enumerate all valid `Params` with input size at most `max_bits`
    /// (used by the sweep harnesses).
    pub fn sweep(max_bits: u64) -> Vec<Params> {
        let mut out = Vec::new();
        for n in (5..=99usize).step_by(2) {
            for k in 2..=16u32 {
                if (2 * n * 2 * n) as u64 * k as u64 > max_bits {
                    continue;
                }
                let p = Params { n, k };
                if n >= p.log_q_n_ceil() + 3 {
                    out.push(Params::new(n, k));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params() {
        let p = Params::new(5, 2);
        assert_eq!(p.q(), Integer::from(3i64));
        assert_eq!(p.q_u64(), 3);
        assert_eq!(p.dim(), 10);
        assert_eq!(p.h(), 2);
        // log_3(5): 3^1 = 3 < 5 <= 9 = 3^2 → L = 2.
        assert_eq!(p.log_q_n_ceil(), 2);
        assert_eq!(p.d_width(), 4);
        assert_eq!(p.e_width(), 0);
        assert_eq!(p.input_bits(), 200);
    }

    #[test]
    fn wider_params() {
        let p = Params::new(7, 2);
        assert_eq!(p.log_q_n_ceil(), 2); // 3^2 = 9 >= 7
        assert_eq!(p.e_width(), 2);
        assert_eq!(p.d_width() + p.e_width(), p.n - 1); // B's columns split exactly
        let p2 = Params::new(9, 4);
        assert_eq!(p2.q_u64(), 15);
        assert_eq!(p2.log_q_n_ceil(), 1); // 15 >= 9
        assert_eq!(p2.d_width(), 3);
        assert_eq!(p2.e_width(), 5);
        assert_eq!(p2.d_width() + p2.e_width(), p2.n - 1);
    }

    #[test]
    fn b_columns_always_split_exactly() {
        for p in Params::sweep(20_000) {
            assert_eq!(
                p.d_width() + p.e_width(),
                p.n - 1,
                "B width mismatch at n={}, k={}",
                p.n,
                p.k
            );
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn rejects_even_n() {
        let _ = Params::new(6, 2);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn rejects_k1() {
        let _ = Params::new(5, 1);
    }

    #[test]
    fn sweep_is_nonempty_and_valid() {
        let s = Params::sweep(2_000);
        assert!(!s.is_empty());
        for p in s {
            assert!(p.n % 2 == 1);
            assert!(p.input_bits() <= 2_000);
        }
    }

    #[test]
    fn log_q_n_edge_values() {
        // q = 3: log_3(9) = 2 exactly; log_3(10) = 3 (ceil).
        let p9 = Params::new(9, 2);
        assert_eq!(p9.log_q_n_ceil(), 2);
        let p11 = Params::new(11, 2);
        assert_eq!(p11.log_q_n_ceil(), 3); // 3^2 = 9 < 11 <= 27
    }
}
