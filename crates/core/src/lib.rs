//! # ccmx-core
//!
//! The paper's contribution, executable: the restricted hard-instance
//! family of Chu & Schnitger (Figs. 1 and 3), every numbered lemma of
//! Section 3 as a verified algorithm, the reductions of Corollaries 1.2
//! and 1.3, the vector-space span problem of Lovász–Saks, and the padding
//! argument that extends the bound from `2n × 2n` (n odd) to arbitrary
//! dimensions.
//!
//! Map from the paper to modules:
//!
//! | Paper | Module |
//! |---|---|
//! | Section 3 preamble (n odd, entries in `[0, 2^k−1]`, padding) | [`params`], [`padding`] |
//! | Fig. 1 (restricted input format) + Fig. 3 (blocks C, D, E, y) | [`construction`] |
//! | Definition 3.1 (vector `u`), Lemma 3.2 | [`lemma32`] |
//! | Lemma 3.3 (rectangles ⊆ span intersections) | [`rectangles`] |
//! | Lemma 3.4 (distinct C ⇒ distinct spans) | [`lemma34`] |
//! | Lemma 3.5 (completion: ∀C,E ∃D,y) | [`lemma35`] (base-(−q) digits in [`negaq`]) |
//! | Lemmas 3.6, 3.7 (span intersections, rectangle size) | [`rectangles`] |
//! | Definition 3.8, Lemma 3.9 (proper partitions) | [`proper`] |
//! | Theorem 1.1 + Section 2 counting | [`counting`] |
//! | Corollary 1.2 (det/rank/QR/SVD/LUP, A·B=C trick) | [`reductions`] |
//! | Corollary 1.3 (linear-system solvability) | [`reductions`] |
//! | Vector-space span problem (Section 1) | [`span_problem`] |

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod construction;
pub mod counting;
pub mod lemma32;
pub mod lemma34;
pub mod lemma35;
pub mod negaq;
pub mod padding;
pub mod params;
pub mod proper;
pub mod rectangles;
pub mod reductions;
pub mod restricted_truth;
pub mod span_problem;

pub use construction::RestrictedInstance;
pub use params::Params;
