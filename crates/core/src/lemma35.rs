//! Lemma 3.5: the completion algorithm.
//!
//! Part (a): *for every* choice of `C` and `E` there exist `D` and `y`
//! such that `B·u ∈ Span(A)` — i.e. every row of the restricted truth
//! matrix contains a `1`-entry for every choice of `E`, which is what
//! makes the truth matrix dense in `1`s (claim 2a of Section 2).
//!
//! The paper's proof is constructive and we implement it verbatim
//! (0-indexed; `h = (n−1)/2`, `m = q^{n−3−L}`):
//!
//! 1. For the E-rows `i ∈ [h, n−2]`, set `x_i := b_i·u = e_{i−h}·w` —
//!    these are forced, and `|x_i| < m`.
//! 2. Set `x_{h−1} := (−c_{h−1}·x_tail) mod m`, and downward
//!    `x_i := ((−q)·x_{i+1} − c_i·x_tail) mod m` for `i = h−2, …, 0`;
//!    now `a_i·x ≡ 0 (mod m)` with a bounded magnitude for all `i < h`.
//! 3. Choose the digits of `D`'s row `i` as the base-(−q) representation
//!    of `(a_i·x) / (−q)^{n−3−L}` — then `b_i·u = a_i·x` exactly.
//! 4. Choose `y` as the base-(−q) digits of `x_0`, so `b_{n−1}·u = x_0 =
//!    a_{n−1}·x`.
//!
//! The result satisfies `A·x = B·u`, hence `B·u ∈ Span(A)` and (by Lemma
//! 3.2) the assembled `M` is singular.
//!
//! Part (b)'s counting consequence (each truth-matrix row has at least
//! `q^{|E|}` ones) is exposed as [`ones_per_row_lower_log_q`], certified
//! by completion plus the injectivity of `E ↦ B·u` (base-(−q)
//! uniqueness).

use ccmx_bigint::Integer;
use ccmx_linalg::Matrix;

use crate::construction::RestrictedInstance;
use crate::negaq::{dot, power_vector, to_digits};
use crate::params::Params;

/// Given free `C` (`h × h`) and `E` (`h × (n−3−L)`), construct `D` and `y`
/// making the instance singular. Returns `None` only if a digit
/// representation fails to fit its block — which the paper's range
/// analysis rules out (and the tests confirm).
///
/// ```
/// use ccmx_core::{lemma35, lemma32, Params, RestrictedInstance};
/// let params = Params::new(7, 2);
/// let blocks = RestrictedInstance::zero(params); // any C, E will do
/// let inst = lemma35::complete(params, &blocks.c, &blocks.e).unwrap();
/// assert!(lemma32::m_is_singular(&inst)); // Lemma 3.5 ⇒ Lemma 3.2 ⇒ singular
/// ```
pub fn complete(
    params: Params,
    c: &Matrix<Integer>,
    e: &Matrix<Integer>,
) -> Option<RestrictedInstance> {
    let n = params.n;
    let h = params.h();
    let q = params.q_u64();
    let qi = params.q();
    let ew = params.e_width();
    let dw = params.d_width();
    assert_eq!((c.rows(), c.cols()), (h, h));
    assert_eq!((e.rows(), e.cols()), (h, ew));

    let w = power_vector(q, ew);
    let m = Integer::from(ccmx_bigint::Natural::from(q).pow(ew as u64));

    // x has n-1 components (coefficients on A's columns).
    let mut x = vec![Integer::zero(); n - 1];

    // Step 1: forced tail components.
    #[allow(clippy::needless_range_loop)]
    for i in h..n - 1 {
        x[i] = dot(e.row(i - h), &w);
    }
    let x_tail: Vec<Integer> = x[h..n - 1].to_vec();

    // Step 2: head components, downward recurrence mod m.
    let c_dot_tail = |row: usize| -> Integer { dot(c.row(row), &x_tail) };
    x[h - 1] = (-c_dot_tail(h - 1)).rem_euclid(&m);
    for i in (0..h - 1).rev() {
        let v = -(&qi * &x[i + 1]) - c_dot_tail(i);
        x[i] = v.rem_euclid(&m);
    }

    // a_i·x for the D-rows.
    let a_dot = |i: usize| -> Integer {
        let mut v = x[i].clone();
        if i + 1 < h {
            v += &(&qi * &x[i + 1]);
        }
        v + c_dot_tail(i)
    };

    // (−q)^{ew} — the unit that converts multiples of m into digit space.
    let neg_q_pow_ew = Integer::from(-(q as i64)).pow(ew as u64);

    // Step 3: digits of D.
    let mut d = Matrix::from_fn(h, dw, |_, _| Integer::zero());
    for i in 0..h {
        let v = a_dot(i);
        let (z, rem) = v.div_rem(&neg_q_pow_ew);
        debug_assert!(rem.is_zero(), "a_i·x must be a multiple of (−q)^{{n−3−L}}");
        // b_i·u = Σ_t D[i][t]·(−q)^{n−2−t} = (−q)^{ew}·Σ_t D[i][t]·(−q)^{(L+1)−t};
        // LSB-first digits of z map to D's columns right-to-left.
        let digits = to_digits(&z, q, dw)?;
        for (t, &dig) in digits.iter().enumerate() {
            d[(i, dw - 1 - t)] = Integer::from(dig as i64);
        }
    }

    // Step 4: digits of y (represent x_0 over the full n-1 positions).
    let y_digits = to_digits(&x[0], q, n - 1)?;
    let mut y = vec![Integer::zero(); n - 1];
    for (t, &dig) in y_digits.iter().enumerate() {
        y[n - 2 - t] = Integer::from(dig as i64);
    }

    Some(RestrictedInstance::new(params, c.clone(), d, e.clone(), y))
}

/// The witness coefficient vector `x` with `A·x = B·u` for a completed
/// instance (recomputed; used by tests and the E5 bench to cross-verify).
///
/// Solves on the certified Montgomery-CRT path (the solution is verified
/// `A·x = B·u` exactly before being returned; rational Gauss decides the
/// inconsistent case).
pub fn completion_witness(inst: &RestrictedInstance) -> Option<Vec<Integer>> {
    let x = ccmx_linalg::crt::solve_q_int(&inst.matrix_a(), &inst.b_dot_u())?;
    x.into_iter().map(|r| r.to_integer()).collect()
}

/// All-rational oracle for [`completion_witness`] (kept for tests).
pub fn completion_witness_rational(inst: &RestrictedInstance) -> Option<Vec<Integer>> {
    use ccmx_bigint::Rational;
    use ccmx_linalg::ring::RationalField;
    let f = RationalField;
    let a = inst.matrix_a().map(|e| Rational::from(e.clone()));
    let bu: Vec<Rational> = inst
        .b_dot_u()
        .iter()
        .map(|e| Rational::from(e.clone()))
        .collect();
    let x = ccmx_linalg::gauss::solve(&f, &a, &bu)?;
    x.into_iter().map(|r| r.to_integer()).collect()
}

/// Lemma 3.5(b), lower side, in `log_q` scale: every truth-matrix row has
/// at least `q^{h·(n−3−L)}` one-entries (one per choice of `E`, and
/// distinct `E` give distinct columns).
pub fn ones_per_row_lower_log_q(params: Params) -> f64 {
    params.e_entries() as f64
}

/// Lemma 3.5(b), upper side, in `log_q` scale: at most `q^{(n²−1)/2}`
/// one-entries per row (that is the total number of columns — only
/// `(n²−1)/2` entries of `B` are free).
pub fn ones_per_row_upper_log_q(params: Params) -> f64 {
    ((params.n * params.n - 1) / 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lemma32::{bu_in_span_a, m_is_singular};
    use ccmx_linalg::bareiss;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_blocks<R: Rng>(params: Params, rng: &mut R) -> (Matrix<Integer>, Matrix<Integer>) {
        let h = params.h();
        let q = params.q_u64();
        let c = Matrix::from_fn(h, h, |_, _| Integer::from(rng.gen_range(0..q) as i64));
        let e = Matrix::from_fn(h, params.e_width(), |_, _| {
            Integer::from(rng.gen_range(0..q) as i64)
        });
        (c, e)
    }

    #[test]
    fn completion_always_succeeds_and_singularizes() {
        let mut rng = StdRng::seed_from_u64(21);
        for params in [
            Params::new(5, 2),
            Params::new(7, 2),
            Params::new(7, 3),
            Params::new(9, 2),
            Params::new(9, 4),
            Params::new(11, 2),
        ] {
            for t in 0..10 {
                let (c, e) = random_blocks(params, &mut rng);
                let inst = complete(params, &c, &e).unwrap_or_else(|| {
                    panic!("completion failed at n={}, k={}, t={t}", params.n, params.k)
                });
                assert!(
                    m_is_singular(&inst),
                    "completed instance not singular at n={}, k={}, t={t}",
                    params.n,
                    params.k
                );
                // And the blocks we asked for were preserved.
                assert_eq!(inst.c, c);
                assert_eq!(inst.e, e);
            }
        }
    }

    #[test]
    fn witness_satisfies_a_x_equals_b_u() {
        let mut rng = StdRng::seed_from_u64(22);
        let params = Params::new(7, 2);
        let (c, e) = random_blocks(params, &mut rng);
        let inst = complete(params, &c, &e).unwrap();
        let x = completion_witness(&inst).expect("integral witness must exist");
        // Verify A·x = B·u in exact integer arithmetic.
        let zz = ccmx_linalg::ring::IntegerRing;
        let ax = inst.matrix_a().mul_vec(&zz, &x);
        assert_eq!(ax, inst.b_dot_u());
    }

    #[test]
    fn head_components_bounded_by_m() {
        // The recurrence keeps |x_i| < m; equivalently the witness found
        // by the rational solver (unique, since rank(A) = n-1) matches a
        // bounded vector. We check the solver's witness directly.
        let mut rng = StdRng::seed_from_u64(23);
        let params = Params::new(9, 3);
        let (c, e) = random_blocks(params, &mut rng);
        let inst = complete(params, &c, &e).unwrap();
        let x = completion_witness(&inst).unwrap();
        let m = inst.modulus_m();
        for (i, xi) in x.iter().enumerate().take(params.h()) {
            assert!(
                xi.magnitude() < m.magnitude(),
                "|x_{i}| = {xi} not below m = {m}"
            );
        }
    }

    #[test]
    fn witness_fast_path_matches_rational_oracle() {
        let mut rng = StdRng::seed_from_u64(25);
        for params in [Params::new(5, 2), Params::new(7, 2), Params::new(9, 3)] {
            for _ in 0..5 {
                let (c, e) = random_blocks(params, &mut rng);
                let inst = complete(params, &c, &e).unwrap();
                assert_eq!(
                    completion_witness(&inst),
                    completion_witness_rational(&inst),
                    "witness mismatch at n={}, k={}",
                    params.n,
                    params.k
                );
            }
        }
    }

    #[test]
    fn distinct_e_give_distinct_columns() {
        // Injectivity: E ↦ B·u is injective (base-(−q) uniqueness), so
        // each of the q^{|E|} completions is a distinct 1-column.
        let mut rng = StdRng::seed_from_u64(24);
        let params = Params::new(7, 2);
        let h = params.h();
        let q = params.q_u64();
        let c = Matrix::from_fn(h, h, |_, _| Integer::from(rng.gen_range(0..q) as i64));
        let mut seen_e = std::collections::HashSet::new();
        let mut seen_bu = std::collections::HashSet::new();
        for _ in 0..30 {
            let e = Matrix::from_fn(h, params.e_width(), |_, _| {
                Integer::from(rng.gen_range(0..q) as i64)
            });
            if !seen_e.insert(format!("{e:?}")) {
                continue; // duplicate E drawn; skip
            }
            let inst = complete(params, &c, &e).unwrap();
            let bu: Vec<String> = inst.b_dot_u().iter().map(|v| v.to_string()).collect();
            assert!(
                seen_bu.insert(bu.join(",")),
                "two distinct E blocks produced the same column B·u"
            );
        }
        // Direct check: two different E with same C produce different B·u.
        let e1 = Matrix::from_fn(h, params.e_width(), |_, _| Integer::zero());
        let mut e2 = e1.clone();
        e2[(0, 0)] = Integer::one();
        let i1 = complete(params, &c, &e1).unwrap();
        let i2 = complete(params, &c, &e2).unwrap();
        assert_ne!(i1.b_dot_u(), i2.b_dot_u());
    }

    #[test]
    fn exhaustive_tiny_family_no_failures() {
        // n = 5, k = 2 (q = 3): E is empty, C has 4 entries → enumerate
        // all 81 C instances; completion must succeed for every one.
        let params = Params::new(5, 2);
        let h = params.h();
        let q = params.q_u64();
        let e = Matrix::from_fn(h, 0, |_, _| Integer::zero());
        let mut singular_count = 0usize;
        for code in 0..q.pow(4) {
            let mut cvals = code;
            let c = Matrix::from_fn(h, h, |_, _| {
                let v = cvals % q;
                cvals /= q;
                Integer::from(v as i64)
            });
            let inst = complete(params, &c, &e).expect("completion failed");
            assert!(bareiss::is_singular(&inst.assemble()));
            assert!(bu_in_span_a(&inst));
            singular_count += 1;
        }
        assert_eq!(singular_count, 81);
    }

    #[test]
    fn counting_bounds_are_ordered() {
        for params in [Params::new(7, 2), Params::new(9, 3), Params::new(11, 4)] {
            let lo = ones_per_row_lower_log_q(params);
            let hi = ones_per_row_upper_log_q(params);
            assert!(lo <= hi);
            // Paper's asymptotic shape: lower = n²/2 − O(n log_q n).
            let n = params.n as f64;
            let slack = n * (params.log_q_n_ceil() as f64 + 3.0);
            assert!(
                lo >= n * n / 2.0 - slack,
                "lower bound shape violated: {lo}"
            );
        }
    }
}
