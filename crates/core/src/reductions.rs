//! The reductions of Corollaries 1.2 and 1.3.
//!
//! Corollary 1.2: the `Θ(k n²)` bound transfers to computing the
//! determinant, the rank, and the QR / SVD / LUP decompositions — because
//! each of those outputs *determines* singularity with `O(1)` extra
//! communication. We implement each extraction and verify it against the
//! exact singularity oracle.
//!
//! The paper also quotes the Lin–Wu block trick: with
//! `M = [[I, B], [A, C]]`, `A·B = C` **iff** `rank(M) = n` — transferring
//! hardness to "rank ≤ n/2"-type problems. (Note the direction: this
//! trick handles rank `n/2`; the paper's own Theorem 1.1 is what covers
//! ranks above `n/2`.)
//!
//! Corollary 1.3: on the restricted family, let `b` be `M`'s first column
//! and `M'` be `M` with that column zeroed. The last `2n − 1` columns of
//! `M` are independent, so `M` is singular iff `M'·x = b` is solvable —
//! transferring the bound to linear-system solvability.

use ccmx_bigint::{Integer, Rational};
use ccmx_linalg::lup::{lup, LupDecomposition};
use ccmx_linalg::qr::{qr, QrDecomposition};
use ccmx_linalg::ring::{IntegerRing, RationalField};
use ccmx_linalg::svd::{svd_structure, SvdStructure};
use ccmx_linalg::{bareiss, solve, Matrix};

use crate::construction::RestrictedInstance;

fn to_q(m: &Matrix<Integer>) -> Matrix<Rational> {
    m.map(|e| Rational::from(e.clone()))
}

// ----------------------------------------------------------------------
// Corollary 1.2: singularity from each decomposition's output
// ----------------------------------------------------------------------

/// Singularity read off the determinant (1.2a).
pub fn singular_from_det(det: &Integer) -> bool {
    det.is_zero()
}

/// Singularity read off the rank (1.2b).
pub fn singular_from_rank(rank: usize, n: usize) -> bool {
    rank < n
}

/// Singularity read off a QR factorization (1.2c): `M` is singular iff
/// some column of `Q` is zero (Gram–Schmidt hit a dependent column).
pub fn singular_from_qr(d: &QrDecomposition) -> bool {
    (0..d.q.cols()).any(|j| d.q.col(j).iter().all(|e| e.is_zero()))
}

/// Singularity read off the SVD structure (1.2d): fewer nonzero singular
/// values than the dimension.
pub fn singular_from_svd(s: &SvdStructure) -> bool {
    s.rank < s.shape.0.min(s.shape.1)
}

/// Singularity read off an LUP decomposition (1.2e): a zero diagonal
/// pivot in `U` (for square inputs, `U`'s diagonal entry of row `n−1`
/// vanishes iff rank < n — with our echelon convention, singularity shows
/// up as a zero row of `U`).
pub fn singular_from_lup(d: &LupDecomposition<Rational>) -> bool {
    let n = d.u.rows();
    // Square elimination: rank = number of nonzero rows of U.
    let rank = (0..n)
        .filter(|&i| (0..d.u.cols()).any(|j| !d.u[(i, j)].is_zero()))
        .count();
    rank < n
}

/// Verify that every decomposition's singularity extraction agrees with
/// the exact oracle on a given matrix.
pub fn corollary12_consistent(m: &Matrix<Integer>) -> bool {
    let truth = bareiss::is_singular(m);
    let f = RationalField;
    let mq = to_q(m);
    singular_from_det(&bareiss::det(m)) == truth
        && singular_from_rank(bareiss::rank(m), m.rows()) == truth
        && singular_from_qr(&qr(&mq)) == truth
        && singular_from_svd(&svd_structure(m)) == truth
        && singular_from_lup(&lup(&f, &mq)) == truth
}

// ----------------------------------------------------------------------
// The Lin–Wu block trick
// ----------------------------------------------------------------------

/// Build `M = [[I, B], [A, C]]` (the Section 1 construction).
pub fn product_check_matrix(
    a: &Matrix<Integer>,
    b: &Matrix<Integer>,
    c: &Matrix<Integer>,
) -> Matrix<Integer> {
    let n = a.rows();
    assert!(a.is_square() && b.is_square() && c.is_square());
    assert_eq!(b.rows(), n);
    assert_eq!(c.rows(), n);
    let zz = IntegerRing;
    let i = Matrix::identity(&zz, n);
    Matrix::from_blocks(&i, b, a, c)
}

/// The equivalence: `A·B = C ⟺ rank([[I, B], [A, C]]) = n`.
pub fn product_check_via_rank(
    a: &Matrix<Integer>,
    b: &Matrix<Integer>,
    c: &Matrix<Integer>,
) -> bool {
    bareiss::rank(&product_check_matrix(a, b, c)) == a.rows()
}

// ----------------------------------------------------------------------
// Corollary 1.3
// ----------------------------------------------------------------------

/// Build the Corollary 1.3 system from a restricted instance: `b` is the
/// first column of `M`, `M'` is `M` with the first column zeroed.
pub fn solvability_system(inst: &RestrictedInstance) -> (Matrix<Integer>, Vec<Integer>) {
    let m = inst.assemble();
    let b: Vec<Integer> = (0..m.rows()).map(|i| m[(i, 0)].clone()).collect();
    let mut mp = m;
    for i in 0..mp.rows() {
        mp[(i, 0)] = Integer::zero();
    }
    (mp, b)
}

/// Corollary 1.3's equivalence on one instance:
/// `M` singular ⟺ `M'·x = b` solvable.
pub fn corollary13_holds(inst: &RestrictedInstance) -> bool {
    let m = inst.assemble();
    let (mp, b) = solvability_system(inst);
    bareiss::is_singular(&m) == solve::is_solvable(&mp, &b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lemma35::complete;
    use crate::params::Params;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn corollary12_on_random_matrices() {
        let mut rng = StdRng::seed_from_u64(61);
        for n in 2..=5usize {
            for _ in 0..10 {
                let m = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(-4i64..=4)));
                assert!(corollary12_consistent(&m), "disagreement on {m:?}");
            }
        }
    }

    #[test]
    fn corollary12_on_singular_matrices() {
        let mut rng = StdRng::seed_from_u64(62);
        for n in 2..=5usize {
            for _ in 0..10 {
                let mut m = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(-4i64..=4)));
                // Duplicate a column.
                for r in 0..n {
                    m[(r, n - 1)] = m[(r, 0)].clone();
                }
                assert!(bareiss::is_singular(&m));
                assert!(corollary12_consistent(&m));
            }
        }
    }

    #[test]
    fn product_trick_detects_correct_and_wrong_products() {
        let mut rng = StdRng::seed_from_u64(63);
        let zz = IntegerRing;
        for n in 1..=4usize {
            for _ in 0..10 {
                let a = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(-3i64..=3)));
                let b = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(-3i64..=3)));
                let c = a.mul(&zz, &b);
                assert!(product_check_via_rank(&a, &b, &c), "true product rejected");
                let mut wrong = c.clone();
                wrong[(0, 0)] += &Integer::one();
                assert!(
                    !product_check_via_rank(&a, &b, &wrong),
                    "wrong product accepted"
                );
            }
        }
    }

    #[test]
    fn product_trick_rank_formula() {
        // rank([[I, B], [A, C]]) = n + rank(C − A·B): check the formula
        // itself, which is why the trick works.
        let mut rng = StdRng::seed_from_u64(64);
        let zz = IntegerRing;
        let n = 3;
        for _ in 0..10 {
            let a = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(-3i64..=3)));
            let b = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(-3i64..=3)));
            let c = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(-3i64..=3)));
            let m = product_check_matrix(&a, &b, &c);
            let residual = c.sub(&zz, &a.mul(&zz, &b));
            assert_eq!(bareiss::rank(&m), n + bareiss::rank(&residual));
        }
    }

    #[test]
    fn corollary13_on_random_and_singular_instances() {
        let mut rng = StdRng::seed_from_u64(65);
        for params in [Params::new(5, 2), Params::new(7, 2), Params::new(7, 3)] {
            // Random (almost surely nonsingular) instances.
            for _ in 0..10 {
                let inst = RestrictedInstance::random(params, &mut rng);
                assert!(corollary13_holds(&inst));
            }
            // Completed (singular) instances: the solvable side.
            for _ in 0..5 {
                let free = RestrictedInstance::random(params, &mut rng);
                let inst = complete(params, &free.c, &free.e).unwrap();
                assert!(bareiss::is_singular(&inst.assemble()));
                let (mp, b) = solvability_system(&inst);
                assert!(
                    solve::is_solvable(&mp, &b),
                    "singular instance must give solvable system"
                );
                assert!(corollary13_holds(&inst));
            }
        }
    }

    #[test]
    fn solvability_system_shape() {
        let mut rng = StdRng::seed_from_u64(66);
        let inst = RestrictedInstance::random(Params::new(5, 2), &mut rng);
        let (mp, b) = solvability_system(&inst);
        assert_eq!(mp.rows(), 10);
        assert_eq!(b.len(), 10);
        // First column of M' is zero.
        for i in 0..10 {
            assert!(mp[(i, 0)].is_zero());
        }
        // b is e_0 for the restricted family (Fig. 1 fixes column 1).
        assert_eq!(b[0], Integer::one());
        assert!(b[1..].iter().all(|v| v.is_zero()));
    }
}
