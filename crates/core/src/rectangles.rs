//! Lemmas 3.3, 3.6 and 3.7: why 1-chromatic rectangles are small.
//!
//! * **Lemma 3.3** — if a 1-rectangle has rows `A_1 … A_t` and columns
//!   `B_1·u … B_s·u`, then every `B_j·u` lies in `⋂ᵢ Span(A_i)`
//!   (immediate from Lemma 3.2, rectangle = all entries singular).
//! * **Lemma 3.6** — many distinct rows force the intersection to have
//!   dimension below `7n/8 − 1` (a counting argument over the `C`
//!   blocks).
//! * **Lemma 3.7** — once the intersection is small, its projection
//!   `p: x ↦ (x_{h}, …, x_{n−2})` has dimension `< 3n/8`, and since
//!   `p(B·u) = E·w` is a radix embedding of `E`, only
//!   `q^{3n²/8 + O(n log_q n)}` columns fit.
//!
//! Executable content: exact span-intersection bases over ℚ, the Lemma
//! 3.3 membership verifier, the projection operator, and the dimension /
//! column-count bounds — all checkable on concrete rectangles assembled
//! from [`crate::lemma35::complete`].
//!
//! The hot paths (`intersection_dimension`, `rectangle_membership_holds`)
//! run on the certified Montgomery-CRT integer pipeline
//! ([`ccmx_linalg::crt`]); the all-rational versions are retained as the
//! oracle the tests compare against.

use ccmx_bigint::{Integer, Rational};
use ccmx_linalg::crt;
use ccmx_linalg::gauss::{self, nullspace, rank};
use ccmx_linalg::ring::RationalField;
use ccmx_linalg::Matrix;

use crate::construction::RestrictedInstance;
use crate::params::Params;

fn to_q(m: &Matrix<Integer>) -> Matrix<Rational> {
    m.map(|e| Rational::from(e.clone()))
}

/// The primitive integer vector spanning the same line as rational `v`:
/// clear denominators, then divide out the content. Keeps the entries
/// small across repeated intersection folds.
fn primitive_int(v: &[Rational]) -> Vec<Integer> {
    let scale = v.iter().fold(ccmx_bigint::Natural::one(), |acc, r| {
        ccmx_bigint::gcd::lcm(&acc, r.denominator())
    });
    let scale_q = Rational::from(Integer::from(scale));
    let ints: Vec<Integer> = v
        .iter()
        .map(|r| (r * &scale_q).to_integer().expect("denominators cleared"))
        .collect();
    let content = ints.iter().fold(ccmx_bigint::Natural::zero(), |acc, x| {
        ccmx_bigint::gcd::gcd(&acc, x.magnitude())
    });
    if content.is_zero() || content.is_one() {
        return ints;
    }
    let content = Integer::from(content);
    ints.iter().map(|x| x / &content).collect()
}

/// A basis (as matrix columns) of `span(a) ∩ span(b)`, computed from the
/// nullspace of `[a | b]`: if `a·x + b·y = 0` then `a·x = −b·y` lies in
/// both spans, and these vectors generate the intersection.
pub fn span_intersection_basis(a: &Matrix<Rational>, b: &Matrix<Rational>) -> Matrix<Rational> {
    assert_eq!(a.rows(), b.rows());
    let f = RationalField;
    let concat = Matrix::from_fn(a.rows(), a.cols() + b.cols(), |i, j| {
        if j < a.cols() {
            a[(i, j)].clone()
        } else {
            b[(i, j - a.cols())].clone()
        }
    });
    let ns = nullspace(&f, &concat);
    // Each nullspace vector's a-part maps to an intersection vector.
    let vectors: Vec<Vec<Rational>> = ns
        .iter()
        .map(|v| {
            let x = &v[..a.cols()];
            a.mul_vec(&f, x)
        })
        .collect();
    if vectors.is_empty() {
        return Matrix::from_fn(a.rows(), 0, |_, _| Rational::zero());
    }
    // Reduce to an independent basis.
    let all = Matrix::from_fn(a.rows(), vectors.len(), |i, j| vectors[j][i].clone());
    let e = gauss::echelon(&f, &all);
    let keep: Vec<usize> = e.pivot_cols.clone();
    all.submatrix(&(0..a.rows()).collect::<Vec<_>>(), &keep)
}

/// Basis of `⋂ᵢ span(mᵢ)` by folding [`span_intersection_basis`].
pub fn spans_intersection(mats: &[Matrix<Rational>]) -> Matrix<Rational> {
    assert!(!mats.is_empty());
    let mut acc = mats[0].clone();
    for m in &mats[1..] {
        acc = span_intersection_basis(&acc, m);
        if acc.cols() == 0 {
            break;
        }
    }
    acc
}

/// Integer fast path of [`span_intersection_basis`]: same intersection
/// span, columns scaled to primitive integer vectors so the whole fold
/// stays on the certified CRT pipeline.
pub fn span_intersection_basis_int(a: &Matrix<Integer>, b: &Matrix<Integer>) -> Matrix<Integer> {
    assert_eq!(a.rows(), b.rows());
    let concat = Matrix::from_fn(a.rows(), a.cols() + b.cols(), |i, j| {
        if j < a.cols() {
            a[(i, j)].clone()
        } else {
            b[(i, j - a.cols())].clone()
        }
    });
    let ns = crt::nullspace_int(&concat);
    let vectors: Vec<Vec<Integer>> = ns
        .iter()
        .map(|v| {
            // The a-part image a·x over ℚ, rescaled to primitive ℤ.
            let x = &v[..a.cols()];
            let img: Vec<Rational> = (0..a.rows())
                .map(|i| {
                    let mut acc = Rational::zero();
                    for (j, xv) in x.iter().enumerate() {
                        if !xv.is_zero() && !a[(i, j)].is_zero() {
                            acc += &(&Rational::from(a[(i, j)].clone()) * xv);
                        }
                    }
                    acc
                })
                .collect();
            primitive_int(&img)
        })
        .collect();
    if vectors.is_empty() {
        return Matrix::from_fn(a.rows(), 0, |_, _| Integer::zero());
    }
    let all = Matrix::from_fn(a.rows(), vectors.len(), |i, j| vectors[j][i].clone());
    let keep = crt::independent_columns_int(&all);
    all.submatrix(&(0..a.rows()).collect::<Vec<_>>(), &keep)
}

/// Integer fast path of [`spans_intersection`].
pub fn spans_intersection_int(mats: &[Matrix<Integer>]) -> Matrix<Integer> {
    assert!(!mats.is_empty());
    let mut acc = mats[0].clone();
    for m in &mats[1..] {
        acc = span_intersection_basis_int(&acc, m);
        if acc.cols() == 0 {
            break;
        }
    }
    acc
}

/// Dimension of `⋂ᵢ Span(A(Cᵢ))` for a set of row instances. Runs on the
/// certified integer pipeline; results are exact (CRT answers are
/// verified, with rational-Gauss fallback on certification failure).
pub fn intersection_dimension(params: Params, cs: &[Matrix<Integer>]) -> usize {
    let mats: Vec<Matrix<Integer>> = cs
        .iter()
        .map(|c| {
            let mut inst = RestrictedInstance::zero(params);
            inst.c = c.clone();
            inst.matrix_a()
        })
        .collect();
    crt::rank_int(&spans_intersection_int(&mats))
}

/// All-rational oracle for [`intersection_dimension`] (kept for tests).
pub fn intersection_dimension_rational(params: Params, cs: &[Matrix<Integer>]) -> usize {
    let mats: Vec<Matrix<Rational>> = cs
        .iter()
        .map(|c| {
            let mut inst = RestrictedInstance::zero(params);
            inst.c = c.clone();
            to_q(&inst.matrix_a())
        })
        .collect();
    let f = RationalField;
    rank(&f, &spans_intersection(&mats))
}

/// Lemma 3.3 verifier: for a claimed 1-rectangle (row instances given by
/// their `C` blocks, column instances by full `RestrictedInstance`s
/// sharing those columns' `D`, `E`, `y`), check that every `B_j·u` lies
/// in every `Span(A(C_i))` — equivalently in the intersection. Span
/// membership runs on the certified CRT path.
pub fn rectangle_membership_holds(
    params: Params,
    row_cs: &[Matrix<Integer>],
    col_insts: &[RestrictedInstance],
) -> bool {
    for c in row_cs {
        let mut inst = RestrictedInstance::zero(params);
        inst.c = c.clone();
        let a = inst.matrix_a();
        for col in col_insts {
            if !crt::in_column_span_int(&a, &col.b_dot_u()) {
                return false;
            }
        }
    }
    true
}

/// The projection `p` of the proof of Lemma 3.7: keep components
/// `h..n−1` (0-indexed) of a length-`n` vector — the rows where `E`
/// lives, where `p(B·u) = E·w`.
pub fn project(params: Params, v: &[Rational]) -> Vec<Rational> {
    assert_eq!(v.len(), params.n);
    v[params.h()..params.n - 1].to_vec()
}

/// Dimension of the projection of a span (columns of `basis`).
pub fn projected_dimension(params: Params, basis: &Matrix<Rational>) -> usize {
    if basis.cols() == 0 {
        return 0;
    }
    let rows: Vec<usize> = (params.h()..params.n - 1).collect();
    let cols: Vec<usize> = (0..basis.cols()).collect();
    let f = RationalField;
    rank(&f, &basis.submatrix(&rows, &cols))
}

/// Lemma 3.6's threshold `r = q^{n²/16 + n·log_q n}` in `log_q` scale.
pub fn lemma36_row_threshold_log_q(params: Params) -> f64 {
    let n = params.n as f64;
    n * n / 16.0 + n * log_q_of_n(params)
}

/// Lemma 3.6's dimension bound: intersections of ≥ r spans have dimension
/// `< 7n/8 − 1`.
pub fn lemma36_dimension_bound(params: Params) -> f64 {
    7.0 * params.n as f64 / 8.0 - 1.0
}

/// Lemma 3.7's column bound in `log_q` scale.
///
/// The paper states `q^{3n²/8 + O(n log_q n)}`, over-approximating "each
/// row of `E` has fewer than `q^n` instances". A row of `E` actually has
/// exactly `q^{n−3−L}` instances, so specifying `3n/8` rows of `E` gives
/// the tighter `(3n/8)·(n−3−L)` exponent, which is what we report (it is
/// `3n²/8 − O(nL)`, inside the paper's slack).
pub fn lemma37_column_bound_log_q(params: Params) -> f64 {
    let n = params.n as f64;
    (3.0 * n / 8.0) * params.e_width() as f64
}

fn log_q_of_n(params: Params) -> f64 {
    (params.n as f64).ln() / (params.q_u64() as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lemma35::complete;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_c<R: Rng>(params: Params, rng: &mut R) -> Matrix<Integer> {
        let h = params.h();
        let q = params.q_u64();
        Matrix::from_fn(h, h, |_, _| Integer::from(rng.gen_range(0..q) as i64))
    }

    fn rand_e<R: Rng>(params: Params, rng: &mut R) -> Matrix<Integer> {
        let h = params.h();
        let q = params.q_u64();
        Matrix::from_fn(h, params.e_width(), |_, _| {
            Integer::from(rng.gen_range(0..q) as i64)
        })
    }

    #[test]
    fn intersection_basis_simple_planes() {
        // span{e1,e2} ∩ span{e1,e3} = span{e1} in Q^3.
        let one = || Rational::one();
        let zero = || Rational::zero();
        let a = Matrix::from_vec(3, 2, vec![one(), zero(), zero(), one(), zero(), zero()]);
        let b = Matrix::from_vec(3, 2, vec![one(), zero(), zero(), zero(), zero(), one()]);
        let basis = span_intersection_basis(&a, &b);
        let f = RationalField;
        assert_eq!(rank(&f, &basis), 1);
        // The basis vector is a multiple of e1.
        assert!(basis[(1, 0)].is_zero() && basis[(2, 0)].is_zero());
        assert!(!basis[(0, 0)].is_zero());
    }

    #[test]
    fn intersection_dimension_decreases_with_more_rows() {
        let mut rng = StdRng::seed_from_u64(41);
        let params = Params::new(9, 2);
        let mut cs = Vec::new();
        let mut dims = Vec::new();
        for _ in 0..5 {
            cs.push(rand_c(params, &mut rng));
            dims.push(intersection_dimension(params, &cs));
        }
        // Monotone non-increasing, starting at n-1.
        assert_eq!(dims[0], params.n - 1);
        for w in dims.windows(2) {
            assert!(w[1] <= w[0], "intersection dimension increased: {dims:?}");
        }
        // With several random rows the dimension must drop strictly below
        // n-1 (random spans differ by Lemma 3.4).
        assert!(dims[4] < params.n - 1, "dims = {dims:?}");
    }

    #[test]
    fn fixed_columns_of_a_always_in_intersection() {
        // The first h columns of A (and the later diagonal columns) are
        // the same for every C, so the intersection always contains them:
        // dimension >= n-1-h ... precisely, the n-1-h columns h..n-2 vary
        // with C, the first h do not. Hence dim >= h always.
        let mut rng = StdRng::seed_from_u64(42);
        let params = Params::new(9, 2);
        let cs: Vec<_> = (0..6).map(|_| rand_c(params, &mut rng)).collect();
        let dim = intersection_dimension(params, &cs);
        assert!(
            dim >= params.h(),
            "dim {dim} below the guaranteed h = {}",
            params.h()
        );
    }

    #[test]
    fn integer_pipeline_matches_rational_oracle() {
        let mut rng = StdRng::seed_from_u64(46);
        let params = Params::new(7, 2);
        let mut cs = Vec::new();
        for _ in 0..4 {
            cs.push(rand_c(params, &mut rng));
            assert_eq!(
                intersection_dimension(params, &cs),
                intersection_dimension_rational(params, &cs),
                "fast path diverged from ℚ oracle with {} rows",
                cs.len()
            );
        }
    }

    #[test]
    fn lemma33_on_constructed_rectangle() {
        // Build a genuine 1-rectangle: rows = {C}, columns = completions
        // of (C, E_j). Degenerate (one row) but exercises the verifier.
        let mut rng = StdRng::seed_from_u64(43);
        let params = Params::new(7, 2);
        let c = rand_c(params, &mut rng);
        let cols: Vec<RestrictedInstance> = (0..4)
            .map(|_| complete(params, &c, &rand_e(params, &mut rng)).unwrap())
            .collect();
        assert!(rectangle_membership_holds(
            params,
            std::slice::from_ref(&c),
            &cols
        ));
        // A fresh random C almost surely breaks membership for some column.
        let c2 = rand_c(params, &mut rng);
        if c2 != c {
            assert!(
                !rectangle_membership_holds(params, &[c2], &cols),
                "random second row should not admit all four columns"
            );
        }
    }

    #[test]
    fn projection_of_bu_is_e_dot_w() {
        let mut rng = StdRng::seed_from_u64(44);
        let params = Params::new(9, 3);
        let inst = RestrictedInstance::random(params, &mut rng);
        let bu: Vec<Rational> = inst
            .b_dot_u()
            .iter()
            .map(|e| Rational::from(e.clone()))
            .collect();
        let p = project(params, &bu);
        let w = inst.w();
        for (r, val) in p.iter().enumerate() {
            let expect = crate::negaq::dot(inst.e.row(r), &w);
            assert_eq!(*val, Rational::from(expect));
        }
    }

    #[test]
    fn projected_dimension_drops() {
        // The first h columns of A project to zero... their support is in
        // rows 0..h plus the last row; projecting to rows h..n-2 kills the
        // diagonal-1 of columns 0..h-1? Column j (j < h) has support at
        // rows {j, j-1?} all < h, plus row n-1 for column 0 — so yes, its
        // projection is zero. Hence proj(dim) <= dim - h roughly.
        let mut rng = StdRng::seed_from_u64(45);
        let params = Params::new(9, 2);
        let mut inst = RestrictedInstance::zero(params);
        inst.c = rand_c(params, &mut rng);
        let a = to_q(&inst.matrix_a());
        let full = rank(&RationalField, &a);
        let proj = projected_dimension(params, &a);
        assert_eq!(full, params.n - 1);
        assert!(
            proj <= full - params.h(),
            "projection did not kill the fixed columns"
        );
    }

    #[test]
    fn bound_values_have_paper_shape() {
        for params in [Params::new(7, 2), Params::new(11, 3), Params::new(15, 4)] {
            let n = params.n as f64;
            let l = params.log_q_n_ceil() as f64;
            let r = lemma36_row_threshold_log_q(params);
            let cols = lemma37_column_bound_log_q(params);
            assert!(r >= n * n / 16.0 && r <= n * n / 16.0 + 2.0 * n);
            // Tightened Lemma 3.7: 3n²/8 − O(nL) ≤ cols ≤ 3n²/8.
            assert!(cols <= 3.0 * n * n / 8.0);
            assert!(cols >= 3.0 * n * n / 8.0 - (l + 4.0) * n);
            assert!(lemma36_dimension_bound(params) < n);
        }
    }
}
