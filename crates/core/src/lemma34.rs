//! Lemma 3.4: distinct instances of `C` define distinct vector spaces
//! `Span(A)`, all of dimension `n − 1`.
//!
//! This gives the restricted truth matrix its `q^{(n−1)²/4}` *genuinely
//! different* rows (claim 2a needs many rows whose spans differ, so that
//! large 1-rectangles force large span intersections in Lemma 3.6).
//!
//! Executable form: the map `C ↦ canonical_form(Span(A(C)))` is
//! injective. We check it exhaustively for tiny parameters and by
//! randomized collision search for larger ones, using the RREF-based
//! canonical form from `ccmx-linalg`.

use ccmx_bigint::{Integer, Rational};
use ccmx_linalg::gauss::span_canonical_form;
use ccmx_linalg::ring::RationalField;
use ccmx_linalg::Matrix;
use rand::Rng;

use crate::construction::RestrictedInstance;
use crate::params::Params;

/// Canonical form of `Span(A(C))` (rows of the RREF of `Aᵀ`).
pub fn span_canonical(params: Params, c: &Matrix<Integer>) -> Matrix<Rational> {
    let h = params.h();
    assert_eq!((c.rows(), c.cols()), (h, h));
    let mut inst = RestrictedInstance::zero(params);
    inst.c = c.clone();
    let a = inst.matrix_a().map(|e| Rational::from(e.clone()));
    span_canonical_form(&RationalField, &a)
}

/// Number of rows of the restricted truth matrix, in `log_q` scale:
/// `(n−1)²/4` (the free entries of `C`).
pub fn row_count_log_q(params: Params) -> f64 {
    params.c_entries() as f64
}

/// Exhaustively verify injectivity of `C ↦ Span(A(C))` for parameters
/// small enough to enumerate (at most `max_instances`). Returns the
/// number of distinct spans found (must equal `q^{h²}`).
pub fn verify_injectivity_exhaustive(params: Params, max_instances: u64) -> Option<usize> {
    let h = params.h();
    let q = params.q_u64();
    let total = (q as u128).checked_pow((h * h) as u32)?;
    if total > max_instances as u128 {
        return None;
    }
    let mut seen = std::collections::HashSet::new();
    for code in 0..total {
        let mut v = code;
        let c = Matrix::from_fn(h, h, |_, _| {
            let d = (v % q as u128) as i64;
            v /= q as u128;
            Integer::from(d)
        });
        let canon = span_canonical(params, &c);
        let key = format!("{canon:?}");
        assert!(seen.insert(key), "span collision for C = {c:?}");
    }
    Some(seen.len())
}

/// Randomized collision search: sample `trials` pairs of distinct `C`
/// blocks and assert their spans differ. Returns the number of pairs
/// checked.
///
/// Span equality is decided on the certified Montgomery-CRT integer path
/// (rank comparisons), not by canonical-form hashing — the exhaustive
/// check keeps the canonical form, which it needs for set membership.
pub fn verify_injectivity_sampled<R: Rng + ?Sized>(
    params: Params,
    trials: usize,
    rng: &mut R,
) -> usize {
    let h = params.h();
    let q = params.q_u64();
    let mut checked = 0;
    for _ in 0..trials {
        let c1 = Matrix::from_fn(h, h, |_, _| Integer::from(rng.gen_range(0..q) as i64));
        let mut c2 = c1.clone();
        // Perturb one random entry to guarantee distinctness.
        let (i, j) = (rng.gen_range(0..h), rng.gen_range(0..h));
        let delta = rng.gen_range(1..q);
        let nv = (c2[(i, j)].to_i64().unwrap() as u64 + delta) % q;
        c2[(i, j)] = Integer::from(nv as i64);
        assert_ne!(c1, c2);
        let a1 = matrix_a_of(params, &c1);
        let a2 = matrix_a_of(params, &c2);
        assert!(
            !ccmx_linalg::crt::same_column_span_int(&a1, &a2),
            "distinct C blocks with identical spans: {c1:?} vs {c2:?}"
        );
        checked += 1;
    }
    checked
}

/// The `A` matrix of the instance whose `C` block is `c`.
fn matrix_a_of(params: Params, c: &Matrix<Integer>) -> Matrix<Integer> {
    let mut inst = RestrictedInstance::zero(params);
    inst.c = c.clone();
    inst.matrix_a()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exhaustive_tiny() {
        // n = 5, k = 2: q = 3, h = 2, 3^4 = 81 instances.
        let params = Params::new(5, 2);
        let count = verify_injectivity_exhaustive(params, 100).expect("small enough");
        assert_eq!(count, 81);
        assert_eq!(row_count_log_q(params), 4.0);
    }

    #[test]
    fn exhaustive_refuses_large() {
        let params = Params::new(11, 4);
        assert_eq!(verify_injectivity_exhaustive(params, 1000), None);
    }

    #[test]
    fn sampled_larger_parameters() {
        let mut rng = StdRng::seed_from_u64(31);
        for params in [Params::new(7, 2), Params::new(9, 3), Params::new(11, 2)] {
            let checked = verify_injectivity_sampled(params, 15, &mut rng);
            assert_eq!(checked, 15);
        }
    }

    #[test]
    fn certified_span_equality_matches_canonical_form() {
        let mut rng = StdRng::seed_from_u64(33);
        let params = Params::new(7, 2);
        let h = params.h();
        let q = params.q_u64();
        for _ in 0..10 {
            let c1 = Matrix::from_fn(h, h, |_, _| Integer::from(rng.gen_range(0..q) as i64));
            let c2 = Matrix::from_fn(h, h, |_, _| Integer::from(rng.gen_range(0..q) as i64));
            let fast = ccmx_linalg::crt::same_column_span_int(
                &matrix_a_of(params, &c1),
                &matrix_a_of(params, &c2),
            );
            let oracle = span_canonical(params, &c1) == span_canonical(params, &c2);
            assert_eq!(fast, oracle);
            assert!(ccmx_linalg::crt::same_column_span_int(
                &matrix_a_of(params, &c1),
                &matrix_a_of(params, &c1),
            ));
        }
    }

    #[test]
    fn all_spans_have_dimension_n_minus_1() {
        let mut rng = StdRng::seed_from_u64(32);
        let params = Params::new(7, 3);
        let h = params.h();
        let q = params.q_u64();
        for _ in 0..10 {
            let c = Matrix::from_fn(h, h, |_, _| Integer::from(rng.gen_range(0..q) as i64));
            let canon = span_canonical(params, &c);
            assert_eq!(
                canon.rows(),
                params.n - 1,
                "canonical form must have n-1 basis rows"
            );
        }
    }
}
