//! The padding reduction of Section 3's preamble.
//!
//! The lower bound is proven for `2n × 2n` inputs with `n` odd. For an
//! arbitrary `m × m` input, the paper sets `d := (m − 2) mod 4` and
//! `n := (m − d)/2` (so `n` is odd), fixes the last `d` rows and columns
//! to zero except for ones on their diagonal, and observes that the
//! padded matrix is singular iff its leading `2n × 2n` submatrix is.
//!
//! We implement the embedding in both directions and verify the
//! singularity equivalence, which is what transfers Theorem 1.1 to every
//! matrix dimension.

use ccmx_bigint::Integer;
use ccmx_linalg::{bareiss, Matrix};

/// For a target dimension `m ≥ 10`, the paper's split `(n, d)` with
/// `m = 2n + d`, `n` odd, `0 ≤ d ≤ 3`.
pub fn split(m: usize) -> (usize, usize) {
    assert!(
        m >= 10,
        "padding needs m >= 10 to leave a usable 2n x 2n core"
    );
    let d = (m - 2) % 4;
    let n = (m - d) / 2;
    debug_assert!(n % 2 == 1, "n = {n} not odd for m = {m}");
    debug_assert_eq!(2 * n + d, m);
    (n, d)
}

/// Embed a `2n × 2n` matrix into an `m × m` matrix (`m = 2n + d` from
/// [`split`]): the trailing `d` rows/columns are zero except for ones on
/// the diagonal.
pub fn pad(core: &Matrix<Integer>, m: usize) -> Matrix<Integer> {
    let (n, _d) = split(m);
    assert_eq!(core.rows(), 2 * n, "core must be 2n x 2n for m = {m}");
    assert!(core.is_square());
    let two_n = 2 * n;
    Matrix::from_fn(m, m, |i, j| {
        if i < two_n && j < two_n {
            core[(i, j)].clone()
        } else if i == j {
            Integer::one()
        } else {
            Integer::zero()
        }
    })
}

/// Extract the `2n × 2n` core of a padded matrix.
pub fn core_of(padded: &Matrix<Integer>) -> Matrix<Integer> {
    let (n, _) = split(padded.rows());
    let idx: Vec<usize> = (0..2 * n).collect();
    padded.submatrix(&idx, &idx)
}

/// The equivalence the reduction rests on.
pub fn equivalence_holds(core: &Matrix<Integer>, m: usize) -> bool {
    bareiss::is_singular(core) == bareiss::is_singular(&pad(core, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn split_produces_odd_n() {
        for m in 10..=40 {
            let (n, d) = split(m);
            assert_eq!(2 * n + d, m);
            assert!(n % 2 == 1, "m={m} -> n={n}");
            assert!(d <= 3);
        }
        assert_eq!(split(10), (5, 0));
        assert_eq!(split(11), (5, 1));
        assert_eq!(split(12), (5, 2));
        assert_eq!(split(13), (5, 3));
        assert_eq!(split(14), (7, 0));
    }

    #[test]
    fn pad_preserves_singularity_both_ways() {
        let mut rng = StdRng::seed_from_u64(51);
        for m in [11usize, 12, 13, 15] {
            let (n, _) = split(m);
            for _ in 0..10 {
                let core =
                    Matrix::from_fn(2 * n, 2 * n, |_, _| Integer::from(rng.gen_range(0i64..4)));
                assert!(equivalence_holds(&core, m), "m={m}");
            }
            // A deliberately singular core stays singular after padding.
            let mut sing =
                Matrix::from_fn(2 * n, 2 * n, |_, _| Integer::from(rng.gen_range(0i64..4)));
            for r in 0..2 * n {
                sing[(r, 1)] = sing[(r, 0)].clone();
            }
            assert!(bareiss::is_singular(&pad(&sing, m)));
        }
    }

    #[test]
    fn core_roundtrip() {
        let mut rng = StdRng::seed_from_u64(52);
        let m = 13;
        let (n, _) = split(m);
        let core = Matrix::from_fn(2 * n, 2 * n, |_, _| Integer::from(rng.gen_range(0i64..8)));
        assert_eq!(core_of(&pad(&core, m)), core);
    }

    #[test]
    fn determinant_preserved_exactly() {
        // The padding block is an identity: det(padded) = det(core).
        let mut rng = StdRng::seed_from_u64(53);
        let m = 12;
        let (n, _) = split(m);
        let core = Matrix::from_fn(2 * n, 2 * n, |_, _| Integer::from(rng.gen_range(-3i64..=3)));
        assert_eq!(bareiss::det(&pad(&core, m)), bareiss::det(&core));
    }

    #[test]
    #[should_panic(expected = "m >= 10")]
    fn small_m_rejected() {
        let _ = split(9);
    }
}
