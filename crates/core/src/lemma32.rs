//! Lemma 3.2: `M` is singular **iff** `B·u ∈ Span(A)`.
//!
//! (Premise: `dim Span(A) = n − 1`, which the Fig. 3 diagonal guarantees
//! for every instance — see the tests in [`crate::construction`].)
//!
//! The lemma is the paper's bridge from singularity testing to a clean
//! combinatorial membership problem: the entire lower bound (Lemmas
//! 3.3–3.7) reasons about `B·u` and `Span(A)` only. We expose both sides
//! as exact decision procedures and verify their equivalence.

use ccmx_bigint::Rational;
use ccmx_linalg::ring::RationalField;
use ccmx_linalg::{bareiss, gauss};

use crate::construction::RestrictedInstance;

/// Left side: is the assembled `2n × 2n` matrix singular? (Exact,
/// fraction-free elimination.)
pub fn m_is_singular(inst: &RestrictedInstance) -> bool {
    bareiss::is_singular(&inst.assemble())
}

/// Right side: is `B·u ∈ Span(A)`? Runs on the certified Montgomery-CRT
/// integer path ([`ccmx_linalg::crt`]) — exact, with rational-Gauss
/// fallback on certification failure.
pub fn bu_in_span_a(inst: &RestrictedInstance) -> bool {
    ccmx_linalg::crt::in_column_span_int(&inst.matrix_a(), &inst.b_dot_u())
}

/// The original all-rational membership test, kept as the oracle.
pub fn bu_in_span_a_rational(inst: &RestrictedInstance) -> bool {
    let f = RationalField;
    let a = inst.matrix_a().map(|e| Rational::from(e.clone()));
    let bu: Vec<Rational> = inst
        .b_dot_u()
        .iter()
        .map(|e| Rational::from(e.clone()))
        .collect();
    gauss::in_column_span(&f, &a, &bu)
}

/// The lemma as a checkable statement on one instance.
pub fn lemma32_holds(inst: &RestrictedInstance) -> bool {
    m_is_singular(inst) == bu_in_span_a(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lemma35::complete;
    use crate::params::Params;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn equivalence_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(11);
        for params in [
            Params::new(5, 2),
            Params::new(7, 2),
            Params::new(7, 3),
            Params::new(9, 4),
        ] {
            for t in 0..20 {
                let inst = RestrictedInstance::random(params, &mut rng);
                assert!(
                    lemma32_holds(&inst),
                    "Lemma 3.2 violated at n={}, k={}, trial {t}: singular={}, member={}",
                    params.n,
                    params.k,
                    m_is_singular(&inst),
                    bu_in_span_a(&inst)
                );
            }
        }
    }

    #[test]
    fn completed_instances_exercise_the_singular_side() {
        // Random instances are almost never singular; Lemma 3.5's
        // completion manufactures singular ones, so the ⇐ direction is
        // actually exercised.
        let mut rng = StdRng::seed_from_u64(12);
        for params in [Params::new(5, 2), Params::new(7, 2), Params::new(9, 3)] {
            for _ in 0..10 {
                let free = RestrictedInstance::random(params, &mut rng);
                let inst = complete(params, &free.c, &free.e).expect("completion must succeed");
                assert!(bu_in_span_a(&inst), "completion must place B·u in Span(A)");
                assert!(m_is_singular(&inst), "Lemma 3.2 ⇐ direction");
            }
        }
    }

    #[test]
    fn fast_path_agrees_with_rational_oracle() {
        let mut rng = StdRng::seed_from_u64(13);
        for params in [Params::new(5, 2), Params::new(7, 3)] {
            for _ in 0..10 {
                let inst = RestrictedInstance::random(params, &mut rng);
                assert_eq!(bu_in_span_a(&inst), bu_in_span_a_rational(&inst));
                let sing = complete(params, &inst.c, &inst.e).expect("completion");
                assert_eq!(bu_in_span_a(&sing), bu_in_span_a_rational(&sing));
            }
        }
    }

    #[test]
    fn zero_instance_both_sides_agree() {
        let inst = RestrictedInstance::zero(Params::new(7, 2));
        assert!(lemma32_holds(&inst));
        // For the zero instance B = 0 except nothing, so B·u = 0 ∈ Span(A):
        // M must be singular.
        assert!(bu_in_span_a(&inst));
        assert!(m_is_singular(&inst));
    }
}
