//! Definition 3.8 and Lemma 3.9: proper partitions.
//!
//! A partition of the input bits is **proper** if (Definition 3.8):
//!
//! 1. agent A owns at least `k(n−1)²/8` bit positions of the block `C`
//!    (i.e. at least half of `C`'s `k(n−1)²/4` bits), and
//! 2. agent B owns at least `k(n−3−⌈log_q n⌉)/2` bit positions of *every
//!    row* of the block `E` (at least half of each row).
//!
//! Lemma 3.9: *every* even partition can be transformed into a proper one
//! by permuting rows and columns of the input matrix (which preserves
//! rank/singularity) and, if necessary, renaming the agents. The paper's
//! proof is a counting case analysis; here we implement a constructive
//! search that follows the same degrees of freedom (agent naming, row
//! permutation, column permutation) and *verifies* Definition 3.8 on its
//! output — the deliverable is a checked witness, not a heuristic claim.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use ccmx_comm::partition::{Owner, Partition};

use crate::params::Params;

/// The matrix coordinates (rows, cols) of the `C` region inside `M`.
pub fn c_region(params: Params) -> (Vec<usize>, Vec<usize>) {
    let n = params.n;
    let h = params.h();
    let rows = (n..n + h).collect();
    let cols = (1 + h..n).collect();
    (rows, cols)
}

/// The matrix coordinates of the `E` region inside `M`.
pub fn e_region(params: Params) -> (Vec<usize>, Vec<usize>) {
    let n = params.n;
    let h = params.h();
    let dw = params.d_width();
    let rows = (n + h..2 * n - 1).collect();
    let cols = (n + 1 + dw..2 * n).collect();
    (rows, cols)
}

fn owned_bits_in_entry(
    partition: &Partition,
    params: Params,
    r: usize,
    c: usize,
    who: Owner,
) -> usize {
    let enc = params.encoding();
    enc.entry_positions(r, c)
        .filter(|&p| partition.owner(p) == who)
        .count()
}

/// Is the partition proper (Definition 3.8)?
pub fn is_proper(partition: &Partition, params: Params) -> bool {
    let k = params.k as usize;
    let (c_rows, c_cols) = c_region(params);
    let mut c_owned = 0usize;
    for &r in &c_rows {
        for &c in &c_cols {
            c_owned += owned_bits_in_entry(partition, params, r, c, Owner::A);
        }
    }
    let c_needed = k * (params.n - 1) * (params.n - 1) / 8;
    if c_owned < c_needed {
        return false;
    }
    let (e_rows, e_cols) = e_region(params);
    let e_row_needed = k * params.e_width() / 2;
    for &r in &e_rows {
        let owned: usize = e_cols
            .iter()
            .map(|&c| owned_bits_in_entry(partition, params, r, c, Owner::B))
            .sum();
        if owned < e_row_needed {
            return false;
        }
    }
    true
}

/// A verified Lemma 3.9 witness: apply `swap_agents`, then permute rows
/// and columns, and the partition becomes proper.
#[derive(Clone, Debug)]
pub struct ProperWitness {
    /// Whether the agents were renamed.
    pub swap_agents: bool,
    /// Row permutation (position → physical row).
    pub row_perm: Vec<usize>,
    /// Column permutation (position → physical column).
    pub col_perm: Vec<usize>,
    /// The resulting (verified proper) partition.
    pub partition: Partition,
}

/// Transform an arbitrary even partition into a proper one (Lemma 3.9).
///
/// Strategy: greedily choose which physical rows/columns to route into
/// the `C` and `E` regions to maximize the required ownerships, over both
/// agent namings, with randomized restarts on ties. Every candidate is
/// verified against [`is_proper`] before being returned.
pub fn normalize(partition: &Partition, params: Params) -> Option<ProperWitness> {
    assert!(partition.is_even(), "Lemma 3.9 applies to even partitions");
    let enc = params.encoding();
    assert_eq!(partition.len(), enc.total_bits());
    let dim = params.dim();
    let mut rng = StdRng::seed_from_u64(0x3_9_3_9);

    for swap in [false, true] {
        let base = if swap {
            partition.swapped()
        } else {
            partition.clone()
        };
        for attempt in 0..40 {
            // Per-entry counts of A-owned and B-owned bits.
            let a_cnt: Vec<Vec<usize>> = (0..dim)
                .map(|r| {
                    (0..dim)
                        .map(|c| owned_bits_in_entry(&base, params, r, c, Owner::A))
                        .collect()
                })
                .collect();
            let k = params.k as usize;
            let h = params.h();
            let ew = params.e_width();

            let jitter = |rng: &mut StdRng| {
                if attempt == 0 {
                    0i64
                } else {
                    rng.gen_range(-2..=2)
                }
            };

            // 1. Columns for C: maximize A ownership.
            let mut cols: Vec<usize> = (0..dim).collect();
            let col_score: Vec<i64> = (0..dim)
                .map(|c| (0..dim).map(|r| a_cnt[r][c] as i64).sum::<i64>() + jitter(&mut rng))
                .collect();
            cols.sort_by_key(|&c| std::cmp::Reverse(col_score[c]));
            let c_cols_phys: Vec<usize> = cols[..h].to_vec();

            // 2. Rows for C: maximize A ownership within those columns.
            let mut rows: Vec<usize> = (0..dim).collect();
            let row_score: Vec<i64> = (0..dim)
                .map(|r| {
                    c_cols_phys.iter().map(|&c| a_cnt[r][c] as i64).sum::<i64>() + jitter(&mut rng)
                })
                .collect();
            rows.sort_by_key(|&r| std::cmp::Reverse(row_score[r]));
            let c_rows_phys: Vec<usize> = rows[..h].to_vec();

            let mut c_owned = 0usize;
            for &r in &c_rows_phys {
                for &c in &c_cols_phys {
                    c_owned += a_cnt[r][c];
                }
            }
            if c_owned < k * (params.n - 1) * (params.n - 1) / 8 {
                continue;
            }

            // 3. Columns for E (disjoint from C's): maximize B ownership.
            let mut rem_cols: Vec<usize> = (0..dim).filter(|c| !c_cols_phys.contains(c)).collect();
            let b_col_score: Vec<i64> = (0..dim)
                .map(|c| {
                    (0..dim)
                        .filter(|r| !c_rows_phys.contains(r))
                        .map(|r| (k - a_cnt[r][c]) as i64)
                        .sum::<i64>()
                        + jitter(&mut rng)
                })
                .collect();
            rem_cols.sort_by_key(|&c| std::cmp::Reverse(b_col_score[c]));
            let e_cols_phys: Vec<usize> = rem_cols[..ew].to_vec();

            // 4. Rows for E (disjoint from C's): every chosen row must be
            // at least half B-owned within the chosen columns.
            let mut rem_rows: Vec<usize> = (0..dim).filter(|r| !c_rows_phys.contains(r)).collect();
            let b_row_score =
                |r: usize| -> usize { e_cols_phys.iter().map(|&c| k - a_cnt[r][c]).sum() };
            rem_rows.sort_by_key(|&r| std::cmp::Reverse(b_row_score(r)));
            let e_rows_phys: Vec<usize> = rem_rows[..h].to_vec();
            let e_needed = k * ew / 2;
            if e_rows_phys.iter().any(|&r| b_row_score(r) < e_needed) {
                continue;
            }

            // 5. Assemble permutations: route the chosen physical
            // rows/cols to the C/E region positions, fill the rest.
            let (c_rows_pos, c_cols_pos) = c_region(params);
            let (e_rows_pos, e_cols_pos) = e_region(params);
            let row_perm = build_perm(
                dim,
                &[(&c_rows_pos, &c_rows_phys), (&e_rows_pos, &e_rows_phys)],
            );
            let col_perm = build_perm(
                dim,
                &[(&c_cols_pos, &c_cols_phys), (&e_cols_pos, &e_cols_phys)],
            );
            let candidate = base.permuted(&enc, &row_perm, &col_perm);
            if is_proper(&candidate, params) {
                return Some(ProperWitness {
                    swap_agents: swap,
                    row_perm,
                    col_perm,
                    partition: candidate,
                });
            }
            // Shuffle for the next attempt.
            rem_rows.shuffle(&mut rng);
        }
    }
    None
}

/// Build a permutation sending `positions[i] → physical[i]` for each
/// (positions, physical) pair, filling remaining slots in order.
fn build_perm(dim: usize, assignments: &[(&Vec<usize>, &Vec<usize>)]) -> Vec<usize> {
    let mut perm = vec![usize::MAX; dim];
    let mut used = vec![false; dim];
    for (positions, physical) in assignments {
        assert_eq!(positions.len(), physical.len());
        for (&pos, &phy) in positions.iter().zip(physical.iter()) {
            assert_eq!(perm[pos], usize::MAX, "position {pos} assigned twice");
            assert!(!used[phy], "physical index {phy} routed twice");
            perm[pos] = phy;
            used[phy] = true;
        }
    }
    let mut free = (0..dim).filter(|&i| !used[i]);
    for slot in perm.iter_mut() {
        if *slot == usize::MAX {
            *slot = free.next().expect("enough free indices");
        }
    }
    debug_assert!({
        let mut s = perm.clone();
        s.sort_unstable();
        s == (0..dim).collect::<Vec<_>>()
    });
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmx_comm::MatrixEncoding;

    fn params() -> Params {
        Params::new(7, 2)
    }

    #[test]
    fn regions_are_disjoint_and_sized() {
        for p in [Params::new(5, 2), Params::new(7, 2), Params::new(9, 3)] {
            let (cr, cc) = c_region(p);
            let (er, ec) = e_region(p);
            assert_eq!(cr.len(), p.h());
            assert_eq!(cc.len(), p.h());
            assert_eq!(er.len(), p.h());
            assert_eq!(ec.len(), p.e_width());
            assert!(cr.iter().all(|r| !er.contains(r)), "C and E rows overlap");
            assert!(cc.iter().all(|c| !ec.contains(c)), "C and E cols overlap");
            assert!(cr.iter().chain(&er).all(|&r| r < p.dim()));
            assert!(cc.iter().chain(&ec).all(|&c| c < p.dim()));
        }
    }

    #[test]
    fn pi_zero_is_proper() {
        // Under π₀, agent A owns the first n columns — which include all
        // of C — and agent B owns the rest, including all of E.
        let p = params();
        let enc = MatrixEncoding::new(p.dim(), p.k);
        let pi0 = Partition::pi_zero(&enc);
        assert!(is_proper(&pi0, p));
    }

    #[test]
    fn swapped_pi_zero_is_not_proper() {
        let p = params();
        let enc = MatrixEncoding::new(p.dim(), p.k);
        let pi0 = Partition::pi_zero(&enc).swapped();
        assert!(!is_proper(&pi0, p));
        // But Lemma 3.9 fixes it — either by renaming the agents or by
        // routing the A-owned right-half columns into the C region.
        let w = normalize(&pi0, p).expect("Lemma 3.9 witness");
        assert!(is_proper(&w.partition, p));
    }

    #[test]
    fn random_even_partitions_normalize() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(91);
        for p in [Params::new(5, 2), Params::new(7, 2), Params::new(7, 3)] {
            let enc = MatrixEncoding::new(p.dim(), p.k);
            for t in 0..10 {
                let part = Partition::random_even(enc.total_bits(), &mut rng);
                let w = normalize(&part, p)
                    .unwrap_or_else(|| panic!("normalize failed at n={}, k={}, t={t}", p.n, p.k));
                assert!(is_proper(&w.partition, p));
                // The witness really is a permutation of the original
                // (same multiset of owners up to swapping).
                let a_before = if w.swap_agents {
                    part.count_b()
                } else {
                    part.count_a()
                };
                assert_eq!(w.partition.count_a(), a_before);
            }
        }
    }

    #[test]
    fn row_split_partition_normalizes() {
        let p = params();
        let enc = MatrixEncoding::new(p.dim(), p.k);
        let part = Partition::row_split(&enc);
        let w = normalize(&part, p).expect("row-split partition must normalize");
        assert!(is_proper(&w.partition, p));
    }

    #[test]
    fn adversarial_interleaved_partition_normalizes() {
        // Bit-interleaved partition: entries are split in half inside
        // every single entry. Both conditions can still be met since every
        // entry gives k/2 bits to each agent.
        let p = params();
        let enc = MatrixEncoding::new(p.dim(), p.k);
        let owners: Vec<Owner> = (0..enc.total_bits())
            .map(|i| if i % 2 == 0 { Owner::A } else { Owner::B })
            .collect();
        let part = Partition::new(owners);
        assert!(part.is_even());
        let w = normalize(&part, p).expect("interleaved partition must normalize");
        assert!(is_proper(&w.partition, p));
    }

    #[test]
    #[should_panic(expected = "even partitions")]
    fn uneven_partition_rejected() {
        let p = params();
        let enc = MatrixEncoding::new(p.dim(), p.k);
        let owners = vec![Owner::A; enc.total_bits()];
        let _ = normalize(&Partition::new(owners), p);
    }
}
