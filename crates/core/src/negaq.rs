//! Base-(−q) digit representations.
//!
//! The paper's vectors `u = [(−q)^{n−2}, …, (−q), 1]ᵀ` and
//! `w = [(−q)^{n−4−L}, …, 1]ᵀ` make inner products with digit vectors in
//! `[0, q−1]` act as **base-(−q) radix representations**: a row of `D`,
//! `E` or the vector `y` *is* the digit string of the integer it
//! contributes. Lemma 3.5's completion step solves for those digit
//! strings; this module provides the radix conversion it needs.
//!
//! Every integer has a unique base-(−q) representation with digits in
//! `[0, q−1]` (for `q ≥ 2`); with a fixed digit budget `width`, exactly
//! the integers whose representation fits are expressible.

use ccmx_bigint::Integer;

/// The digits of `z` in base `−q` (LSB first), each in `[0, q−1]`,
/// within `width` digits. `None` if `z` needs more than `width` digits.
pub fn to_digits(z: &Integer, q: u64, width: usize) -> Option<Vec<u64>> {
    assert!(q >= 2, "base -q needs q >= 2");
    let qi = Integer::from(q);
    let mut digits = Vec::with_capacity(width);
    let mut z = z.clone();
    for _ in 0..width {
        if z.is_zero() {
            digits.push(0);
            continue;
        }
        // digit = z mod q in [0, q-1]; then z := (z - digit) / (-q).
        let d = z.rem_euclid(&qi);
        let du = d.to_i64().expect("digit fits") as u64;
        digits.push(du);
        z = (z - d) / Integer::from(-(q as i64));
    }
    if z.is_zero() {
        Some(digits)
    } else {
        None
    }
}

/// Evaluate a digit string (LSB first) in base `−q`:
/// `Σ digits[i] · (−q)^i`.
pub fn from_digits(digits: &[u64], q: u64) -> Integer {
    let neg_q = Integer::from(-(q as i64));
    let mut acc = Integer::zero();
    for &d in digits.iter().rev() {
        acc = acc * &neg_q + Integer::from(d);
    }
    acc
}

/// The vector `[(−q)^{len−1}, (−q)^{len−2}, …, (−q), 1]ᵀ` — the paper's
/// `u` for `len = n − 1` (Definition 3.1) and `w` for `len = n − 3 − L`
/// (proof of Lemma 3.7).
pub fn power_vector(q: u64, len: usize) -> Vec<Integer> {
    let neg_q = Integer::from(-(q as i64));
    (0..len).map(|i| neg_q.pow((len - 1 - i) as u64)).collect()
}

/// Inner product of a digit row (entries `[0, q−1]` as Integers) with a
/// power vector — the `b_i · u` computations of Section 3.
pub fn dot(a: &[Integer], b: &[Integer]) -> Integer {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = Integer::zero();
    for (x, y) in a.iter().zip(b) {
        acc += &(x * y);
    }
    acc
}

/// Largest magnitude representable with `width` digits in base `−q`
/// (max over positive and negative sides): useful for range checks in the
/// Lemma 3.5 completion.
pub fn representable_magnitude(q: u64, width: usize) -> (Integer, Integer) {
    // Positive max: digits q-1 at even positions; negative min: q-1 at odd.
    let mut max_pos = Integer::zero();
    let mut min_neg = Integer::zero();
    let neg_q = Integer::from(-(q as i64));
    let d = Integer::from((q - 1) as i64);
    for i in 0..width {
        let term = &d * &neg_q.pow(i as u64);
        if i % 2 == 0 {
            max_pos += &term;
        } else {
            min_neg += &term;
        }
    }
    (min_neg, max_pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small_range() {
        for q in [2u64, 3, 7, 15] {
            for z in -300i64..=300 {
                let zi = Integer::from(z);
                let digits = to_digits(&zi, q, 32).expect("32 digits is plenty");
                assert!(digits.iter().all(|&d| d < q), "digit out of range");
                assert_eq!(from_digits(&digits, q), zi, "z={z}, q={q}");
            }
        }
    }

    #[test]
    fn width_limits() {
        // With width 1, base -3 represents exactly 0, 1, 2.
        for z in -5i64..=5 {
            let r = to_digits(&Integer::from(z), 3, 1);
            assert_eq!(r.is_some(), (0..=2).contains(&z), "z={z}");
        }
        // -1 in base -3 is digits [2, 1]: 2 + 1*(-3) = -1.
        assert_eq!(to_digits(&Integer::from(-1i64), 3, 2), Some(vec![2, 1]));
    }

    #[test]
    fn power_vector_matches_paper_u() {
        // n = 5, q = 3: u = [(-3)^3, (-3)^2, -3, 1] = [-27, 9, -3, 1].
        let u = power_vector(3, 4);
        let expect: Vec<Integer> = [-27i64, 9, -3, 1]
            .iter()
            .map(|&v| Integer::from(v))
            .collect();
        assert_eq!(u, expect);
    }

    #[test]
    fn dot_is_radix_evaluation() {
        // digits (MSB-first against power_vector) == from_digits(LSB-first).
        let q = 3u64;
        let digits_lsb = vec![2u64, 0, 1, 2];
        let as_int: Vec<Integer> = digits_lsb
            .iter()
            .rev()
            .map(|&d| Integer::from(d as i64))
            .collect();
        let u = power_vector(q, 4);
        assert_eq!(dot(&as_int, &u), from_digits(&digits_lsb, q));
    }

    #[test]
    fn representable_range_is_tight() {
        let q = 3u64;
        let width = 4;
        let (lo, hi) = representable_magnitude(q, width);
        // Exhaustively enumerate all digit strings and compare extremes.
        let mut min = Integer::zero();
        let mut max = Integer::zero();
        for d0 in 0..q {
            for d1 in 0..q {
                for d2 in 0..q {
                    for d3 in 0..q {
                        let v = from_digits(&[d0, d1, d2, d3], q);
                        if v < min {
                            min = v.clone();
                        }
                        if v > max {
                            max = v;
                        }
                    }
                }
            }
        }
        assert_eq!(min, lo);
        assert_eq!(max, hi);
        // Everything within the enumerated set must convert back.
        for z in lo.to_i64().unwrap()..=hi.to_i64().unwrap() {
            // Not all of [lo, hi] is representable in fixed width (the set
            // is not an interval); but conversion must agree with
            // membership.
            let ok = to_digits(&Integer::from(z), q, width).is_some();
            let _ = ok;
        }
    }

    #[test]
    fn uniqueness_of_representation() {
        // Two distinct digit strings never evaluate to the same integer.
        let q = 3u64;
        let width = 5;
        let mut seen = std::collections::HashMap::new();
        for code in 0..(q.pow(width as u32)) {
            let mut c = code;
            let digits: Vec<u64> = (0..width)
                .map(|_| {
                    let d = c % q;
                    c /= q;
                    d
                })
                .collect();
            let v = from_digits(&digits, q);
            if let Some(prev) = seen.insert(v.clone(), digits.clone()) {
                panic!("collision: {prev:?} and {digits:?} both give {v}");
            }
        }
    }
}
