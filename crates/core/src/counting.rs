//! The counting engine behind Theorem 1.1.
//!
//! Section 2's plan: (2a) the restricted truth matrix has many `1`s;
//! (2b) every 1-chromatic rectangle covers only a tiny fraction of them.
//! Yao's method then gives `Comm ≥ log₂ d(f) − 2` with
//! `d(f) ≥ (#ones) / (max 1-rectangle area)`.
//!
//! All quantities in the proof are powers of `q`; we carry their
//! exponents (in `log_q` scale, as `f64`) and convert to bits at the end
//! (`log₂ x = log_q x · log₂ q`, and `log₂ q = log₂(2^k − 1) ≈ k`).

use crate::lemma35;
use crate::params::Params;
use crate::rectangles;

/// The assembled Theorem 1.1 bound for one parameter point.
#[derive(Clone, Debug, PartialEq)]
pub struct TheoremBound {
    /// Parameters.
    pub params: Params,
    /// log_q(#rows) = (n−1)²/4 (Lemma 3.4).
    pub rows_log_q: f64,
    /// log_q(#cols) = (n²−1)/2 (free entries of B).
    pub cols_log_q: f64,
    /// log_q(#ones) lower bound (Lemmas 3.4 + 3.5).
    pub ones_log_q: f64,
    /// log_q of the row threshold `r` (Lemma 3.6).
    pub row_threshold_log_q: f64,
    /// log_q of the max area of a rectangle with fewer than `r` rows.
    pub small_rect_area_log_q: f64,
    /// log_q of the max area of a rectangle with at least `r` rows
    /// (Lemma 3.7).
    pub large_rect_area_log_q: f64,
    /// log_q of the implied rectangle-partition lower bound
    /// `d(f) ≥ ones / max-area`.
    pub d_log_q: f64,
    /// The final communication lower bound in bits:
    /// `log₂ d(f) − 2`, clamped at 0.
    pub lower_bound_bits: f64,
}

/// `log₂ q` for the family's `q = 2^k − 1`.
pub fn log2_q(params: Params) -> f64 {
    (((1u64 << params.k) - 1) as f64).log2()
}

/// Compute the full Theorem 1.1 bound breakdown.
pub fn theorem_bound(params: Params) -> TheoremBound {
    let rows = params.c_entries() as f64;
    let cols = ((params.n * params.n - 1) / 2) as f64;
    let ones = rows + lemma35::ones_per_row_lower_log_q(params);
    let r = rectangles::lemma36_row_threshold_log_q(params);
    let small = r + cols;
    let large = rows + rectangles::lemma37_column_bound_log_q(params);
    let max_area = small.max(large);
    let d = (ones - max_area).max(0.0);
    let bits = (d * log2_q(params) - 2.0).max(0.0);
    TheoremBound {
        params,
        rows_log_q: rows,
        cols_log_q: cols,
        ones_log_q: ones,
        row_threshold_log_q: r,
        small_rect_area_log_q: small,
        large_rect_area_log_q: large,
        d_log_q: d,
        lower_bound_bits: bits,
    }
}

/// The deterministic *upper* bound: the send-everything protocol costs
/// `⌈k(2n)²/2⌉ = 2k n²` bits under any even partition.
pub fn deterministic_upper_bound_bits(params: Params) -> f64 {
    (params.input_bits() as f64) / 2.0
}

/// The probabilistic upper bound quoted by the paper (Leighton 1987):
/// `O(n² max(log n, log k))`. We report the concrete cost of our
/// mod-random-prime protocol at the given security level.
pub fn probabilistic_upper_bound_bits(params: Params, security: u32) -> f64 {
    let proto = ccmx_comm::protocols::ModPrimeSingularity::new(params.dim(), params.k, security);
    proto.predicted_cost() as f64
}

/// The smallest `k` at which the randomized protocol's cost drops below
/// the deterministic `2k·n²` — "where the crossover falls" for the
/// paper's deterministic/probabilistic separation. `None` if it never
/// crosses within `k ≤ 63`.
pub fn randomized_crossover_k(n: usize, security: u32) -> Option<u32> {
    (2..=63u32).find(|&k| {
        let params = Params { n, k };
        // Params::new validates; construct the protocol directly for
        // the cost comparison (no family constraints needed here).
        let proto = ccmx_comm::protocols::ModPrimeSingularity::new(2 * n, k, security);
        (proto.predicted_cost() as f64) < (params.k as f64) * (2 * n * n) as f64
    })
}

/// The asymptotic ratio the paper's Theorem 1.1 certifies:
/// `lower_bound / (k n²)` — should converge to a positive constant
/// (`≈ (3/16)·...` up to the `O(n log_q n)` slack) as `n` grows.
pub fn normalized_lower_bound(params: Params) -> f64 {
    let b = theorem_bound(params);
    b.lower_bound_bits / (params.k as f64 * (params.n * params.n) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_internally_consistent() {
        for params in [
            Params::new(7, 2),
            Params::new(11, 3),
            Params::new(21, 4),
            Params::new(41, 8),
        ] {
            let b = theorem_bound(params);
            assert!(
                b.ones_log_q <= b.rows_log_q + b.cols_log_q,
                "more ones than cells"
            );
            assert!(
                b.ones_log_q >= b.rows_log_q,
                "Lemma 3.5(a): at least one 1 per row"
            );
            assert!(b.d_log_q >= 0.0);
            assert!(b.lower_bound_bits >= 0.0);
            assert!(
                b.lower_bound_bits <= deterministic_upper_bound_bits(params),
                "lower bound exceeds the trivial upper bound at n={}, k={}",
                params.n,
                params.k
            );
        }
    }

    #[test]
    fn lower_bound_is_omega_of_k_n_squared() {
        // The normalized bound must stay bounded away from 0 and grow
        // toward its asymptote as n grows (the Θ(k n²) shape). At small n
        // the concrete bound is vacuous (the O(n log_q n) slack dominates)
        // — that is inherent to the asymptotic statement, not a bug.
        for k in [2u32, 4, 8] {
            let mid = normalized_lower_bound(Params::new(61, k));
            let large = normalized_lower_bound(Params::new(99, k));
            assert!(
                mid > 0.02,
                "normalized bound vanished: {mid} at n=61, k={k}"
            );
            assert!(
                large >= mid,
                "bound degraded with n: {mid} -> {large} at k={k}"
            );
        }
    }

    #[test]
    fn leading_exponent_matches_paper() {
        // d_log_q ≈ n²/8 for large n: ones ≈ 3n²/4, and the binding
        // rectangle side approaches 5n²/8 (large rectangles) /
        // 9n²/16 (small rectangles), whichever is larger.
        let params = Params::new(81, 8);
        let b = theorem_bound(params);
        let n = params.n as f64;
        let predicted = n * n / 8.0;
        let rel = (b.d_log_q - predicted).abs() / predicted;
        assert!(
            rel < 0.25,
            "leading term off by {rel}: d = {}, predicted {predicted}",
            b.d_log_q
        );
    }

    #[test]
    fn randomized_beats_deterministic_for_large_k() {
        // Per-entry: deterministic k/2 bits vs randomized ≈ window bits ≈
        // log(k·n) + O(security). At k = 63 the ratio is well below 1.
        let params = Params::new(31, 63);
        let det = deterministic_upper_bound_bits(params);
        let prob = probabilistic_upper_bound_bits(params, 6);
        assert!(
            prob < det * 0.75,
            "randomized {prob} should be well below deterministic {det}"
        );
    }

    #[test]
    fn crossover_moves_with_security_and_size() {
        // Larger n amortizes the prime header → earlier crossover;
        // higher security widens the window → later crossover.
        let low_sec = randomized_crossover_k(31, 6).expect("crossover must exist");
        // At security 20 the window may exceed k/2 for every k ≤ 63:
        // "no crossover" counts as later than any real one.
        let high_sec = randomized_crossover_k(31, 20).unwrap_or(64);
        assert!(low_sec <= high_sec, "security should delay the crossover");
        // The crossover k is dominated by "window bits ≈ log(k·n) +
        // O(security) vs k/2": nearly n-independent, drifting *later*
        // slightly with n (log n enters the window) even though the
        // 64-bit prime header amortizes better. Check both effects stay
        // within the expected narrow band.
        let small_n = randomized_crossover_k(9, 8).expect("crossover must exist");
        let large_n = randomized_crossover_k(61, 8).expect("crossover must exist");
        assert!(
            small_n <= large_n,
            "log n enters the window: {small_n} vs {large_n}"
        );
        assert!(
            large_n - small_n <= 8,
            "crossover drift too large: {small_n} -> {large_n}"
        );
        // At the crossover, the randomized protocol really is cheaper.
        let k = large_n;
        let proto = ccmx_comm::protocols::ModPrimeSingularity::new(122, k, 8);
        assert!((proto.predicted_cost() as f64) < k as f64 * 2.0 * 61.0 * 61.0);
    }

    #[test]
    fn sandwich_lower_below_upper_everywhere() {
        for params in Params::sweep(100_000) {
            let b = theorem_bound(params);
            assert!(b.lower_bound_bits <= deterministic_upper_bound_bits(params));
        }
    }

    #[test]
    fn log2_q_close_to_k() {
        assert!((log2_q(Params::new(7, 2)) - 1.585).abs() < 0.01); // log2 3
        assert!((log2_q(Params::new(7, 8)) - 8.0).abs() < 0.01); // log2 255
    }
}
