//! Property tests for the construction crate: structural invariants of
//! the restricted family, the completion algorithm, base-(−q) laws, the
//! reductions and the partition normalizer.

use ccmx_bigint::Integer;
use ccmx_core::{lemma32, lemma35, negaq, padding, proper, reductions, Params, RestrictedInstance};
use ccmx_linalg::{bareiss, Matrix};
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_params() -> impl Strategy<Value = Params> {
    prop_oneof![
        Just(Params::new(5, 2)),
        Just(Params::new(7, 2)),
        Just(Params::new(7, 3)),
        Just(Params::new(9, 2)),
        Just(Params::new(9, 4)),
        Just(Params::new(11, 3)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn negaq_digits_roundtrip(z in -100_000i64..100_000, qk in 2u32..8) {
        let q = (1u64 << qk) - 1;
        let zi = Integer::from(z);
        let digits = negaq::to_digits(&zi, q, 64).expect("64 digits suffice");
        prop_assert_eq!(negaq::from_digits(&digits, q), zi);
        prop_assert!(digits.iter().all(|&d| d < q));
    }

    #[test]
    fn negaq_power_vector_consistency(len in 1usize..10, qk in 2u32..6) {
        let q = (1u64 << qk) - 1;
        let u = negaq::power_vector(q, len);
        // u[i] = (-q) * u[i+1].
        for i in 0..len.saturating_sub(1) {
            let expect = &u[i + 1] * &Integer::from(-(q as i64));
            prop_assert_eq!(&u[i], &expect);
        }
        prop_assert_eq!(u.last().unwrap(), &Integer::one());
    }

    #[test]
    fn instance_entries_always_k_bit(params in arb_params(), seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let inst = RestrictedInstance::random(params, &mut rng);
        let m = inst.assemble();
        let max = Integer::from((1i64 << params.k) - 1);
        for e in m.data() {
            prop_assert!(!e.is_negative() && e <= &max);
        }
        // Fixed skeleton: first column is e_0 regardless of the blocks.
        prop_assert!(m[(0, 0)].is_one());
        for i in 1..params.dim() {
            prop_assert!(m[(i, 0)].is_zero());
        }
    }

    #[test]
    fn completion_product_identity(params in arb_params(), seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let free = RestrictedInstance::random(params, &mut rng);
        let inst = lemma35::complete(params, &free.c, &free.e).expect("Lemma 3.5");
        // The defining identity, in exact arithmetic.
        let x = lemma35::completion_witness(&inst).expect("integral witness");
        let zz = ccmx_linalg::ring::IntegerRing;
        prop_assert_eq!(inst.matrix_a().mul_vec(&zz, &x), inst.b_dot_u());
        // And Lemma 3.2 closes the loop.
        prop_assert!(lemma32::m_is_singular(&inst));
    }

    #[test]
    fn corollary13_universal(params in arb_params(), seed in any::<u64>(), complete_it in any::<bool>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let inst = if complete_it {
            let free = RestrictedInstance::random(params, &mut rng);
            lemma35::complete(params, &free.c, &free.e).unwrap()
        } else {
            RestrictedInstance::random(params, &mut rng)
        };
        prop_assert!(reductions::corollary13_holds(&inst));
    }

    #[test]
    fn padding_equivalence_random_cores(m_dim in 10usize..18, seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (n, _) = padding::split(m_dim);
        let core = Matrix::from_fn(2 * n, 2 * n, |_, _| {
            Integer::from(rand::Rng::gen_range(&mut rng, 0i64..4))
        });
        prop_assert!(padding::equivalence_holds(&core, m_dim));
    }

    #[test]
    fn proper_normalizer_total_on_random_partitions(seed in any::<u64>()) {
        let params = Params::new(5, 2);
        let enc = params.encoding();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let part = ccmx_comm::Partition::random_even(enc.total_bits(), &mut rng);
        let w = proper::normalize(&part, params);
        prop_assert!(w.is_some(), "Lemma 3.9 witness not found");
        prop_assert!(proper::is_proper(&w.unwrap().partition, params));
    }

    #[test]
    fn product_trick_sound_and_complete(seed in any::<u64>(), n in 1usize..4) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let gen = |rng: &mut rand::rngs::StdRng| {
            Matrix::from_fn(n, n, |_, _| Integer::from(rand::Rng::gen_range(rng, -3i64..=3)))
        };
        let a = gen(&mut rng);
        let b = gen(&mut rng);
        let zz = ccmx_linalg::ring::IntegerRing;
        let c = a.mul(&zz, &b);
        prop_assert!(reductions::product_check_via_rank(&a, &b, &c));
        let wrong = gen(&mut rng);
        prop_assert_eq!(
            reductions::product_check_via_rank(&a, &b, &wrong),
            wrong == c
        );
    }

    #[test]
    fn assembled_rank_dichotomy(params in arb_params(), seed in any::<u64>()) {
        // rank(M) ∈ {2n−1, 2n} always (the last 2n−1 columns are fixed
        // independent).
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let inst = RestrictedInstance::random(params, &mut rng);
        let r = bareiss::rank(&inst.assemble());
        prop_assert!(r == params.dim() || r == params.dim() - 1, "rank {r}");
    }

    #[test]
    fn certified_rank_nullspace_on_completions(params in arb_params(), seed in any::<u64>()) {
        // The certified Montgomery-CRT rank/nullspace must agree with the
        // ℚ oracle on the Lemma 3.5 completion instances — both on A
        // (rank n−1 by construction) and on the assembled singular M
        // (nontrivial kernel, so the reconstruction path is exercised).
        use ccmx_bigint::Rational;
        use ccmx_linalg::ring::RationalField;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let free = RestrictedInstance::random(params, &mut rng);
        let inst = lemma35::complete(params, &free.c, &free.e).expect("completion");
        let f = RationalField;
        for m in [inst.matrix_a(), inst.assemble()] {
            let mq = m.map(|e| Rational::from(e.clone()));
            prop_assert_eq!(
                ccmx_linalg::crt::rank_int(&m),
                ccmx_linalg::gauss::rank(&f, &mq)
            );
            prop_assert_eq!(
                ccmx_linalg::crt::nullspace_int(&m),
                ccmx_linalg::gauss::nullspace(&f, &mq)
            );
        }
    }
}
