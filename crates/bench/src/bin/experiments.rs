//! Regenerate every experiment table of the reproduction (E1–E12 in
//! DESIGN.md). Each section prints the paper's claim next to the measured
//! quantity; EXPERIMENTS.md records a snapshot of this output.
//!
//! Run with: `cargo run --release -p ccmx-bench --bin experiments`
//! Optionally pass experiment ids (e.g. `e1 e8`) to run a subset.

use ccmx_bench::*;
use ccmx_comm::bounds::{fooling_set_greedy, largest_one_rectangle_greedy, lower_bounds};
use ccmx_comm::functions::BooleanFunction;
use ccmx_comm::meter::meter_inputs;
use ccmx_comm::protocols::{ModPrimeSingularity, SendAll};
use ccmx_comm::truth::TruthMatrix;
use ccmx_comm::Partition;
use ccmx_core::{
    counting, lemma32, lemma34, lemma35, padding, proper, rectangles, reductions, span_problem,
    Params,
};
use ccmx_linalg::bareiss;
use ccmx_vlsi::bounds::{improvement_over_chazelle_monier, VlsiBounds};
use ccmx_vlsi::SystolicMatMul;
use rand::Rng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    println!("==========================================================================");
    println!(" ccmx experiment harness — Chu & Schnitger (SPAA 1989 / JoC 1991)");
    println!("==========================================================================");
    if want("e1") {
        e1_deterministic_upper_bound();
    }
    if want("e2") {
        e2_certified_lower_bounds();
    }
    if want("e3") {
        e3_lemma32();
    }
    if want("e4") {
        e4_lemma34();
    }
    if want("e5") {
        e5_completion();
    }
    if want("e6") {
        e6_rectangles();
    }
    if want("e7") {
        e7_proper_partitions();
    }
    if want("e8") {
        e8_randomized();
    }
    if want("e9") {
        e9_reductions();
    }
    if want("e10") {
        e10_solvability();
    }
    if want("e11") {
        e11_vlsi();
    }
    if want("e12") {
        e12_span_problem();
    }
}

fn e1_deterministic_upper_bound() {
    println!("\n--- E1 (Theorem 1.1, upper side): deterministic send-all costs 2k·n² ---");
    println!("paper: Comm(singularity) = O(k n²); the trivial protocol ships A's half.\n");
    let mut rng = rng_for("e1");
    let mut t = Table::new(&[
        "2n",
        "k",
        "input bits",
        "predicted 2k·n²",
        "measured max",
        "errors",
    ]);
    for dim in [4usize, 8, 16, 32] {
        for k in [2u32, 8, 16] {
            let f = singularity(dim, k);
            let p = pi_zero(dim, k);
            let proto = SendAll::new(singularity(dim, k));
            let inputs = protocol_inputs(dim, k, 10, &mut rng);
            let rep = meter_inputs(&proto, &p, &f, &inputs, 1);
            let predicted = k as usize * dim * dim / 2;
            assert_eq!(rep.max_bits, predicted);
            t.row(vec![
                dim.to_string(),
                k.to_string(),
                f.num_bits().to_string(),
                predicted.to_string(),
                rep.max_bits.to_string(),
                rep.errors.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
}

fn e2_certified_lower_bounds() {
    println!("\n--- E2 (Theorem 1.1, lower side): certified rectangle bounds ---");
    println!("paper: Comm ≥ log₂ d(f) − 2 (Yao); the certificates grow with k·n².\n");
    let mut t = Table::new(&[
        "2n",
        "k",
        "truth matrix",
        "rank GF(2)",
        "rank GF(p)",
        "fooling",
        "LB bits",
        "send-all",
    ]);
    for (dim, k) in [(2usize, 1u32), (2, 2), (2, 3), (2, 4), (4, 1)] {
        let f = singularity(dim, k);
        let p = pi_zero(dim, k);
        let tm = TruthMatrix::enumerate(&f, &p, 4);
        let r = lower_bounds(&tm);
        t.row(vec![
            dim.to_string(),
            k.to_string(),
            format!("{}x{}", tm.rows(), tm.cols()),
            r.rank_gf2.to_string(),
            r.rank_big_prime.to_string(),
            r.fooling_set.to_string(),
            format!("{:.1}", r.comm_lower_bound_bits),
            p.count_a().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("asymptotic counting bound (n odd, restricted family, log_q scale → bits):\n");
    let mut t2 = Table::new(&[
        "n",
        "k",
        "ones",
        "max rect area",
        "d(f)",
        "LB bits",
        "UB bits",
        "LB/(k·n²)",
    ]);
    for p in [
        Params::new(21, 2),
        Params::new(41, 4),
        Params::new(61, 8),
        Params::new(99, 8),
    ] {
        let b = counting::theorem_bound(p);
        t2.row(vec![
            p.n.to_string(),
            p.k.to_string(),
            format!("{:.0}", b.ones_log_q),
            format!(
                "{:.0}",
                b.small_rect_area_log_q.max(b.large_rect_area_log_q)
            ),
            format!("{:.0}", b.d_log_q),
            format!("{:.0}", b.lower_bound_bits),
            format!("{:.0}", counting::deterministic_upper_bound_bits(p)),
            format!("{:.4}", counting::normalized_lower_bound(p)),
        ]);
    }
    println!("{}", t2.render());
}

fn e3_lemma32() {
    println!("\n--- E3 (Lemma 3.2): singular(M) ⟺ B·u ∈ Span(A) ---");
    println!("paper: exact equivalence given dim Span(A) = n−1.\n");
    let mut rng = rng_for("e3");
    let mut t = Table::new(&[
        "n",
        "k",
        "instances",
        "equivalence held",
        "singular side seen",
    ]);
    for params in [
        Params::new(5, 2),
        Params::new(7, 2),
        Params::new(7, 3),
        Params::new(9, 4),
    ] {
        let mut held = 0;
        let mut singular = 0;
        let trials = 30;
        for i in 0..trials {
            let inst = if i % 3 == 0 {
                let (c, e) = random_c_e(params, &mut rng);
                lemma35::complete(params, &c, &e).unwrap()
            } else {
                random_instance(params, &mut rng)
            };
            if lemma32::lemma32_holds(&inst) {
                held += 1;
            }
            if lemma32::m_is_singular(&inst) {
                singular += 1;
            }
        }
        assert_eq!(held, trials);
        t.row(vec![
            params.n.to_string(),
            params.k.to_string(),
            trials.to_string(),
            format!("{held}/{trials}"),
            singular.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn e4_lemma34() {
    println!("\n--- E4 (Lemma 3.4): distinct C ⇒ distinct Span(A); q^((n−1)²/4) rows ---");
    let mut rng = rng_for("e4");
    let mut t = Table::new(&["n", "k", "q", "paper rows = q^(h²)", "verified"]);
    for params in [Params::new(5, 2), Params::new(7, 2), Params::new(9, 3)] {
        let q = params.q_u64();
        let hh = params.h() * params.h();
        let verified = if let Some(count) = lemma34::verify_injectivity_exhaustive(params, 100) {
            format!("exhaustive: {count} distinct spans")
        } else {
            let pairs = lemma34::verify_injectivity_sampled(params, 30, &mut rng);
            format!("sampled: {pairs} perturbation pairs distinct")
        };
        t.row(vec![
            params.n.to_string(),
            params.k.to_string(),
            q.to_string(),
            format!("{q}^{hh}"),
            verified,
        ]);
    }
    println!("{}", t.render());
}

fn e5_completion() {
    println!("\n--- E5 (Lemma 3.5): ∀(C, E) ∃(D, y) making M singular; row density ---");
    println!(
        "paper: each truth-matrix row has between q^(n²/2 − O(n log_q n)) and q^(n²/2) ones.\n"
    );
    let mut rng = rng_for("e5");
    let mut t = Table::new(&[
        "n",
        "k",
        "completions tried",
        "succeeded + verified singular",
        "ones/row ≥ (log_q)",
        "ones/row ≤ (log_q)",
    ]);
    for params in [
        Params::new(5, 2),
        Params::new(7, 2),
        Params::new(9, 2),
        Params::new(9, 4),
        Params::new(11, 3),
    ] {
        let trials = 25;
        let mut ok = 0;
        for _ in 0..trials {
            let (c, e) = random_c_e(params, &mut rng);
            let inst = lemma35::complete(params, &c, &e).expect("Lemma 3.5");
            if lemma32::m_is_singular(&inst) {
                ok += 1;
            }
        }
        assert_eq!(ok, trials);
        t.row(vec![
            params.n.to_string(),
            params.k.to_string(),
            trials.to_string(),
            format!("{ok}/{trials}"),
            format!("{:.0}", lemma35::ones_per_row_lower_log_q(params)),
            format!("{:.0}", lemma35::ones_per_row_upper_log_q(params)),
        ]);
    }
    println!("{}", t.render());

    // Measured densities on the restricted truth matrix itself (the live
    // version of claim 2a). n=5, k=2 is *degenerate*: E is empty, so
    // membership is C-independent and all rows are identical — precisely
    // why the construction needs E nonempty (n ≥ L+4) for rows to differ.
    use ccmx_core::restricted_truth::{
        all_c_blocks, completed_columns, sample_columns, RowEvaluator,
    };
    let params = ccmx_core::Params::new(5, 2);
    let rows = all_c_blocks(params, 100).expect("81 rows");
    let shared_cols = sample_columns(params, 200, &mut rng);
    let mut min_ones = usize::MAX;
    let mut max_ones = 0usize;
    let mut completed_ok = true;
    for c in &rows {
        let ev = RowEvaluator::new(params, c);
        let ones = ev.count_ones(&shared_cols);
        min_ones = min_ones.min(ones);
        max_ones = max_ones.max(ones);
        let completions = completed_columns(params, c, 5, &mut rng);
        completed_ok &= ev.count_ones(&completions) == completions.len();
    }
    println!("restricted truth matrix, n=5, k=2 (all 81 rows × 200 shared random columns):");
    println!("  ones per row in [{min_ones}, {max_ones}] (E empty ⇒ constant rows, by design);");
    println!("  every completed column a 1: {completed_ok}");

    // Non-degenerate family (E nonempty): rows now differ.
    let params7 = ccmx_core::Params::new(7, 2);
    let cols7 = sample_columns(params7, 150, &mut rng);
    let mut per_row = Vec::new();
    for _ in 0..20 {
        let c = ccmx_core::RestrictedInstance::random(params7, &mut rng).c;
        let ev = RowEvaluator::new(params7, &c);
        per_row.push(ev.count_ones(&cols7));
    }
    let distinct: std::collections::HashSet<usize> = per_row.iter().copied().collect();
    println!("restricted truth matrix, n=7, k=2 (20 sampled rows × 150 shared random columns):");
    println!(
        "  ones per row: {per_row:?} — {} distinct densities (rows genuinely differ)",
        distinct.len()
    );

    // Exact census: ALL 3^12 = 531,441 columns of the n=5, k=2 family.
    use ccmx_core::restricted_truth::exact_row_census;
    let c = ccmx_core::RestrictedInstance::random(params, &mut rng).c;
    let census = exact_row_census(params, &c, 1 << 20).expect("tiny family");
    println!(
        "exact census, n=5, k=2: {} of {} columns are singular per row",
        census.ones, census.columns
    );
    println!(
        "  (paper bracket: >= q^|E| = 1 and <= q^12 = {}; measured exactly)\n",
        census.columns
    );
}

fn e6_rectangles() {
    println!("\n--- E6 (Lemmas 3.3/3.6/3.7): rectangles force small span intersections ---");
    println!("paper: ≥ r rows ⇒ dim(∩ Span) < 7n/8 − 1 ⇒ ≤ q^(3n²/8·…) columns.\n");
    let mut rng = rng_for("e6");
    let params = Params::new(9, 2);
    let mut t = Table::new(&[
        "rows in rectangle",
        "dim(∩ Span(A_i))",
        "paper dim bound (huge r)",
    ]);
    let mut cs = Vec::new();
    for r in 1..=7 {
        cs.push(random_c_e(params, &mut rng).0);
        let dim = rectangles::intersection_dimension(params, &cs);
        t.row(vec![
            r.to_string(),
            dim.to_string(),
            format!("< {:.2}", rectangles::lemma36_dimension_bound(params)),
        ]);
    }
    println!("{}", t.render());
    println!("empirical largest 1-rectangles in exhaustive truth matrices:\n");
    let mut t2 = Table::new(&["2n", "k", "ones", "greedy best rectangle", "fooling set"]);
    for (dim, k) in [(2usize, 2u32), (4, 1)] {
        let f = singularity(dim, k);
        let p = pi_zero(dim, k);
        let tm = TruthMatrix::enumerate(&f, &p, 4);
        let (rs, csr) = largest_one_rectangle_greedy(&tm);
        let fs = fooling_set_greedy(&tm);
        t2.row(vec![
            dim.to_string(),
            k.to_string(),
            tm.count_ones().to_string(),
            format!("{}x{} = {}", rs.len(), csr.len(), rs.len() * csr.len()),
            fs.len().to_string(),
        ]);
    }
    println!("{}", t2.render());
}

fn e7_proper_partitions() {
    println!("\n--- E7 (Lemma 3.9): every even partition normalizes to a proper one ---");
    let mut rng = rng_for("e7");
    let mut t = Table::new(&[
        "n",
        "k",
        "partitions",
        "normalized + verified proper",
        "agent swaps used",
    ]);
    for params in [Params::new(5, 2), Params::new(7, 2), Params::new(7, 3)] {
        let enc = params.encoding();
        let trials = 15;
        let mut ok = 0;
        let mut swaps = 0;
        for _ in 0..trials {
            let part = Partition::random_even(enc.total_bits(), &mut rng);
            let w = proper::normalize(&part, params).expect("Lemma 3.9");
            assert!(proper::is_proper(&w.partition, params));
            ok += 1;
            if w.swap_agents {
                swaps += 1;
            }
        }
        t.row(vec![
            params.n.to_string(),
            params.k.to_string(),
            trials.to_string(),
            format!("{ok}/{trials}"),
            swaps.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn e8_randomized() {
    println!("\n--- E8 (Leighton 1987): randomized O(n² max(log n, log k)) vs Θ(k n²) ---");
    println!("paper: the probabilistic complexity is O(n² max(log n, log k)) — an");
    println!("exponential-in-k/(log k) separation from the deterministic bound.\n");
    let mut rng = rng_for("e8");
    let mut t = Table::new(&[
        "2n",
        "k",
        "send-all bits",
        "mod-prime bits",
        "ratio",
        "errors/60",
        "error bound",
    ]);
    for dim in [8usize, 16] {
        for k in [8u32, 24, 48, 60] {
            let f = singularity(dim, k);
            let p = pi_zero(dim, k);
            let proto = ModPrimeSingularity::new(dim, k, 8);
            let inputs = protocol_inputs(dim, k, 60, &mut rng);
            let rep = meter_inputs(&proto, &p, &f, &inputs, 3);
            let det = k as usize * dim * dim / 2;
            t.row(vec![
                dim.to_string(),
                k.to_string(),
                det.to_string(),
                rep.max_bits.to_string(),
                format!("{:.2}", det as f64 / rep.max_bits as f64),
                rep.errors.to_string(),
                format!("{:.1e}", proto.error_bound()),
            ]);
        }
    }
    println!("{}", t.render());
    println!("(ratio > 1 = randomized wins; grows with k at fixed n, as the paper states.)\n");

    // Where the crossover falls, analytically.
    let mut t2 = Table::new(&["n", "security", "crossover k (mod-prime < send-all)"]);
    for n in [9usize, 31, 61] {
        for sec in [6u32, 8, 12] {
            let cross = counting::randomized_crossover_k(n, sec)
                .map(|k| k.to_string())
                .unwrap_or_else(|| "none ≤ 63".to_string());
            t2.row(vec![n.to_string(), sec.to_string(), cross]);
        }
    }
    println!("{}", t2.render());
}

fn e9_reductions() {
    println!("\n--- E9 (Corollary 1.2): det/rank/QR/SVD/LUP all reveal singularity ---");
    let mut rng = rng_for("e9");
    let mut t = Table::new(&[
        "n",
        "trials",
        "all five extractions consistent",
        "A·B=C block trick consistent",
    ]);
    for n in [3usize, 4, 5] {
        let trials = 20;
        let mut ok12 = 0;
        let mut ok_trick = 0;
        for i in 0..trials {
            let m = if i % 2 == 0 {
                random_matrix(n, 3, &mut rng)
            } else {
                random_singular_matrix(n, 3, &mut rng)
            };
            if reductions::corollary12_consistent(&m) {
                ok12 += 1;
            }
            let a = random_matrix(n, 2, &mut rng);
            let b = random_matrix(n, 2, &mut rng);
            let zz = ccmx_linalg::ring::IntegerRing;
            let c = a.mul(&zz, &b);
            let correct = reductions::product_check_via_rank(&a, &b, &c);
            let mut wrong = c.clone();
            wrong[(0, 0)] += &ccmx_bigint::Integer::one();
            let detects = !reductions::product_check_via_rank(&a, &b, &wrong);
            if correct && detects {
                ok_trick += 1;
            }
        }
        assert_eq!(ok12, trials);
        assert_eq!(ok_trick, trials);
        t.row(vec![
            n.to_string(),
            trials.to_string(),
            format!("{ok12}/{trials}"),
            format!("{ok_trick}/{trials}"),
        ]);
    }
    println!("{}", t.render());
}

fn e10_solvability() {
    println!("\n--- E10 (Corollary 1.3): singular(M) ⟺ M'x = b solvable, on the family ---");
    let mut rng = rng_for("e10");
    let mut t = Table::new(&[
        "n",
        "k",
        "instances",
        "equivalence held",
        "padding checks (m=2n+d)",
    ]);
    for params in [Params::new(5, 2), Params::new(7, 2), Params::new(7, 3)] {
        let trials = 20;
        let mut ok = 0;
        for i in 0..trials {
            let inst = if i % 2 == 0 {
                let (c, e) = random_c_e(params, &mut rng);
                lemma35::complete(params, &c, &e).unwrap()
            } else {
                random_instance(params, &mut rng)
            };
            if reductions::corollary13_holds(&inst) {
                ok += 1;
            }
        }
        assert_eq!(ok, trials);
        // Padding: the Section 3 preamble reduction to general m.
        let m_dim = 2 * params.n + 2;
        let core = random_matrix(2 * params.n, params.k, &mut rng);
        let pad_ok = padding::equivalence_holds(&core, m_dim);
        t.row(vec![
            params.n.to_string(),
            params.k.to_string(),
            trials.to_string(),
            format!("{ok}/{trials}"),
            format!("m={m_dim}: {pad_ok}"),
        ]);
    }
    println!("{}", t.render());

    // Randomized solvability protocol (the sub-linear counterpoint for
    // Corollary 1.3's problem, mirroring E8).
    use ccmx_comm::functions::Solvability;
    use ccmx_comm::protocols::ModPrimeSolvability;
    let mut t2 = Table::new(&["dim", "k", "send-all bits", "mod-prime bits", "errors/30"]);
    for (dim, k) in [(4usize, 8u32), (4, 48), (8, 48)] {
        let sf = Solvability::new(dim, k);
        let proto = ModPrimeSolvability::new(dim, k, 12);
        let part = Partition::random_even(sf.num_bits(), &mut rng);
        let mut errors = 0;
        for t in 0..30u64 {
            // Half solvable-by-construction (b = a column of A), half random.
            let a = ccmx_linalg::Matrix::from_fn(dim, dim, |_, _| {
                ccmx_bigint::Integer::from(rng.gen_range(0..(1i64 << k)))
            });
            let b: Vec<ccmx_bigint::Integer> = if t % 2 == 0 {
                (0..dim).map(|i| a[(i, 0)].clone()).collect()
            } else {
                (0..dim)
                    .map(|_| ccmx_bigint::Integer::from(rng.gen_range(0..(1i64 << k))))
                    .collect()
            };
            let input = sf.encode(&a, &b);
            let run = ccmx_comm::run_sequential(&proto, &part, &input, t);
            if run.output != ccmx_comm::functions::BooleanFunction::eval(&sf, &input) {
                errors += 1;
            }
        }
        t2.row(vec![
            dim.to_string(),
            k.to_string(),
            (sf.num_bits() / 2).to_string(),
            proto.predicted_cost().to_string(),
            errors.to_string(),
        ]);
    }
    println!("randomized solvability protocol (rank mod p on both sides):\n");
    println!("{}", t2.render());
}

fn e11_vlsi() {
    println!("\n--- E11 (Section 1): AT² = Ω(k²n⁴), AT = Ω(k^3/2 n³), T = Ω(k^1/2 n) ---");
    let mut t = Table::new(&[
        "n",
        "k",
        "AT² ≥",
        "AT ≥",
        "T ≥",
        "vs CM: T ×",
        "vs CM: AT ×",
    ]);
    for n in [64usize, 256, 1024] {
        for k in [8u32, 32] {
            let v = VlsiBounds::for_singularity_asymptotic(n, k);
            let (tg, atg) = improvement_over_chazelle_monier(n, k);
            t.row(vec![
                n.to_string(),
                k.to_string(),
                format!("{:.2e}", v.at2),
                format!("{:.2e}", v.at),
                format!("{:.0}", v.time_if_area_optimal),
                format!("{:.1}", tg),
                format!("{:.0}", atg),
            ]);
        }
    }
    println!("{}", t.render());
    println!("systolic chip realization (measured bisection traffic vs k·n²):\n");
    let mut rng = rng_for("e11");
    let mut t2 = Table::new(&[
        "mesh n",
        "k",
        "cycles",
        "traffic bits",
        "k·n²",
        "product verified",
    ]);
    for n in [8usize, 16, 32] {
        let k = 13u32;
        let p = 8191u64;
        let mesh = SystolicMatMul::new(p, k);
        let a = ccmx_linalg::Matrix::from_fn(n, n, |_, _| rng.gen_range(0..p));
        let b = ccmx_linalg::Matrix::from_fn(n, n, |_, _| rng.gen_range(0..p));
        let (c, rep) = mesh.run(&a, &b);
        let field = ccmx_linalg::ring::PrimeField::new(p);
        let verified = c == a.mul(&field, &b);
        t2.row(vec![
            n.to_string(),
            k.to_string(),
            rep.cycles.to_string(),
            rep.bits.to_string(),
            (k as u64 * (n * n) as u64).to_string(),
            verified.to_string(),
        ]);
    }
    println!("{}", t2.render());
}

fn e12_span_problem() {
    println!("\n--- E12 (Lovász–Saks): the vector-space span problem ---");
    let mut rng = rng_for("e12");
    let mut t = Table::new(&[
        "dim",
        "trials",
        "span-union ⟺ nonsingular",
        "example #L",
        "log₂ #L bits",
    ]);
    for dim in [4usize, 6] {
        let trials = 20;
        let mut ok = 0;
        for _ in 0..trials {
            let m = random_matrix(dim, 2, &mut rng);
            let (v1, v2) = span_problem::singularity_as_span_instance(&m);
            if span_problem::union_spans_all(&v1, &v2) != bareiss::is_singular(&m) {
                ok += 1;
            }
        }
        assert_eq!(ok, trials);
        // A tiny explicit lattice.
        let x: Vec<Vec<ccmx_bigint::Integer>> = (0..dim.min(5))
            .map(|i| {
                (0..2)
                    .map(|j| ccmx_bigint::Integer::from(((i + j) % 3) as i64))
                    .collect()
            })
            .collect();
        let l = span_problem::count_subspace_lattice(&x, 1 << 12);
        t.row(vec![
            dim.to_string(),
            trials.to_string(),
            format!("{ok}/{trials}"),
            l.to_string(),
            format!("{:.2}", (l as f64).log2()),
        ]);
    }
    println!("{}", t.render());
}
