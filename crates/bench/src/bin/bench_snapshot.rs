//! Machine-readable snapshots of the kernel benchmarks.
//!
//! Default mode runs the `e14_exact_kernels` workloads (committed as
//! `BENCH_e14.json`); `--e15` runs the `e15_enumeration_engine`
//! workloads — Gray-walk singularity fresh vs incremental, per-prime vs
//! batched residue reduction, plus re-measured e14 det/rank rows — and
//! is committed as `BENCH_e15.json`. Both use plain wall-clock timing so
//! the performance trajectory of the exact backends is tracked in-repo.
//!
//! The e15 document also carries an `incremental_ok` verdict: whether a
//! real `TruthMatrix::enumerate` run stayed on the incremental-oracle
//! path instead of falling back to fresh evaluation (checked by
//! `scripts/verify.sh --bench-smoke`).
//!
//! `--e16` runs the observability-overhead workloads from
//! `e16_observability` — registered counter vs raw atomic vs a mutexed
//! baseline, histogram record, span scope, full render — committed as
//! `BENCH_e16.json`.
//!
//! `--e17` runs the resilience-stack workloads: healthy interactive-run
//! throughput through a [`ccmx_net::RetryClient`], a concurrent retry
//! storm, idempotent-replay throughput, healthy vs breaker-open
//! (cache-degraded) bounds latency, and a seeded aggressive chaos soak
//! whose metered-bit divergence must be zero — committed as
//! `BENCH_e17.json`.
//!
//! Every mode starts from `ccmx_obs::registry().reset()` so the counter
//! rows of one document never include another mode's traffic, and every
//! document ends with a `metrics` dump of the registry as it stood when
//! the snapshot finished.
//!
//! `--e18` runs the cluster workloads against *separate* shard and
//! coordinator processes (the sibling `ccmx` binary must be built):
//! a 10k-connection concurrency wave against the coordinator's evented
//! engine, the cache-partition scaling sweep — one working set of
//! expensive bounds keys cycled through 2/4/8 shards whose per-shard
//! LRU only fits `1/4` of it, so aggregate cache capacity (not CPU) is
//! what added shards buy — and an in-process chaos-soaked resharding
//! run whose metered-bit divergence must be zero — committed as
//! `BENCH_e18.json`.
//!
//! `--e19` runs the communication-avoiding kernel workloads: the blocked
//! Montgomery elimination (panel factorization with one batched inversion
//! per panel + grouped-REDC trailing update, tile width derived from the
//! `CCMX_FAST_MEM_WORDS` Hong–Kung knob) against the scalar
//! delayed-reduction sweeps over full CRT prime plans, with the
//! `ccmx_iomodel_*` meter read back per kernel call and compared against
//! the Ω(n³/√M) Hong–Kung scale — committed as `BENCH_e19.json`. Its
//! `blocked_ok` verdict (blocked path actually taken, meter nonzero) is
//! checked by `scripts/verify.sh --bench-smoke`, and
//! `scripts/bench_snapshot.sh` gates `det_crt_blocked_speedup_n32 ≥ 1.3`.
//!
//! `--e20` runs the exact-CC branch-and-bound workloads: each instance
//! is solved serial-without-memo (the oracle baseline), serial-with-memo
//! and parallel-with-memo, and the speedups at the largest benched dim
//! are the committed acceptance gate in `BENCH_e20.json` (`verify.sh
//! --bench-smoke` replays the quick variant). `search_ok` asserts the
//! three configurations agreed on every CC value and that the memo
//! actually hit.
//!
//! `--e21` runs the persistent-store workloads: one deterministic
//! E17-style storm (concurrent bounds / singularity / exact-CC request
//! streams plus idempotent interactive runs) driven twice against the
//! same data directory across a full server-lifetime boundary — cold
//! (empty log, every answer computed and appended) vs warm (log
//! recovered, caches disk-seeded, zero recomputation) — committed as
//! `BENCH_e21.json`. Its `store_ok` verdict (warm answers bit-identical,
//! zero warm cache misses, every run replayed from the recovered client
//! store) plus `recovered_records > 0` and the warm-speedup floor are
//! checked by `scripts/verify.sh --bench-smoke`.
//!
//! Usage: `bench_snapshot [--quick] [--e15 | --e16 | --e17 | --e18 |
//! --e19 | --e20 | --e21]` — `--quick` lowers the repeat count (CI
//! smoke); the committed snapshots use the default.

use std::time::Instant;

use ccmx_bench::{random_matrix, rng_for};
use ccmx_bigint::{Integer, Natural, Rational};
use ccmx_comm::functions::Singularity;
use ccmx_comm::{MatrixEncoding, Partition};
use ccmx_linalg::parallel::default_threads;
use ccmx_linalg::ring::RationalField;
use ccmx_linalg::{bareiss, crt, gauss, modular, Matrix};

const ENTRY_BITS: u32 = 32;
const SIZES: [usize; 4] = [8, 16, 32, 64];
/// Repeat count for the cheap Montgomery-CRT rows (best-of minimum needs
/// more samples than the multi-second rational baselines to stabilize).
const CRT_REPS: usize = 9;
/// The rational baseline stops here: ℚ-Gauss coefficient blow-up makes
/// n = 64 take minutes per determinant.
const RATIONAL_MAX_N: usize = 32;

fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let v = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (best, out.expect("reps >= 1"))
}

struct Row {
    n: usize,
    backend: &'static str,
    op: &'static str,
    millis: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };
    // Fresh counters per mode: e14/e15/e16 rows must be independent.
    ccmx_obs::registry().reset();
    if std::env::args().any(|a| a == "--e15") {
        e15_snapshot(reps);
        return;
    }
    if std::env::args().any(|a| a == "--e16") {
        e16_snapshot(if quick { 1 } else { CRT_REPS });
        return;
    }
    if std::env::args().any(|a| a == "--e17") {
        e17_snapshot(quick);
        return;
    }
    if std::env::args().any(|a| a == "--e18") {
        e18_snapshot(quick);
        return;
    }
    if std::env::args().any(|a| a == "--e19") {
        e19_snapshot(quick);
        return;
    }
    if std::env::args().any(|a| a == "--e20") {
        e20_snapshot(quick);
        return;
    }
    if std::env::args().any(|a| a == "--e21") {
        e21_snapshot(quick);
        return;
    }
    let threads = default_threads();
    let mut rng = rng_for("e14");
    let entry_bound = Natural::from(1u64 << ENTRY_BITS);
    let mut rows: Vec<Row> = Vec::new();

    // The CRT rows are cheap and also re-measured by `--e15`; extra reps
    // pin their best-of minimum so the two documents agree run-to-run.
    let crt_reps = if reps == 1 { 1 } else { CRT_REPS };
    for n in SIZES {
        let m: Matrix<Integer> = random_matrix(n, ENTRY_BITS, &mut rng);
        let mq = m.map(|e| Rational::from(e.clone()));

        let (crt_det_ms, det_crt) =
            time_best(crt_reps, || modular::det_via_crt(&m, &entry_bound, threads));
        rows.push(Row {
            n,
            backend: "montgomery_crt",
            op: "det",
            millis: crt_det_ms,
        });

        let (crt_rank_ms, rank_crt) = time_best(crt_reps, || crt::rank_int(&m));
        rows.push(Row {
            n,
            backend: "montgomery_crt",
            op: "rank",
            millis: crt_rank_ms,
        });

        let (bareiss_ms, det_bareiss) = time_best(reps, || bareiss::det(&m));
        rows.push(Row {
            n,
            backend: "bareiss",
            op: "det",
            millis: bareiss_ms,
        });
        assert_eq!(det_crt, det_bareiss, "backend disagreement at n = {n}");

        if n <= RATIONAL_MAX_N {
            let (q_det_ms, det_q) = time_best(reps, || gauss::det(&RationalField, &mq));
            rows.push(Row {
                n,
                backend: "rational_gauss",
                op: "det",
                millis: q_det_ms,
            });
            assert_eq!(
                det_q,
                Rational::from(det_crt.clone()),
                "rational det disagreement at n = {n}"
            );
            let (q_rank_ms, rank_q) = time_best(reps, || gauss::rank(&RationalField, &mq));
            rows.push(Row {
                n,
                backend: "rational_gauss",
                op: "rank",
                millis: q_rank_ms,
            });
            assert_eq!(rank_q, rank_crt, "rank disagreement at n = {n}");
        }
    }

    // Headline number for the acceptance gate: ℚ-Gauss / Montgomery-CRT
    // det speedup at n = 32.
    let ms_of = |backend: &str, op: &str, n: usize| {
        rows.iter()
            .find(|r| r.backend == backend && r.op == op && r.n == n)
            .map(|r| r.millis)
    };
    let speedup_32 = match (
        ms_of("rational_gauss", "det", 32),
        ms_of("montgomery_crt", "det", 32),
    ) {
        (Some(q), Some(c)) if c > 0.0 => q / c,
        _ => 0.0,
    };

    emit_e14(threads, reps, &rows, speedup_32);
}

/// Render the live registry as a JSON string array, one exposition line
/// per element, for embedding in a snapshot document.
fn metrics_json_lines(indent: &str) -> String {
    let text = ccmx_obs::registry().render();
    let lines: Vec<String> = text
        .lines()
        .map(|l| {
            format!(
                "{indent}\"{}\"",
                l.replace('\\', "\\\\").replace('"', "\\\"")
            )
        })
        .collect();
    lines.join(",\n")
}

/// The `--e15` snapshot: kernel-engine workloads, mirroring the
/// `e15_enumeration_engine` criterion bench, plus re-measured e14
/// det/rank rows (identical `rng_for("e14")` workload stream) so drift
/// of the CRT backends is visible from this document alone.
fn e15_snapshot(reps: usize) {
    let threads = default_threads();
    let mut rows: Vec<String> = Vec::new();

    // Gray-walk singularity: fresh eval vs incremental cursor.
    const WALK_STEPS: usize = 256;
    let mut speedup_walk_dim8 = 0.0;
    for dim in [4usize, 8] {
        let f = Singularity::new(dim, 1);
        let b_pos = ccmx_bench::b_positions(dim, 1);
        let steps = WALK_STEPS.min(1 << b_pos.len());
        let (fresh_ms, ones_fresh) =
            time_best(reps, || ccmx_bench::gray_walk_fresh(&f, &b_pos, steps));
        let (inc_ms, ones_inc) = time_best(reps, || {
            ccmx_bench::gray_walk_incremental(&f, &b_pos, steps)
        });
        assert_eq!(ones_fresh, ones_inc, "walk disagreement at dim {dim}");
        rows.push(format!(
            "{{\"workload\": \"gray_walk_fresh\", \"dim\": {dim}, \"k\": 1, \"steps\": {steps}, \"ms\": {fresh_ms:.4}}}"
        ));
        rows.push(format!(
            "{{\"workload\": \"gray_walk_incremental\", \"dim\": {dim}, \"k\": 1, \"steps\": {steps}, \"ms\": {inc_ms:.4}}}"
        ));
        if dim == 8 && inc_ms > 0.0 {
            speedup_walk_dim8 = fresh_ms / inc_ms;
        }
    }

    // Residue reduction: scalar per-prime vs one-pass batched.
    let mut rng = rng_for("e15");
    let n = 32usize;
    let entry_bits = 32u32;
    let m = random_matrix(n, entry_bits, &mut rng);
    let primes = modular::crt_prime_plan(n, &Natural::from(1u64 << entry_bits));
    let (per_prime_ms, _) = time_best(reps, || {
        let mut acc = 0u64;
        for &p in &primes {
            let field = ccmx_linalg::montgomery::MontgomeryField::new(p);
            for e in m.data() {
                acc = acc.wrapping_add(field.reduce(e));
            }
        }
        acc
    });
    let mut plan = ccmx_linalg::engine::ResiduePlan::new(&primes);
    let (batched_ms, _) = time_best(reps, || plan.reduce_matrix(&m));
    rows.push(format!(
        "{{\"workload\": \"reduce_per_prime\", \"n\": {n}, \"entry_bits\": {entry_bits}, \"primes\": {}, \"ms\": {per_prime_ms:.4}}}",
        primes.len()
    ));
    rows.push(format!(
        "{{\"workload\": \"reduce_batched\", \"n\": {n}, \"entry_bits\": {entry_bits}, \"primes\": {}, \"ms\": {batched_ms:.4}}}",
        primes.len()
    ));
    let speedup_reduction = if batched_ms > 0.0 {
        per_prime_ms / batched_ms
    } else {
        0.0
    };

    // Re-measured e14 CRT rows, on the same deterministic workloads and
    // repeat count as the default mode, so the two documents agree.
    let crt_reps = if reps == 1 { 1 } else { CRT_REPS };
    let mut rng14 = rng_for("e14");
    let entry_bound = Natural::from(1u64 << 32);
    for n in [8usize, 16, 32, 64] {
        let m: Matrix<Integer> = random_matrix(n, 32, &mut rng14);
        let (det_ms, _) = time_best(crt_reps, || modular::det_via_crt(&m, &entry_bound, threads));
        rows.push(format!(
            "{{\"workload\": \"e14_det_montgomery_crt\", \"n\": {n}, \"ms\": {det_ms:.4}}}"
        ));
        let (rank_ms, _) = time_best(crt_reps, || crt::rank_int(&m));
        rows.push(format!(
            "{{\"workload\": \"e14_rank_montgomery_crt\", \"n\": {n}, \"ms\": {rank_ms:.4}}}"
        ));
    }

    // Incremental-path verdict from a real enumeration: every point of a
    // singularity truth matrix must flow through the oracle cursor, and
    // engine refreshes must stay a small fraction of update steps.
    let f = Singularity::new(4, 1);
    let partition = Partition::pi_zero(&MatrixEncoding::new(4, 1));
    let (inc_pts_before, _) = ccmx_comm::truth::enumeration_stats();
    let (steps_before, fresh_before) = ccmx_linalg::engine::incremental_stats();
    let t = ccmx_comm::truth::TruthMatrix::enumerate(&f, &partition, threads);
    let (inc_pts_after, _) = ccmx_comm::truth::enumeration_stats();
    let (steps_after, fresh_after) = ccmx_linalg::engine::incremental_stats();
    let points = (t.rows() * t.cols()) as u64;
    let cursor_points = inc_pts_after - inc_pts_before;
    let steps = steps_after - steps_before;
    let fresh = fresh_after - fresh_before;
    let incremental_ok = cursor_points >= points && steps > 0 && fresh * 2 <= steps;

    println!("{{");
    println!("  \"experiment\": \"e15_enumeration_engine\",");
    println!("  \"threads\": {threads},");
    println!("  \"reps\": {reps},");
    println!("  \"speedup_incremental_gray_walk_dim8\": {speedup_walk_dim8:.2},");
    println!("  \"speedup_batched_reduction_n32_32bit\": {speedup_reduction:.2},");
    println!("  \"incremental_ok\": {incremental_ok},");
    println!("  \"enumeration_cursor_points\": {cursor_points},");
    println!("  \"engine_update_steps\": {steps},");
    println!("  \"engine_fresh_refreshes\": {fresh},");
    println!("  \"results_ms\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!("    {r}{comma}");
    }
    println!("  ],");
    println!("  \"metrics\": [");
    println!("{}", metrics_json_lines("    "));
    println!("  ]");
    println!("}}");
}

/// The `--e19` snapshot: communication-avoiding kernels vs the scalar
/// sweeps, with the Hong–Kung I/O meter read back.
///
/// For each `n`, the full CRT prime plan of a random 32-bit matrix is
/// eliminated twice — once through the scalar delayed-reduction oracle,
/// once through the blocked dispatcher — and the `ccmx_iomodel_*`
/// counter deltas across the blocked run yield modelled words moved per
/// kernel call, reported as a multiple of the Hong–Kung scale `n³/√M`.
/// The RREF rows do the same for the full echelon kernel on one prime.
/// `blocked_ok` asserts the dispatcher really took the blocked path
/// (nonzero blocked calls and words, zero scalar-path calls during the
/// blocked sections): a silently rotted dispatch heuristic fails the
/// `verify.sh --bench-smoke` gate instead of quietly benchmarking the
/// scalar kernel against itself.
fn e19_snapshot(quick: bool) {
    use ccmx_linalg::engine::ResiduePlan;
    use ccmx_linalg::iomodel::{self, Kernel};
    use ccmx_linalg::montgomery::{
        det_from_residues, det_from_residues_scalar, echelon_from_residues,
        echelon_from_residues_scalar,
    };

    let m_words = iomodel::fast_mem_words();
    let panel = iomodel::panel_width();
    let entry_bound = Natural::from(1u64 << ENTRY_BITS);
    let mut rng = rng_for("e19");
    let mut rows: Vec<String> = Vec::new();
    let mut speedup_32 = 0.0;
    let mut blocked_ok = true;

    for n in [16usize, 32, 48, 64] {
        // The n = 32 row is the acceptance gate: extra reps pin its
        // best-of minimum on a noisy single-core box.
        let reps = if quick {
            1
        } else if n <= 32 {
            31
        } else {
            9
        };
        let m: Matrix<Integer> = random_matrix(n, ENTRY_BITS, &mut rng);
        let primes = modular::crt_prime_plan(n, &entry_bound);
        let mut plan = ResiduePlan::new(&primes);
        let residues = plan.reduce_matrix(&m);
        let fields = plan.fields();
        let np = primes.len();

        let (scalar_ms, det_s) = time_best(reps, || {
            let mut acc = 0u64;
            for (k, f) in fields.iter().enumerate() {
                acc ^= det_from_residues_scalar(f, n, &residues[k]);
            }
            acc
        });
        let (w0, c0) = iomodel::kernel_stats(Kernel::Det, true);
        let (s0, _) = iomodel::kernel_stats(Kernel::Det, false);
        let (blocked_ms, det_b) = time_best(reps, || {
            let mut acc = 0u64;
            for (k, f) in fields.iter().enumerate() {
                acc ^= det_from_residues(f, n, &residues[k]);
            }
            acc
        });
        let (w1, c1) = iomodel::kernel_stats(Kernel::Det, true);
        let (s1, _) = iomodel::kernel_stats(Kernel::Det, false);
        assert_eq!(det_s, det_b, "blocked/scalar det disagreement at n = {n}");
        let calls = c1 - c0;
        blocked_ok &= calls > 0 && w1 > w0 && s1 == s0;
        let det_words = (w1 - w0).checked_div(calls).unwrap_or(0);
        let det_ratio = det_words as f64 / iomodel::hong_kung_bound(n);
        let speedup = if blocked_ms > 0.0 {
            scalar_ms / blocked_ms
        } else {
            0.0
        };
        if n == 32 {
            speedup_32 = speedup;
        }
        rows.push(format!(
            "{{\"workload\": \"det_scalar_crt\", \"n\": {n}, \"primes\": {np}, \"ms\": {scalar_ms:.4}}}"
        ));
        rows.push(format!(
            "{{\"workload\": \"det_blocked_crt\", \"n\": {n}, \"primes\": {np}, \"ms\": {blocked_ms:.4}, \
             \"speedup\": {speedup:.2}, \"words_per_call\": {det_words}, \"hong_kung_ratio\": {det_ratio:.2}}}"
        ));

        let (rref_s_ms, rank_s) = time_best(reps, || {
            echelon_from_residues_scalar(&fields[0], n, n, &residues[0]).rank()
        });
        let (rw0, rc0) = iomodel::kernel_stats(Kernel::Rref, true);
        let (rs0, _) = iomodel::kernel_stats(Kernel::Rref, false);
        let (rref_b_ms, rank_b) = time_best(reps, || {
            echelon_from_residues(&fields[0], n, n, &residues[0]).rank()
        });
        let (rw1, rc1) = iomodel::kernel_stats(Kernel::Rref, true);
        let (rs1, _) = iomodel::kernel_stats(Kernel::Rref, false);
        assert_eq!(
            rank_s, rank_b,
            "blocked/scalar rref disagreement at n = {n}"
        );
        let rcalls = rc1 - rc0;
        blocked_ok &= rcalls > 0 && rw1 > rw0 && rs1 == rs0;
        let rref_words = (rw1 - rw0).checked_div(rcalls).unwrap_or(0);
        let rref_ratio = rref_words as f64 / iomodel::hong_kung_bound(n);
        let rref_speedup = if rref_b_ms > 0.0 {
            rref_s_ms / rref_b_ms
        } else {
            0.0
        };
        rows.push(format!(
            "{{\"workload\": \"rref_scalar\", \"n\": {n}, \"ms\": {rref_s_ms:.4}}}"
        ));
        rows.push(format!(
            "{{\"workload\": \"rref_blocked\", \"n\": {n}, \"ms\": {rref_b_ms:.4}, \
             \"speedup\": {rref_speedup:.2}, \"words_per_call\": {rref_words}, \"hong_kung_ratio\": {rref_ratio:.2}}}"
        ));
    }

    println!("{{");
    println!("  \"experiment\": \"e19_comm_avoiding\",");
    println!("  \"fast_mem_words\": {m_words},");
    println!("  \"panel_width\": {panel},");
    println!("  \"quick\": {quick},");
    println!("  \"det_crt_blocked_speedup_n32\": {speedup_32:.2},");
    println!("  \"blocked_ok\": {blocked_ok},");
    println!("  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!("    {r}{comma}");
    }
    println!("  ],");
    println!("  \"metrics\": [");
    println!("{}", metrics_json_lines("    "));
    println!("  ]");
    println!("}}");
}

/// The `--e20` snapshot: the exact-CC branch-and-bound engine measured
/// as a perf artifact.
///
/// Instance choice matters: a *random* truth matrix is a bad benchmark,
/// because the two-sided χ bound (`rank(M) + rank(M̄)`) meets the
/// row-announce upper bound almost surely and the solver exits without
/// branching. The instances here are the ones where the bracket stays
/// open — intersection-threshold ("majority") matrices whose sub-
/// rectangles repeat heavily (the memo's best case), cyclic-shift
/// threshold matrices (wide move fans, memo-poor — an honest hard
/// case), the equality identity, and the paper's smallest singularity
/// truth matrix under π₀. Every instance is solved three ways:
///
/// * `serial_nomemo` — the pruned Bellman recursion alone,
/// * `serial_memo`   — plus the canonicalized sub-rectangle memo,
/// * `parallel_memo` — plus the root frontier fanned over the pool
///   with the shared atomic incumbent.
///
/// The acceptance gate is `parallel_memo` vs `serial_nomemo` at the
/// largest benched dim; `search_ok` additionally asserts all three
/// configurations returned identical CC values (a disagreement is a
/// solver bug, not a slow run) and that the memo recorded hits.
fn e20_snapshot(quick: bool) {
    use ccmx_comm::truth::TruthMatrix;
    use ccmx_search::{solve, SearchConfig};

    let mk = |n: usize, f: &dyn Fn(usize, usize) -> bool| TruthMatrix::from_fn(n, n, f);
    let paper = {
        let f = Singularity::new(2, 1);
        let pi0 = Partition::pi_zero(&f.enc);
        TruthMatrix::enumerate(&f, &pi0, 1)
    };
    let instances: Vec<(&'static str, TruthMatrix)> = vec![
        ("singularity_2x2_k1_pi0", paper),
        ("equality_8", mk(8, &|x, y| x == y)),
        ("shift_threshold_16", mk(16, &|x, y| (x + y) % 16 < 8)),
        (
            "intersect_ge2_18",
            mk(18, &|x, y| (x & y).count_ones() >= 2),
        ),
        (
            "intersect_ge2_20",
            mk(20, &|x, y| (x & y).count_ones() >= 2),
        ),
    ];
    // The big no-memo baselines run hundreds of milliseconds; a handful
    // of reps pins the best-of minimum without minutes of wall clock.
    let reps = if quick { 1 } else { 5 };
    let configs: [(&'static str, SearchConfig); 3] = [
        (
            "serial_nomemo",
            SearchConfig {
                threads: 1,
                use_memo: false,
                ..SearchConfig::default()
            },
        ),
        (
            "serial_memo",
            SearchConfig {
                threads: 1,
                ..SearchConfig::default()
            },
        ),
        (
            "parallel_memo",
            SearchConfig {
                threads: 4,
                ..SearchConfig::default()
            },
        ),
    ];

    let mut rows: Vec<String> = Vec::new();
    let mut search_ok = true;
    let mut memo_hits_total = 0u64;
    let mut largest = (0usize, 0.0f64, 0.0f64); // (dim, memo speedup, parallel speedup)
    for (name, t) in &instances {
        let dim = t.rows();
        let mut per_config: Vec<(f64, u32)> = Vec::new();
        for (label, cfg) in &configs {
            let (ms, r) = time_best(reps, || solve(t, cfg).expect("bench instance must solve"));
            search_ok &= r.exact;
            if *label != "serial_nomemo" {
                memo_hits_total += r.stats.memo_hits;
            }
            rows.push(format!(
                "{{\"workload\": \"cc_{label}\", \"instance\": \"{name}\", \"dim\": {dim}, \
                 \"cc\": {}, \"nodes\": {}, \"memo_hits\": {}, \"ms\": {ms:.4}}}",
                r.cc, r.stats.nodes, r.stats.memo_hits
            ));
            per_config.push((ms, r.cc));
        }
        // All three configurations must agree exactly — the parallel
        // incumbent and the memo may change work, never the answer.
        search_ok &= per_config.iter().all(|&(_, cc)| cc == per_config[0].1);
        let (base, memo, par) = (per_config[0].0, per_config[1].0, per_config[2].0);
        if dim >= largest.0 && base > 0.0 {
            largest = (dim, base / memo.max(1e-9), base / par.max(1e-9));
        }
    }
    search_ok &= memo_hits_total > 0;

    println!("{{");
    println!("  \"experiment\": \"e20_search\",");
    println!("  \"quick\": {quick},");
    println!("  \"largest_dim\": {},", largest.0);
    println!("  \"memo_speedup_largest\": {:.2},", largest.1);
    println!("  \"parallel_memo_speedup_largest\": {:.2},", largest.2);
    println!("  \"search_ok\": {search_ok},");
    println!("  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!("    {r}{comma}");
    }
    println!("  ],");
    println!("  \"metrics\": [");
    println!("{}", metrics_json_lines("    "));
    println!("  ]");
    println!("}}");
}

/// The `--e21` snapshot: cold vs warm server start over the persistent
/// certified-result tier (`crates/store`).
///
/// One deterministic E17-style storm — concurrent transports issuing
/// bounds, singularity and exact-CC requests, plus a `RetryClient`
/// committing idempotent interactive runs — is driven twice against the
/// *same data directory* across a full process-lifetime boundary:
///
/// * **cold** — an empty store: every answer is computed and appended;
/// * **warm** — a fresh `serve` on the populated directory: the log is
///   recovered, the caches are seeded, and the identical storm must be
///   answered from disk with zero recomputation.
///
/// `store_ok` asserts the warm answers are bit-identical to the cold
/// ones, the warm bounds/singularity caches saw no misses, every
/// idempotent run replayed from the recovered client store without wire
/// traffic, and recovery accepted at least as many records as the cold
/// lifetime certified. `verify.sh --bench-smoke` gates on `store_ok`,
/// `recovered_records > 0` and the warm speedup floor.
fn e21_snapshot(quick: bool) {
    use ccmx_comm::BitString;
    use ccmx_net::wire::{KIND_REQUEST, KIND_RESPONSE};
    use ccmx_net::{
        serve, BreakerConfig, ProtoSpec, Request, Response, RetryClient, RetryPolicy, ServerConfig,
        TcpTransport, TransportConfig, WireCodec,
    };

    let bounds_calls: usize = if quick { 8 } else { 24 };
    let sing_calls: usize = if quick { 6 } else { 16 };
    let runs: u64 = if quick { 4 } else { 12 };
    // The expensive anchor: branch-and-bound CC searches sized (from
    // the committed e20 rows) so the cold lifetime pays real compute —
    // milliseconds to ~100ms per instance — that the warm one skips.
    // `(dim, intersect)`: intersect-threshold or shift-threshold bits.
    let cc_items: &[(usize, bool)] = if quick {
        &[(16, false), (18, true)]
    } else {
        &[(16, false), (18, true), (20, true)]
    };

    let bounds_req = |i: usize| Request::Bounds {
        n: [5usize, 7, 9, 11][i % 4],
        k: [3u32, 4, 5][i % 3],
        security: 16 + (i as u32 % 4) * 8,
    };
    let enc = Singularity::new(3, 3).enc;
    let sing_req = |i: usize| {
        let mut x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let m = Matrix::from_fn(3, 3, |_, _| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Integer::from((x >> 33) as i64 % 8)
        });
        Request::Singularity {
            dim: 3,
            k: 3,
            input: enc.encode(&m),
        }
    };
    let cc_req = |dim: usize, intersect: bool| Request::CcSearch {
        rows: dim,
        cols: dim,
        bits: BitString::from_bits(
            (0..dim * dim)
                .map(|i| {
                    let (x, y) = (i / dim, i % dim);
                    if intersect {
                        (x & y).count_ones() >= 2
                    } else {
                        (x + y) % dim < dim / 2
                    }
                })
                .collect(),
        ),
        depth_limit: 64,
    };
    let run_spec = ProtoSpec::FingerprintEquality {
        half_bits: 16,
        security: 16,
    };
    let run_input = |s: u64| BitString::from_u64(0x21ed_0000 + s, 32);

    let roundtrip = |t: &mut TcpTransport, req: &Request| -> Response {
        t.send_frame(KIND_REQUEST, &req.to_wire_bytes())
            .expect("send");
        let (kind, payload) = t.recv_frame().expect("recv");
        assert_eq!(kind, KIND_RESPONSE);
        Response::from_wire_bytes(&payload).expect("decode")
    };

    // One full storm lifetime against `dir`: boot, concurrent request
    // streams, idempotent runs, shutdown. Returns the boot and storm
    // wall clocks, every response (in schedule order per stream), the
    // record count the server's store held at shutdown, how many runs
    // the client store recovered, how many runs replayed without wire
    // traffic, and the warm server's (bounds, sing) cache misses.
    #[allow(clippy::type_complexity)]
    let lifetime =
        |dir: &std::path::Path| -> (f64, f64, Vec<Response>, u64, usize, usize, (u64, u64)) {
            let start = Instant::now();
            let server = serve(
                "127.0.0.1:0",
                ServerConfig {
                    workers: 4,
                    store_dir: Some(dir.join("server")),
                    ..ServerConfig::default()
                },
            )
            .expect("bind e21 server");
            let boot_s = start.elapsed().as_secs_f64();
            let addr = server.addr().to_string();

            let start = Instant::now();
            let (mut responses, mut replays) = (Vec::new(), 0usize);
            let mut loaded = 0usize;
            std::thread::scope(|scope| {
                let streams = [
                    scope.spawn(|| {
                        let mut t =
                            TcpTransport::connect(server.addr(), TransportConfig::default())
                                .unwrap();
                        (0..bounds_calls)
                            .map(|i| roundtrip(&mut t, &bounds_req(i)))
                            .collect::<Vec<_>>()
                    }),
                    scope.spawn(|| {
                        let mut t =
                            TcpTransport::connect(server.addr(), TransportConfig::default())
                                .unwrap();
                        (0..sing_calls)
                            .map(|i| roundtrip(&mut t, &sing_req(i)))
                            .collect::<Vec<_>>()
                    }),
                    scope.spawn(|| {
                        let mut t =
                            TcpTransport::connect(server.addr(), TransportConfig::default())
                                .unwrap();
                        cc_items
                            .iter()
                            .map(|&(d, ix)| roundtrip(&mut t, &cc_req(d, ix)))
                            .collect::<Vec<_>>()
                    }),
                ];
                // The run stream shares the storm wall clock from this thread.
                let mut rc = RetryClient::new(
                    &addr,
                    TransportConfig::default(),
                    RetryPolicy::default(),
                    BreakerConfig::default(),
                );
                loaded = rc.attach_store(&dir.join("client")).expect("client store");
                for s in 0..runs {
                    let run = rc
                        .run_idempotent(run_spec, &run_input(s), s)
                        .expect("storm run");
                    replays += usize::from(run.replayed);
                }
                for stream in streams {
                    responses.extend(stream.join().expect("storm stream"));
                }
            });
            let storm_s = start.elapsed().as_secs_f64();

            let records = server
                .store_stat()
                .expect("store must be attached")
                .live_records;
            let bounds = server.cache_stats();
            let sing = server.sing_cache_stats();
            server.shutdown();
            (
                boot_s,
                storm_s,
                responses,
                records,
                loaded,
                replays,
                (bounds.misses, sing.misses),
            )
        };

    let dir = std::env::temp_dir().join(format!("ccmx-bench-e21-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (cold_boot, cold_storm, cold_resp, cold_records, cold_loaded, _, _) = lifetime(&dir);
    let (warm_boot, warm_storm, warm_resp, _, warm_loaded, warm_replays, warm_misses) =
        lifetime(&dir);

    // Recovery accounting, from the log itself: reopen the server store
    // read-only-ish and count what a third lifetime would accept.
    let recovered = {
        let s = ccmx_store::Store::open(ccmx_store::StoreConfig::new(dir.join("server")))
            .expect("reopen server store");
        assert!(
            s.recovery().quarantined_segments == 0,
            "clean shutdowns must recover clean"
        );
        s.recovery().recovered_records
    };

    let answered = |resp: &[Response]| resp.iter().all(|r| !matches!(r, Response::Error(_)));
    let store_ok = answered(&cold_resp)
        && cold_resp == warm_resp
        && cold_loaded == 0
        && warm_loaded == runs as usize
        && warm_replays == runs as usize
        && warm_misses == (0, 0)
        && recovered >= cold_records
        && cold_records > 0;
    let warm_speedup = if warm_storm > 0.0 {
        cold_storm / warm_storm
    } else {
        0.0
    };

    let _ = std::fs::remove_dir_all(&dir);

    println!("{{");
    println!("  \"experiment\": \"e21_store_warm_restart\",");
    println!("  \"quick\": {quick},");
    println!(
        "  \"requests_per_storm\": {},",
        bounds_calls + sing_calls + cc_items.len() + runs as usize
    );
    println!("  \"cold_boot_ms\": {:.3},", cold_boot * 1e3);
    println!("  \"warm_boot_ms\": {:.3},", warm_boot * 1e3);
    println!("  \"cold_storm_ms\": {:.3},", cold_storm * 1e3);
    println!("  \"warm_storm_ms\": {:.3},", warm_storm * 1e3);
    println!("  \"warm_speedup\": {warm_speedup:.2},");
    println!("  \"certified_records\": {cold_records},");
    println!("  \"recovered_records\": {recovered},");
    println!("  \"warm_run_replays\": {warm_replays},");
    println!("  \"store_ok\": {store_ok},");
    println!("  \"metrics\": [");
    println!("{}", metrics_json_lines("    "));
    println!("  ]");
    println!("}}");
}

/// The `--e16` snapshot: per-op costs of the observability primitives,
/// wall-clock versions of the `e16_observability` criterion rows. The
/// headline ratios document that a registered counter increment is a
/// plain relaxed atomic add (parity with `raw_atomic_inc`) and how much
/// a mutexed counter would have cost instead.
fn e16_snapshot(reps: usize) {
    const OPS: usize = 1_000_000;
    const RENDER_OPS: usize = 1_000;
    let reg = ccmx_obs::registry();
    let mut rows: Vec<String> = Vec::new();
    let mut ns_of = |label: &str, ops: usize, f: &mut dyn FnMut()| -> f64 {
        let (ms, ()) = time_best(reps, || {
            for _ in 0..ops {
                f();
            }
        });
        let ns = ms * 1e6 / ops as f64;
        rows.push(format!(
            "{{\"workload\": \"{label}\", \"ops\": {ops}, \"ns_per_op\": {ns:.2}}}"
        ));
        ns
    };

    let counter = reg.counter("e16_snapshot_counter", &[]);
    let counter_ns = ns_of("counter_inc", OPS, &mut || {
        counter.inc();
    });

    let raw = std::sync::atomic::AtomicU64::new(0);
    let raw_ns = ns_of("raw_atomic_inc", OPS, &mut || {
        raw.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    });

    let locked = std::sync::Mutex::new(0u64);
    let mutex_ns = ns_of("mutex_inc_baseline", OPS, &mut || {
        *locked.lock().unwrap() += 1;
    });

    let hist = reg.histogram("e16_snapshot_hist", &[], ccmx_obs::buckets::LATENCY_NS);
    ns_of("histogram_record", OPS, &mut || {
        hist.record(12_345);
    });

    ns_of("span_scope", OPS / 10, &mut || {
        let _g = ccmx_obs::span("e16.snapshot");
    });

    ns_of("render", RENDER_OPS, &mut || {
        std::hint::black_box(reg.render());
    });

    println!("{{");
    println!("  \"experiment\": \"e16_observability\",");
    println!("  \"reps\": {reps},");
    println!(
        "  \"counter_inc_over_raw_atomic\": {:.2},",
        if raw_ns > 0.0 {
            counter_ns / raw_ns
        } else {
            0.0
        }
    );
    println!(
        "  \"mutex_over_lockfree_counter\": {:.2},",
        if counter_ns > 0.0 {
            mutex_ns / counter_ns
        } else {
            0.0
        }
    );
    println!("  \"results_ns\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!("    {r}{comma}");
    }
    println!("  ],");
    println!("  \"metrics\": [");
    println!("{}", metrics_json_lines("    "));
    println!("  ]");
    println!("}}");
}

/// The `--e17` snapshot: the chaos/retry/breaker stack under load.
///
/// Four phases against a real loopback server: (1) a healthy baseline —
/// one `RetryClient` driving distinct idempotent interactive runs, each
/// checked for `wire bits == transcript bits`; (2) a retry storm —
/// several concurrent clients doing the same; (3) idempotent replays —
/// the same keys again, which must be served from cache with zero wire
/// traffic; (4) bounds latency healthy vs breaker-open, where the
/// degraded path answers from the client's cache while the breaker
/// refuses the wire. A seeded aggressive chaos soak closes the document
/// with the zero-divergence verdict.
fn e17_snapshot(quick: bool) {
    use ccmx_net::{
        chaos_soak, serve, BreakerConfig, ChaosLevel, ProtoSpec, RetryClient, RetryPolicy,
        ServerConfig, TransportConfig,
    };

    let spec = ProtoSpec::ModPrimeSingularity {
        dim: 2,
        k: 4,
        security: 16,
    };
    let runs: u64 = if quick { 6 } else { 24 };
    let storm_clients: usize = 4;
    let bounds_calls: usize = if quick { 10 } else { 40 };
    let soak_trials: usize = if quick { 3 } else { 8 };
    let mut rows: Vec<String> = Vec::new();

    let server = serve("127.0.0.1:0", ServerConfig::default()).expect("bind e17 server");
    let addr = server.addr().to_string();
    let policy = RetryPolicy {
        jitter_seed: 17,
        ..RetryPolicy::default()
    };
    // A long open window so the degraded-latency phase below stays on
    // the cache path instead of racing the half-open probe clock.
    let breaker_cfg = BreakerConfig {
        open_for: std::time::Duration::from_secs(30),
        ..BreakerConfig::default()
    };
    let mut rc = RetryClient::new(&addr, TransportConfig::default(), policy, breaker_cfg);

    // Phase 1: healthy baseline, one client.
    let mut meter_ok = true;
    let start = Instant::now();
    for s in 0..runs {
        let input = ccmx_net::chaos::random_input(spec, 1700 + s);
        let run = rc.run_idempotent(spec, &input, s).expect("healthy run");
        meter_ok &= run.stats.bits_total() == run.result_a.transcript.total_bits();
    }
    let healthy_s = start.elapsed().as_secs_f64();
    let healthy_rps = runs as f64 / healthy_s;
    rows.push(format!(
        "{{\"workload\": \"healthy_idempotent_runs\", \"clients\": 1, \"runs\": {runs}, \"runs_per_sec\": {healthy_rps:.1}}}"
    ));

    // Phase 2: retry storm — concurrent clients, distinct keys each.
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..storm_clients {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut rc =
                    RetryClient::new(&addr, TransportConfig::default(), policy, breaker_cfg);
                for s in 0..runs {
                    let seed = ((c as u64) << 32) | s;
                    let input = ccmx_net::chaos::random_input(spec, seed);
                    let run = rc.run_idempotent(spec, &input, seed).expect("storm run");
                    assert!(!run.replayed, "distinct keys must hit the wire");
                }
            });
        }
    });
    let storm_s = start.elapsed().as_secs_f64();
    let storm_rps = (storm_clients as u64 * runs) as f64 / storm_s;
    rows.push(format!(
        "{{\"workload\": \"retry_storm\", \"clients\": {storm_clients}, \"runs\": {}, \"runs_per_sec\": {storm_rps:.1}}}",
        storm_clients as u64 * runs
    ));

    // Phase 3: idempotent replays — same keys as phase 1, zero wire.
    let committed_before = rc.committed_stats();
    let start = Instant::now();
    for s in 0..runs {
        let input = ccmx_net::chaos::random_input(spec, 1700 + s);
        let run = rc.run_idempotent(spec, &input, s).expect("replay");
        assert!(run.replayed, "repeat keys must replay from cache");
    }
    let replay_s = start.elapsed().as_secs_f64();
    let replay_rps = runs as f64 / replay_s;
    assert_eq!(
        rc.committed_stats(),
        committed_before,
        "replays must move no bits"
    );
    rows.push(format!(
        "{{\"workload\": \"idempotent_replays\", \"clients\": 1, \"runs\": {runs}, \"runs_per_sec\": {replay_rps:.1}}}"
    ));

    // Phase 4a: healthy bounds latency over the wire.
    let start = Instant::now();
    for _ in 0..bounds_calls {
        let (_, degraded) = rc.bounds_degraded(7, 3, 20).expect("healthy bounds");
        assert!(!degraded);
    }
    let healthy_bounds_us = start.elapsed().as_secs_f64() * 1e6 / bounds_calls as f64;
    rows.push(format!(
        "{{\"workload\": \"bounds_healthy\", \"calls\": {bounds_calls}, \"us_per_call\": {healthy_bounds_us:.1}}}"
    ));

    // Phase 4b: kill the server, trip the breaker, and measure the
    // degraded (cached) path.
    server.shutdown();
    let _ = rc.ping(); // exhausts retries; the failure streak opens the breaker
    assert_eq!(
        rc.breaker().state(),
        ccmx_net::BreakerState::Open,
        "breaker must be open for the degraded phase"
    );
    let start = Instant::now();
    for _ in 0..bounds_calls {
        let (_, degraded) = rc.bounds_degraded(7, 3, 20).expect("degraded bounds");
        assert!(degraded, "open breaker must serve from cache");
    }
    let degraded_bounds_us = start.elapsed().as_secs_f64() * 1e6 / bounds_calls as f64;
    rows.push(format!(
        "{{\"workload\": \"bounds_breaker_open_degraded\", \"calls\": {bounds_calls}, \"us_per_call\": {degraded_bounds_us:.1}}}"
    ));

    // Phase 5: seeded aggressive chaos soak — the divergence verdict.
    let soak = chaos_soak(spec, soak_trials, 17, ChaosLevel::Aggressive);
    rows.push(format!(
        "{{\"workload\": \"chaos_soak_aggressive\", \"trials\": {}, \"clean_bits\": {}, \"faulted_bits\": {}, \"faults_injected\": {}, \"retransmits\": {}}}",
        soak.trials, soak.clean_bits, soak.faulted_bits, soak.faults_injected, soak.retransmits
    ));

    let zero_divergence = soak.passed() && meter_ok;
    println!("{{");
    println!("  \"experiment\": \"e17_resilience_stack\",");
    println!("  \"quick\": {quick},");
    println!("  \"healthy_runs_per_sec\": {healthy_rps:.1},");
    println!("  \"storm_runs_per_sec\": {storm_rps:.1},");
    println!("  \"replay_runs_per_sec\": {replay_rps:.1},");
    println!("  \"bounds_healthy_us\": {healthy_bounds_us:.1},");
    println!("  \"bounds_degraded_us\": {degraded_bounds_us:.1},");
    println!(
        "  \"degraded_speedup_over_healthy\": {:.1},",
        if degraded_bounds_us > 0.0 {
            healthy_bounds_us / degraded_bounds_us
        } else {
            0.0
        }
    );
    println!("  \"chaos_bit_divergence\": {},", soak.bit_divergence());
    println!("  \"zero_bit_divergence\": {zero_divergence},");
    println!("  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!("    {r}{comma}");
    }
    println!("  ],");
    println!("  \"metrics\": [");
    println!("{}", metrics_json_lines("    "));
    println!("  ]");
    println!("}}");
}

/// A spawned `ccmx shard`/`ccmx coordinator` child. Killed on drop so a
/// panicking phase never leaks listeners.
struct LabProc {
    child: std::process::Child,
    /// Kept open: dropping the pipe would EPIPE the child's next
    /// heartbeat println and kill it early.
    _stdout: std::io::BufReader<std::process::ChildStdout>,
    addr: String,
}

impl Drop for LabProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawn the sibling `ccmx` binary with `args` and parse the bound
/// address from its first stdout line (`... on <addr> ...`).
fn spawn_lab(args: &[String]) -> LabProc {
    use std::io::BufRead;
    let bin = std::env::current_exe()
        .expect("current exe")
        .with_file_name("ccmx");
    assert!(
        bin.exists(),
        "{} not found — build it first (cargo build --release)",
        bin.display()
    );
    let mut child = std::process::Command::new(&bin)
        .args(args)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {}: {e}", bin.display()));
    let mut stdout = std::io::BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("child banner");
    let addr = line
        .split(" on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in child banner {line:?}"))
        .to_string();
    LabProc {
        child,
        _stdout: stdout,
        addr,
    }
}

/// Boot `shards` shard processes plus a coordinator fronting them.
/// Returns `(coordinator, shard procs)` — drop order doesn't matter,
/// every child dies with its guard.
fn spawn_cluster(shards: usize, cache_cap: usize, tag: &str) -> (LabProc, Vec<LabProc>) {
    let mut procs = Vec::new();
    let mut spec_args = Vec::new();
    for i in 0..shards {
        let name = format!("e18-{tag}-s{i}");
        let p = spawn_lab(&[
            "shard".into(),
            "127.0.0.1:0".into(),
            "--name".into(),
            name.clone(),
            "--cache-cap".into(),
            cache_cap.to_string(),
            "--workers".into(),
            "2".into(),
            "--idle-secs".into(),
            "120".into(),
        ]);
        spec_args.push("--shard".to_string());
        spec_args.push(format!("{name}={}", p.addr));
        procs.push(p);
    }
    let mut args = vec!["coordinator".to_string(), "127.0.0.1:0".to_string()];
    args.extend(spec_args);
    args.extend(["--idle-secs".to_string(), "120".to_string()]);
    let coordinator = spawn_lab(&args);
    (coordinator, procs)
}

/// The 10k-client wave: open `clients` real TCP connections to the
/// coordinator, one pipelined `Ping` each, all sockets held open until
/// every response has arrived — a single readiness loop on the server
/// side is carrying every one of them.
fn e18_concurrency_wave(addr: &str, clients: usize) -> (f64, usize, usize) {
    use ccmx_net::wire::{encode_frame, HEADER_BYTES, KIND_REQUEST};
    use ccmx_net::{Request, Response, WireCodec};
    use polling::{poll_fds, PollFd, POLLIN};
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;

    struct Wave {
        stream: std::net::TcpStream,
        buf: Vec<u8>,
        done: bool,
    }

    let ping = encode_frame(KIND_REQUEST, &Request::Ping.to_wire_bytes()).expect("ping frame");
    let mut conns: Vec<Wave> = Vec::with_capacity(clients);
    let mut ok = 0usize;
    let mut shed = 0usize;
    let started = Instant::now();
    let deadline = started + std::time::Duration::from_secs(120);

    let drain = |conns: &mut Vec<Wave>, ok: &mut usize, shed: &mut usize, wait_ms: i32| {
        let mut fds: Vec<PollFd> = Vec::new();
        let mut owners: Vec<usize> = Vec::new();
        for (i, c) in conns.iter().enumerate() {
            if !c.done {
                fds.push(PollFd::new(c.stream.as_raw_fd(), POLLIN));
                owners.push(i);
            }
        }
        if fds.is_empty() {
            return;
        }
        let n = poll_fds(&mut fds, wait_ms).expect("poll");
        if n == 0 {
            return;
        }
        let mut chunk = [0u8; 4096];
        for (fd, &i) in fds.iter().zip(&owners) {
            if !fd.readable() && !fd.broken() {
                continue;
            }
            let c = &mut conns[i];
            loop {
                match c.stream.read(&mut chunk) {
                    Ok(0) => {
                        // Closed without a full response (reset or
                        // server-side eviction): still an outcome.
                        c.done = true;
                        *shed += 1;
                        break;
                    }
                    Ok(n) => c.buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        c.done = true;
                        *shed += 1;
                        break;
                    }
                }
                if c.buf.len() >= HEADER_BYTES {
                    let len = u32::from_le_bytes([c.buf[2], c.buf[3], c.buf[4], c.buf[5]]) as usize;
                    if c.buf.len() >= HEADER_BYTES + len {
                        match Response::from_wire_bytes(&c.buf[HEADER_BYTES..HEADER_BYTES + len]) {
                            Ok(Response::Pong) => *ok += 1,
                            _ => *shed += 1,
                        }
                        c.done = true;
                        break;
                    }
                }
            }
        }
    };

    // Ramp in batches so the accept queue and the pending-request meter
    // never see more than a batch of simultaneous arrivals.
    const BATCH: usize = 256;
    while conns.len() < clients {
        let batch = BATCH.min(clients - conns.len());
        for _ in 0..batch {
            let stream = std::net::TcpStream::connect(addr).expect("wave connect");
            stream.set_nodelay(true).ok();
            let mut c = Wave {
                stream,
                buf: Vec::new(),
                done: false,
            };
            c.stream.write_all(&ping).expect("wave ping");
            c.stream.set_nonblocking(true).expect("nonblocking");
            conns.push(c);
        }
        drain(&mut conns, &mut ok, &mut shed, 0);
    }
    while conns.iter().any(|c| !c.done) && Instant::now() < deadline {
        drain(&mut conns, &mut ok, &mut shed, 100);
    }
    let elapsed = started.elapsed().as_secs_f64();
    (elapsed, ok, shed)
}

/// The `--e18` snapshot: the sharded cluster measured as a system —
/// concurrency ceiling, cache-partition scaling, chaos-resharding
/// integrity. See the module docs for the phase breakdown.
fn e18_snapshot(quick: bool) {
    use ccmx_cluster::{cluster_soak, SoakConfig};
    use ccmx_net::{ChaosLevel, Client, TransportConfig};

    let clients: usize = if quick { 1_000 } else { 10_240 };
    // The scaling working set: `keys` distinct bounds requests whose
    // window selection costs milliseconds each (large n), against a
    // per-shard cache that holds only a quarter of them. 2 shards
    // thrash (the cyclic scan re-evicts every key before its next
    // visit), 4+ shards hold the whole set.
    let keys: usize = if quick { 96 } else { 1_024 };
    let cache_cap = keys / 4 * 3 / 2; // 3/8 of the set: < keys/2, > keys/4
    let key_of = |i: usize| -> (usize, u32) {
        let span = keys / 2;
        let n = if quick { 201 } else { 801 } + 2 * (i % span);
        let k = 32 + (i / span) as u32;
        (n, k)
    };
    let shard_counts: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };
    let passes = 2usize;
    let mut rows: Vec<String> = Vec::new();

    // Phase A: the concurrency wave against a 2-shard cluster.
    let (coord, shards) = spawn_cluster(2, 64, "wave");
    let (wave_s, wave_ok, wave_other) = e18_concurrency_wave(&coord.addr, clients);
    drop(shards);
    drop(coord);
    assert_eq!(
        wave_ok + wave_other,
        clients,
        "every wave client must get an answer"
    );
    let wave_rps = clients as f64 / wave_s;
    rows.push(format!(
        "{{\"workload\": \"concurrency_wave\", \"clients\": {clients}, \"pong\": {wave_ok}, \"other\": {wave_other}, \"secs\": {wave_s:.2}, \"pings_per_sec\": {wave_rps:.0}}}"
    ));

    // Phase B: cache-partition scaling. Same working set, same single
    // driver, only the shard count changes.
    let mut runs_per_sec: Vec<(usize, f64)> = Vec::new();
    for &s in shard_counts {
        let (coord, shard_procs) = spawn_cluster(s, cache_cap, &format!("x{s}"));
        let mut client =
            Client::connect(coord.addr.as_str(), TransportConfig::default()).expect("connect");
        // Warm pass (untimed): populate whatever fits.
        for i in 0..keys {
            let (n, k) = key_of(i);
            client.bounds(n, k, 64).expect("warm bounds");
        }
        let start = Instant::now();
        for _ in 0..passes {
            for i in 0..keys {
                let (n, k) = key_of(i);
                client.bounds(n, k, 64).expect("timed bounds");
            }
        }
        let secs = start.elapsed().as_secs_f64();
        let rps = (passes * keys) as f64 / secs;
        runs_per_sec.push((s, rps));
        rows.push(format!(
            "{{\"workload\": \"cache_partition_scan\", \"shards\": {s}, \"distinct_keys\": {keys}, \"per_shard_cache\": {cache_cap}, \"requests\": {}, \"secs\": {secs:.2}, \"runs_per_sec\": {rps:.1}}}",
            passes * keys
        ));
        drop(client);
        drop(shard_procs);
        drop(coord);
    }
    let rps_of = |s: usize| {
        runs_per_sec
            .iter()
            .find(|(n, _)| *n == s)
            .map(|(_, r)| *r)
            .unwrap_or(0.0)
    };
    let scaling_2_to_4 = if rps_of(2) > 0.0 {
        rps_of(4) / rps_of(2)
    } else {
        0.0
    };

    // Phase C: in-process chaos-soaked resharding run — the integrity
    // verdict. Aggressive faults on every coordinator↔shard link, a
    // join at 1/3 and a leave at 2/3, every answer checked bit-for-bit.
    let soak = cluster_soak(SoakConfig {
        shards: 3,
        requests: if quick { 24 } else { 60 },
        seed: 18,
        level: ChaosLevel::Aggressive,
        reshard: true,
        kill: false,
    });
    assert!(soak.resharded, "the soak must join and leave mid-run");
    rows.push(format!(
        "{{\"workload\": \"chaos_reshard_soak\", \"shards\": {}, \"requests\": {}, \"answered\": {}, \"diverged\": {}, \"failovers\": {}, \"resharded\": {}}}",
        soak.shards_initial, soak.requests, soak.answered, soak.diverged, soak.failovers, soak.resharded
    ));

    println!("{{");
    println!("  \"experiment\": \"e18_cluster\",");
    println!("  \"quick\": {quick},");
    println!("  \"concurrent_clients\": {clients},");
    println!("  \"wave_pings_per_sec\": {wave_rps:.0},");
    for (s, rps) in &runs_per_sec {
        println!("  \"runs_per_sec_{s}_shards\": {rps:.1},");
    }
    println!("  \"scaling_2_to_4\": {scaling_2_to_4:.2},");
    if shard_counts.contains(&8) {
        let scaling_4_to_8 = if rps_of(4) > 0.0 {
            rps_of(8) / rps_of(4)
        } else {
            0.0
        };
        println!("  \"scaling_4_to_8\": {scaling_4_to_8:.2},");
    }
    println!("  \"soak_errors\": {},", soak.errors);
    println!("  \"zero_bit_divergence\": {},", soak.zero_bit_divergence);
    println!("  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!("    {r}{comma}");
    }
    println!("  ],");
    println!("  \"metrics\": [");
    println!("{}", metrics_json_lines("    "));
    println!("  ]");
    println!("}}");
}

fn emit_e14(threads: usize, reps: usize, rows: &[Row], speedup_32: f64) {
    println!("{{");
    println!("  \"experiment\": \"e14_exact_kernels\",");
    println!("  \"entry_bits\": {ENTRY_BITS},");
    println!("  \"threads\": {threads},");
    println!("  \"reps\": {reps},");
    println!("  \"speedup_rational_over_crt_det_n32\": {speedup_32:.2},");
    println!("  \"results_ms\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!(
            "    {{\"n\": {}, \"backend\": \"{}\", \"op\": \"{}\", \"ms\": {:.4}}}{comma}",
            r.n, r.backend, r.op, r.millis
        );
    }
    println!("  ],");
    println!("  \"metrics\": [");
    println!("{}", metrics_json_lines("    "));
    println!("  ]");
    println!("}}");
}
