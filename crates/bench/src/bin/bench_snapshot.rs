//! Machine-readable snapshot of the E14 exact-kernel comparison.
//!
//! Runs the same workloads as the `e14_exact_kernels` criterion bench
//! with plain wall-clock timing and prints a JSON document (committed as
//! `BENCH_e14.json` by `scripts/bench_snapshot.sh`) so the performance
//! trajectory of the exact-arithmetic backends is tracked in-repo.
//!
//! Usage: `bench_snapshot [--quick]` — `--quick` lowers the repeat count
//! (CI smoke); the committed snapshot uses the default.

use std::time::Instant;

use ccmx_bench::{random_matrix, rng_for};
use ccmx_bigint::{Integer, Natural, Rational};
use ccmx_linalg::parallel::default_threads;
use ccmx_linalg::ring::RationalField;
use ccmx_linalg::{bareiss, crt, gauss, modular, Matrix};

const ENTRY_BITS: u32 = 32;
const SIZES: [usize; 4] = [8, 16, 32, 64];
/// The rational baseline stops here: ℚ-Gauss coefficient blow-up makes
/// n = 64 take minutes per determinant.
const RATIONAL_MAX_N: usize = 32;

fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let v = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (best, out.expect("reps >= 1"))
}

struct Row {
    n: usize,
    backend: &'static str,
    op: &'static str,
    millis: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };
    let threads = default_threads();
    let mut rng = rng_for("e14");
    let entry_bound = Natural::from(1u64 << ENTRY_BITS);
    let mut rows: Vec<Row> = Vec::new();

    for n in SIZES {
        let m: Matrix<Integer> = random_matrix(n, ENTRY_BITS, &mut rng);
        let mq = m.map(|e| Rational::from(e.clone()));

        let (crt_det_ms, det_crt) =
            time_best(reps, || modular::det_via_crt(&m, &entry_bound, threads));
        rows.push(Row {
            n,
            backend: "montgomery_crt",
            op: "det",
            millis: crt_det_ms,
        });

        let (crt_rank_ms, rank_crt) = time_best(reps, || crt::rank_int(&m));
        rows.push(Row {
            n,
            backend: "montgomery_crt",
            op: "rank",
            millis: crt_rank_ms,
        });

        let (bareiss_ms, det_bareiss) = time_best(reps, || bareiss::det(&m));
        rows.push(Row {
            n,
            backend: "bareiss",
            op: "det",
            millis: bareiss_ms,
        });
        assert_eq!(det_crt, det_bareiss, "backend disagreement at n = {n}");

        if n <= RATIONAL_MAX_N {
            let (q_det_ms, det_q) = time_best(reps, || gauss::det(&RationalField, &mq));
            rows.push(Row {
                n,
                backend: "rational_gauss",
                op: "det",
                millis: q_det_ms,
            });
            assert_eq!(
                det_q,
                Rational::from(det_crt.clone()),
                "rational det disagreement at n = {n}"
            );
            let (q_rank_ms, rank_q) = time_best(reps, || gauss::rank(&RationalField, &mq));
            rows.push(Row {
                n,
                backend: "rational_gauss",
                op: "rank",
                millis: q_rank_ms,
            });
            assert_eq!(rank_q, rank_crt, "rank disagreement at n = {n}");
        }
    }

    // Headline number for the acceptance gate: ℚ-Gauss / Montgomery-CRT
    // det speedup at n = 32.
    let ms_of = |backend: &str, op: &str, n: usize| {
        rows.iter()
            .find(|r| r.backend == backend && r.op == op && r.n == n)
            .map(|r| r.millis)
    };
    let speedup_32 = match (
        ms_of("rational_gauss", "det", 32),
        ms_of("montgomery_crt", "det", 32),
    ) {
        (Some(q), Some(c)) if c > 0.0 => q / c,
        _ => 0.0,
    };

    println!("{{");
    println!("  \"experiment\": \"e14_exact_kernels\",");
    println!("  \"entry_bits\": {ENTRY_BITS},");
    println!("  \"threads\": {threads},");
    println!("  \"reps\": {reps},");
    println!("  \"speedup_rational_over_crt_det_n32\": {speedup_32:.2},");
    println!("  \"results_ms\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!(
            "    {{\"n\": {}, \"backend\": \"{}\", \"op\": \"{}\", \"ms\": {:.4}}}{comma}",
            r.n, r.backend, r.op, r.millis
        );
    }
    println!("  ]");
    println!("}}");
}
