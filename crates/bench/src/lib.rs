//! # ccmx-bench
//!
//! Shared workload generators and table rendering for the experiment
//! harness. Every experiment (see DESIGN.md and EXPERIMENTS.md) pulls
//! its inputs from here so the Criterion benches, the `experiments`
//! table binary and the `bench_snapshot` JSON emitter measure exactly
//! the same workloads.
//!
//! Paper mapping: the experiments instantiate the quantities that
//! Chu & Schnitger's Theorem 1.1 and Corollaries 1.2/1.3 bound —
//! deterministic vs randomized communication for singularity testing
//! (E-series protocol costs), the truth-matrix rectangle machinery
//! behind the Ω(k n²) lower bound, the VLSI AT² consequences, and the
//! serving-stack experiments (retry storms, breaker degradation,
//! chaos-soak divergence) that keep the *metered-bit* invariant
//! `wire bits == Transcript::total_bits()` observable under load.

#![deny(missing_docs)]

use ccmx_bigint::Integer;
use ccmx_comm::functions::Singularity;
use ccmx_comm::{BitString, MatrixEncoding, Partition};
use ccmx_core::{Params, RestrictedInstance};
use ccmx_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for a named experiment (reproducible workloads).
pub fn rng_for(experiment: &str) -> StdRng {
    let mut seed = 0xCC_57u64;
    for b in experiment.bytes() {
        seed = seed.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
    }
    StdRng::seed_from_u64(seed)
}

/// A uniform random `dim × dim` matrix of `k`-bit entries.
pub fn random_matrix(dim: usize, k: u32, rng: &mut StdRng) -> Matrix<Integer> {
    Matrix::from_fn(dim, dim, |_, _| {
        Integer::from(rng.gen_range(0..(1i64 << k)))
    })
}

/// A random matrix forced singular by duplicating a column.
pub fn random_singular_matrix(dim: usize, k: u32, rng: &mut StdRng) -> Matrix<Integer> {
    let mut m = random_matrix(dim, k, rng);
    let src = rng.gen_range(0..dim);
    let dst = (src + 1 + rng.gen_range(0..dim - 1)) % dim;
    for r in 0..dim {
        m[(r, dst)] = m[(r, src)].clone();
    }
    m
}

/// Encode a matrix for the singularity function.
pub fn encode(dim: usize, k: u32, m: &Matrix<Integer>) -> BitString {
    MatrixEncoding::new(dim, k).encode(m)
}

/// The standard instance mix for protocol metering: half random, half
/// adversarially singular.
pub fn protocol_inputs(dim: usize, k: u32, count: usize, rng: &mut StdRng) -> Vec<BitString> {
    (0..count)
        .map(|i| {
            let m = if i % 2 == 0 {
                random_matrix(dim, k, rng)
            } else {
                random_singular_matrix(dim, k, rng)
            };
            encode(dim, k, &m)
        })
        .collect()
}

/// The π₀ partition for a `(dim, k)` singularity instance.
pub fn pi_zero(dim: usize, k: u32) -> Partition {
    Partition::pi_zero(&MatrixEncoding::new(dim, k))
}

/// The function object for `(dim, k)`.
pub fn singularity(dim: usize, k: u32) -> Singularity {
    Singularity::new(dim, k)
}

/// The B-owned bit positions of a `(dim, k)` singularity instance
/// under `π₀`, in the index order the Gray walk flips them.
pub fn b_positions(dim: usize, k: u32) -> Vec<usize> {
    pi_zero(dim, k).positions_of(ccmx_comm::partition::Owner::B)
}

/// Walk `steps` Gray-code flips of the B-side bits (the exact order
/// `TruthMatrix::enumerate` visits a row) evaluating `f` **fresh** at
/// every point. Returns the number of ones seen, so fresh and
/// incremental walks can be cross-checked.
pub fn gray_walk_fresh(f: &Singularity, b_pos: &[usize], steps: usize) -> u64 {
    use ccmx_comm::functions::BooleanFunction;
    let mut input = BitString::zeros(f.num_bits());
    let mut ones = u64::from(f.eval(&input));
    let mut gray = 0usize;
    for i in 1..steps {
        let j = i.trailing_zeros() as usize;
        gray ^= 1 << j;
        input.set(b_pos[j], (gray >> j) & 1 == 1);
        ones += u64::from(f.eval(&input));
    }
    ones
}

/// The same walk as [`gray_walk_fresh`], through the incremental-oracle
/// cursor (one rank-one engine update per step).
pub fn gray_walk_incremental(f: &Singularity, b_pos: &[usize], steps: usize) -> u64 {
    use ccmx_comm::functions::BooleanFunction;
    let oracle = f.as_incremental().expect("singularity is incremental");
    let input = BitString::zeros(f.num_bits());
    let mut cursor = oracle.begin(&input);
    let mut ones = u64::from(cursor.value());
    for i in 1..steps {
        let j = i.trailing_zeros() as usize;
        ones += u64::from(cursor.flip(b_pos[j]));
    }
    ones
}

/// Random free blocks `(C, E)` for the restricted family.
pub fn random_c_e(params: Params, rng: &mut StdRng) -> (Matrix<Integer>, Matrix<Integer>) {
    let h = params.h();
    let q = params.q_u64();
    let c = Matrix::from_fn(h, h, |_, _| Integer::from(rng.gen_range(0..q) as i64));
    let e = Matrix::from_fn(h, params.e_width(), |_, _| {
        Integer::from(rng.gen_range(0..q) as i64)
    });
    (c, e)
}

/// A random member of the restricted family.
pub fn random_instance(params: Params, rng: &mut StdRng) -> RestrictedInstance {
    RestrictedInstance::random(params, rng)
}

/// Simple fixed-width table printer for the `experiments` binary.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with per-column widths.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..ncol {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("| ");
            for (c, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:>width$} | ", cell, width = widths[c]));
            }
            line.trim_end().to_string() + "\n"
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmx_comm::functions::BooleanFunction;
    use ccmx_linalg::bareiss;

    #[test]
    fn generators_are_reproducible() {
        let mut r1 = rng_for("test");
        let mut r2 = rng_for("test");
        assert_eq!(random_matrix(3, 4, &mut r1), random_matrix(3, 4, &mut r2));
    }

    #[test]
    fn singular_generator_is_singular() {
        let mut rng = rng_for("sing");
        for _ in 0..20 {
            let m = random_singular_matrix(4, 3, &mut rng);
            assert!(bareiss::is_singular(&m));
        }
    }

    #[test]
    fn inputs_match_function_domain() {
        let mut rng = rng_for("dom");
        let f = singularity(4, 2);
        for input in protocol_inputs(4, 2, 6, &mut rng) {
            assert_eq!(input.len(), f.num_bits());
            let _ = f.eval(&input);
        }
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("| a | bb |"));
        assert!(s.contains("| 1 |  2 |"));
    }
}
