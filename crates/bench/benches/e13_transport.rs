//! E13: transport overhead — the same protocol run executed over the
//! in-memory framed transport vs a real TCP-loopback connection, with
//! the in-process sequential runner as the zero-transport baseline.
//! Every runner produces bit-identical transcripts; only the medium
//! (and hence the wall-clock cost) differs.

use ccmx_bench::{pi_zero, protocol_inputs, rng_for, singularity};
use ccmx_comm::protocols::{ModPrimeSingularity, SendAll};
use ccmx_comm::run_sequential;
use ccmx_net::{run_mem_transport, run_tcp_loopback};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_transport");
    group.sample_size(10);

    for &dim in &[4usize, 8, 16] {
        let k = 2u32;
        let mut rng = rng_for("e13");
        let p = pi_zero(dim, k);
        let inputs = protocol_inputs(dim, k, 4, &mut rng);

        let send_all = SendAll::new(singularity(dim, k));
        let mod_prime = ModPrimeSingularity::new(dim, k, 20);

        for (proto_name, proto) in [
            ("send_all", &send_all as &dyn ccmx_comm::TwoPartyProtocol),
            ("mod_prime", &mod_prime as &dyn ccmx_comm::TwoPartyProtocol),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{proto_name}/sequential"), dim),
                &inputs,
                |b, inputs| {
                    let mut i = 0usize;
                    b.iter(|| {
                        let input = &inputs[i % inputs.len()];
                        i += 1;
                        run_sequential(proto, &p, input, i as u64)
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{proto_name}/mem_framed"), dim),
                &inputs,
                |b, inputs| {
                    let mut i = 0usize;
                    b.iter(|| {
                        let input = &inputs[i % inputs.len()];
                        i += 1;
                        run_mem_transport(proto, &p, input, i as u64)
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{proto_name}/tcp_loopback"), dim),
                &inputs,
                |b, inputs| {
                    let mut i = 0usize;
                    b.iter(|| {
                        let input = &inputs[i % inputs.len()];
                        i += 1;
                        run_tcp_loopback(proto, &p, input, i as u64)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
