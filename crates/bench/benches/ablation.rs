//! Ablations of the design choices called out in DESIGN.md §4:
//!
//! 1. Bareiss (fraction-free) vs naive rational elimination for exact
//!    determinants — the intermediate-size blow-up question.
//! 2. CRT-modular determinant vs Bareiss, serial vs threaded.
//! 3. Threaded (channel) protocol runner vs the sequential runner.
//! 4. Parallel vs serial truth-matrix enumeration.
//! 5. Serial vs row-parallel exact matmul.

use ccmx_bench::{pi_zero, protocol_inputs, random_matrix, rng_for, singularity};
use ccmx_bigint::{Natural, Rational};
use ccmx_comm::protocols::SendAll;
use ccmx_comm::truth::TruthMatrix;
use ccmx_comm::{run_sequential, run_threaded};
use ccmx_linalg::parallel::par_matmul;
use ccmx_linalg::ring::{IntegerRing, RationalField};
use ccmx_linalg::{bareiss, gauss, modular};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_determinants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_determinant");
    group.sample_size(10);
    for &(n, bits) in &[(6usize, 8u32), (8, 16), (10, 32)] {
        let mut rng = rng_for("abl-det");
        let m = random_matrix(n, bits, &mut rng);
        let mq = m.map(|e| Rational::from(e.clone()));
        let bound = Natural::power_of_two(bits as u64);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("bareiss_n{n}_b{bits}")),
            &m,
            |b, m| b.iter(|| bareiss::det(m)),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("rational_n{n}_b{bits}")),
            &mq,
            |b, mq| b.iter(|| gauss::det(&RationalField, mq)),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("crt_serial_n{n}_b{bits}")),
            &m,
            |b, m| b.iter(|| modular::det_via_crt(m, &bound, 1)),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("crt_threads4_n{n}_b{bits}")),
            &m,
            |b, m| b.iter(|| modular::det_via_crt(m, &bound, 4)),
        );
    }
    group.finish();
}

fn bench_solvers(c: &mut Criterion) {
    // Exact linear solves: rational elimination vs Cramer vs Dixon
    // p-adic lifting (the production technique).
    use ccmx_linalg::{dixon, solve};
    let mut group = c.benchmark_group("ablation_exact_solve");
    group.sample_size(10);
    for &(n, bits) in &[(4usize, 8u32), (6, 16), (8, 32)] {
        let mut rng = rng_for("abl-solve");
        let a = random_matrix(n, bits, &mut rng);
        let b: Vec<ccmx_bigint::Integer> = (0..n)
            .map(|_| ccmx_bigint::Integer::from(rand::Rng::gen_range(&mut rng, 0..(1i64 << bits))))
            .collect();
        if ccmx_linalg::bareiss::det(&a).is_zero() {
            continue;
        }
        group.bench_function(format!("elimination_n{n}_b{bits}"), |bch| {
            bch.iter(|| solve::solve(&a, &b).unwrap())
        });
        group.bench_function(format!("cramer_n{n}_b{bits}"), |bch| {
            bch.iter(|| solve::solve_cramer(&a, &b).unwrap())
        });
        group.bench_function(format!("dixon_n{n}_b{bits}"), |bch| {
            let mut rng2 = rng_for("abl-dixon");
            bch.iter(|| dixon::solve_dixon(&a, &b, &mut rng2).unwrap())
        });
    }
    group.finish();
}

fn bench_runners(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_runners");
    group.sample_size(10);
    let (dim, k) = (8usize, 8u32);
    let mut rng = rng_for("abl-run");
    let p = pi_zero(dim, k);
    let proto = SendAll::new(singularity(dim, k));
    let inputs = protocol_inputs(dim, k, 4, &mut rng);
    group.bench_function("sequential", |b| {
        let mut i = 0;
        b.iter(|| {
            i += 1;
            run_sequential(&proto, &p, &inputs[i % inputs.len()], i as u64)
        });
    });
    group.bench_function("threaded_channels", |b| {
        let mut i = 0;
        b.iter(|| {
            i += 1;
            run_threaded(&proto, &p, &inputs[i % inputs.len()], i as u64)
        });
    });
    group.finish();
}

fn bench_truth_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_truth_enumeration");
    group.sample_size(10);
    let f = singularity(4, 1);
    let p = pi_zero(4, 1);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| TruthMatrix::enumerate(&f, &p, t))
        });
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_matmul");
    group.sample_size(10);
    let zz = IntegerRing;
    let mut rng = rng_for("abl-mm");
    let n = 24;
    let a = random_matrix(n, 24, &mut rng);
    let b_m = random_matrix(n, 24, &mut rng);
    group.bench_function("serial", |b| b.iter(|| a.mul(&zz, &b_m)));
    for threads in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| par_matmul(&zz, &a, &b_m, t))
        });
    }
    group.finish();
}

fn bench_bigint(c: &mut Criterion) {
    // Multiplication around the Karatsuba threshold and Algorithm D
    // division — the limb kernels under every exact computation here.
    use ccmx_bigint::Natural;
    let mut group = c.benchmark_group("ablation_bigint");
    let mk = |limbs: usize, seed: u64| {
        let mut x = seed;
        Natural::from_limbs(
            (0..limbs)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    x | 1
                })
                .collect(),
        )
    };
    for limbs in [8usize, 32, 128, 512] {
        let a = mk(limbs, 1);
        let b = mk(limbs, 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("mul_{limbs}_limbs")),
            &limbs,
            |bch, _| bch.iter(|| &a * &b),
        );
    }
    for limbs in [16usize, 64, 256] {
        let a = mk(limbs, 3);
        let b = mk(limbs / 2, 4);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("div_rem_{limbs}_by_{}", limbs / 2)),
            &limbs,
            |bch, _| bch.iter(|| a.div_rem(&b)),
        );
    }
    let big = mk(64, 5);
    let modulus = mk(32, 6);
    group.bench_function("pow_mod_64_limbs", |bch| {
        bch.iter(|| ccmx_bigint::modular::pow_mod(&big, &Natural::from(65537u64), &modulus))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_determinants,
    bench_solvers,
    bench_runners,
    bench_truth_enumeration,
    bench_matmul,
    bench_bigint
);
criterion_main!(benches);
