//! E18: the sharded cluster measured in-process — ring routing cost,
//! coordinator dispatch on the cache-hit path, and a metered protocol
//! run through the full coordinator→shard TCP stack vs the in-process
//! sequential baseline. The heavyweight multi-process phases (the
//! 10k-connection wave, the cache-partition scaling sweep) live in
//! `bench_snapshot --e18`, which commits `BENCH_e18.json`.

use ccmx_cluster::{fnv1a64, ClusterConfig, Coordinator, HashRing, ShardConfig, ShardSpec};
use ccmx_comm::run_sequential;
use ccmx_net::{ProtoSpec, Request};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e18_cluster");
    group.sample_size(10);

    // Ring routing: pure CPU, the per-request cost of placement.
    for &shards in &[2usize, 8] {
        let mut ring = HashRing::new(160);
        for i in 0..shards {
            ring.add_shard(&format!("s{i}"));
        }
        group.bench_with_input(BenchmarkId::new("ring_route", shards), &ring, |b, ring| {
            let mut key = 0u64;
            b.iter(|| {
                key = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
                std::hint::black_box(ring.route(fnv1a64(&key.to_le_bytes())))
            });
        });
    }

    // A live 2-shard cluster for the dispatch-path rows.
    let mut shards = Vec::new();
    let mut specs = Vec::new();
    for i in 0..2 {
        let name = format!("e18b-s{i}");
        let h = ccmx_cluster::serve_shard("127.0.0.1:0", ShardConfig::named(&name))
            .expect("bind shard");
        specs.push(ShardSpec::new(&name, &h.addr().to_string()));
        shards.push(h);
    }
    let coordinator = Coordinator::over_tcp(ClusterConfig::default(), specs);

    // Bounds on the hit path: after the first call the shard answers
    // from its LRU; the measured cost is routing + two loopback hops.
    group.bench_function("dispatch_bounds_hit", |b| {
        let req = Request::Bounds {
            n: 7,
            k: 3,
            security: 64,
        };
        coordinator.dispatch(&req);
        b.iter(|| std::hint::black_box(coordinator.dispatch(&req)));
    });

    // A metered protocol run through the cluster vs in-process.
    let spec = ProtoSpec::SendAllSingularity { dim: 2, k: 2 };
    let setup = spec.build();
    let input = ccmx_comm::BitString::from_u64(0b1011_0010, setup.input_bits);
    group.bench_function("run_via_cluster", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let resp = coordinator.dispatch(&Request::Run {
                spec,
                input: input.clone(),
                seed,
            });
            std::hint::black_box(resp)
        });
    });
    group.bench_function("run_sequential_baseline", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(run_sequential(
                setup.proto.as_ref(),
                &setup.partition,
                &input,
                seed,
            ))
        });
    });

    group.finish();
    drop(coordinator);
    for s in shards {
        s.shutdown();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
