//! E14: the exact-arithmetic kernel shoot-out.
//!
//! Rational Gauss vs fraction-free Bareiss vs the Montgomery-CRT fast
//! path, on random `n × n` matrices of 32-bit entries, n ∈ {8, 16, 32,
//! 64}. The rational baseline is capped at n = 32 — its coefficient
//! blow-up makes n = 64 take minutes per determinant, which is exactly
//! the point of the fast path. `scripts/bench_snapshot.sh` runs the same
//! workloads with wall-clock timing and commits `BENCH_e14.json`.

use ccmx_bench::{random_matrix, rng_for};
use ccmx_bigint::{Natural, Rational};
use ccmx_linalg::parallel::default_threads;
use ccmx_linalg::ring::RationalField;
use ccmx_linalg::{bareiss, crt, gauss, modular};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const ENTRY_BITS: u32 = 32;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_exact_kernels");
    group.sample_size(10);
    let mut rng = rng_for("e14");
    let threads = default_threads();
    for n in [8usize, 16, 32, 64] {
        let m = random_matrix(n, ENTRY_BITS, &mut rng);
        let mq = m.map(|e| Rational::from(e.clone()));
        let entry_bound = Natural::from(1u64 << ENTRY_BITS);
        if n <= 32 {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("det_rational_gauss_n{n}")),
                &mq,
                |b, mq| b.iter(|| gauss::det(&RationalField, mq)),
            );
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("rank_rational_gauss_n{n}")),
                &mq,
                |b, mq| b.iter(|| gauss::rank(&RationalField, mq)),
            );
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("det_bareiss_n{n}")),
            &m,
            |b, m| b.iter(|| bareiss::det(m)),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("det_montgomery_crt_n{n}")),
            &m,
            |b, m| b.iter(|| modular::det_via_crt(m, &entry_bound, threads)),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("rank_montgomery_crt_n{n}")),
            &m,
            |b, m| b.iter(|| crt::rank_int(m)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
