//! E7: Lemma 3.9 — the partition normalizer on random even partitions,
//! and the properness checker itself.

use ccmx_bench::rng_for;
use ccmx_comm::Partition;
use ccmx_core::{proper, Params};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_proper_partitions");
    group.sample_size(10);
    for params in [Params::new(5, 2), Params::new(7, 2), Params::new(9, 3)] {
        let enc = params.encoding();
        let mut rng = rng_for("e7");
        let parts: Vec<Partition> = (0..4)
            .map(|_| Partition::random_even(enc.total_bits(), &mut rng))
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("normalize_n{}_k{}", params.n, params.k)),
            &parts,
            |b, parts| {
                let mut i = 0;
                b.iter(|| {
                    i += 1;
                    proper::normalize(&parts[i % parts.len()], params).expect("Lemma 3.9")
                });
            },
        );
        let pi0 = Partition::pi_zero(&enc);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("is_proper_n{}_k{}", params.n, params.k)),
            &pi0,
            |b, pi0| b.iter(|| proper::is_proper(pi0, params)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
