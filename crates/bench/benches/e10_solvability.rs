//! E10: Corollary 1.3 — solvability decision on the restricted family's
//! systems (rank-based and elimination-based oracles).

use ccmx_bench::{random_c_e, random_instance, rng_for};
use ccmx_core::{lemma35, reductions, Params};
use ccmx_linalg::solve;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_solvability");
    for params in [Params::new(5, 2), Params::new(7, 3), Params::new(9, 4)] {
        let mut rng = rng_for("e10");
        let systems: Vec<_> = (0..4)
            .map(|i| {
                let inst = if i % 2 == 0 {
                    let (cb, eb) = random_c_e(params, &mut rng);
                    lemma35::complete(params, &cb, &eb).unwrap()
                } else {
                    random_instance(params, &mut rng)
                };
                reductions::solvability_system(&inst)
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("elimination_n{}_k{}", params.n, params.k)),
            &systems,
            |b, systems| {
                let mut i = 0;
                b.iter(|| {
                    i += 1;
                    let (m, rhs) = &systems[i % systems.len()];
                    solve::is_solvable(m, rhs)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("rank_oracle_n{}_k{}", params.n, params.k)),
            &systems,
            |b, systems| {
                let mut i = 0;
                b.iter(|| {
                    i += 1;
                    let (m, rhs) = &systems[i % systems.len()];
                    solve::is_solvable_by_rank(m, rhs)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
