//! E5: Lemma 3.5 — the completion algorithm (find D, y for given C, E)
//! and its verification (exact singularity of the completed instance).

use ccmx_bench::{random_c_e, rng_for};
use ccmx_core::{lemma35, Params};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_completion");
    for params in [
        Params::new(5, 2),
        Params::new(7, 2),
        Params::new(9, 4),
        Params::new(13, 4),
        Params::new(17, 4),
    ] {
        let mut rng = rng_for("e5");
        let blocks: Vec<_> = (0..4).map(|_| random_c_e(params, &mut rng)).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("complete_n{}_k{}", params.n, params.k)),
            &blocks,
            |b, blocks| {
                let mut i = 0;
                b.iter(|| {
                    i += 1;
                    let (c, e) = &blocks[i % blocks.len()];
                    lemma35::complete(params, c, e).expect("Lemma 3.5")
                });
            },
        );
        let completed: Vec<_> = blocks
            .iter()
            .map(|(c, e)| lemma35::complete(params, c, e).unwrap())
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("verify_n{}_k{}", params.n, params.k)),
            &completed,
            |b, insts| {
                let mut i = 0;
                b.iter(|| {
                    i += 1;
                    assert!(ccmx_core::lemma32::m_is_singular(&insts[i % insts.len()]));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
