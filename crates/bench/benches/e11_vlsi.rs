//! E11: the VLSI side — cycle-accurate systolic runs (metered mesh) and
//! the Thompson-cut computation on explicit chips.

use ccmx_bench::rng_for;
use ccmx_linalg::Matrix;
use ccmx_vlsi::{Chip, SystolicMatMul};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_vlsi");
    group.sample_size(10);
    let p = 8191u64;
    for n in [8usize, 16, 32] {
        let mut rng = rng_for("e11");
        let a = Matrix::from_fn(n, n, |_, _| rng.gen_range(0..p));
        let b = Matrix::from_fn(n, n, |_, _| rng.gen_range(0..p));
        let mesh = SystolicMatMul::new(p, 13);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("systolic_n{n}")),
            &(a, b),
            |bch, (a, b)| bch.iter(|| mesh.run(a, b)),
        );
    }
    for side in [32usize, 128] {
        let chip = Chip::uniform(side, side, (side * side * 8) as u64);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("thompson_cut_{side}x{side}")),
            &chip,
            |b, chip| b.iter(|| chip.thompson_cut()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
