//! E15: the kernel engine — incremental enumeration and one-pass
//! residue batching.
//!
//! Two shoot-outs:
//!
//! 1. **Gray-walk singularity**: evaluating a truth-matrix row of the
//!    singularity function step by step, fresh `eval` per point (an
//!    `O(dim³)` exact elimination) vs. the [`IncrementalOracle`] cursor
//!    (an `O(dim²)`-per-prime rank-one update). Walks are bounded-step
//!    prefixes of the exact Gray order `TruthMatrix::enumerate` uses.
//! 2. **Multi-prime reduction**: reducing a 32-bit-entry matrix into
//!    residues for a full CRT prime plan, scalar per-prime `reduce` vs.
//!    the one-pass limb-fold `ResiduePlan`.
//!
//! `scripts/bench_snapshot.sh` runs the same workloads with wall-clock
//! timing and commits `BENCH_e15.json`.

use ccmx_bench::{b_positions, gray_walk_fresh, gray_walk_incremental, random_matrix, rng_for};
use ccmx_bigint::Natural;
use ccmx_comm::functions::Singularity;
use ccmx_linalg::engine::ResiduePlan;
use ccmx_linalg::modular::crt_prime_plan;
use ccmx_linalg::montgomery::MontgomeryField;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Gray-walk length per measured row (capped by the B-side size).
const WALK_STEPS: usize = 256;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_enumeration_engine");
    group.sample_size(10);

    for dim in [4usize, 8] {
        let f = Singularity::new(dim, 1);
        let b_pos = b_positions(dim, 1);
        let steps = WALK_STEPS.min(1 << b_pos.len());
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("gray_walk_fresh_dim{dim}_k1")),
            &f,
            |b, f| b.iter(|| gray_walk_fresh(f, &b_pos, steps)),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("gray_walk_incremental_dim{dim}_k1")),
            &f,
            |b, f| b.iter(|| gray_walk_incremental(f, &b_pos, steps)),
        );
    }

    let mut rng = rng_for("e15");
    let n = 32usize;
    let entry_bits = 32u32;
    let m = random_matrix(n, entry_bits, &mut rng);
    let primes = crt_prime_plan(n, &Natural::from(1u64 << entry_bits));
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("reduce_per_prime_n{n}_32bit")),
        &m,
        |b, m| {
            b.iter(|| {
                let mut acc = 0u64;
                for &p in &primes {
                    let field = MontgomeryField::new(p);
                    for e in m.data() {
                        acc = acc.wrapping_add(field.reduce(e));
                    }
                }
                acc
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("reduce_batched_n{n}_32bit")),
        &m,
        |b, m| {
            let mut plan = ResiduePlan::new(&primes);
            b.iter(|| plan.reduce_matrix(m))
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
