//! E4: Lemma 3.4 — span canonicalization: the cost of the
//! `C ↦ canonical_form(Span(A(C)))` map that counts the truth matrix's
//! rows, plus the exhaustive tiny-family injectivity check.

use ccmx_bench::{random_c_e, rng_for};
use ccmx_core::{lemma34, Params};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_lemma34");
    for params in [
        Params::new(5, 2),
        Params::new(7, 2),
        Params::new(9, 3),
        Params::new(13, 4),
    ] {
        let mut rng = rng_for("e4");
        let cs: Vec<_> = (0..4).map(|_| random_c_e(params, &mut rng).0).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("canonical_span_n{}_k{}", params.n, params.k)),
            &cs,
            |b, cs| {
                let mut i = 0;
                b.iter(|| {
                    i += 1;
                    lemma34::span_canonical(params, &cs[i % cs.len()])
                });
            },
        );
    }
    group.sample_size(10);
    group.bench_function("exhaustive_injectivity_n5_k2", |b| {
        b.iter(|| lemma34::verify_injectivity_exhaustive(Params::new(5, 2), 100).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
