//! E8: the randomized mod-prime protocol — full runs (prime sampling,
//! residue shipping, GF(p) elimination) vs the deterministic protocol on
//! identical inputs; wall-clock counterpart of the bit-cost separation.

use ccmx_bench::{pi_zero, protocol_inputs, rng_for, singularity};
use ccmx_comm::protocols::{ModPrimeSingularity, SendAll};
use ccmx_comm::run_sequential;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_randomized_vs_deterministic");
    for &(dim, k) in &[(8usize, 8u32), (8, 48), (16, 16)] {
        let mut rng = rng_for("e8");
        let p = pi_zero(dim, k);
        let inputs = protocol_inputs(dim, k, 6, &mut rng);
        let det = SendAll::new(singularity(dim, k));
        let prob = ModPrimeSingularity::new(dim, k, 20);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("send_all_dim{dim}_k{k}")),
            &inputs,
            |b, inputs| {
                let mut i = 0;
                b.iter(|| {
                    i += 1;
                    run_sequential(&det, &p, &inputs[i % inputs.len()], i as u64)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("mod_prime_dim{dim}_k{k}")),
            &inputs,
            |b, inputs| {
                let mut i = 0;
                b.iter(|| {
                    i += 1;
                    run_sequential(&prob, &p, &inputs[i % inputs.len()], i as u64)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
