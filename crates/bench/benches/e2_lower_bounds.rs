//! E2: the lower-bound machinery — truth-matrix enumeration (serial vs
//! parallel) and the certified bound computation (rank + fooling set).

use ccmx_bench::{pi_zero, singularity};
use ccmx_comm::bounds::{fooling_set_greedy, lower_bounds, rank_gf2};
use ccmx_comm::truth::TruthMatrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_truth_and_bounds");
    group.sample_size(10);
    for &(dim, k) in &[(2usize, 3u32), (4, 1)] {
        let f = singularity(dim, k);
        let p = pi_zero(dim, k);
        for threads in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("enumerate_dim{dim}_k{k}_t{threads}")),
                &threads,
                |b, &threads| b.iter(|| TruthMatrix::enumerate(&f, &p, threads)),
            );
        }
        let tm = TruthMatrix::enumerate(&f, &p, 4);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("rank_gf2_dim{dim}_k{k}")),
            &tm,
            |b, tm| b.iter(|| rank_gf2(tm)),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("fooling_dim{dim}_k{k}")),
            &tm,
            |b, tm| b.iter(|| fooling_set_greedy(tm).len()),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("full_report_dim{dim}_k{k}")),
            &tm,
            |b, tm| b.iter(|| lower_bounds(tm)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
