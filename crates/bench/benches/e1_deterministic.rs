//! E1: the deterministic send-all protocol — full run cost (encode,
//! split, transmit, decode, exact Bareiss decision) across (2n, k).

use ccmx_bench::{pi_zero, protocol_inputs, rng_for, singularity};
use ccmx_comm::protocols::SendAll;
use ccmx_comm::run_sequential;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_send_all");
    for &(dim, k) in &[(4usize, 2u32), (8, 2), (8, 8), (16, 8)] {
        let mut rng = rng_for("e1");
        let p = pi_zero(dim, k);
        let proto = SendAll::new(singularity(dim, k));
        let inputs = protocol_inputs(dim, k, 8, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("dim{dim}_k{k}")),
            &inputs,
            |b, inputs| {
                let mut i = 0usize;
                b.iter(|| {
                    let input = &inputs[i % inputs.len()];
                    i += 1;
                    run_sequential(&proto, &p, input, i as u64)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
