//! E12: the vector-space span problem — the union-spans decision and the
//! canonical-form message of the fixed-partition protocol.

use ccmx_bench::{random_matrix, rng_for};
use ccmx_core::span_problem;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_span_problem");
    for dim in [4usize, 8, 12] {
        let mut rng = rng_for("e12");
        let m = random_matrix(dim, 3, &mut rng);
        let (v1, v2) = span_problem::singularity_as_span_instance(&m);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("union_spans_dim{dim}")),
            &(v1.clone(), v2),
            |b, (v1, v2)| b.iter(|| span_problem::union_spans_all(v1, v2)),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("canonical_message_dim{dim}")),
            &v1,
            |b, v1| b.iter(|| span_problem::canonical_message(v1)),
        );
    }
    group.sample_size(10);
    group.bench_function("lattice_count_5_vectors", |b| {
        let x: Vec<Vec<ccmx_bigint::Integer>> = (0..5)
            .map(|i| {
                (0..3)
                    .map(|j| ccmx_bigint::Integer::from(((i * j + i) % 3) as i64))
                    .collect()
            })
            .collect();
        b.iter(|| span_problem::count_subspace_lattice(&x, 1 << 10))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
