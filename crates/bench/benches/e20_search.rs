//! E20: branch-and-bound CC(f) search — memo on vs off, serial vs
//! the root-frontier worker pool.
//!
//! The intersection-threshold family `f(x,y) = popcount(x & y) >= 2`
//! is the honest hard case here: the two-sided chi bound leaves a
//! real gap at the root, so the solver actually branches and the
//! canonical-rectangle memo pays. Equality is the paper's classic
//! instance and closes almost immediately — it is included as the
//! "bounds do the work" contrast. `scripts/bench_snapshot.sh --e20`
//! runs the larger gated instances with wall-clock timing and commits
//! `BENCH_e20.json`.

use ccmx_comm::truth::TruthMatrix;
use ccmx_search::{solve, SearchConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn cfg(threads: usize, use_memo: bool) -> SearchConfig {
    SearchConfig {
        threads,
        use_memo,
        ..SearchConfig::default()
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e20_search");
    group.sample_size(10);

    let equality_8 = TruthMatrix::from_fn(8, 8, |x, y| x == y);
    let intersect_16 = TruthMatrix::from_fn(16, 16, |x, y| (x & y).count_ones() >= 2);
    let intersect_18 = TruthMatrix::from_fn(18, 18, |x, y| (x & y).count_ones() >= 2);

    for (label, t) in [
        ("equality_8", &equality_8),
        ("intersect_ge2_16", &intersect_16),
        ("intersect_ge2_18", &intersect_18),
    ] {
        group.bench_function(
            BenchmarkId::from_parameter(format!("{label}_serial_nomemo")),
            |b| b.iter(|| solve(t, &cfg(1, false)).expect("solve").cc),
        );
        group.bench_function(
            BenchmarkId::from_parameter(format!("{label}_serial_memo")),
            |b| b.iter(|| solve(t, &cfg(1, true)).expect("solve").cc),
        );
        group.bench_function(
            BenchmarkId::from_parameter(format!("{label}_parallel_memo")),
            |b| b.iter(|| solve(t, &cfg(4, true)).expect("solve").cc),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
