//! E6: Lemmas 3.3/3.6/3.7 — exact span-intersection bases over growing
//! row sets, and greedy rectangle search in enumerated truth matrices.

use ccmx_bench::{pi_zero, random_c_e, rng_for, singularity};
use ccmx_comm::bounds::largest_one_rectangle_greedy;
use ccmx_comm::truth::TruthMatrix;
use ccmx_core::{rectangles, Params};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_rectangles");
    group.sample_size(10);
    let params = Params::new(9, 2);
    let mut rng = rng_for("e6");
    for rows in [2usize, 4, 6] {
        let cs: Vec<_> = (0..rows).map(|_| random_c_e(params, &mut rng).0).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("intersection_{rows}_rows")),
            &cs,
            |b, cs| b.iter(|| rectangles::intersection_dimension(params, cs)),
        );
    }
    for &(dim, k) in &[(2usize, 2u32), (4, 1)] {
        let f = singularity(dim, k);
        let p = pi_zero(dim, k);
        let tm = TruthMatrix::enumerate(&f, &p, 4);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("greedy_rectangle_dim{dim}_k{k}")),
            &tm,
            |b, tm| b.iter(|| largest_one_rectangle_greedy(tm)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
