//! E19: communication-avoiding elimination vs the scalar sweeps.
//!
//! The blocked Montgomery kernels (panel factorization with one batched
//! inversion per panel + grouped-REDC trailing update, tile width from
//! the Hong–Kung fast-memory knob `CCMX_FAST_MEM_WORDS`) against the
//! scalar delayed-reduction oracles, over the full CRT prime plan of a
//! random `n × n` matrix of 32-bit entries. `scripts/bench_snapshot.sh`
//! runs the same workloads with wall-clock timing plus the I/O-meter
//! read-back and commits `BENCH_e19.json`.

use ccmx_bench::{random_matrix, rng_for};
use ccmx_bigint::Natural;
use ccmx_linalg::engine::ResiduePlan;
use ccmx_linalg::modular;
use ccmx_linalg::montgomery::{
    det_from_residues, det_from_residues_scalar, echelon_from_residues,
    echelon_from_residues_scalar,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const ENTRY_BITS: u32 = 32;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e19_comm_avoiding");
    group.sample_size(10);
    let mut rng = rng_for("e19");
    for n in [16usize, 32, 64] {
        let m = random_matrix(n, ENTRY_BITS, &mut rng);
        let primes = modular::crt_prime_plan(n, &Natural::from(1u64 << ENTRY_BITS));
        let mut plan = ResiduePlan::new(&primes);
        let residues = plan.reduce_matrix(&m);
        let fields = plan.fields();

        group.bench_function(
            BenchmarkId::from_parameter(format!("det_scalar_crt_n{n}")),
            |b| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for (k, f) in fields.iter().enumerate() {
                        acc ^= det_from_residues_scalar(f, n, &residues[k]);
                    }
                    acc
                })
            },
        );
        group.bench_function(
            BenchmarkId::from_parameter(format!("det_blocked_crt_n{n}")),
            |b| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for (k, f) in fields.iter().enumerate() {
                        acc ^= det_from_residues(f, n, &residues[k]);
                    }
                    acc
                })
            },
        );
        group.bench_function(
            BenchmarkId::from_parameter(format!("rref_scalar_n{n}")),
            |b| b.iter(|| echelon_from_residues_scalar(&fields[0], n, n, &residues[0]).rank()),
        );
        group.bench_function(
            BenchmarkId::from_parameter(format!("rref_blocked_n{n}")),
            |b| b.iter(|| echelon_from_residues(&fields[0], n, n, &residues[0]).rank()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
