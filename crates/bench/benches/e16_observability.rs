//! E16: observability overhead — the registry must be cheap enough for
//! the pool hot path.
//!
//! Measured shoot-outs:
//!
//! * `counter_inc` vs `raw_atomic_inc`: a registered counter increment
//!   is one relaxed `fetch_add` on a `&'static` atomic — the bench
//!   documents that the registry adds no locking over the raw atomic
//!   (`mutex_inc_baseline` shows what a locked counter would cost).
//! * `histogram_record`: bucket search + two `fetch_add`s.
//! * `span_scope`: open + drop one top-level span, including the
//!   per-thread buffer drain into the global ring.
//! * `render`: a full exposition pass over the registry (the slow path
//!   — scrapes, not hot loops).
//!
//! `bench_snapshot --e16` runs the same workloads with wall-clock
//! timing and commits `BENCH_e16.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_observability");
    group.sample_size(10);

    let counter = ccmx_obs::registry().counter("e16_bench_counter", &[]);
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));

    static RAW: AtomicU64 = AtomicU64::new(0);
    group.bench_function("raw_atomic_inc", |b| {
        b.iter(|| RAW.fetch_add(1, Ordering::Relaxed))
    });

    let locked = Mutex::new(0u64);
    group.bench_function("mutex_inc_baseline", |b| {
        b.iter(|| {
            let mut g = locked.lock().unwrap();
            *g += 1;
            *g
        })
    });

    let hist = ccmx_obs::registry().histogram("e16_bench_hist", &[], ccmx_obs::buckets::LATENCY_NS);
    group.bench_function("histogram_record", |b| b.iter(|| hist.record(12_345)));

    group.bench_function("span_scope", |b| {
        b.iter(|| {
            let g = ccmx_obs::span("e16.bench");
            g.id()
        })
    });

    group.bench_function("render", |b| b.iter(|| ccmx_obs::registry().render().len()));

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
