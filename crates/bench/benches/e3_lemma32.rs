//! E3: Lemma 3.2 — the two sides of the equivalence as computational
//! kernels: exact 2n×2n Bareiss singularity vs the (n×(n−1)) span
//! membership test.

use ccmx_bench::{random_instance, rng_for};
use ccmx_core::{lemma32, Params};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_lemma32");
    for params in [
        Params::new(5, 2),
        Params::new(7, 3),
        Params::new(9, 4),
        Params::new(13, 4),
    ] {
        let mut rng = rng_for("e3");
        let insts: Vec<_> = (0..4).map(|_| random_instance(params, &mut rng)).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("singular_side_n{}_k{}", params.n, params.k)),
            &insts,
            |b, insts| {
                let mut i = 0;
                b.iter(|| {
                    i += 1;
                    lemma32::m_is_singular(&insts[i % insts.len()])
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("span_side_n{}_k{}", params.n, params.k)),
            &insts,
            |b, insts| {
                let mut i = 0;
                b.iter(|| {
                    i += 1;
                    lemma32::bu_in_span_a(&insts[i % insts.len()])
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
