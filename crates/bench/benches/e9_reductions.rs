//! E9: Corollary 1.2 — the decompositions as kernels: det, rank, QR,
//! SVD structure, LUP, and the `[[I,B],[A,C]]` rank trick.

use ccmx_bench::{random_matrix, rng_for};
use ccmx_bigint::Rational;
use ccmx_core::reductions;
use ccmx_linalg::ring::RationalField;
use ccmx_linalg::{bareiss, lup, qr, svd};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_decompositions");
    let f = RationalField;
    for n in [4usize, 6, 8] {
        let mut rng = rng_for("e9");
        let m = random_matrix(n, 8, &mut rng);
        let mq = m.map(|e| Rational::from(e.clone()));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("det_bareiss_n{n}")),
            &m,
            |b, m| b.iter(|| bareiss::det(m)),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("rank_n{n}")),
            &m,
            |b, m| b.iter(|| bareiss::rank(m)),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("qr_n{n}")),
            &mq,
            |b, mq| b.iter(|| qr::qr(mq)),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("svd_structure_n{n}")),
            &m,
            |b, m| b.iter(|| svd::svd_structure(m)),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("lup_n{n}")),
            &mq,
            |b, mq| b.iter(|| lup::lup(&f, mq)),
        );
        let a = random_matrix(n, 4, &mut rng);
        let bm = random_matrix(n, 4, &mut rng);
        let zz = ccmx_linalg::ring::IntegerRing;
        let prod = a.mul(&zz, &bm);
        group.bench_function(format!("product_trick_n{n}"), |bch| {
            bch.iter(|| reductions::product_check_via_rank(&a, &bm, &prod))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
