//! The process-global metrics registry: counters, gauges, fixed-bucket
//! histograms, and Prometheus-style text exposition.
//!
//! Concurrency contract: *registration* (first use of a series) takes a
//! short mutex; the returned handles are `&'static` references to leaked
//! atomics, so the *increment path is lock-free* — a counter bump is one
//! `fetch_add(Relaxed)`, a histogram record is two. Rendering and
//! [`Registry::reset`] take the registration lock but only read/zero the
//! atomics with relaxed ordering, so they never stall writers.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing counter. Increments are single relaxed
/// atomic RMWs; there is no lock anywhere on the path.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A gauge: a value that can move both ways (queue depths, pool sizes).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (negative to decrement).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Index of the bucket a value lands in, given inclusive upper `bounds`
/// (sorted ascending). Returns `bounds.len()` for values above every
/// bound — the implicit `+Inf` bucket.
pub fn bucket_index(bounds: &[u64], v: u64) -> usize {
    bounds.partition_point(|&b| b < v)
}

/// A fixed-bucket histogram over `u64` samples (latencies in
/// nanoseconds, sizes in bytes). Buckets hold *non-cumulative* counts
/// internally; [`Registry::render`] emits the cumulative `le` form.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` slots; the last is the `+Inf` bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// Record one sample. Lock-free: two relaxed RMWs plus a relaxed
    /// increment of the bucket slot.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(&self.bounds, v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The inclusive upper bucket bounds this histogram was built with.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// A point-in-time copy of the full distribution.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum(),
            count: self.count(),
        }
    }

    fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.total.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time histogram copy, mergeable: the merge of two
/// snapshots equals the snapshot of a histogram fed the concatenation
/// of both sample streams (the proptest in `tests/proptest_obs.rs`
/// checks exactly this).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Inclusive upper bucket bounds.
    pub bounds: Vec<u64>,
    /// Non-cumulative per-bucket counts (`bounds.len() + 1` slots, the
    /// last being `+Inf`).
    pub counts: Vec<u64>,
    /// Sum of all samples.
    pub sum: u64,
    /// Number of samples.
    pub count: u64,
}

impl HistSnapshot {
    /// Merge `other` into `self`. Panics if the bucket bounds differ —
    /// distributions over different bucketings are not comparable.
    pub fn merge(&mut self, other: &HistSnapshot) {
        assert_eq!(self.bounds, other.bounds, "merging mismatched bucketings");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Standard bucket-bound sets.
pub mod buckets {
    /// Latency buckets in nanoseconds: powers of four from 1 µs to ~4 s.
    /// Wide enough for a counter bump and a multi-second rational
    /// fallback to land in distinct, interior buckets.
    pub const LATENCY_NS: &[u64] = &[
        1_000,
        4_000,
        16_000,
        64_000,
        256_000,
        1_024_000,
        4_096_000,
        16_384_000,
        65_536_000,
        262_144_000,
        1_048_576_000,
        4_194_304_000,
    ];

    /// Size buckets in bytes: powers of four from 64 B to ~64 MiB.
    pub const SIZE_BYTES: &[u64] = &[
        64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216,
        67_108_864,
    ];
}

/// One registered series: name + sorted label pairs.
type SeriesKey = (&'static str, Vec<(&'static str, &'static str)>);

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// The process-global registry. Obtain it with [`registry`]; register
/// series with [`Registry::counter`] / [`Registry::gauge`] /
/// [`Registry::histogram`] (idempotent — the same key returns the same
/// handle), read everything back with [`Registry::render`].
pub struct Registry {
    inner: Mutex<BTreeMap<SeriesKey, Metric>>,
}

impl Registry {
    /// Registration/render lock. Poison-tolerant: a panic inside a
    /// registration (e.g. a metric-kind mismatch) must not wedge every
    /// later increment site in the process.
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<SeriesKey, Metric>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The process-global registry instance.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        inner: Mutex::new(BTreeMap::new()),
    })
}

fn series_key(name: &'static str, labels: &[(&'static str, &'static str)]) -> SeriesKey {
    let mut l = labels.to_vec();
    l.sort_unstable();
    (name, l)
}

impl Registry {
    /// Get or register the counter `name{labels}`. Panics if the series
    /// exists with a different metric kind.
    pub fn counter(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
    ) -> &'static Counter {
        let key = series_key(name, labels);
        let mut inner = self.lock();
        match inner.entry(key).or_insert_with(|| {
            Metric::Counter(Box::leak(Box::new(Counter {
                value: AtomicU64::new(0),
            })))
        }) {
            Metric::Counter(c) => c,
            _ => panic!("series {name} already registered with a different kind"),
        }
    }

    /// Get or register the gauge `name{labels}`.
    pub fn gauge(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
    ) -> &'static Gauge {
        let key = series_key(name, labels);
        let mut inner = self.lock();
        match inner.entry(key).or_insert_with(|| {
            Metric::Gauge(Box::leak(Box::new(Gauge {
                value: AtomicI64::new(0),
            })))
        }) {
            Metric::Gauge(g) => g,
            _ => panic!("series {name} already registered with a different kind"),
        }
    }

    /// Get or register the histogram `name{labels}` with the given
    /// inclusive upper bucket `bounds` (see [`buckets`]). Re-registering
    /// with different bounds returns the original histogram — bounds are
    /// fixed at first registration.
    pub fn histogram(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
        bounds: &[u64],
    ) -> &'static Histogram {
        let key = series_key(name, labels);
        let mut inner = self.lock();
        match inner
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Box::leak(Box::new(Histogram::new(bounds)))))
        {
            Metric::Histogram(h) => h,
            _ => panic!("series {name} already registered with a different kind"),
        }
    }

    /// Value of a registered counter, or `None` if the series does not
    /// exist. Test/introspection helper — hot paths hold handles.
    pub fn counter_value(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
    ) -> Option<u64> {
        let key = series_key(name, labels);
        match self.lock().get(&key) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Value of a registered gauge, or `None`.
    pub fn gauge_value(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
    ) -> Option<i64> {
        let key = series_key(name, labels);
        match self.lock().get(&key) {
            Some(Metric::Gauge(g)) => Some(g.get()),
            _ => None,
        }
    }

    /// Zero every registered counter, gauge, and histogram (the series
    /// themselves stay registered — handles remain valid), and clear the
    /// span ring. Benchmarks call this between experiments so rows are
    /// independent of whatever warmed the process.
    pub fn reset(&self) {
        let inner = self.lock();
        for metric in inner.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
        drop(inner);
        crate::span::clear();
    }

    /// Render every registered series as Prometheus-style text
    /// exposition: `name{label="v"} value` lines, histograms as
    /// cumulative `_bucket{le="..."}` plus `_sum` and `_count`. Series
    /// appear in sorted order; values are relaxed-atomic reads, so the
    /// text is a near-point-in-time snapshot, never a stall for writers.
    pub fn render(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for ((name, labels), metric) in inner.iter() {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", name, fmt_labels(labels, None), c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{}{} {}", name, fmt_labels(labels, None), g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cumulative = 0u64;
                    for (i, n) in snap.counts.iter().enumerate() {
                        cumulative += n;
                        let le = snap
                            .bounds
                            .get(i)
                            .map(|b| b.to_string())
                            .unwrap_or_else(|| "+Inf".to_string());
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            name,
                            fmt_labels(labels, Some(&le)),
                            cumulative
                        );
                    }
                    let _ = writeln!(out, "{}_sum{} {}", name, fmt_labels(labels, None), snap.sum);
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        name,
                        fmt_labels(labels, None),
                        snap.count
                    );
                }
            }
        }
        out
    }
}

/// Format a label set, optionally with a trailing `le` label (histogram
/// buckets). Empty set and no `le` renders as the empty string.
fn fmt_labels(labels: &[(&'static str, &'static str)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let c = registry().counter("test_metrics_counter_total", &[]);
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        // Same key returns the same handle.
        let c2 = registry().counter("test_metrics_counter_total", &[]);
        assert!(std::ptr::eq(c, c2));

        let g = registry().gauge("test_metrics_gauge", &[]);
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn labels_separate_series() {
        let a = registry().counter("test_metrics_labeled_total", &[("side", "a")]);
        let b = registry().counter("test_metrics_labeled_total", &[("side", "b")]);
        assert!(!std::ptr::eq(a, b));
        a.inc();
        let text = registry().render();
        assert!(text.contains("test_metrics_labeled_total{side=\"a\"}"));
        assert!(text.contains("test_metrics_labeled_total{side=\"b\"} 0"));
    }

    #[test]
    fn label_order_is_canonical() {
        let ab = registry().counter("test_metrics_order_total", &[("x", "1"), ("y", "2")]);
        let ba = registry().counter("test_metrics_order_total", &[("y", "2"), ("x", "1")]);
        assert!(std::ptr::eq(ab, ba));
    }

    #[test]
    fn bucket_index_edges() {
        let bounds = [10, 100, 1000];
        assert_eq!(bucket_index(&bounds, 0), 0);
        assert_eq!(bucket_index(&bounds, 10), 0); // inclusive upper bound
        assert_eq!(bucket_index(&bounds, 11), 1);
        assert_eq!(bucket_index(&bounds, 100), 1);
        assert_eq!(bucket_index(&bounds, 1000), 2);
        assert_eq!(bucket_index(&bounds, 1001), 3); // +Inf
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let h = registry().histogram("test_metrics_hist", &[], &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(500);
        let text = registry().render();
        assert!(text.contains("test_metrics_hist_bucket{le=\"10\"} 1"));
        assert!(text.contains("test_metrics_hist_bucket{le=\"100\"} 2"));
        assert!(text.contains("test_metrics_hist_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("test_metrics_hist_sum 555"));
        assert!(text.contains("test_metrics_hist_count 3"));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        registry().counter("test_metrics_kind_clash", &[]);
        registry().gauge("test_metrics_kind_clash", &[]);
    }
}
