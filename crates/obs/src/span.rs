//! Scoped span tracing with per-thread buffers and a bounded global
//! ring.
//!
//! A [`SpanGuard`] is an RAII timer: creating one assigns a fresh span
//! id, remembers the thread's current span as its parent, and makes
//! itself current; dropping it records `(name, id, parent, start_ns,
//! dur_ns, thread)` into a **per-thread buffer**. The buffer is drained
//! into the process-global ring when the top-level span on the thread
//! closes (or when the buffer overflows its soft cap), so the global
//! lock is touched once per span *tree*, not once per span.
//!
//! The ring is bounded: when full, the oldest records are overwritten
//! and `ccmx_spans_dropped_total` counts the loss — tracing never grows
//! without bound and never stalls the traced code.
//!
//! **Cross-thread parenting.** Work handed to another thread (the
//! ccmx-linalg worker pool) does not inherit the submitter's
//! thread-local chain. The submitter captures [`current`] and the
//! executor opens its span with [`child_of`], so parent/child ids stay
//! consistent even when a task is stolen — the pool does exactly this
//! for every batch segment.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Span identifier. `0` means "no span" (the root of every trace).
pub type SpanId = u64;

/// A completed span: one timed scope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Scope name (static, e.g. `"server.request"`).
    pub name: &'static str,
    /// This span's id (unique in the process, never 0).
    pub id: SpanId,
    /// Id of the enclosing span at creation time (0 for top-level).
    pub parent: SpanId,
    /// Start time in nanoseconds since the process tracing epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Arbitrary-but-stable id of the recording thread.
    pub thread: u64,
}

/// Capacity of the global ring buffer.
const RING_CAP: usize = 4096;
/// Soft cap on a per-thread buffer before a mid-tree drain.
const THREAD_BUF_CAP: usize = 256;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: Cell<SpanId> = const { Cell::new(0) };
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    static BUFFER: RefCell<Vec<SpanRecord>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

fn ring() -> &'static Mutex<VecDeque<SpanRecord>> {
    static RING: OnceLock<Mutex<VecDeque<SpanRecord>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(RING_CAP)))
}

/// Poison-tolerant ring lock: span records are appended from `Drop`
/// impls, which must never double-panic because some other thread died
/// while holding the ring.
fn lock_ring() -> std::sync::MutexGuard<'static, VecDeque<SpanRecord>> {
    ring()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn thread_id() -> u64 {
    THREAD_ID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_THREAD.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// The id of the span currently open on this thread (0 if none).
/// Capture this before handing work to another thread, and open the
/// remote side with [`child_of`].
pub fn current() -> SpanId {
    CURRENT.with(|c| c.get())
}

/// Open a span named `name`, child of whatever span is current on this
/// thread. Record on drop.
pub fn span(name: &'static str) -> SpanGuard {
    child_of(name, current())
}

/// Open a span named `name` with an explicit parent id — the
/// cross-thread form (pool workers, server request handlers acting for
/// a remote caller). Record on drop.
pub fn child_of(name: &'static str, parent: SpanId) -> SpanGuard {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let prev = CURRENT.with(|c| c.replace(id));
    DEPTH.with(|d| d.set(d.get() + 1));
    SpanGuard {
        name,
        id,
        parent,
        prev,
        start_ns: now_ns(),
        start: Instant::now(),
    }
}

/// RAII handle for an open span; see [`span`] and [`child_of`].
pub struct SpanGuard {
    name: &'static str,
    id: SpanId,
    parent: SpanId,
    /// Span that was current on this thread before this guard opened
    /// (restored on drop; may differ from `parent` for `child_of`).
    prev: SpanId,
    start_ns: u64,
    start: Instant,
}

impl SpanGuard {
    /// This span's id, for parenting work handed to other threads.
    pub fn id(&self) -> SpanId {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let record = SpanRecord {
            name: self.name,
            id: self.id,
            parent: self.parent,
            start_ns: self.start_ns,
            dur_ns: self.start.elapsed().as_nanos() as u64,
            thread: thread_id(),
        };
        CURRENT.with(|c| c.set(self.prev));
        let depth = DEPTH.with(|d| {
            let v = d.get() - 1;
            d.set(v);
            v
        });
        BUFFER.with(|b| {
            let mut buf = b.borrow_mut();
            buf.push(record);
            if depth == 0 || buf.len() >= THREAD_BUF_CAP {
                drain(&mut buf);
            }
        });
    }
}

/// Flush a thread buffer into the global ring, evicting the oldest
/// records when full.
fn drain(buf: &mut Vec<SpanRecord>) {
    if buf.is_empty() {
        return;
    }
    let recorded = buf.len() as u64;
    let mut dropped = 0u64;
    {
        let mut ring = lock_ring();
        for r in buf.drain(..) {
            if ring.len() >= RING_CAP {
                ring.pop_front();
                dropped += 1;
            }
            ring.push_back(r);
        }
    }
    crate::counter!("ccmx_spans_recorded_total").add(recorded);
    if dropped > 0 {
        crate::counter!("ccmx_spans_dropped_total").add(dropped);
    }
}

/// Snapshot of the global ring, oldest first. Completed span trees only
/// — a thread's records appear once its top-level span closes (or its
/// buffer overflows).
pub fn recent_spans() -> Vec<SpanRecord> {
    lock_ring().iter().cloned().collect()
}

/// Clear the ring (used by [`crate::Registry::reset`]).
pub(crate) fn clear() {
    lock_ring().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ring is process-global and bounded; serialize the tests in
    /// this binary so the flood test cannot evict another test's records
    /// between drop and inspection.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap()
    }

    #[test]
    fn nesting_assigns_parents() {
        let _g = lock();
        let (outer_id, inner_id) = {
            let outer = span("test.span.outer");
            let outer_id = outer.id();
            let inner = span("test.span.inner");
            let inner_id = inner.id();
            drop(inner);
            drop(outer);
            (outer_id, inner_id)
        };
        let spans = recent_spans();
        let outer = spans.iter().find(|s| s.id == outer_id).expect("outer");
        let inner = spans.iter().find(|s| s.id == inner_id).expect("inner");
        assert_eq!(inner.parent, outer_id);
        assert_eq!(outer.parent, 0);
        assert!(inner.start_ns >= outer.start_ns);
        assert_ne!(inner.id, outer.id);
        // After both closed, the thread has no current span.
        assert_eq!(current(), 0);
    }

    #[test]
    fn child_of_carries_parent_across_threads() {
        let _g = lock();
        let parent_id = {
            let parent = span("test.span.parent");
            let id = parent.id();
            let handle = std::thread::spawn(move || {
                let child = child_of("test.span.stolen", id);
                child.id()
            });
            let child_id = handle.join().unwrap();
            drop(parent);
            child_id
        };
        // `parent_id` here is the *child* id returned by the thread; find
        // it and check its parent points at a span from another thread.
        let spans = recent_spans();
        let child = spans
            .iter()
            .find(|s| s.name == "test.span.stolen" && s.id == parent_id)
            .expect("child record");
        let parent = spans
            .iter()
            .find(|s| s.id == child.parent)
            .expect("parent record");
        assert_eq!(parent.name, "test.span.parent");
        assert_ne!(child.thread, parent.thread);
    }

    #[test]
    fn ring_is_bounded() {
        let _g = lock();
        for _ in 0..2 * RING_CAP {
            let _g = span("test.span.flood");
        }
        assert!(recent_spans().len() <= RING_CAP);
    }
}
