//! # ccmx-obs
//!
//! Observability substrate for the ccmx workspace. The paper this repo
//! reproduces treats *cost accounting* — bits across a partition, rounds,
//! area–time products — as the primary observable of a linear-algebra
//! system; this crate applies the same discipline to the runtime itself.
//!
//! Three pieces, all dependency-free (std only):
//!
//! * [`metrics`] — a process-global **registry** of named counters,
//!   gauges, and fixed-bucket histograms. Registration takes a short
//!   lock once per series; every increment afterwards is a single atomic
//!   RMW on a `&'static` cell — cheap enough for the worker-pool hot
//!   path, and safe to call from any thread. [`Registry::render`]
//!   produces Prometheus-style `name{label="v"} value` text.
//! * [`mod@span`] — scoped **span tracing**: RAII timers that record
//!   (name, id, parent id, start, duration, thread) into per-thread
//!   buffers, drained into a bounded process-global ring buffer when the
//!   top-level span on a thread closes. Parents propagate across the
//!   work-stealing pool via explicit [`span::current`] /
//!   [`span::child_of`] handoff.
//! * the [`counter!`], [`gauge!`], and [`histogram!`] macros — each call
//!   site caches its `&'static` handle in a local `OnceLock`, so the
//!   registry lock is touched once per site, not per increment.
//!
//! Every legacy `*_stats()` island in the workspace (`crt`, `pool`,
//! `engine`, `truth`, the net server and its bounds cache) is a thin
//! view over this registry; `ccmx client <addr> --stats` scrapes the
//! same registry from a live server over the wire.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod metrics;
pub mod span;

pub use metrics::{
    bucket_index, buckets, registry, Counter, Gauge, HistSnapshot, Histogram, Registry,
};
pub use span::{child_of, current, recent_spans, span, SpanGuard, SpanId, SpanRecord};

/// Fetch (and on first use register) a process-global counter, caching
/// the `&'static` handle at the call site so the registry lock is taken
/// at most once per site.
///
/// ```
/// let c = ccmx_obs::counter!("doc_example_total");
/// c.inc();
/// let labeled = ccmx_obs::counter!("doc_example_hits_total", "cache" => "bounds");
/// labeled.add(2);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::registry().counter($name, &[]))
    }};
    ($name:expr, $($k:expr => $v:expr),+ $(,)?) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::registry().counter($name, &[$(($k, $v)),+]))
    }};
}

/// Fetch (and on first use register) a process-global gauge, caching the
/// `&'static` handle at the call site.
///
/// ```
/// let g = ccmx_obs::gauge!("doc_example_depth");
/// g.set(3);
/// g.add(-1);
/// let labeled = ccmx_obs::gauge!("doc_example_state", "peer" => "a");
/// labeled.set(1);
/// assert!(ccmx_obs::registry().render().contains("doc_example_depth 2"));
/// ```
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::registry().gauge($name, &[]))
    }};
    ($name:expr, $($k:expr => $v:expr),+ $(,)?) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::registry().gauge($name, &[$(($k, $v)),+]))
    }};
}

/// Fetch (and on first use register) a process-global fixed-bucket
/// histogram, caching the `&'static` handle at the call site. `$bounds`
/// is a slice of inclusive upper bucket bounds (an implicit `+Inf`
/// bucket is always appended); see [`buckets`] for standard sets.
///
/// ```
/// let h = ccmx_obs::histogram!("doc_example_ns", &ccmx_obs::buckets::LATENCY_NS);
/// h.record(1_500);
/// h.record(2_000_000);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.sum(), 2_001_500);
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:expr, $bounds:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::registry().histogram($name, &[], $bounds))
    }};
    ($name:expr, $bounds:expr, $($k:expr => $v:expr),+ $(,)?) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::registry().histogram($name, &[$(($k, $v)),+], $bounds))
    }};
}
