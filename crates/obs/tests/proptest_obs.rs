//! Property tests for the histogram bucket math: recorded values land
//! in exactly the bucket their value selects, and merging two snapshots
//! equals the snapshot of the concatenated sample stream.

use ccmx_obs::{bucket_index, HistSnapshot};
use proptest::prelude::*;

/// Strictly ascending bucket bounds (1..=8 of them) over a wide range.
fn arb_bounds() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..1_000_000, 1..=8).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..2_000_000, 0..64)
}

/// Reference model: histogram a sample stream with plain loops.
fn model_hist(bounds: &[u64], samples: &[u64]) -> HistSnapshot {
    let mut counts = vec![0u64; bounds.len() + 1];
    for &v in samples {
        counts[bucket_index(bounds, v)] += 1;
    }
    HistSnapshot {
        bounds: bounds.to_vec(),
        counts,
        sum: samples.iter().sum(),
        count: samples.len() as u64,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A value's bucket is the unique slot whose bound window contains
    /// it: every bound below the slot is `< v`, the slot's bound (when
    /// not `+Inf`) is `>= v`.
    #[test]
    fn bucket_index_is_the_unique_containing_slot(
        bounds in arb_bounds(),
        v in 0u64..2_000_000,
    ) {
        let i = bucket_index(&bounds, v);
        prop_assert!(i <= bounds.len());
        for (j, &b) in bounds.iter().enumerate() {
            if j < i {
                prop_assert!(b < v, "bound {b} at {j} should be below {v}");
            } else {
                prop_assert!(b >= v, "bound {b} at {j} should cover {v}");
            }
        }
    }

    /// Bucket counts conserve the sample count: each sample lands in
    /// exactly one bucket.
    #[test]
    fn bucket_counts_conserve_samples(
        bounds in arb_bounds(),
        samples in arb_samples(),
    ) {
        let snap = model_hist(&bounds, &samples);
        prop_assert_eq!(snap.counts.iter().sum::<u64>(), samples.len() as u64);
        prop_assert_eq!(snap.count, samples.len() as u64);
    }

    /// Merging the snapshots of two streams equals the snapshot of the
    /// concatenated stream — histograms form a commutative monoid.
    #[test]
    fn merge_equals_concatenation(
        bounds in arb_bounds(),
        xs in arb_samples(),
        ys in arb_samples(),
    ) {
        let mut merged = model_hist(&bounds, &xs);
        merged.merge(&model_hist(&bounds, &ys));

        let concat: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
        prop_assert_eq!(&merged, &model_hist(&bounds, &concat));

        // And the other order agrees (commutativity).
        let mut flipped = model_hist(&bounds, &ys);
        flipped.merge(&model_hist(&bounds, &xs));
        prop_assert_eq!(&merged, &flipped);
    }
}

/// The same properties hold for the live atomic histogram, not just the
/// model: feed a real registry histogram and compare snapshots.
#[test]
fn live_histogram_matches_model() {
    let bounds = [100u64, 10_000, 1_000_000];
    let h = ccmx_obs::registry().histogram("test_proptest_live_hist", &[], &bounds);
    let samples = [0u64, 99, 100, 101, 9_999, 10_001, 5_000_000];
    for &v in &samples {
        h.record(v);
    }
    assert_eq!(h.snapshot(), model_hist(&bounds, &samples));
}
