//! Property tests for the VLSI layer: bound algebra, chip cuts, and the
//! systolic simulators against exact references.

use ccmx_linalg::ring::PrimeField;
use ccmx_linalg::Matrix;
use ccmx_vlsi::bounds::VlsiBounds;
use ccmx_vlsi::{Chip, SystolicMatMul, SystolicMatVec};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bound_algebra(info in 1.0f64..1e9) {
        let b = VlsiBounds::from_info(info);
        prop_assert!((b.at2 - info * info).abs() / b.at2 < 1e-12);
        prop_assert!((b.at - info.powf(1.5)).abs() / b.at < 1e-12);
        // Interpolation endpoints and midpoint monotonicity.
        prop_assert!(b.at_pow(0.0) <= b.at_pow(0.5));
        prop_assert!(b.at_pow(0.5) <= b.at_pow(1.0));
    }

    #[test]
    fn thompson_cut_is_balanced_optimum(w in 2usize..24, h in 1usize..8, total in 1u64..5_000) {
        let chip = Chip::uniform(w, h, total);
        prop_assert_eq!(chip.total_bits(), total);
        let cut = chip.thompson_cut();
        prop_assert_eq!(cut.left_bits + cut.right_bits, total);
        // For a uniform chip the best cut's imbalance is at most one
        // column's worth of bits (the load is near-linear in the cut
        // position, so the optimum straddles the halfway point).
        let width = chip.area() / cut.wires; // width after normalization
        let per_column = total.div_ceil(width as u64);
        let best = cut.left_bits.abs_diff(cut.right_bits);
        prop_assert!(
            best <= per_column,
            "imbalance {best} exceeds one column's load {per_column}"
        );
        // And the cut lies near the middle.
        prop_assert!(cut.at >= width / 4 && cut.at <= 3 * width.div_ceil(4) + 1, "cut at {} of width {width}", cut.at);
    }

    #[test]
    fn systolic_matmul_matches_reference(n in 1usize..8, seed in any::<u64>()) {
        let p = 1009u64;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(n, n, |_, _| rand::Rng::gen_range(&mut rng, 0..p));
        let b = Matrix::from_fn(n, n, |_, _| rand::Rng::gen_range(&mut rng, 0..p));
        let mesh = SystolicMatMul::new(p, 10);
        let (c, report) = mesh.run(&a, &b);
        let field = PrimeField::new(p);
        prop_assert_eq!(c, a.mul(&field, &b));
        prop_assert_eq!(report.cycles, 3 * n - 2);
        prop_assert_eq!(report.crossings, SystolicMatMul::expected_crossings(n).min(if n > 1 { usize::MAX } else { 0 }));
    }

    #[test]
    fn systolic_matvec_matches_reference(n in 1usize..10, seed in any::<u64>()) {
        let p = 257u64;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(n, n, |_, _| rand::Rng::gen_range(&mut rng, 0..p));
        let x: Vec<u64> = (0..n).map(|_| rand::Rng::gen_range(&mut rng, 0..p)).collect();
        let array = SystolicMatVec::new(p, 8);
        let (y, report) = array.run(&a, &x);
        let field = PrimeField::new(p);
        prop_assert_eq!(y, a.mul_vec(&field, &x));
        prop_assert_eq!(report.crossings, SystolicMatVec::expected_crossings(n));
    }

    #[test]
    fn cut_induces_partition_consistent_with_columns(dim in 2usize..7, k in 1u32..5, at_seed in any::<u64>()) {
        let enc = ccmx_comm::MatrixEncoding::new(dim, k);
        let at = 1 + (at_seed as usize) % (dim - 1);
        let part = ccmx_vlsi::chip::induced_partition(&enc, at);
        // Every bit of a column is on one side, whole columns only.
        for col in 0..dim {
            let owners: std::collections::HashSet<_> = enc
                .column_positions(col)
                .into_iter()
                .map(|p| part.owner(p))
                .collect();
            prop_assert_eq!(owners.len(), 1, "column {} split by the cut", col);
        }
        prop_assert_eq!(part.count_a(), at * dim * k as usize);
    }

    #[test]
    fn traffic_report_at2_consistency(n in 2usize..12, k in 1u32..16) {
        let p = 8191u64;
        let mesh = SystolicMatMul::new(p, k);
        let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) as u64) % p);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 11) as u64) % p);
        let (_, report) = mesh.run(&a, &b);
        prop_assert_eq!(report.bits, (n * n) as u64 * k as u64);
        let at2 = report.at2();
        let expect = (n * n) as f64 * ((3 * n - 2) as f64).powi(2);
        prop_assert!((at2 - expect).abs() < 1e-6);
    }
}
