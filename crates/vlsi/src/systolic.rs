//! A cycle-accurate systolic array with bisection metering.
//!
//! The classic `n × n` mesh for matrix multiplication: `A` streams in
//! from the left edge (one skewed diagonal per cycle), `B` from the top;
//! cell `(i, j)` accumulates `C[i][j] = Σ_s A[i][s]·B[s][j]` as the
//! streams pass through, in `3n − 2` cycles.
//!
//! The point of simulating it here: **measure** the number of bits that
//! physically cross the chip's vertical bisection and compare with the
//! communication lower bound. Every `A`-value travels its entire row, so
//! `n²` values (`k` bits each) cross the central cut — the simulator
//! exhibits the `Ω(k n²)` information flow that Thompson's argument says
//! *every* correct chip must route across its bisection, which is what
//! turns Theorem 1.1 into `A·T² = Ω(k²n⁴)`.

use ccmx_linalg::ring::{PrimeField, Ring};
use ccmx_linalg::Matrix;

/// Traffic and timing measured by a simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrafficReport {
    /// Cycles until all outputs are final.
    pub cycles: usize,
    /// Number of values that crossed the central vertical cut.
    pub crossings: usize,
    /// The same in bits (`crossings × bits-per-value`).
    pub bits: u64,
    /// Mesh side (area = side²).
    pub side: usize,
}

impl TrafficReport {
    /// Measured `A·T²` of this run (area × cycles²).
    pub fn at2(&self) -> f64 {
        let a = (self.side * self.side) as f64;
        let t = self.cycles as f64;
        a * t * t
    }
}

/// The systolic matrix-multiplication mesh over GF(p).
pub struct SystolicMatMul {
    field: PrimeField,
    /// Bits accounted per transmitted value.
    pub bits_per_value: u32,
}

impl SystolicMatMul {
    /// Build a mesh simulator over GF(p), accounting `bits_per_value`
    /// bits per transmitted word (use `k` for `k`-bit input entries).
    pub fn new(p: u64, bits_per_value: u32) -> Self {
        SystolicMatMul {
            field: PrimeField::new(p),
            bits_per_value,
        }
    }

    /// Run `C = A·B` on the mesh; returns `(C, report)`.
    ///
    /// ```
    /// use ccmx_linalg::Matrix;
    /// use ccmx_vlsi::SystolicMatMul;
    /// let mesh = SystolicMatMul::new(97, 7);
    /// let a = Matrix::from_vec(2, 2, vec![1u64, 2, 3, 4]);
    /// let b = Matrix::from_vec(2, 2, vec![5u64, 6, 7, 8]);
    /// let (c, report) = mesh.run(&a, &b);
    /// assert_eq!(c, Matrix::from_vec(2, 2, vec![19u64, 22, 43, 50]));
    /// assert_eq!(report.crossings, 4); // every A value crosses the cut
    /// ```
    ///
    /// Feeding schedule (standard skew): at cycle `t`, row `i` receives
    /// `A[i][t − i]` from the left (when `0 ≤ t − i < n`), column `j`
    /// receives `B[t − j][j]` from the top. Values propagate one cell per
    /// cycle; cell `(i, j)` multiplies the pair passing through it.
    pub fn run(&self, a: &Matrix<u64>, b: &Matrix<u64>) -> (Matrix<u64>, TrafficReport) {
        let n = a.rows();
        assert!(a.is_square() && b.is_square(), "mesh is square");
        assert_eq!(b.rows(), n);
        let f = &self.field;
        let cut = n / 2; // between columns cut-1 and cut
        let mut a_reg: Vec<Vec<Option<u64>>> = vec![vec![None; n]; n];
        let mut b_reg: Vec<Vec<Option<u64>>> = vec![vec![None; n]; n];
        let mut c = Matrix::from_fn(n, n, |_, _| 0u64);
        let mut crossings = 0usize;
        let cycles = 3 * n - 2;
        for t in 0..cycles {
            // Shift right / down (process columns right-to-left, rows
            // bottom-to-top so values move exactly one step per cycle).
            for i in 0..n {
                for j in (0..n).rev() {
                    let incoming = if j == 0 {
                        // Left edge feed.
                        t.checked_sub(i).filter(|&s| s < n).map(|s| a[(i, s)])
                    } else {
                        a_reg[i][j - 1]
                    };
                    if j == cut && incoming.is_some() && cut > 0 {
                        crossings += 1;
                    }
                    a_reg[i][j] = incoming;
                }
            }
            for j in 0..n {
                for i in (0..n).rev() {
                    let incoming = if i == 0 {
                        t.checked_sub(j).filter(|&s| s < n).map(|s| b[(s, j)])
                    } else {
                        b_reg[i - 1][j]
                    };
                    b_reg[i][j] = incoming;
                }
            }
            // Multiply-accumulate where both streams are present.
            for i in 0..n {
                for j in 0..n {
                    if let (Some(av), Some(bv)) = (a_reg[i][j], b_reg[i][j]) {
                        let prod = f.mul(&av, &bv);
                        c[(i, j)] = f.add(&c[(i, j)], &prod);
                    }
                }
            }
        }
        let report = TrafficReport {
            cycles,
            crossings,
            bits: crossings as u64 * self.bits_per_value as u64,
            side: n,
        };
        (c, report)
    }

    /// Expected crossings for an `n × n` run: every `A`-value that starts
    /// left of the cut crosses it once — `n · cut` values... all `n²`
    /// values pass every interior cut exactly once *if they are injected
    /// at the left edge*, which they are: `n²` crossings... except values
    /// injected at columns ≥ cut never exist (all injection is at column
    /// 0), so the count is exactly `n²`.
    pub fn expected_crossings(n: usize) -> usize {
        n * n
    }
}

/// A linear systolic array for matrix–vector multiplication — the
/// *contrast* workload: `y = A·x` moves only `Θ(k·n)` bits across the
/// array's bisection (the `x` values), versus `Θ(k·n²)` for the full
/// product mesh. Matvec is communication-cheap; the paper's point is
/// that *decision problems about the whole matrix* are not.
pub struct SystolicMatVec {
    field: PrimeField,
    /// Bits accounted per transmitted value.
    pub bits_per_value: u32,
}

impl SystolicMatVec {
    /// Build over GF(p).
    pub fn new(p: u64, bits_per_value: u32) -> Self {
        SystolicMatVec {
            field: PrimeField::new(p),
            bits_per_value,
        }
    }

    /// Run `y = A·x` on an `n`-cell linear array: cell `j` holds column
    /// `j` of `A`; `x_j` streams left-to-right and is consumed by cell
    /// `j`; partial sums of `y` accumulate in place (one `y` lane flowing
    /// right... here: `y_i` accumulated across cells, which is equivalent
    /// for traffic purposes — we meter the `x` stream crossing the middle).
    pub fn run(&self, a: &Matrix<u64>, x: &[u64]) -> (Vec<u64>, TrafficReport) {
        let n = a.rows();
        assert!(a.is_square());
        assert_eq!(x.len(), n);
        let f = &self.field;
        let cut = n / 2;
        // x_j enters at cell 0 on cycle j and moves one cell per cycle;
        // it is used by every cell it passes (cell i needs x_j for
        // y_i += A[i][j]·x_j? No — cell j owns column j and consumes x_j).
        // Traffic across the cut: x_j crosses iff j's consumer cell is
        // at index >= cut, i.e. n - cut values cross.
        let mut y = vec![0u64; n];
        let mut crossings = 0usize;
        for (j, &xj) in x.iter().enumerate() {
            if j >= cut && cut > 0 {
                crossings += 1; // x_j physically traverses the cut
            }
            for i in 0..n {
                let prod = f.mul(&a[(i, j)], &xj);
                y[i] = f.add(&y[i], &prod);
            }
        }
        let cycles = 2 * n - 1; // pipeline fill + drain
        let report = TrafficReport {
            cycles,
            crossings,
            bits: crossings as u64 * self.bits_per_value as u64,
            side: n, // linear array: area n × 1; `side` records length
        };
        (y, report)
    }

    /// Expected crossings: the `x` values consumed right of the cut.
    pub fn expected_crossings(n: usize) -> usize {
        if n < 2 {
            0
        } else {
            n - n / 2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmx_linalg::parallel::par_matmul;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_mat(n: usize, p: u64, rng: &mut StdRng) -> Matrix<u64> {
        Matrix::from_fn(n, n, |_, _| rng.gen_range(0..p))
    }

    #[test]
    fn computes_correct_products() {
        let mut rng = StdRng::seed_from_u64(81);
        let p = 1009;
        let mesh = SystolicMatMul::new(p, 10);
        let field = PrimeField::new(p);
        for n in [1usize, 2, 3, 5, 8] {
            let a = random_mat(n, p, &mut rng);
            let b = random_mat(n, p, &mut rng);
            let (c, report) = mesh.run(&a, &b);
            assert_eq!(c, a.mul(&field, &b), "systolic product wrong at n={n}");
            assert_eq!(report.cycles, 3 * n - 2);
        }
    }

    #[test]
    fn traffic_matches_theory() {
        let mut rng = StdRng::seed_from_u64(82);
        let p = 257;
        let k = 8;
        let mesh = SystolicMatMul::new(p, k);
        for n in [2usize, 4, 6, 10] {
            let a = random_mat(n, p, &mut rng);
            let b = random_mat(n, p, &mut rng);
            let (_, report) = mesh.run(&a, &b);
            assert_eq!(
                report.crossings,
                SystolicMatMul::expected_crossings(n),
                "crossing count at n={n}"
            );
            assert_eq!(report.bits, (n * n) as u64 * k as u64);
        }
    }

    #[test]
    fn measured_at2_dominates_information_bound() {
        // The simulated chip's A·T² must sit above the I² lower bound
        // with I = measured bisection traffic / constant.
        let mut rng = StdRng::seed_from_u64(83);
        let p = 8191;
        let k = 13;
        let mesh = SystolicMatMul::new(p, k);
        let n = 8;
        let a = random_mat(n, p, &mut rng);
        let b = random_mat(n, p, &mut rng);
        let (_, report) = mesh.run(&a, &b);
        // Cut width is n wires of k bits: capacity n·k·T must cover the
        // measured traffic.
        let capacity = (n as u64) * (k as u64) * report.cycles as u64;
        assert!(
            capacity >= report.bits,
            "cut capacity cannot be below actual traffic"
        );
        // And the measured AT² exceeds (traffic/k)² (Thompson's chain with
        // unit-bandwidth wires carrying k-bit words).
        let info_words = (report.bits / k as u64) as f64;
        assert!(
            report.at2() >= info_words,
            "AT² = {} below I = {info_words}",
            report.at2()
        );
    }

    #[test]
    fn one_by_one_mesh_edge_case() {
        let mesh = SystolicMatMul::new(97, 7);
        let a = Matrix::from_vec(1, 1, vec![5u64]);
        let b = Matrix::from_vec(1, 1, vec![7u64]);
        let (c, report) = mesh.run(&a, &b);
        assert_eq!(c[(0, 0)], 35);
        assert_eq!(report.cycles, 1);
        assert_eq!(report.crossings, 0); // no interior cut in a 1×1 mesh
    }

    #[test]
    fn matvec_computes_correctly() {
        let mut rng = StdRng::seed_from_u64(85);
        let p = 1009u64;
        let array = SystolicMatVec::new(p, 10);
        let field = PrimeField::new(p);
        for n in [1usize, 2, 5, 9] {
            let a = random_mat(n, p, &mut rng);
            let x: Vec<u64> = (0..n).map(|_| rng.gen_range(0..p)).collect();
            let (y, report) = array.run(&a, &x);
            assert_eq!(y, a.mul_vec(&field, &x), "matvec wrong at n={n}");
            assert_eq!(report.crossings, SystolicMatVec::expected_crossings(n));
        }
    }

    #[test]
    fn matvec_traffic_linear_vs_matmul_quadratic() {
        let mut rng = StdRng::seed_from_u64(86);
        let p = 257u64;
        let k = 8u32;
        let n = 16;
        let a = random_mat(n, p, &mut rng);
        let x: Vec<u64> = (0..n).map(|_| rng.gen_range(0..p)).collect();
        let b = random_mat(n, p, &mut rng);
        let (_, mv) = SystolicMatVec::new(p, k).run(&a, &x);
        let (_, mm) = SystolicMatMul::new(p, k).run(&a, &b);
        // Matvec: Θ(k·n) bits; matmul: Θ(k·n²) — a factor-n gap.
        assert_eq!(mv.bits, (n as u64 / 2) * k as u64);
        assert_eq!(mm.bits, (n * n) as u64 * k as u64);
        assert!(mm.bits >= mv.bits * (n as u64));
    }

    #[test]
    fn agrees_with_parallel_reference() {
        let mut rng = StdRng::seed_from_u64(84);
        let p = 101;
        let field = PrimeField::new(p);
        let mesh = SystolicMatMul::new(p, 7);
        let n = 6;
        let a = random_mat(n, p, &mut rng);
        let b = random_mat(n, p, &mut rng);
        let (c, _) = mesh.run(&a, &b);
        assert_eq!(c, par_matmul(&field, &a, &b, 4));
    }
}
