//! # ccmx-vlsi
//!
//! The VLSI side of the paper's Section 1: converting communication
//! complexity into chip area–time trade-offs, and a small cycle-accurate
//! systolic-array simulator whose measured bisection traffic *realizes*
//! the information flow those trade-offs bound.
//!
//! The chain of results (Thompson 1979; Brent & Kung 1981; Vuillemin
//! 1983; Yao 1981), with `I` the communication complexity of the function
//! being computed:
//!
//! * `A·T² = Ω(I²)` — a chip of area `A` can be bisected by a cut crossed
//!   by only `O(√A)` wires, each carrying `O(1)` bits per unit time,
//! * `A = Ω(I)`,
//! * combined: `A·T^{2a} = Ω(I^{1+a})` for `0 ≤ a ≤ 1`.
//!
//! With Theorem 1.1's `I = Θ(k n²)` for singularity testing (hence for
//! determinant, rank, the decompositions, and solvability), the paper
//! reports `AT² = Ω(k²n⁴)`, `AT = Ω(k^{3/2}n³)` and `T = Ω(k^{1/2}n)` —
//! strictly sharper than the Chazelle–Monier (1985) determinant bounds
//! `T = Ω(n)`, `AT = Ω(n²)` obtained in their wire-delay model.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bounds;
pub mod chip;
pub mod systolic;

pub use bounds::VlsiBounds;
pub use chip::Chip;
pub use systolic::{SystolicMatMul, SystolicMatVec};
