//! The Thompson grid chip model and its bisection argument.
//!
//! A chip is a `w × h` rectangular grid of unit cells; wires run between
//! adjacent cells with unit bandwidth. Thompson's observation (1979): a
//! vertical (or horizontal) cut through the shorter dimension separates
//! the chip into two parts crossed by at most `min(w, h) ≤ √A` wires, so
//! if the input bits are spread so that each side holds about half, the
//! two sides form a two-party protocol whose communication is at most
//! `(cut width) × T`. Hence `T ≥ I / √A` and `A·T² ≥ I²`.

/// A rectangular chip: `width × height` unit cells, each holding a number
/// of input bits (the I/O port assignment).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chip {
    width: usize,
    height: usize,
    /// `bits[y][x]` = number of input bits read at cell `(x, y)`.
    bits: Vec<Vec<u64>>,
}

/// A vertical cut between columns `at-1` and `at` (`1 ≤ at < width`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cut {
    /// Cut position.
    pub at: usize,
    /// Wires crossing the cut (= chip height for a vertical cut).
    pub wires: usize,
    /// Input bits on the left side.
    pub left_bits: u64,
    /// Input bits on the right side.
    pub right_bits: u64,
}

impl Chip {
    /// A chip with the given port assignment. The grid is normalized so
    /// `width >= height` (rotate if needed) — cuts are then vertical and
    /// cross `height ≤ √A` wires.
    pub fn new(bits: Vec<Vec<u64>>) -> Self {
        assert!(!bits.is_empty() && !bits[0].is_empty(), "empty chip");
        let h = bits.len();
        let w = bits[0].len();
        assert!(bits.iter().all(|row| row.len() == w), "ragged chip rows");
        if w >= h {
            Chip {
                width: w,
                height: h,
                bits,
            }
        } else {
            // Rotate 90°.
            let rot: Vec<Vec<u64>> = (0..w)
                .map(|x| (0..h).map(|y| bits[y][x]).collect())
                .collect();
            Chip {
                width: h,
                height: w,
                bits: rot,
            }
        }
    }

    /// Uniform port assignment: `total_bits` spread as evenly as possible
    /// over a `w × h` grid.
    pub fn uniform(w: usize, h: usize, total_bits: u64) -> Self {
        let cells = (w * h) as u64;
        let base = total_bits / cells;
        let extra = (total_bits % cells) as usize;
        let bits = (0..h)
            .map(|y| {
                (0..w)
                    .map(|x| base + u64::from(y * w + x < extra))
                    .collect()
            })
            .collect();
        Chip::new(bits)
    }

    /// Area in unit cells.
    pub fn area(&self) -> usize {
        self.width * self.height
    }

    /// Total input bits.
    pub fn total_bits(&self) -> u64 {
        self.bits.iter().flatten().sum()
    }

    /// Bits in columns `[0, at)`.
    fn bits_left_of(&self, at: usize) -> u64 {
        self.bits
            .iter()
            .map(|row| row[..at].iter().sum::<u64>())
            .sum()
    }

    /// Thompson's cut: the vertical cut that best balances the input
    /// bits. Returns the cut and the imbalance `|left − right|`.
    pub fn thompson_cut(&self) -> Cut {
        let total = self.total_bits();
        let mut best: Option<(u64, Cut)> = None;
        for at in 1..self.width {
            let left = self.bits_left_of(at);
            let right = total - left;
            let imbalance = left.abs_diff(right);
            let cut = Cut {
                at,
                wires: self.height,
                left_bits: left,
                right_bits: right,
            };
            if best.as_ref().is_none_or(|(imb, _)| imbalance < *imb) {
                best = Some((imbalance, cut));
            }
        }
        best.expect("width >= 2").1
    }

    /// The `A·T² ≥ I²` chain made explicit for this chip: given that the
    /// function needs `info_bits` of communication across any
    /// near-balanced cut, the minimum time is `info_bits / wires`, and
    /// the implied `A·T²` is reported for comparison with `I²`.
    pub fn time_lower_bound(&self, info_bits: f64) -> f64 {
        let cut = self.thompson_cut();
        info_bits / cut.wires as f64
    }
}

/// The natural chip for the paper's input: one cell per matrix entry
/// (`dim × dim` grid), `k` bits of I/O per cell.
pub fn entry_grid_chip(enc: &ccmx_comm::MatrixEncoding) -> Chip {
    Chip::new(vec![vec![enc.k as u64; enc.dim]; enc.dim])
}

/// The input partition a vertical chip cut *induces*: bits of entries in
/// columns `< at` go to agent A, the rest to agent B. This is the
/// executable form of Thompson's reduction — a chip's bisection turns
/// the chip into a two-party protocol; for `at = dim/2` the induced
/// partition is exactly the paper's `π₀`.
pub fn induced_partition(enc: &ccmx_comm::MatrixEncoding, at: usize) -> ccmx_comm::Partition {
    use ccmx_comm::partition::Owner;
    assert!(at >= 1 && at < enc.dim, "cut must be interior");
    let mut owners = vec![Owner::B; enc.total_bits()];
    for col in 0..at {
        for pos in enc.column_positions(col) {
            owners[pos] = Owner::A;
        }
    }
    ccmx_comm::Partition::new(owners)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_grid_and_induced_partition() {
        let enc = ccmx_comm::MatrixEncoding::new(4, 3);
        let chip = entry_grid_chip(&enc);
        assert_eq!(chip.area(), 16);
        assert_eq!(chip.total_bits(), 48);
        // The balanced Thompson cut of the uniform entry grid is the
        // center column cut, and the induced partition is exactly π₀.
        let cut = chip.thompson_cut();
        assert_eq!(cut.at, 2);
        let induced = induced_partition(&enc, cut.at);
        assert_eq!(induced, ccmx_comm::Partition::pi_zero(&enc));
        assert!(induced.is_even());
        // Off-center cuts induce uneven (but valid) partitions.
        let skew = induced_partition(&enc, 1);
        assert!(!skew.is_even());
        assert_eq!(skew.count_a(), 12);
    }

    #[test]
    fn uniform_chip_accounting() {
        let c = Chip::uniform(8, 4, 100);
        assert_eq!(c.area(), 32);
        assert_eq!(c.total_bits(), 100);
    }

    #[test]
    fn rotation_normalizes_orientation() {
        let tall = Chip::new(vec![vec![1], vec![2], vec![3]]); // 1 wide, 3 tall
        assert_eq!(tall.area(), 3);
        let cut = tall.thompson_cut();
        // After rotation the chip is 3 wide, 1 tall: cuts cross 1 wire.
        assert_eq!(cut.wires, 1);
        assert_eq!(tall.total_bits(), 6);
    }

    #[test]
    fn thompson_cut_balances() {
        let c = Chip::uniform(16, 4, 64 * 10);
        let cut = c.thompson_cut();
        assert_eq!(cut.wires, 4);
        // Perfectly uniform: the best cut is dead center.
        assert_eq!(cut.at, 8);
        assert_eq!(cut.left_bits, cut.right_bits);
    }

    #[test]
    fn skewed_ports_shift_the_cut() {
        // All bits in the leftmost column: the best cut is right after it.
        let mut bits = vec![vec![0u64; 8]; 4];
        for row in bits.iter_mut() {
            row[0] = 25;
        }
        let c = Chip::new(bits);
        let cut = c.thompson_cut();
        assert_eq!(cut.at, 1);
        assert_eq!(cut.left_bits, 100);
        assert_eq!(cut.right_bits, 0);
    }

    #[test]
    fn at2_chain() {
        // A square chip of area A: cut width √A; time >= I/√A;
        // so A·T² >= I² exactly in this model.
        let side = 16;
        let info = 1024.0;
        let c = Chip::uniform(side, side, 4096);
        let t = c.time_lower_bound(info);
        let at2 = c.area() as f64 * t * t;
        assert!((at2 - info * info).abs() < 1e-6);
    }

    #[test]
    fn wider_chip_needs_less_time_but_more_area() {
        let info = 4096.0;
        let square = Chip::uniform(32, 32, 1 << 12);
        let flat = Chip::uniform(256, 4, 1 << 12);
        let t_square = square.time_lower_bound(info);
        let t_flat = flat.time_lower_bound(info);
        // The flat chip has a narrower cut → larger time lower bound.
        assert!(t_flat > t_square);
    }
}
