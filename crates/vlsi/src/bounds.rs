//! Area–time lower-bound formulas.
//!
//! Everything here is a consequence of a single quantity: the
//! communication complexity `I` of the function the chip computes. The
//! paper instantiates `I = Θ(k n²)` (Theorem 1.1); we expose both the
//! generic formulas and the paper's instantiations, including the
//! comparison against Chazelle–Monier's determinant bounds.

use ccmx_core::counting::{self};
use ccmx_core::Params;

/// The family of lower bounds implied by communication complexity `I`
/// (in bits) for any chip computing the function.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VlsiBounds {
    /// The information content `I` (communication complexity, bits).
    pub info_bits: f64,
    /// Thompson: `A·T² ≥ c·I²` (we report `I²`).
    pub at2: f64,
    /// Brent–Kung/Vuillemin/Yao: `A ≥ c·I`.
    pub area: f64,
    /// `A·T ≥ c·I^{3/2}` (the `a = 1/2` point of `A·T^{2a} = Ω(I^{1+a})`).
    pub at: f64,
    /// If `A = Θ(I)` (area-optimal chip), then `T ≥ c·I^{1/2}`.
    pub time_if_area_optimal: f64,
}

impl VlsiBounds {
    /// Bounds from a raw information content in bits.
    pub fn from_info(info_bits: f64) -> Self {
        VlsiBounds {
            info_bits,
            at2: info_bits * info_bits,
            area: info_bits,
            at: info_bits.powf(1.5),
            time_if_area_optimal: info_bits.sqrt(),
        }
    }

    /// `A·T^{2a}` lower bound for any `0 ≤ a ≤ 1`: `I^{1+a}`.
    pub fn at_pow(&self, a: f64) -> f64 {
        assert!((0.0..=1.0).contains(&a), "exponent a must be in [0, 1]");
        self.info_bits.powf(1.0 + a)
    }

    /// The paper's instantiation for singularity testing (and everything
    /// Corollary 1.2/1.3 reduces to it): `I = Θ(k n²)`. We use the
    /// *certified* lower bound from the counting engine, not just the
    /// asymptotic formula.
    pub fn for_singularity(params: Params) -> Self {
        let b = counting::theorem_bound(params);
        VlsiBounds::from_info(b.lower_bound_bits)
    }

    /// The *asymptotic* instantiation `I = k n²` (the headline formulas
    /// `AT² = Ω(k²n⁴)`, `AT = Ω(k^{3/2}n³)`, `T = Ω(k^{1/2}n)`).
    pub fn for_singularity_asymptotic(n: usize, k: u32) -> Self {
        VlsiBounds::from_info(k as f64 * (n * n) as f64)
    }
}

/// Chazelle & Monier (1985) determinant bounds in their constant-delay
/// wire model with boundary I/O: `T = Ω(n)` and `AT = Ω(n²)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChazelleMonier {
    /// Their time bound `n`.
    pub time: f64,
    /// Their area-time bound `n²`.
    pub at: f64,
}

impl ChazelleMonier {
    /// Instantiate at matrix dimension `n`.
    pub fn at_n(n: usize) -> Self {
        ChazelleMonier {
            time: n as f64,
            at: (n * n) as f64,
        }
    }
}

/// The improvement factors Section 1 claims over Chazelle–Monier:
/// `T` sharper by `k^{1/2}`, `AT` sharper by `k^{3/2}·n`.
pub fn improvement_over_chazelle_monier(n: usize, k: u32) -> (f64, f64) {
    let ours = VlsiBounds::for_singularity_asymptotic(n, k);
    let cm = ChazelleMonier::at_n(n);
    (ours.time_if_area_optimal / cm.time, ours.at / cm.at)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_scale_correctly() {
        let b = VlsiBounds::from_info(100.0);
        assert_eq!(b.at2, 10_000.0);
        assert_eq!(b.area, 100.0);
        assert!((b.at - 1000.0).abs() < 1e-9);
        assert!((b.time_if_area_optimal - 10.0).abs() < 1e-9);
        // Endpoints of the interpolation family.
        assert!((b.at_pow(0.0) - 100.0).abs() < 1e-9);
        assert!((b.at_pow(1.0) - 10_000.0).abs() < 1e-9);
        assert!((b.at_pow(0.5) - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn asymptotic_headline_bounds() {
        // AT² = (k n²)² = k² n⁴; AT = (k n²)^{3/2} = k^{3/2} n³;
        // T = (k n²)^{1/2} = k^{1/2} n.
        let n = 10;
        let k = 4;
        let b = VlsiBounds::for_singularity_asymptotic(n, k);
        assert!((b.at2 - (k as f64).powi(2) * (n as f64).powi(4)).abs() < 1e-6);
        assert!((b.at - (k as f64).powf(1.5) * (n as f64).powi(3)).abs() < 1e-6);
        assert!((b.time_if_area_optimal - (k as f64).sqrt() * n as f64).abs() < 1e-9);
    }

    #[test]
    fn doubling_k_doubles_information() {
        let b1 = VlsiBounds::for_singularity_asymptotic(8, 4);
        let b2 = VlsiBounds::for_singularity_asymptotic(8, 8);
        assert!((b2.info_bits / b1.info_bits - 2.0).abs() < 1e-9);
        assert!((b2.at2 / b1.at2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn certified_bounds_below_asymptotic() {
        // The certified bound carries the proof's constants, so it sits
        // below the clean asymptotic k n² but has the same shape.
        let p = Params::new(61, 4);
        let cert = VlsiBounds::for_singularity(p);
        let asym = VlsiBounds::for_singularity_asymptotic(p.n, p.k);
        assert!(cert.info_bits > 0.0);
        assert!(cert.info_bits <= asym.info_bits);
    }

    #[test]
    fn improvement_factors() {
        let (t_ratio, at_ratio) = improvement_over_chazelle_monier(100, 16);
        // T improvement = sqrt(k) = 4; AT improvement = k^{3/2} n = 6400.
        assert!((t_ratio - 4.0).abs() < 1e-9);
        assert!((at_ratio - 64.0 * 100.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn at_pow_rejects_bad_exponent() {
        let _ = VlsiBounds::from_info(10.0).at_pow(1.5);
    }
}
