//! Property-based tests for the exact linear algebra substrate:
//! cross-oracle agreement (Bareiss vs rational elimination vs CRT),
//! determinant identities, rank laws, and decomposition roundtrips.

use ccmx_bigint::{Integer, Natural, Rational};
use ccmx_linalg::bareiss;
use ccmx_linalg::gauss;
use ccmx_linalg::lup::{lup, verify_lup};
use ccmx_linalg::matrix::Matrix;
use ccmx_linalg::modular::{det_mod, det_via_crt, rank_mod};
use ccmx_linalg::qr::{qr, verify_qr};
use ccmx_linalg::ring::{IntegerRing, PrimeField, RationalField};
use ccmx_linalg::solve;
use ccmx_linalg::svd::svd_structure;
use proptest::prelude::*;

const ENTRY: i64 = 20;

fn arb_square(n: usize) -> impl Strategy<Value = Matrix<Integer>> {
    prop::collection::vec(-ENTRY..=ENTRY, n * n)
        .prop_map(move |v| Matrix::from_vec(n, n, v.into_iter().map(Integer::from).collect()))
}

fn arb_rect() -> impl Strategy<Value = Matrix<Integer>> {
    (1usize..=5, 1usize..=5).prop_flat_map(|(r, c)| {
        prop::collection::vec(-ENTRY..=ENTRY, r * c)
            .prop_map(move |v| Matrix::from_vec(r, c, v.into_iter().map(Integer::from).collect()))
    })
}

fn to_q(m: &Matrix<Integer>) -> Matrix<Rational> {
    m.map(|e| Rational::from(e.clone()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bareiss_det_matches_rational_elimination(m in (1usize..=5).prop_flat_map(arb_square)) {
        let f = RationalField;
        prop_assert_eq!(Rational::from(bareiss::det(&m)), gauss::det(&f, &to_q(&m)));
    }

    #[test]
    fn bareiss_det_matches_crt(m in (1usize..=4).prop_flat_map(arb_square)) {
        let d = det_via_crt(&m, &Natural::from(ENTRY as u64), 1);
        prop_assert_eq!(d, bareiss::det(&m));
    }

    #[test]
    fn rank_agreement_and_bounds(m in arb_rect()) {
        let f = RationalField;
        let rb = bareiss::rank(&m);
        let rq = gauss::rank(&f, &to_q(&m));
        prop_assert_eq!(rb, rq);
        prop_assert!(rb <= m.rows().min(m.cols()));
        // Rank mod p never exceeds rank over Q.
        for p in [2u64, 3, 1_000_000_007] {
            prop_assert!(rank_mod(&m, p) <= rb);
        }
        // Transpose preserves rank.
        prop_assert_eq!(bareiss::rank(&m.transpose()), rb);
    }

    #[test]
    fn det_multiplicative(a in arb_square(3), b in arb_square(3)) {
        let zz = IntegerRing;
        prop_assert_eq!(bareiss::det(&a.mul(&zz, &b)), bareiss::det(&a) * bareiss::det(&b));
    }

    #[test]
    fn det_row_scaling(m in arb_square(3), c in -5i64..=5) {
        prop_assume!(c != 0);
        let mut scaled = m.clone();
        for j in 0..3 {
            scaled[(0, j)] = &scaled[(0, j)] * &Integer::from(c);
        }
        prop_assert_eq!(bareiss::det(&scaled), bareiss::det(&m) * Integer::from(c));
    }

    #[test]
    fn det_mod_is_det_reduced(m in arb_square(4), pidx in 0usize..3) {
        let p = [97u64, 1_000_000_007, 5][pidx];
        let exact = bareiss::det(&m);
        let expect = ccmx_bigint::modular::reduce_integer_u64(&exact, p);
        prop_assert_eq!(det_mod(&m, p), expect);
    }

    #[test]
    fn lup_roundtrip_rational(m in arb_rect()) {
        let f = RationalField;
        let mq = to_q(&m);
        let d = lup(&f, &mq);
        prop_assert!(verify_lup(&f, &mq, &d));
    }

    #[test]
    fn lup_roundtrip_gfp(m in arb_rect()) {
        let f = PrimeField::new(10007);
        let mf = m.map(|e| f.reduce(e));
        let d = lup(&f, &mf);
        prop_assert!(verify_lup(&f, &mf, &d));
    }

    #[test]
    fn qr_roundtrip(m in arb_rect()) {
        let mq = to_q(&m);
        let d = qr(&mq);
        prop_assert!(verify_qr(&mq, &d));
    }

    #[test]
    fn svd_structure_rank_law(m in arb_rect()) {
        let s = svd_structure(&m);
        prop_assert_eq!(s.rank, bareiss::rank(&m));
        if s.rank > 0 {
            prop_assert!(!s.sigma_squared_poly[0].is_zero());
        }
        prop_assert_eq!(s.sigma_squared_poly.last().cloned(), Some(Integer::one()));
    }

    #[test]
    fn solvability_oracles_agree(m in arb_rect(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let b: Vec<Integer> = (0..m.rows()).map(|_| Integer::from(rng.gen_range(-ENTRY..=ENTRY))).collect();
        prop_assert_eq!(solve::is_solvable(&m, &b), solve::is_solvable_by_rank(&m, &b));
    }

    #[test]
    fn singularity_iff_nontrivial_kernel(m in (1usize..=4).prop_flat_map(arb_square)) {
        let f = RationalField;
        let mq = to_q(&m);
        let singular = bareiss::det(&m).is_zero();
        let ns = gauss::nullspace(&f, &mq);
        prop_assert_eq!(singular, !ns.is_empty());
        for v in &ns {
            let mv = mq.mul_vec(&f, v);
            prop_assert!(mv.iter().all(|e| e.is_zero()));
        }
    }

    #[test]
    fn echelon_rank_nullity(m in arb_rect()) {
        let f = RationalField;
        let mq = to_q(&m);
        let e = gauss::echelon(&f, &mq);
        let ns = gauss::nullspace(&f, &mq);
        prop_assert_eq!(e.rank() + ns.len(), m.cols());
    }
}

/// A random `n × n` matrix of signed `k`-bit entries.
fn arb_kbit_square(n_max: usize, k: u32) -> impl Strategy<Value = Matrix<Integer>> {
    let bound = (1i64 << k) - 1;
    (1usize..=n_max).prop_flat_map(move |n| {
        prop::collection::vec(-bound..=bound, n * n)
            .prop_map(move |v| Matrix::from_vec(n, n, v.into_iter().map(Integer::from).collect()))
    })
}

// Three-way determinant agreement across the exact backends — rational
// Gauss, Bareiss, Montgomery-CRT — on k-bit entries, k ∈ {1, 8, 32}.
// Low case counts keep the rational baseline affordable at n = 12.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn det_backends_agree_1bit(m in arb_kbit_square(12, 1)) {
        let bound = Natural::from(1u64);
        let d = det_via_crt(&m, &bound, 1);
        prop_assert_eq!(&d, &bareiss::det(&m));
        prop_assert_eq!(Rational::from(d), gauss::det(&RationalField, &to_q(&m)));
    }

    #[test]
    fn det_backends_agree_8bit(m in arb_kbit_square(12, 8)) {
        let bound = Natural::from((1u64 << 8) - 1);
        let d = det_via_crt(&m, &bound, 1);
        prop_assert_eq!(&d, &bareiss::det(&m));
        prop_assert_eq!(Rational::from(d), gauss::det(&RationalField, &to_q(&m)));
    }

    #[test]
    fn det_backends_agree_32bit(m in arb_kbit_square(12, 32)) {
        let bound = Natural::from((1u64 << 32) - 1);
        let d = det_via_crt(&m, &bound, 1);
        prop_assert_eq!(&d, &bareiss::det(&m));
        prop_assert_eq!(Rational::from(d), gauss::det(&RationalField, &to_q(&m)));
    }

    #[test]
    fn certified_rank_and_nullspace_match_oracle(m in arb_rect()) {
        let f = RationalField;
        let mq = to_q(&m);
        prop_assert_eq!(ccmx_linalg::crt::rank_int(&m), gauss::rank(&f, &mq));
        prop_assert_eq!(ccmx_linalg::crt::nullspace_int(&m), gauss::nullspace(&f, &mq));
    }
}

/// An arbitrary signed multi-limb integer: up to `limbs` 64-bit words
/// plus a sign, so the batched reducer sees single-limb, multi-limb,
/// zero, and negative inputs.
fn arb_wide_int(limbs: usize) -> impl Strategy<Value = Integer> {
    (
        prop::collection::vec(any::<u64>(), 0..=limbs),
        any::<bool>(),
    )
        .prop_map(|(ls, neg)| {
            let n = Integer::from(Natural::from_limbs(ls));
            if neg {
                -n
            } else {
                n
            }
        })
}

fn plan_primes(count: usize) -> Vec<u64> {
    let mut v = Vec::with_capacity(count);
    let mut p = ccmx_bigint::prime::next_prime(1 << 61);
    for _ in 0..count {
        v.push(p);
        p = ccmx_bigint::prime::next_prime(p + 1);
    }
    v
}

// One-pass residue batching vs. the per-prime scalar reducer, across
// prime counts that stay under and cross the remainder-tree gate.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_residues_match_scalar_reduce(
        entries in prop::collection::vec(arb_wide_int(20), 1..=12),
        nprimes in 1usize..=9,
    ) {
        use ccmx_linalg::engine::ResiduePlan;
        use ccmx_linalg::montgomery::MontgomeryField;
        let primes = plan_primes(nprimes);
        let mut plan = ResiduePlan::new(&primes);
        let batched = plan.reduce_entries(&entries);
        for (k, &p) in primes.iter().enumerate() {
            let field = MontgomeryField::new(p);
            for (i, e) in entries.iter().enumerate() {
                prop_assert_eq!(
                    field.from_mont(batched[k][i]),
                    field.from_mont(field.reduce(e)),
                    "entry {} mod {}", i, p
                );
            }
        }
    }
}

// The O(n²)-per-step incremental singularity engine vs. a fresh exact
// Bareiss evaluation, over random single-bit flip walks (the exact
// access pattern of Gray-coded truth-matrix enumeration).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_engine_matches_fresh_over_flip_walk(
        n in 2usize..=4,
        k in 1u32..=6,
        seed in any::<u64>(),
        steps in 20usize..=60,
    ) {
        use ccmx_linalg::engine::SingularityEngine;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bound = Natural::from((1u64 << k) - 1);
        let mut entries = vec![0u64; n * n];
        for e in entries.iter_mut() {
            *e = rng.gen_range(0..=(1u64 << k) - 1);
        }
        let as_matrix = |ents: &[u64]| {
            Matrix::from_fn(n, n, |r, c| Integer::from(ents[r * n + c]))
        };
        let mut engine = SingularityEngine::new(n, &bound);
        engine.load(&as_matrix(&entries));
        prop_assert_eq!(engine.is_singular(), bareiss::is_singular(&as_matrix(&entries)));
        for step in 0..steps {
            let r = rng.gen_range(0..n);
            let c = rng.gen_range(0..n);
            let bit = rng.gen_range(0..k);
            let was_set = (entries[r * n + c] >> bit) & 1 == 1;
            entries[r * n + c] ^= 1 << bit;
            let delta = if was_set {
                Integer::from(-(1i64 << bit))
            } else {
                Integer::from(1i64 << bit)
            };
            let got = engine.update(r, c, &delta);
            let expect = bareiss::is_singular(&as_matrix(&entries));
            prop_assert_eq!(got, expect, "step {}", step);
            prop_assert_eq!(engine.is_singular(), expect);
        }
    }
}

// The blocked communication-avoiding Montgomery kernels against the
// scalar delayed-reduction oracles, across tile widths (including widths
// that do not divide the dimension) and rank-deficient inputs. The
// blocked pass either certifies full rank or bails to scalar, so both
// arms of the contract are asserted.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn blocked_montgomery_kernels_match_scalar_oracles(
        rows in 16usize..=33,
        cols in 16usize..=33,
        panel in 1usize..=16,
        deficient in any::<bool>(),
        seed in any::<u64>(),
    ) {
        use ccmx_bigint::prime::next_prime;
        use ccmx_linalg::montgomery::{
            det_from_residues_blocked, det_from_residues_scalar,
            echelon_from_residues_blocked, echelon_from_residues_scalar,
            rank_from_residues_blocked, rank_from_residues_scalar, MontgomeryField,
        };
        use rand::{Rng, SeedableRng};
        let field = MontgomeryField::new(next_prime(1 << 59));
        let p = field.modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut residues: Vec<u64> = (0..rows * cols)
            .map(|_| field.to_mont(rng.gen_range(0..p)))
            .collect();
        if deficient {
            // Last row = first + second (mod p): rank drops below full.
            for j in 0..cols {
                residues[(rows - 1) * cols + j] = field.add(residues[j], residues[cols + j]);
            }
        }
        let d = rows.min(cols);
        let scalar_rank = rank_from_residues_scalar(&field, rows, cols, &residues);
        match rank_from_residues_blocked(&field, rows, cols, &residues, panel) {
            Some(r) => {
                prop_assert_eq!(r, d);
                prop_assert_eq!(scalar_rank, d);
            }
            None => prop_assert!(scalar_rank < d, "blocked bailed on a full-rank input"),
        }
        if let Some(blocked) = echelon_from_residues_blocked(&field, rows, cols, &residues, panel) {
            let scalar = echelon_from_residues_scalar(&field, rows, cols, &residues);
            prop_assert_eq!(&blocked.pivot_cols, &scalar.pivot_cols);
            prop_assert_eq!(blocked.det, scalar.det);
            for r in 0..rows {
                for c in 0..cols {
                    prop_assert_eq!(
                        field.from_mont(blocked.rref[(r, c)]),
                        field.from_mont(scalar.rref[(r, c)]),
                        "rref mismatch at ({}, {}) panel {}", r, c, panel
                    );
                }
            }
        }
        if rows == cols {
            prop_assert_eq!(
                det_from_residues_blocked(&field, rows, &residues, panel),
                det_from_residues_scalar(&field, rows, &residues)
            );
        }
    }
}

// The single-prime full-rank shortcut (`crt::try_rank` certifies rank
// via one Montgomery elimination when the candidate minor is full-rank)
// now routes through the blocked kernel at kernel scale; it must keep
// matching the exact Bareiss oracle on both full- and deficient-rank
// integer matrices.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn try_rank_shortcut_matches_bareiss_at_kernel_scale(
        n in 16usize..=18,
        deficient in any::<bool>(),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut grid = vec![0i64; n * n];
        for e in grid.iter_mut() {
            *e = rng.gen_range(-1000i64..=1000);
        }
        if deficient {
            // Last row = first − second over ℤ: rank < n over ℚ.
            for j in 0..n {
                grid[(n - 1) * n + j] = grid[j] - grid[n + j];
            }
        }
        let m = Matrix::from_fn(n, n, |r, c| Integer::from(grid[r * n + c]));
        let oracle = bareiss::rank(&m);
        prop_assert_eq!(ccmx_linalg::crt::try_rank(&m, 1), Some(oracle));
    }
}
